//! # ebv — umbrella crate for the EBV reproduction
//!
//! Re-exports the five library crates of the workspace under short module
//! names so that examples and integration tests can use one import root:
//!
//! * [`graph`] — graph structures, generators, statistics and I/O
//!   (`ebv-graph`)
//! * [`partition`] — the EBV partitioner, every baseline, the streaming
//!   variants and the quality metrics (`ebv-partition`)
//! * [`stream`] — streaming edge ingestion and the chunked online
//!   partitioning pipeline (`ebv-stream`)
//! * [`dynamic`] — evolving-graph support: mutation events, window and
//!   churn sources, the batched event pipeline (`ebv-dynamic`)
//! * [`bsp`] — the subgraph-centric BSP engine and cost model (`ebv-bsp`)
//! * [`obs`] — the std-only telemetry plane: metrics registry, phase
//!   tracer and Chrome-trace export (`ebv-obs`)
//! * [`algorithms`] — CC, SSSP, PageRank, BFS and their sequential
//!   references (`ebv-algorithms`)
//! * [`serve`] — the epoch-versioned query plane: lock-free snapshot
//!   store, in-process [`QueryHandle`](ebv_serve::QueryHandle) and the
//!   `GET /query/*` routes (`ebv-serve`)
//! * [`state`] — the durable state plane: write-ahead mutation log,
//!   epoch checkpoints and crash-at-any-point recovery (`ebv-state`)
//!
//! See the workspace README for the quickstart and the experiment index.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub use ebv_algorithms as algorithms;
pub use ebv_bsp as bsp;
pub use ebv_dynamic as dynamic;
pub use ebv_graph as graph;
pub use ebv_obs as obs;
pub use ebv_partition as partition;
pub use ebv_serve as serve;
pub use ebv_state as state;
pub use ebv_stream as stream;
