//! Offline minimal stand-in for the parts of `proptest` this workspace uses.
//!
//! The build environment has no crates.io access, so the real `proptest`
//! cannot be compiled. This stub supports the workspace's property tests:
//! the `proptest!` macro (with optional `#![proptest_config(...)]`), range
//! and tuple strategies, `collection::vec`, `any::<bool>()`,
//! `prop_filter_map`/`prop_map`, and the `prop_assert!`/`prop_assert_eq!`/
//! `prop_assume!` macros. Failing cases are reported by ordinary panics;
//! shrinking is not implemented.

pub mod strategy;
pub mod test_runner;

pub mod collection {
    //! Strategies for collections.

    use std::ops::Range;

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy producing `Vec`s with a length drawn from `len` and elements
    /// drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// See [`vec()`](fn@vec).
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
            assert!(
                self.len.start < self.len.end,
                "cannot sample a length from an empty range"
            );
            let width = (self.len.end - self.len.start) as u64;
            let n = self.len.start + (rng.next_u64() % width) as usize;
            let mut out = Vec::with_capacity(n);
            for _ in 0..n {
                out.push(self.element.new_value(rng)?);
            }
            Some(out)
        }
    }
}

pub mod prelude {
    //! Commonly used items, mirroring `proptest::prelude`.
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests. Mirrors `proptest::proptest!` for the subset of
/// syntax used in this workspace: an optional
/// `#![proptest_config(<expr>)]` header followed by test functions whose
/// parameters are `name in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                let mut accepted: u32 = 0;
                let mut attempts: u32 = 0;
                let max_attempts = config.cases.saturating_mul(64).max(1024);
                while accepted < config.cases {
                    attempts += 1;
                    assert!(
                        attempts <= max_attempts,
                        "proptest stub: too many rejected samples in {}",
                        stringify!($name),
                    );
                    $(
                        let $arg = match $crate::strategy::Strategy::new_value(
                            &($strat),
                            &mut rng,
                        ) {
                            ::core::option::Option::Some(value) => value,
                            ::core::option::Option::None => continue,
                        };
                    )+
                    let outcome: ::core::result::Result<(), $crate::test_runner::Rejection> =
                        (move || {
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    if outcome.is_ok() {
                        accepted += 1;
                    }
                }
            }
        )*
    };
}

/// Skips the current case when the condition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::Rejection);
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::Rejection);
        }
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*); };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*); };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*); };
}
