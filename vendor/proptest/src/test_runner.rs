//! Test-runner configuration and the deterministic RNG behind strategies.

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Runs `cases` accepted cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Marker returned by `prop_assume!` when a sampled case is rejected.
#[derive(Debug, Clone, Copy)]
pub struct Rejection;

/// Deterministic RNG used to drive strategies (SplitMix64 seeded by the
/// test's fully qualified name, so every test gets a stable but distinct
/// stream).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates an RNG seeded from the FNV-1a hash of `name`.
    pub fn deterministic(name: &str) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: hash }
    }

    /// Returns the next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a uniform sample from `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
