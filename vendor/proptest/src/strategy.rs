//! Value-generation strategies.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A way of generating values of a type for property tests.
///
/// `new_value` returns `None` when the sampled candidate was rejected (by a
/// filter); the runner then retries with fresh randomness.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value, or `None` if the candidate was filtered out.
    fn new_value(&self, rng: &mut TestRng) -> Option<Self::Value>;

    /// Transforms generated values, discarding those mapped to `None`.
    fn prop_filter_map<U, F>(self, _reason: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<U>,
    {
        FilterMap { inner: self, f }
    }

    /// Transforms generated values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Discards generated values failing the predicate.
    fn prop_filter<F>(self, _reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, f }
    }
}

/// See [`Strategy::prop_filter_map`].
#[derive(Debug, Clone)]
pub struct FilterMap<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for FilterMap<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> Option<U>,
{
    type Value = U;

    fn new_value(&self, rng: &mut TestRng) -> Option<U> {
        (self.f)(self.inner.new_value(rng)?)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn new_value(&self, rng: &mut TestRng) -> Option<U> {
        Some((self.f)(self.inner.new_value(rng)?))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn new_value(&self, rng: &mut TestRng) -> Option<S::Value> {
        let value = self.inner.new_value(rng)?;
        if (self.f)(&value) {
            Some(value)
        } else {
            None
        }
    }
}

/// Strategy that always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> Option<T> {
        Some(self.0.clone())
    }
}

macro_rules! impl_range_strategy_uint {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> Option<$t> {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let width = (self.end - self.start) as u64;
                Some(self.start + (rng.next_u64() % width) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> Option<$t> {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from an empty range");
                let width = (end - start) as u64;
                if width == u64::MAX {
                    return Some(rng.next_u64() as $t);
                }
                Some(start + (rng.next_u64() % (width + 1)) as $t)
            }
        }
    )*};
}
impl_range_strategy_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> Option<$t> {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let width = (self.end as i64 - self.start as i64) as u64;
                Some(self.start + (rng.next_u64() % width) as $t)
            }
        }
    )*};
}
impl_range_strategy_int!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn new_value(&self, rng: &mut TestRng) -> Option<f64> {
        assert!(self.start < self.end, "cannot sample from an empty range");
        Some(self.start + rng.next_f64() * (self.end - self.start))
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn new_value(&self, rng: &mut TestRng) -> Option<Self::Value> {
                Some(($(self.$idx.new_value(rng)?,)+))
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}

/// Types with a canonical "arbitrary value" strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as u32
    }
}

/// The canonical strategy for any [`Arbitrary`] type.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// See [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> Option<T> {
        Some(T::arbitrary(rng))
    }
}
