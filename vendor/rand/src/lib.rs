//! Offline minimal stand-in for the parts of `rand 0.8` this workspace uses.
//!
//! The build environment has no crates.io access, so the real `rand` cannot
//! be compiled. This stub implements the exact API surface the workspace
//! needs — `StdRng`, `SeedableRng::seed_from_u64`, `Rng::{gen, gen_range,
//! gen_bool}` and `seq::SliceRandom::shuffle` — on top of xoshiro256**.
//! Streams differ numerically from the real `StdRng` (ChaCha12), but every
//! generator in the workspace only requires determinism, not a specific
//! stream.

use std::ops::{Range, RangeInclusive};

/// A random number generator: the only primitive operation is drawing the
/// next 64 random bits.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// A generator that can be seeded deterministically.
pub trait SeedableRng: Sized {
    /// Creates a generator seeded from a single `u64`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly "at standard" from raw bits
/// (the stub's equivalent of `rand::distributions::Standard`).
pub trait StandardSample {
    /// Draws one value from `rng`.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits, uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for bool {
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            #[inline]
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize);

/// Ranges a value can be drawn from uniformly (the stub's equivalent of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let width = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % width) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from an empty range");
                let width = (end - start) as u64;
                if width == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % (width + 1)) as $t
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from an empty range");
        self.start + f64::standard_sample(rng) * (self.end - self.start)
    }
}

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value of any [`StandardSample`] type.
    #[inline]
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard_sample(self)
    }

    /// Draws a value uniformly from `range`.
    #[inline]
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::standard_sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generator types.

    use super::{RngCore, SeedableRng};

    /// Deterministic stand-in for `rand::rngs::StdRng`, backed by
    /// xoshiro256** seeded through SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(mut state: u64) -> Self {
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence-related sampling, mirroring `rand::seq`.

    use super::RngCore;

    /// Shuffling and random selection on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((rng.next_u64() % self.len() as u64) as usize)
            }
        }
    }
}

pub mod prelude {
    //! Commonly used items, mirroring `rand::prelude`.
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn unit_interval_samples_are_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(0usize..=3);
            assert!(w <= 3);
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut xs: Vec<u32> = (0..100).collect();
        xs.shuffle(&mut rng);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(xs, sorted);
    }
}
