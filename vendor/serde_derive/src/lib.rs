//! Offline no-op stand-in for `serde_derive`.
//!
//! The build environment for this workspace has no access to crates.io, so
//! the real `serde` cannot be compiled. Nothing in the workspace serializes
//! values (there is no `serde_json` or similar); the derives are kept on the
//! public types so that downstream users with the real `serde` get the
//! expected impls. These no-op derive macros make `#[derive(Serialize,
//! Deserialize)]` compile without generating any code.

use proc_macro::TokenStream;

/// No-op replacement for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op replacement for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
