//! Offline minimal stand-in for the parts of `criterion` this workspace
//! uses.
//!
//! The build environment has no crates.io access, so the real `criterion`
//! cannot be compiled. This stub runs each benchmark a small, fixed number
//! of iterations with `std::time::Instant` and prints a one-line summary
//! (median time per iteration plus throughput when configured). There is no
//! statistical analysis, warm-up calibration or HTML report.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box`, mirroring `criterion::black_box`.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id of the form `function_name/parameter`.
    pub fn new<F: Display, P: Display>(function_name: F, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Creates an id from the parameter alone.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(id: &str) -> Self {
        BenchmarkId { id: id.to_string() }
    }
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        eprintln!("benchmark group: {name}");
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            throughput: None,
            sample_size: 3,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, None, 3, |b| f(b));
        self
    }
}

/// A group of related benchmarks, mirroring `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples (iterations in this stub) per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.clamp(1, 10);
        self
    }

    /// Annotates per-iteration throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks `f` with `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.id);
        run_one(&label, self.throughput, self.sample_size, |b| f(b, input));
        self
    }

    /// Benchmarks `f` with no input.
    pub fn bench_function<F>(&mut self, id: BenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.id);
        run_one(&label, self.throughput, self.sample_size, |b| f(b));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    label: &str,
    throughput: Option<Throughput>,
    samples: usize,
    mut f: F,
) {
    let mut bencher = Bencher {
        samples,
        best: Duration::MAX,
    };
    f(&mut bencher);
    let best = bencher.best;
    let per_iter_ns = best.as_nanos();
    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => format!(
            ", {:.3e} elem/s",
            n as f64 / best.as_secs_f64().max(f64::MIN_POSITIVE)
        ),
        Throughput::Bytes(n) => format!(
            ", {:.3e} B/s",
            n as f64 / best.as_secs_f64().max(f64::MIN_POSITIVE)
        ),
    });
    eprintln!(
        "  {label}: {per_iter_ns} ns/iter{}",
        rate.unwrap_or_default()
    );
}

/// Timing driver handed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    best: Duration,
}

impl Bencher {
    /// Runs the routine `samples` times, keeping the best wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        for _ in 0..self.samples {
            let start = Instant::now();
            let out = routine();
            let elapsed = start.elapsed();
            hint::black_box(out);
            if elapsed < self.best {
                self.best = elapsed;
            }
        }
    }
}

/// Defines a benchmark group function, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Defines the benchmark `main`, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
