//! Offline no-op stand-in for `serde`.
//!
//! Re-exports the no-op `Serialize`/`Deserialize` derive macros from the
//! sibling `serde_derive` stub so that `use serde::{Deserialize, Serialize}`
//! and `#[derive(Serialize, Deserialize)]` compile in an environment without
//! crates.io access. No serialization machinery is provided — nothing in the
//! workspace performs serialization.

pub use serde_derive::{Deserialize, Serialize};
