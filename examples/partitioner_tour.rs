//! A tour of every partitioner in the workspace, including the extra
//! baselines that are not part of the paper's main comparison (HDRF and the
//! pure random hashes), on graphs of increasing skew.
//!
//! Run with `cargo run --release --example partitioner_tour`.

use ebv::graph::generators::{
    ConfigurationModelGenerator, ErdosRenyiGenerator, GraphGenerator, RmatGenerator,
};
use ebv::graph::{estimate_graph_eta, Graph};
use ebv::partition::{
    CvcPartitioner, DbhPartitioner, EbvPartitioner, GingerPartitioner, HdrfPartitioner,
    MetisLikePartitioner, NePartitioner, PartitionMetrics, Partitioner, RandomEdgeCutPartitioner,
    RandomVertexCutPartitioner,
};

fn roster() -> Vec<Box<dyn Partitioner>> {
    vec![
        Box::new(EbvPartitioner::new()),
        Box::new(EbvPartitioner::new().unsorted()),
        Box::new(GingerPartitioner::new()),
        Box::new(DbhPartitioner::new()),
        Box::new(CvcPartitioner::new()),
        Box::new(HdrfPartitioner::new()),
        Box::new(NePartitioner::new()),
        Box::new(MetisLikePartitioner::new()),
        Box::new(RandomVertexCutPartitioner::new()),
        Box::new(RandomEdgeCutPartitioner::new()),
    ]
}

fn tour(label: &str, graph: &Graph, workers: usize) -> Result<(), Box<dyn std::error::Error>> {
    let eta = estimate_graph_eta(graph)?;
    println!(
        "\n=== {label}: {} vertices, {} edges, eta {:.2} ({}) — {workers} workers",
        graph.num_vertices(),
        graph.num_edges(),
        eta.eta,
        if eta.is_power_law() {
            "power-law"
        } else {
            "non-power-law"
        }
    );
    println!(
        "{:<14} {:>10} {:>14} {:>16} {:>18}",
        "partitioner", "family", "edge imbalance", "vertex imbalance", "replication factor"
    );
    for partitioner in roster() {
        let result = partitioner.partition(graph, workers)?;
        let family = if result.is_vertex_cut() {
            "vertex-cut"
        } else {
            "edge-cut"
        };
        let metrics = PartitionMetrics::compute(graph, &result)?;
        println!(
            "{:<14} {:>10} {:>14.3} {:>16.3} {:>18.3}",
            partitioner.name(),
            family,
            metrics.edge_imbalance,
            metrics.vertex_imbalance,
            metrics.replication_factor
        );
    }
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let uniform = ErdosRenyiGenerator::new(20_000, 120_000)
        .with_seed(1)
        .generate()?;
    let moderate = ConfigurationModelGenerator::new(20_000, 2.6)
        .with_min_degree(3)
        .with_seed(2)
        .generate()?;
    let skewed = RmatGenerator::new(13, 16).with_seed(3).generate()?;

    tour("uniform random graph", &uniform, 16)?;
    tour("moderate power-law (eta ~ 2.6)", &moderate, 16)?;
    tour("heavily skewed R-MAT", &skewed, 16)?;

    println!(
        "\nThe trend to look for (paper, Table III): as the graphs get more skewed, NE's vertex \
         imbalance and METIS's edge imbalance blow up while EBV keeps both near 1.0 with the \
         lowest replication factor of the balanced family."
    );
    Ok(())
}
