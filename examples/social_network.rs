//! Social-network analysis scenario: the motivating workload of the paper.
//!
//! Builds a Twitter-like power-law graph, compares every partitioner of the
//! paper's roster on it (partition quality + CC communication volume), then
//! uses the EBV partition to run PageRank and report the most influential
//! vertices.
//!
//! Run with `cargo run --release --example social_network`.

use ebv::algorithms::{ranks, ConnectedComponents, PageRank};
use ebv::bsp::{BspEngine, DistributedGraph};
use ebv::graph::generators::{GraphGenerator, RmatGenerator};
use ebv::partition::{paper_partitioners, EbvPartitioner, PartitionMetrics, Partitioner};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let graph = RmatGenerator::new(13, 16)
        .with_probabilities(0.62, 0.18, 0.15)
        .with_seed(2026)
        .generate()?;
    let workers = 16;
    println!(
        "social graph: {} vertices, {} edges, max degree {}\n",
        graph.num_vertices(),
        graph.num_edges(),
        graph.max_degree()
    );

    // Head-to-head partitioner comparison on the metrics the paper uses.
    println!("partitioner comparison ({workers} workers):");
    println!(
        "{:<12} {:>14} {:>16} {:>18} {:>14}",
        "partitioner", "edge imbalance", "vertex imbalance", "replication factor", "CC messages"
    );
    for partitioner in paper_partitioners() {
        let partition = partitioner.partition(&graph, workers)?;
        let metrics = PartitionMetrics::compute(&graph, &partition)?;
        let distributed = DistributedGraph::build(&graph, &partition)?;
        let cc = BspEngine::sequential().run(&distributed, &ConnectedComponents::new())?;
        println!(
            "{:<12} {:>14.3} {:>16.3} {:>18.3} {:>14}",
            partitioner.name(),
            metrics.edge_imbalance,
            metrics.vertex_imbalance,
            metrics.replication_factor,
            cc.stats.total_messages()
        );
    }

    // Influence analysis with PageRank on the EBV partition.
    let partition = EbvPartitioner::new().partition(&graph, workers)?;
    let distributed = DistributedGraph::build(&graph, &partition)?;
    let pagerank = PageRank::new(&graph, 20);
    let outcome = BspEngine::sequential().run(&distributed, &pagerank)?;
    let mut ranked: Vec<(usize, f64)> = ranks(&outcome.values).into_iter().enumerate().collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("ranks are finite"));
    println!("\ntop 5 vertices by PageRank (EBV partition, 20 iterations):");
    for (vertex, rank) in ranked.iter().take(5) {
        println!("  vertex {vertex:>6}  rank {rank:.6}");
    }
    Ok(())
}
