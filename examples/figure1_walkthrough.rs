//! A walkthrough of Figure 1 of the paper: why the degree-sum edge-sorting
//! preprocessing produces a more balanced partition than processing edges in
//! input (alphabetical) order on the toy six-vertex graph.
//!
//! Run with `cargo run --example figure1_walkthrough`.

use ebv::graph::generators::named;
use ebv::partition::{EbvPartitioner, PartitionMetrics, Partitioner};

fn describe(label: &str, graph: &ebv::graph::Graph, partitioner: &EbvPartitioner) {
    let result = partitioner
        .partition(graph, 2)
        .expect("the toy graph always partitions");
    let metrics = PartitionMetrics::compute(graph, &result).expect("metrics of a valid partition");
    let vc = result.as_vertex_cut().expect("EBV is a vertex-cut");
    println!("{label}:");
    println!("  edges per subgraph: {:?}", vc.edge_counts());
    println!(
        "  edge imbalance {:.2}, vertex imbalance {:.2}, replication factor {:.2}",
        metrics.edge_imbalance, metrics.vertex_imbalance, metrics.replication_factor
    );
    for part in 0..2u32 {
        let edges = vc.edges_of(graph, ebv::partition::PartitionId::new(part));
        let rendered: Vec<String> = edges
            .iter()
            .map(|e| {
                let name = |v: ebv::graph::VertexId| {
                    char::from(b'A' + u8::try_from(v.raw()).expect("six vertices"))
                };
                format!("{}{}", name(e.src), name(e.dst))
            })
            .collect();
        println!("  subgraph {part}: {}", rendered.join(" "));
    }
}

fn main() {
    // The raw graph of Figure 1: A-B, A-C, B-C, A-D, D-E, A-F, with A the hub.
    let graph = named::figure1_graph();
    println!(
        "Figure 1 graph: {} vertices, {} undirected edges (stored as {} directed edges)\n",
        graph.num_vertices(),
        graph.num_input_edges(),
        graph.num_edges()
    );

    describe(
        "EBV with the sorting preprocessing (paper: balanced 3+3 split)",
        &graph,
        &EbvPartitioner::new(),
    );
    println!();
    describe(
        "EBV processing edges in input (alphabetical) order",
        &graph,
        &EbvPartitioner::new().unsorted(),
    );
    println!();
    println!(
        "The sorted run assigns the low-degree edges (D-E, then the edges touching B, C, F) \
         first, seeding both subgraphs evenly before the hub A forces replicas; the unsorted \
         run meets hub A immediately and pays for it with a more lopsided result."
    );
}
