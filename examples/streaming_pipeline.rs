//! End-to-end streaming pipeline: generator stream → chunked online EBV →
//! incremental distributed graph → Connected Components, without ever
//! materializing the global edge vector on the streaming path.
//!
//! The example also replays the same deterministic stream into a batch
//! graph to demonstrate the subsystem's central guarantee: streaming EBV is
//! *bit-identical* to batch EBV under input order — same assignments, same
//! replication factor, same imbalance factors.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example streaming_pipeline
//! ```

use std::time::Instant;

use ebv::algorithms::ConnectedComponents;
use ebv::bsp::{BspEngine, DistributedGraph};
use ebv::graph::GraphBuilder;
use ebv::partition::{EbvPartitioner, PartitionMetrics, Partitioner, StreamingPartitioner};
use ebv::stream::{ChunkedPipeline, EdgeSource, RmatEdgeStream};

const SCALE: u32 = 18; // 262 144 vertices
const NUM_EDGES: usize = 1_100_000;
const WORKERS: usize = 8;
const CHUNK_SIZE: usize = 1 << 16;
const SEED: u64 = 20_210_707;

fn stream() -> RmatEdgeStream {
    RmatEdgeStream::new(SCALE, NUM_EDGES).with_seed(SEED)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "streaming pipeline: {NUM_EDGES} R-MAT edges over 2^{SCALE} vertices, \
         {WORKERS} workers, chunks of {CHUNK_SIZE}\n"
    );

    // ── Streaming path ────────────────────────────────────────────────────
    // generator → StreamingEbv → DistributedGraphBuilder, chunk by chunk.
    // Peak memory: one chunk of edges + partitioner state + the per-worker
    // subgraphs under construction.
    let source = stream();
    let mut partitioner = EbvPartitioner::new().streaming(source.stream_config(WORKERS))?;
    let mut builder = DistributedGraph::builder(WORKERS)?.with_num_vertices(1 << SCALE);

    let started = Instant::now();
    let run = ChunkedPipeline::new(CHUNK_SIZE).run(source, &mut partitioner, |edge, part| {
        builder
            .add_edge(edge, part)
            .expect("streaming assignments are always in range");
    })?;
    let streaming_result = partitioner.finish()?;
    let distributed = builder.finish()?;
    let streaming_elapsed = started.elapsed();

    println!("chunk  edges      rf      e-imb   v-imb");
    for chunk in run.chunks() {
        println!(
            "{:>5}  {:>9}  {:.4}  {:.4}  {:.4}",
            chunk.chunk_index,
            chunk.metrics.edges_ingested,
            chunk.metrics.replication_factor,
            chunk.metrics.edge_imbalance,
            chunk.metrics.vertex_imbalance,
        );
    }
    let delta = run.final_metrics().expect("the stream is non-empty");
    println!(
        "\nstreamed {} edges in {streaming_elapsed:.2?} ({:.2e} edges/s)\n",
        run.total_edges(),
        run.total_edges() as f64 / streaming_elapsed.as_secs_f64(),
    );

    // ── Batch reference ───────────────────────────────────────────────────
    // Replay the identical deterministic stream into a materialized graph
    // and run batch EBV under input order.
    let mut graph_builder = GraphBuilder::directed();
    let mut source = stream();
    while let Some(edge) = source.next_edge() {
        let edge = edge?;
        graph_builder.add_edge(edge);
    }
    graph_builder.num_vertices(1 << SCALE);
    let graph = graph_builder.build()?;
    let batch_result = EbvPartitioner::new()
        .unsorted()
        .partition(&graph, WORKERS)?;
    let batch_metrics = PartitionMetrics::compute(&graph, &batch_result)?;

    // ── Exactness check ───────────────────────────────────────────────────
    assert_eq!(
        streaming_result, batch_result,
        "streaming EBV must be bit-identical to batch EBV under input order"
    );
    assert_eq!(delta.replication_factor, batch_metrics.replication_factor);
    assert_eq!(delta.edge_imbalance, batch_metrics.edge_imbalance);
    assert_eq!(delta.vertex_imbalance, batch_metrics.vertex_imbalance);
    println!("streaming == batch: identical assignments and exactly equal metrics");
    println!(
        "  replication factor {:.4}, edge imbalance {:.4}, vertex imbalance {:.4}\n",
        batch_metrics.replication_factor,
        batch_metrics.edge_imbalance,
        batch_metrics.vertex_imbalance,
    );

    // ── BSP application on the streamed distribution ──────────────────────
    let started = Instant::now();
    let outcome = BspEngine::threaded().run(&distributed, &ConnectedComponents::new())?;
    let cc_elapsed = started.elapsed();
    let mut roots: Vec<u64> = outcome.values.clone();
    roots.sort_unstable();
    roots.dedup();
    println!(
        "CC over the streamed distribution: {} components in {} supersteps ({cc_elapsed:.2?})",
        roots.len(),
        outcome.supersteps,
    );
    Ok(())
}
