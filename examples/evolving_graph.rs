//! End-to-end evolving-graph pipeline: churned R-MAT mutation stream →
//! dynamic EBV (exact decremental maintenance) → **incremental**
//! `apply_mutations` epochs (only touched workers re-assemble) →
//! **warm-started** BSP re-execution (CC labels carried across epochs) →
//! imbalance-triggered rebalance, with from-scratch equality checks at
//! every stage.
//!
//! The demo exercises the subsystem's central guarantees:
//!
//! * the maintained partition metrics after arbitrary insert/delete churn
//!   are *bit-identical* to recomputing them from scratch over the
//!   surviving edges;
//! * each mutation epoch re-assembles only the workers its batch touches
//!   (reported as `touched/p` per epoch), and the incrementally mutated
//!   `DistributedGraph` equals a fresh batch build of the survivors;
//! * warm-started Connected Components carried across every epoch are
//!   *bit-identical* to a cold run, at a fraction of the cost;
//! * warm-started SSSP distances and BFS depths carried across the same
//!   epochs (delta-stepping-style re-activation of the precise deletion
//!   cones) are *bit-identical* to cold runs from the same source;
//! * warm-started PageRank seeded from pre-mutation ranks matches a cold
//!   run of the same kernel within tolerance, with fewer replica messages;
//! * a sliding window bounds the live edge set regardless of stream
//!   length.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example evolving_graph
//! ```
//!
//! All knobs come from the consolidated [`EnvConfig`]:
//! `EBV_MODE=sequential` runs every BSP execution on the calling thread;
//! the default (`EBV_MODE=threaded` or unset) uses one thread per worker,
//! exercising the parallel two-phase message exchange end-to-end (and
//! `pooled:<n>` / `spawn-per-step` select the other executors). Every mode
//! produces bit-identical values and counters.
//!
//! The whole run is traced through the `ebv-obs` telemetry plane:
//! `EBV_TRACE=out.json` writes a Chrome trace-event file (load it in
//! `chrome://tracing` or <https://ui.perfetto.dev>) with one span per
//! (epoch, superstep, worker, phase), `EBV_METRICS=out.prom` writes the
//! live metrics (including the per-worker `ebv_worker_phase_seconds`
//! families) in Prometheus text exposition format, and a compact snapshot
//! summary is always printed at the end. `EBV_OBS_ADDR=host:port`
//! additionally serves the run *live* over HTTP while the churn loop is
//! executing — the telemetry plane (`GET /metrics`, `/healthz`,
//! `/trace.json`, `/epochs.json`) *and* the epoch-versioned query plane
//! (`GET /query`, `/query/<series>/<vertex>`, `/topk`,
//! `/neighbors/<vertex>`) on one listener: each applied epoch's CC
//! labels, SSSP distances and BFS depths are published to a lock-free
//! snapshot store and flipped atomically at the epoch boundary, so reads
//! are never torn and never block the churn loop. Tracing and serving
//! never perturb the values — every exactness check holds with or
//! without them.

use std::sync::Arc;
use std::time::{Duration, Instant};

use ebv::algorithms::{
    ranks, BreadthFirstSearch, ConnectedComponents, IncrementalBfs, IncrementalConnectedComponents,
    IncrementalPageRank, IncrementalSssp, SingleSourceShortestPath,
};
use ebv::bsp::{
    BspEngine, BspOutcome, DistributedGraph, EnvConfig, EpochCommitter, MutationBatch,
    MutationStats, RunOptions,
};
use ebv::dynamic::{batch_from_plan, ChurnStream, EventPipeline, EventSource, SlidingWindow};
use ebv::graph::{GraphBuilder, VertexId};
use ebv::obs::{
    telemetry_router, MetricsRegistry, ObsServer, ObsServerConfig, Phase, Recorder, SpanCtx,
    Telemetry,
};
use ebv::partition::{EbvPartitioner, PartitionMetrics, RebalanceConfig, StreamConfig};
use ebv::serve::{register_query_routes, SnapshotStore};
use ebv::state::{Checkpoint, DurableState, RecoveredState, SeriesValues};
use ebv::stream::{EdgeSource, RmatEdgeStream};

const SCALE: u32 = 16; // 65 536 vertices
const NUM_EDGES: usize = 400_000;
const WORKERS: usize = 8;
const CHURN: f64 = 0.25;
const BATCH: usize = 50_000;
const WINDOW: usize = 100_000;
const SEED: u64 = 20_210_707;
/// Root of the warm-carried SSSP/BFS outcomes (the R-MAT hub vertex).
const SOURCE: u64 = 0;
/// Cold PageRank iteration budget…
const PR_ITERATIONS: usize = 60;
/// …and the far smaller warm budget that reaches the same tolerance when
/// seeded from the previous epoch's ranks.
const PR_WARM_ITERATIONS: usize = 15;

/// The consolidated `EBV_*` environment configuration (used by CI to
/// drive the parallel exchange path end-to-end). A malformed value is
/// rejected loudly rather than silently falling back, so a misspelt mode
/// cannot fake a measurement.
fn env_config() -> EnvConfig {
    EnvConfig::from_env().unwrap_or_else(|err| panic!("{err}"))
}

fn engine_from_env() -> BspEngine {
    env_config().engine()
}

fn cc(distributed: &DistributedGraph, telemetry: &Telemetry) -> BspOutcome<u64> {
    engine_from_env()
        .run_with(distributed, &ConnectedComponents::new(), telemetry)
        .expect("CC converges")
}

fn fresh_build(
    partitioner: &ebv::partition::DynamicPartitioner,
) -> Result<DistributedGraph, Box<dyn std::error::Error>> {
    Ok(DistributedGraph::build_streaming(
        WORKERS,
        Some(partitioner.num_vertices()),
        partitioner.surviving(),
    )?)
}

fn assert_metrics_recompute_exactly(
    partitioner: &ebv::partition::DynamicPartitioner,
) -> Result<PartitionMetrics, Box<dyn std::error::Error>> {
    let mut builder = GraphBuilder::directed();
    for (edge, _) in partitioner.surviving() {
        builder.add_edge(edge);
    }
    builder.num_vertices(partitioner.num_vertices());
    let graph = builder.build()?;
    let recomputed = PartitionMetrics::compute(&graph, &partitioner.snapshot()?)?;
    let maintained = partitioner.metrics();
    assert!(
        maintained.edge_imbalance == recomputed.edge_imbalance
            && maintained.vertex_imbalance == recomputed.vertex_imbalance
            && maintained.replication_factor == recomputed.replication_factor,
        "maintained metrics drifted: {maintained:?} vs {recomputed:?}"
    );
    Ok(maintained)
}

/// A checkpointed warm value series, by name. Checkpoints taken by the
/// durable loop below always carry all three, so a miss is a hard error.
fn checkpoint_series(checkpoint: &Checkpoint, name: &str) -> Vec<u64> {
    match checkpoint.series.iter().find(|(n, _)| n == name) {
        Some((_, SeriesValues::U64(values))) => values.clone(),
        other => panic!("checkpoint misses u64 warm series {name:?}: {other:?}"),
    }
}

/// Re-runs the three warm programs for one replayed (or just-recovered)
/// epoch and commits the values to the query plane — the same staging the
/// live loop performs, minus telemetry.
#[allow(clippy::too_many_arguments)]
fn replay_warm_epoch(
    engine: &BspEngine,
    store: &SnapshotStore,
    source: VertexId,
    distributed: &DistributedGraph,
    batch: &MutationBatch,
    labels: &mut Vec<u64>,
    distances: &mut Vec<u64>,
    depths: &mut Vec<u64>,
) -> Result<(), Box<dyn std::error::Error>> {
    let cc_program = IncrementalConnectedComponents::from_batch(labels, batch);
    *labels = engine
        .run_opts(
            distributed,
            &cc_program,
            RunOptions::new()
                .warm_seed(labels)
                .publish_to(&store.series_sink::<u64>("cc")),
        )?
        .values;
    let sssp_program = IncrementalSssp::from_distributed(source, distributed, distances, batch);
    *distances = engine
        .run_opts(
            distributed,
            &sssp_program,
            RunOptions::new().warm_seed(distances).publish_to(
                &store
                    .series_sink::<u64>("sssp")
                    .with_absent(ebv::algorithms::UNREACHABLE),
            ),
        )?
        .values;
    let bfs_program = IncrementalBfs::from_distributed(source, distributed, depths, batch);
    *depths = engine
        .run_opts(
            distributed,
            &bfs_program,
            RunOptions::new().warm_seed(depths).publish_to(
                &store
                    .series_sink::<u64>("bfs")
                    .with_absent(ebv::algorithms::UNREACHABLE),
            ),
        )?
        .values;
    store.commit_epoch(distributed);
    Ok(())
}

/// FNV-1a over a value vector: the order-sensitive fingerprint printed in
/// the `durable summary` line, which the CI crash-recovery smoke compares
/// between a SIGKILLed-and-restarted run and a clean reference run.
fn fingerprint(values: &[u64]) -> u64 {
    values.iter().fold(0xcbf2_9ce4_8422_2325_u64, |acc, value| {
        (acc ^ value).wrapping_mul(0x0000_0100_0000_01b3)
    })
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "evolving graph: {NUM_EDGES} R-MAT arrivals over 2^{SCALE} vertices, churn {CHURN}, \
         {WORKERS} workers, batches of {BATCH}, {:?} engine\n",
        engine_from_env().mode(),
    );

    // The telemetry plane observes the whole run: spans from every BSP
    // execution, mutation epoch and warm-start below land in one ring
    // (sized for the ~30k spans this pipeline produces), metrics in the
    // process-wide registry, applied epochs in the bounded journal. The
    // `Arc` exists only for the optional live server; the run itself works
    // through a plain shared reference.
    let telemetry_arc = Arc::new(Telemetry::with_capacity(
        MetricsRegistry::global().clone(),
        1 << 17,
    ));
    let telemetry: &Telemetry = &telemetry_arc;

    // The epoch-versioned query plane: every applied epoch below publishes
    // its CC labels, SSSP distances and BFS depths into this store, and
    // the pipeline's epoch commit flips them into readers' view atomically.
    // Read metrics (`ebv_query_*`) land in the same global registry as
    // everything else.
    let store = SnapshotStore::new();
    store.serve_adjacency(true);
    let query = store.handle();

    // `EBV_OBS_ADDR=host:port` serves the run live while the churn loop
    // runs: the four telemetry routes and the query plane on one listener.
    // A bad address is rejected loudly, like a bad `EBV_MODE`.
    let obs_server = env_config().obs_addr.map(|addr| {
        let obs_config = ObsServerConfig::default();
        let mut router = telemetry_router(Arc::clone(&telemetry_arc), &obs_config);
        register_query_routes(&mut router, query.clone());
        let server = ObsServer::bind_with_router(addr.as_str(), router, obs_config)
            .unwrap_or_else(|err| panic!("EBV_OBS_ADDR {addr:?} did not bind: {err}"));
        println!(
            "live observability on http://{}/ — /metrics /healthz /trace.json /epochs.json \
             /query /topk /neighbors\n",
            server.local_addr(),
        );
        server
    });

    // ── Phase 1: churned ingestion through `run_applied` — one
    //    *incremental* apply_mutations epoch per batch; CC labels, SSSP
    //    distances and BFS depths all *warm-started* across every epoch ───
    // `EBV_STATE_DIR` turns on the durable state plane: every applied
    // batch is write-ahead logged before it mutates the distribution, the
    // whole world (graph, partitioner inputs, warm value series) is
    // checkpointed every `EBV_CHECKPOINT_EVERY` applied epochs, and a
    // restart over the same directory recovers the newest valid
    // checkpoint plus the WAL suffix before continuing the stream.
    let durable = match env_config().state_dir {
        Some(dir) => {
            let (state, recovered) = DurableState::open(&dir, env_config().checkpoint_every)?;
            println!(
                "durable state plane at {} (checkpoint every {} epochs): recovered {}\n",
                dir.display(),
                env_config().checkpoint_every,
                match (recovered.checkpoint.as_ref(), recovered.frames.len()) {
                    (None, 0) => "nothing — fresh start".to_string(),
                    (checkpoint, frames) => format!(
                        "checkpoint epoch {} + {frames} WAL epoch(s)",
                        checkpoint.map(|c| c.epoch).unwrap_or(0),
                    ),
                },
            );
            Some((state, recovered))
        }
        None => None,
    };
    let recovered: Option<&RecoveredState> = durable.as_ref().map(|(_, recovered)| recovered);
    let checkpoint = recovered.and_then(|recovered| recovered.checkpoint.as_ref());

    let stream = RmatEdgeStream::new(SCALE, NUM_EDGES).with_seed(SEED);
    let mut partitioner = EbvPartitioner::new().dynamic(stream.stream_config(WORKERS))?;
    // Declare the generator's full vertex universe up front so the
    // distribution and the partitioner agree on it at every epoch. A
    // resume rebuilds the checkpointed distribution and restores the
    // partitioner's surviving multiset (checkpoint + WAL replay) instead.
    let mut distributed = match checkpoint {
        Some(checkpoint) => checkpoint.rebuild_graph()?,
        None => DistributedGraph::build_streaming(WORKERS, Some(1 << SCALE), Vec::new())?,
    };
    if let Some(recovered) = recovered.filter(|recovered| !recovered.is_empty()) {
        let (universe, pairs) = recovered.resume_partition_state()?;
        partitioner.restore(universe, pairs)?;
    }
    let engine = engine_from_env();
    let source = VertexId::new(SOURCE);

    // Warm seeds: the checkpointed value series on resume, otherwise the
    // values of the empty distribution — every vertex its own component,
    // everything but the source unreachable.
    let (mut labels, mut distances, mut depths) = match checkpoint {
        Some(checkpoint) => (
            checkpoint_series(checkpoint, "cc"),
            checkpoint_series(checkpoint, "sssp"),
            checkpoint_series(checkpoint, "bfs"),
        ),
        None => (
            cc(&distributed, telemetry).values,
            engine
                .run_with(
                    &distributed,
                    &SingleSourceShortestPath::new(source),
                    telemetry,
                )?
                .values,
            engine
                .run_with(&distributed, &BreadthFirstSearch::new(source), telemetry)?
                .values,
        ),
    };

    // Replay the WAL suffix beyond the checkpoint: apply each logged
    // batch and re-run the warm programs, publishing to the query plane
    // exactly like the live loop below. A resume that lands exactly on a
    // checkpoint still publishes the recovered values once — an
    // empty-batch warm run converges immediately and commits them.
    if let Some(recovered) = recovered {
        for frame in &recovered.frames {
            distributed.apply_mutations(&frame.batch)?;
            replay_warm_epoch(
                &engine,
                &store,
                source,
                &distributed,
                &frame.batch,
                &mut labels,
                &mut distances,
                &mut depths,
            )?;
        }
        if !recovered.is_empty() && recovered.frames.is_empty() {
            let empty = MutationBatch::from_parts(Vec::new(), Vec::new());
            replay_warm_epoch(
                &engine,
                &store,
                source,
                &distributed,
                &empty,
                &mut labels,
                &mut distances,
                &mut depths,
            )?;
        }
    }

    // Fast-forward the deterministic event stream past everything the
    // recovered state already absorbed; WAL frame stamps count raw events
    // *before* batch cancellation, so this replays the exact draw
    // sequence.
    let events_already_seen = recovered.map(RecoveredState::events_seen).unwrap_or(0);
    let mut churn = ChurnStream::new(stream, CHURN)?.with_seed(SEED);
    for _ in 0..events_already_seen {
        churn
            .next_event()
            .expect("recovered position lies within the stream")?;
    }
    let mut warm_cc_time = Duration::ZERO;
    let mut warm_sssp_time = Duration::ZERO;
    let mut warm_bfs_time = Duration::ZERO;

    let started = Instant::now();
    println!(
        "epoch  live-edges  ins     del     rf      e-imb   touched  rebuilt  apply-ms  sssp-cone"
    );
    let mut on_epoch = |dg: &DistributedGraph,
                        batch: &MutationBatch,
                        metrics: PartitionMetrics,
                        stats: MutationStats|
     -> Result<(), ebv::dynamic::DynamicError> {
        // Incremental assembly already happened: `dg` is the
        // post-mutation distribution, only touched workers rebuilt.
        // Warm-started re-execution re-activates only the disturbed
        // region for all three carried outcomes; each timed window
        // covers program construction (dirty sets, deletion cones)
        // plus the warm BSP run. The constructions — the invalidation
        // work proper — are additionally recorded as
        // `warm_invalidation` spans on the engine-side track.
        let warm_ctx = SpanCtx {
            epoch: dg.epoch() as u32,
            superstep: 0,
            worker: WORKERS as u32,
        };
        let warm_started = Instant::now();
        let span = telemetry.start();
        // Each warm run *stages* its values into the snapshot store
        // (`publish_to`); the pipeline commits them together once this
        // closure returns, so live readers flip from epoch N−1's
        // complete answers to epoch N's in one atomic step.
        let cc_program = IncrementalConnectedComponents::from_batch(&labels, batch);
        telemetry.span(span, warm_ctx, Phase::WarmInvalidation);
        labels = engine
            .run_opts(
                dg,
                &cc_program,
                RunOptions::new()
                    .recorder(telemetry)
                    .warm_seed(&labels)
                    .publish_to(&store.series_sink::<u64>("cc")),
            )?
            .values;
        warm_cc_time += warm_started.elapsed();
        let warm_started = Instant::now();
        let span = telemetry.start();
        let sssp_program = IncrementalSssp::from_distributed(source, dg, &distances, batch);
        telemetry.span(span, warm_ctx, Phase::WarmInvalidation);
        distances = engine
            .run_opts(
                dg,
                &sssp_program,
                RunOptions::new()
                    .recorder(telemetry)
                    .warm_seed(&distances)
                    .publish_to(
                        &store
                            .series_sink::<u64>("sssp")
                            .with_absent(ebv::algorithms::UNREACHABLE),
                    ),
            )?
            .values;
        warm_sssp_time += warm_started.elapsed();
        let warm_started = Instant::now();
        let span = telemetry.start();
        let bfs_program = IncrementalBfs::from_distributed(source, dg, &depths, batch);
        telemetry.span(span, warm_ctx, Phase::WarmInvalidation);
        depths = engine
            .run_opts(
                dg,
                &bfs_program,
                RunOptions::new()
                    .recorder(telemetry)
                    .warm_seed(&depths)
                    .publish_to(
                        &store
                            .series_sink::<u64>("bfs")
                            .with_absent(ebv::algorithms::UNREACHABLE),
                    ),
            )?
            .values;
        warm_bfs_time += warm_started.elapsed();
        // Durable runs stage the post-epoch warm series so the next
        // cadenced checkpoint snapshots them alongside the graph and
        // a restart can re-seed the warm programs exactly.
        if let Some((state, _)) = durable.as_ref() {
            state.stage_series("cc", SeriesValues::U64(labels.clone()));
            state.stage_series("sssp", SeriesValues::U64(distances.clone()));
            state.stage_series("bfs", SeriesValues::U64(depths.clone()));
        }
        println!(
            "{:>5}  {:>10}  {:>6}  {:>6}  {:.4}  {:.4}  {:>4}/{WORKERS}  {:>7}  {:>8.2}  {:>9}",
            dg.epoch(),
            dg.num_edges(),
            batch.added().len(),
            batch.removed().len(),
            metrics.replication_factor,
            metrics.edge_imbalance,
            stats.workers_touched,
            stats.edges_rebuilt,
            stats.apply_seconds * 1e3,
            sssp_program.cone_vertices(),
        );
        Ok(())
    };
    let report = match durable.as_ref() {
        Some((state, _)) => EventPipeline::new(BATCH).run_applied_durable(
            churn,
            &mut partitioner,
            &mut distributed,
            &store,
            state,
            events_already_seen,
            &mut on_epoch,
            telemetry,
        )?,
        None => EventPipeline::new(BATCH).run_applied_publishing(
            churn,
            &mut partitioner,
            &mut distributed,
            &store,
            &mut on_epoch,
            telemetry,
        )?,
    };
    let elapsed = started.elapsed();
    let events = report.total_inserts() + report.total_deletes();
    println!(
        "\nprocessed {events} events ({} inserts, {} deletes) in {elapsed:.2?} \
         ({:.2e} events/s)",
        report.total_inserts(),
        report.total_deletes(),
        events as f64 / elapsed.as_secs_f64(),
    );
    assert_eq!(distributed.num_edges(), partitioner.live_edges());

    // The deterministic end-of-ingestion state in one line: the CI
    // crash-recovery smoke SIGKILLs a durable run mid-churn, restarts it,
    // and asserts this line matches a never-killed reference run.
    println!(
        "durable summary: epoch={} edges={} events={} cc={:016x} sssp={:016x} bfs={:016x}",
        distributed.epoch(),
        distributed.num_edges(),
        events_already_seen + (report.total_inserts() + report.total_deletes()) as u64,
        fingerprint(&labels),
        fingerprint(&distances),
        fingerprint(&depths),
    );

    // The query plane serves the final epoch: the committed snapshot is
    // tagged with the last applied epoch and its values are bit-identical
    // to the warm-carried outcomes above.
    let served = query.snapshot()?;
    assert_eq!(served.epoch, distributed.epoch() as u64);
    match &served.series("cc").expect("cc is published").data {
        ebv::serve::SeriesData::U64 { values, .. } => {
            assert_eq!(values, &labels, "served CC labels are the epoch's labels");
        }
        other => panic!("cc must serve as a u64 series, got {other:?}"),
    }
    let hottest = query.topk("cc", 3, true)?;
    println!(
        "query plane @ epoch {}: {} series published, top-3 cc labels {:?}",
        served.epoch,
        served.series_names().len(),
        hottest
            .iter()
            .map(|(vertex, value)| format!("v{vertex}={}", value.to_json()))
            .collect::<Vec<_>>(),
    );

    // Exactness check 1: maintained metrics recompute bit-identically.
    let maintained = assert_metrics_recompute_exactly(&partitioner)?;
    println!("maintained metrics == from-scratch recompute: {maintained}");

    // Exactness check 2: the warm-started labels carried across every epoch
    // are bit-identical to a cold CC run, which in turn equals CC on a
    // fresh batch build of the survivors.
    let cold_started = Instant::now();
    let cc_cold = cc(&distributed, telemetry);
    let cold_cc_time = cold_started.elapsed();
    assert_eq!(labels, cc_cold.values, "warm CC must be bit-identical");
    assert_eq!(
        cc_cold.values,
        cc(&fresh_build(&partitioner)?, telemetry).values
    );
    let mut components = labels.clone();
    components.sort_unstable();
    components.dedup();
    println!(
        "warm CC across {} epochs == cold CC == CC(fresh build): {} components",
        distributed.epoch(),
        components.len()
    );
    println!("cold CC counters: {}", cc_cold.stats);
    let epochs = distributed.epoch() as u32;
    println!(
        "warm CC {:.2?}/epoch (churn disturbs ~10% of the graph) vs cold {cold_cc_time:.2?}",
        warm_cc_time / epochs,
    );

    // Exactness check 3: the warm-carried SSSP distances and BFS depths are
    // bit-identical to cold runs on the final distribution.
    let cold_started = Instant::now();
    let sssp_cold = engine.run_with(
        &distributed,
        &SingleSourceShortestPath::new(source),
        telemetry,
    )?;
    let sssp_cold_time = cold_started.elapsed();
    assert_eq!(
        distances, sssp_cold.values,
        "warm SSSP must be distance-equal"
    );
    let cold_started = Instant::now();
    let bfs_cold = engine.run_with(&distributed, &BreadthFirstSearch::new(source), telemetry)?;
    let bfs_cold_time = cold_started.elapsed();
    assert_eq!(depths, bfs_cold.values, "warm BFS must be bit-identical");
    assert_eq!(distances, depths, "unit-weight SSSP and BFS agree");
    let reachable = distances
        .iter()
        .filter(|&&d| d != ebv::algorithms::UNREACHABLE)
        .count();
    println!(
        "warm SSSP across {} epochs == cold SSSP ({reachable} reachable vertices): \
         {:.2?}/epoch vs cold {sssp_cold_time:.2?}",
        distributed.epoch(),
        warm_sssp_time / epochs,
    );
    println!(
        "warm BFS across {} epochs == cold BFS: {:.2?}/epoch vs cold {bfs_cold_time:.2?}\n",
        distributed.epoch(),
        warm_bfs_time / epochs,
    );

    // ── Localized epoch: mutations confined to one worker ────────────────
    // `confined_deletion_batch` picks deletions so no endpoint loses its
    // last edge (which would re-home it as an isolated vertex elsewhere):
    // the epoch re-assembles exactly one of the eight workers.
    let local_batch = ebv::dynamic::confined_deletion_batch(
        &mut partitioner,
        ebv::partition::PartitionId::new(0),
        1_000,
    )?;
    let local_program = IncrementalConnectedComponents::from_batch(&labels, &local_batch);
    let local_started = Instant::now();
    let stats = distributed.apply_mutations_with(&local_batch, telemetry)?;
    labels = engine
        .run_warm_with(&distributed, &local_program, &labels, telemetry)?
        .values;
    assert_eq!(
        stats.workers_touched, 1,
        "single-worker batch re-assembles one worker"
    );
    println!(
        "localized epoch: {} deletions confined to worker 0 — {stats} \
         (epoch+warm CC in {:.2?})\n",
        local_batch.len(),
        local_started.elapsed(),
    );

    // ── Phase 2: warm PageRank across a mutation epoch ───────────────────
    let pr_cold = engine.run_with(
        &distributed,
        &IncrementalPageRank::from_distributed(&distributed, PR_ITERATIONS),
        telemetry,
    )?;
    // One more churned batch on top of the ranked graph.
    let extra = ChurnStream::new(
        RmatEdgeStream::new(SCALE, BATCH / 2).with_seed(SEED + 11),
        CHURN,
    )?
    .with_seed(SEED + 12);
    let mut extra_cc_program = IncrementalConnectedComponents::new();
    let cc_prior = labels.clone();
    EventPipeline::new(BATCH).run(extra, &mut partitioner, |batch, _| {
        extra_cc_program.absorb(&cc_prior, batch);
        distributed.apply_mutations_with(batch, telemetry)?;
        Ok(())
    })?;
    // Warm-start with a quarter of the iteration budget: near the old
    // fixpoint the contraction has that much less error to burn down.
    let warm_program = IncrementalPageRank::from_distributed(&distributed, PR_WARM_ITERATIONS);
    let warm_started = Instant::now();
    let pr_warm = engine.run_warm_with(&distributed, &warm_program, &pr_cold.values, telemetry)?;
    let pr_warm_time = warm_started.elapsed();
    let cold_program = IncrementalPageRank::from_distributed(&distributed, PR_ITERATIONS);
    let cold_started = Instant::now();
    let pr_cold_after = engine.run_with(&distributed, &cold_program, telemetry)?;
    let pr_cold_time = cold_started.elapsed();
    let max_diff = ranks(&pr_warm.values)
        .iter()
        .zip(ranks(&pr_cold_after.values))
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    assert!(max_diff < 1e-4, "warm PR drifted: max diff {max_diff}");
    assert!(pr_warm.stats.total_messages() < pr_cold_after.stats.total_messages());
    println!(
        "warm PR ({pr_warm_time:.2?}) matches cold ({pr_cold_time:.2?}): max |Δrank| \
         {max_diff:.2e}\n  warm: {}\n  cold: {}",
        pr_warm.stats, pr_cold_after.stats,
    );
    // Warm CC absorbed the same extra batches and still agrees.
    let warm_cc = engine.run_warm_with(&distributed, &extra_cc_program, &cc_prior, telemetry)?;
    labels = warm_cc.values;
    assert_eq!(labels, cc(&distributed, telemetry).values);
    println!("warm CC re-validated after the extra churn epoch\n");

    // ── Phase 3: skew + one rebalance epoch ──────────────────────────────
    // Starve every partition but 0 to push the edge balance past the
    // trigger, then let the rebalancer emit a migration plan.
    let victims: Vec<_> = partitioner
        .surviving()
        .filter(|(_, part)| part.index() != 0)
        .map(|(edge, _)| edge)
        .collect();
    let mut skew_batch = ebv::bsp::MutationBatch::new();
    for edge in victims.iter().take(victims.len() * 4 / 5) {
        let part = partitioner.delete(*edge)?;
        skew_batch.record_delete(*edge, part);
    }
    let skew_program = IncrementalConnectedComponents::from_batch(&labels, &skew_batch);
    distributed.apply_mutations_with(&skew_batch, telemetry)?;

    let config = RebalanceConfig::new()
        .with_max_edge_imbalance(1.25)
        .with_target_edge_imbalance(1.05);
    let before = partitioner.metrics();
    assert!(partitioner.needs_rebalance(&config));
    let started = Instant::now();
    let plan = partitioner.rebalance(&config)?;
    let after = partitioner.metrics();
    println!(
        "rebalance epoch: edge imbalance {:.4} -> {:.4} via {} migrations ({:.2?})",
        before.edge_imbalance,
        after.edge_imbalance,
        plan.len(),
        started.elapsed(),
    );
    assert!(after.edge_imbalance <= config.max_edge_imbalance());
    assert!(!partitioner.needs_rebalance(&config));

    // Replay the migrations downstream (another incremental epoch) and
    // re-check both guarantees with a warm start across skew + migration.
    let labels_before_skew = labels.clone();
    let mut rebalance_program = skew_program;
    let migration_batch = batch_from_plan(&plan);
    rebalance_program.absorb(&labels_before_skew, &migration_batch);
    let stats = distributed.apply_mutations_with(&migration_batch, telemetry)?;
    println!("migration epoch: {stats}");
    assert_eq!(distributed.num_edges(), partitioner.live_edges());
    assert_metrics_recompute_exactly(&partitioner)?;
    let labels_after = engine
        .run_warm_with(
            &distributed,
            &rebalance_program,
            &labels_before_skew,
            telemetry,
        )?
        .values;
    assert_eq!(labels_after, cc(&distributed, telemetry).values);
    assert_eq!(
        labels_after,
        cc(&fresh_build(&partitioner)?, telemetry).values
    );
    println!(
        "warm CC(rebalanced, epoch {}) == cold == CC(fresh build): migration preserved every \
         label\n",
        distributed.epoch()
    );

    // ── Phase 4: sliding-window ingestion bounds the live set ────────────
    let mut window = SlidingWindow::new(
        RmatEdgeStream::new(SCALE, 3 * WINDOW / 2).with_seed(SEED + 1),
        WINDOW,
    )?;
    let mut windowed =
        EbvPartitioner::new().dynamic(StreamConfig::new(WORKERS).with_expected_edges(WINDOW))?;
    let mut peak = 0usize;
    while let Some(event) = window.next_event() {
        match event? {
            ebv::dynamic::GraphEvent::Insert(edge) => {
                windowed.insert(edge);
            }
            ebv::dynamic::GraphEvent::Delete(edge) => {
                windowed.delete(edge)?;
            }
        }
        peak = peak.max(windowed.live_edges());
    }
    assert_eq!(peak, WINDOW, "the window caps the live edge set");
    assert_eq!(windowed.live_edges(), WINDOW);
    assert_metrics_recompute_exactly(&windowed)?;
    println!(
        "sliding window: {} arrivals, live set capped at {WINDOW} edges ({})",
        3 * WINDOW / 2,
        windowed.metrics(),
    );
    println!("\nevolving-graph pipeline: every exactness check passed");

    // ── Telemetry export ─────────────────────────────────────────────────
    // The span ring and the registry observed every BSP execution,
    // mutation epoch and warm invalidation above.
    let snapshot = telemetry.registry().snapshot();
    println!(
        "\ntelemetry snapshot ({} spans dropped):",
        telemetry.dropped()
    );
    print!("{snapshot}");
    println!("measured wall-clock per phase:");
    for (phase, seconds) in telemetry.phase_totals() {
        if seconds > 0.0 {
            println!("  {:<17} {seconds:>9.4}s", phase.name());
        }
    }
    let journal = telemetry.journal();
    println!(
        "epoch journal: {} epochs recorded ({} retained), last superstep straggler ratio {:.2}",
        journal.recorded_total(),
        journal.len(),
        telemetry.straggler_ratio(),
    );
    if let Some(path) = env_config().trace_out {
        let trace = telemetry.chrome_trace();
        std::fs::write(&path, &trace)?;
        println!(
            "wrote Chrome trace ({} events) to {} — load it in chrome://tracing or \
             https://ui.perfetto.dev",
            trace.matches("\"ph\":\"X\"").count(),
            path.display(),
        );
    }
    if let Some(path) = env_config().metrics_out {
        // The live exposition: the registry snapshot plus the labeled
        // per-worker attribution families — exactly what `/metrics` serves.
        std::fs::write(&path, telemetry.prometheus())?;
        println!("wrote Prometheus metrics to {}", path.display());
    }
    if let Some(server) = obs_server {
        println!(
            "obs server on http://{}/ served {} requests; shutting down",
            server.local_addr(),
            server.requests_served(),
        );
        server.shutdown();
    }
    Ok(())
}
