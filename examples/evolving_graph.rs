//! End-to-end evolving-graph pipeline: churned R-MAT mutation stream →
//! dynamic EBV (exact decremental maintenance) → batched
//! `apply_mutations` epochs on a distributed graph → imbalance-triggered
//! rebalance → Connected Components, with from-scratch equality checks at
//! every stage.
//!
//! The demo exercises the subsystem's central guarantees:
//!
//! * the maintained partition metrics after arbitrary insert/delete churn
//!   are *bit-identical* to recomputing them from scratch over the
//!   surviving edges;
//! * the incrementally mutated `DistributedGraph` runs CC to exactly the
//!   same labels as a fresh batch build of the survivors — before and
//!   after a rebalance epoch migrates edges;
//! * a sliding window bounds the live edge set regardless of stream
//!   length.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example evolving_graph
//! ```

use std::time::Instant;

use ebv::algorithms::ConnectedComponents;
use ebv::bsp::{BspEngine, DistributedGraph};
use ebv::dynamic::{batch_from_plan, ChurnStream, EventPipeline, EventSource, SlidingWindow};
use ebv::graph::GraphBuilder;
use ebv::partition::{EbvPartitioner, PartitionMetrics, RebalanceConfig, StreamConfig};
use ebv::stream::{EdgeSource, RmatEdgeStream};

const SCALE: u32 = 16; // 65 536 vertices
const NUM_EDGES: usize = 400_000;
const WORKERS: usize = 8;
const CHURN: f64 = 0.25;
const BATCH: usize = 50_000;
const WINDOW: usize = 100_000;
const SEED: u64 = 20_210_707;

fn cc(distributed: &DistributedGraph) -> Vec<u64> {
    BspEngine::threaded()
        .run(distributed, &ConnectedComponents::new())
        .expect("CC converges")
        .values
}

fn fresh_build(
    partitioner: &ebv::partition::DynamicPartitioner,
) -> Result<DistributedGraph, Box<dyn std::error::Error>> {
    Ok(DistributedGraph::build_streaming(
        WORKERS,
        Some(partitioner.num_vertices()),
        partitioner.surviving(),
    )?)
}

fn assert_metrics_recompute_exactly(
    partitioner: &ebv::partition::DynamicPartitioner,
) -> Result<PartitionMetrics, Box<dyn std::error::Error>> {
    let mut builder = GraphBuilder::directed();
    for (edge, _) in partitioner.surviving() {
        builder.add_edge(edge);
    }
    builder.num_vertices(partitioner.num_vertices());
    let graph = builder.build()?;
    let recomputed = PartitionMetrics::compute(&graph, &partitioner.snapshot()?)?;
    let maintained = partitioner.metrics();
    assert!(
        maintained.edge_imbalance == recomputed.edge_imbalance
            && maintained.vertex_imbalance == recomputed.vertex_imbalance
            && maintained.replication_factor == recomputed.replication_factor,
        "maintained metrics drifted: {maintained:?} vs {recomputed:?}"
    );
    Ok(maintained)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "evolving graph: {NUM_EDGES} R-MAT arrivals over 2^{SCALE} vertices, churn {CHURN}, \
         {WORKERS} workers, batches of {BATCH}\n"
    );

    // ── Phase 1: churned ingestion, one apply_mutations epoch per batch ──
    let stream = RmatEdgeStream::new(SCALE, NUM_EDGES).with_seed(SEED);
    let mut partitioner = EbvPartitioner::new().dynamic(stream.stream_config(WORKERS))?;
    // Declare the generator's full vertex universe up front so the
    // distribution and the partitioner agree on it at every epoch.
    let mut distributed = DistributedGraph::build_streaming(WORKERS, Some(1 << SCALE), Vec::new())?;
    let churn = ChurnStream::new(stream, CHURN)?.with_seed(SEED);

    let started = Instant::now();
    println!("epoch  live-edges  ins     del     rf      e-imb");
    let report = EventPipeline::new(BATCH).run(churn, &mut partitioner, |batch, metrics| {
        distributed = distributed.apply_mutations(batch)?;
        println!(
            "{:>5}  {:>10}  {:>6}  {:>6}  {:.4}  {:.4}",
            distributed.epoch(),
            distributed.num_edges(),
            batch.added().len(),
            batch.removed().len(),
            metrics.replication_factor,
            metrics.edge_imbalance,
        );
        Ok(())
    })?;
    let elapsed = started.elapsed();
    let events = report.total_inserts() + report.total_deletes();
    println!(
        "\nprocessed {events} events ({} inserts, {} deletes) in {elapsed:.2?} \
         ({:.2e} events/s)",
        report.total_inserts(),
        report.total_deletes(),
        events as f64 / elapsed.as_secs_f64(),
    );
    assert_eq!(distributed.num_edges(), partitioner.live_edges());

    // Exactness check 1: maintained metrics recompute bit-identically.
    let maintained = assert_metrics_recompute_exactly(&partitioner)?;
    println!("maintained metrics == from-scratch recompute: {maintained}");

    // Exactness check 2: CC on the mutated distribution equals CC on a
    // fresh batch build of the survivors.
    let labels_mutated = cc(&distributed);
    let labels_fresh = cc(&fresh_build(&partitioner)?);
    assert_eq!(labels_mutated, labels_fresh);
    let mut components = labels_mutated.clone();
    components.sort_unstable();
    components.dedup();
    println!(
        "CC(mutated, epoch {}) == CC(fresh build): {} components\n",
        distributed.epoch(),
        components.len()
    );

    // ── Phase 2: skew + one rebalance epoch ──────────────────────────────
    // Starve every partition but 0 to push the edge balance past the
    // trigger, then let the rebalancer emit a migration plan.
    let victims: Vec<_> = partitioner
        .surviving()
        .filter(|(_, part)| part.index() != 0)
        .map(|(edge, _)| edge)
        .collect();
    let mut skew_batch = ebv::bsp::MutationBatch::new();
    for edge in victims.iter().take(victims.len() * 4 / 5) {
        let part = partitioner.delete(*edge)?;
        skew_batch.record_delete(*edge, part);
    }
    distributed = distributed.apply_mutations(&skew_batch)?;

    let config = RebalanceConfig::new()
        .with_max_edge_imbalance(1.25)
        .with_target_edge_imbalance(1.05);
    let before = partitioner.metrics();
    assert!(partitioner.needs_rebalance(&config));
    let started = Instant::now();
    let plan = partitioner.rebalance(&config)?;
    let after = partitioner.metrics();
    println!(
        "rebalance epoch: edge imbalance {:.4} -> {:.4} via {} migrations ({:.2?})",
        before.edge_imbalance,
        after.edge_imbalance,
        plan.len(),
        started.elapsed(),
    );
    assert!(after.edge_imbalance <= config.max_edge_imbalance());
    assert!(!partitioner.needs_rebalance(&config));

    // Replay the migrations downstream and re-check both guarantees.
    distributed = distributed.apply_mutations(&batch_from_plan(&plan))?;
    assert_eq!(distributed.num_edges(), partitioner.live_edges());
    assert_metrics_recompute_exactly(&partitioner)?;
    let labels_after = cc(&distributed);
    assert_eq!(labels_after, cc(&fresh_build(&partitioner)?));
    println!(
        "CC(rebalanced, epoch {}) == CC(fresh build): migration preserved every label\n",
        distributed.epoch()
    );

    // ── Phase 3: sliding-window ingestion bounds the live set ────────────
    let mut window = SlidingWindow::new(
        RmatEdgeStream::new(SCALE, 3 * WINDOW / 2).with_seed(SEED + 1),
        WINDOW,
    )?;
    let mut windowed =
        EbvPartitioner::new().dynamic(StreamConfig::new(WORKERS).with_expected_edges(WINDOW))?;
    let mut peak = 0usize;
    while let Some(event) = window.next_event() {
        match event? {
            ebv::dynamic::GraphEvent::Insert(edge) => {
                windowed.insert(edge);
            }
            ebv::dynamic::GraphEvent::Delete(edge) => {
                windowed.delete(edge)?;
            }
        }
        peak = peak.max(windowed.live_edges());
    }
    assert_eq!(peak, WINDOW, "the window caps the live edge set");
    assert_eq!(windowed.live_edges(), WINDOW);
    assert_metrics_recompute_exactly(&windowed)?;
    println!(
        "sliding window: {} arrivals, live set capped at {WINDOW} edges ({})",
        3 * WINDOW / 2,
        windowed.metrics(),
    );
    println!("\nevolving-graph pipeline: every exactness check passed");
    Ok(())
}
