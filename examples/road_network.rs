//! Road-network scenario: the paper's non-power-law control case.
//!
//! Builds a USARoad-like grid graph, runs SSSP from a corner intersection on
//! partitions produced by EBV, NE and the METIS-like edge-cut, and shows why
//! the local-based partitioners are competitive on mesh graphs (Figure 3 of
//! the paper) even though they lose on power-law graphs.
//!
//! Run with `cargo run --release --example road_network`.

use ebv::algorithms::{SingleSourceShortestPath, UNREACHABLE};
use ebv::bsp::{BspEngine, CostModel, DistributedGraph};
use ebv::graph::generators::{GraphGenerator, GridGenerator};
use ebv::graph::VertexId;
use ebv::partition::{
    EbvPartitioner, MetisLikePartitioner, NePartitioner, PartitionMetrics, Partitioner,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let graph = GridGenerator::new(120, 100)
        .with_deletion_probability(0.05)
        .with_seed(7)
        .generate()?;
    let workers = 8;
    println!(
        "road graph: {} intersections, {} road segments, average degree {:.2}\n",
        graph.num_vertices(),
        graph.num_input_edges(),
        graph.average_degree()
    );

    let partitioners: Vec<Box<dyn Partitioner>> = vec![
        Box::new(EbvPartitioner::new()),
        Box::new(NePartitioner::new()),
        Box::new(MetisLikePartitioner::new()),
    ];

    println!(
        "{:<12} {:>18} {:>12} {:>14} {:>16}",
        "partitioner", "replication factor", "messages", "supersteps", "modeled time (s)"
    );
    let mut reachable_check: Option<usize> = None;
    for partitioner in &partitioners {
        let partition = partitioner.partition(&graph, workers)?;
        let metrics = PartitionMetrics::compute(&graph, &partition)?;
        let distributed = DistributedGraph::build(&graph, &partition)?;
        let sssp = SingleSourceShortestPath::new(VertexId::new(0));
        let outcome = BspEngine::sequential().run(&distributed, &sssp)?;
        let breakdown = CostModel::default().breakdown(&outcome.stats);
        let reachable = outcome.values.iter().filter(|&&d| d != UNREACHABLE).count();
        // Every partitioner must agree on how much of the road network is
        // reachable from the source intersection.
        if let Some(previous) = reachable_check {
            assert_eq!(previous, reachable, "partitioners disagree on reachability");
        }
        reachable_check = Some(reachable);
        println!(
            "{:<12} {:>18.3} {:>12} {:>14} {:>16.4}",
            partitioner.name(),
            metrics.replication_factor,
            outcome.stats.total_messages(),
            outcome.supersteps,
            breakdown.execution_time
        );
    }

    println!(
        "\nOn this mesh the local-based partitioners (NE, METIS-like) keep the replication \
         factor near 1 and send very few messages — the Figure 3 situation — whereas on the \
         power-law graph of the social_network example they fall behind EBV."
    );
    Ok(())
}
