//! Quickstart: generate a power-law graph, partition it with EBV, inspect
//! the quality metrics and run Connected Components on the subgraph-centric
//! BSP engine.
//!
//! Run with `cargo run --release --example quickstart`.

use ebv::algorithms::ConnectedComponents;
use ebv::bsp::{BspEngine, CostModel, DistributedGraph};
use ebv::graph::generators::{GraphGenerator, RmatGenerator};
use ebv::graph::GraphStats;
use ebv::partition::{EbvPartitioner, PartitionMetrics, Partitioner};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A synthetic power-law graph (a stand-in for Twitter-like data).
    let graph = RmatGenerator::new(12, 16).with_seed(42).generate()?;
    let stats = GraphStats::compute("quickstart", &graph)?;
    println!("graph: {stats}");

    // 2. Partition it into 8 subgraphs with EBV (α = β = 1, degree-sum sort).
    let partitioner = EbvPartitioner::new();
    let partition = partitioner.partition(&graph, 8)?;
    let metrics = PartitionMetrics::compute(&graph, &partition)?;
    println!(
        "EBV partition: edge imbalance {:.3}, vertex imbalance {:.3}, replication factor {:.3}",
        metrics.edge_imbalance, metrics.vertex_imbalance, metrics.replication_factor
    );

    // 3. Distribute the graph and run Connected Components.
    let distributed = DistributedGraph::build(&graph, &partition)?;
    let outcome = BspEngine::sequential().run(&distributed, &ConnectedComponents::new())?;
    let components: std::collections::HashSet<u64> = outcome.values.iter().copied().collect();
    println!(
        "CC finished in {} supersteps, {} replica messages, {} components",
        outcome.supersteps,
        outcome.stats.total_messages(),
        components.len()
    );

    // 4. The deterministic cost model turns the counters into the Table II
    //    style breakdown.
    let breakdown = CostModel::default().breakdown(&outcome.stats);
    println!("modeled breakdown: {breakdown}");
    Ok(())
}
