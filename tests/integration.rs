//! Cross-crate integration tests: generator → partitioner → distributed
//! graph → application → metrics, exercised through the public API of the
//! umbrella crate exactly as a downstream user would.

use ebv::algorithms::reference::{cc_reference, pagerank_reference, sssp_reference};
use ebv::algorithms::{ranks, ConnectedComponents, PageRank, SingleSourceShortestPath};
use ebv::bsp::{BspEngine, CostModel, DistributedGraph};
use ebv::graph::generators::{GraphGenerator, GridGenerator, RmatGenerator};
use ebv::graph::io::{read_edge_list, write_edge_list, EdgeListOptions};
use ebv::graph::{GraphStats, VertexId};
use ebv::partition::{
    paper_partitioners, EbvPartitioner, EdgeOrder, PartitionMetrics, Partitioner,
};

/// The full pipeline on a power-law graph, for every partitioner of the
/// paper's roster and both engine modes.
#[test]
fn full_pipeline_on_a_power_law_graph() {
    let graph = RmatGenerator::new(9, 8).with_seed(21).generate().unwrap();
    let expected_cc = cc_reference(&graph);
    let expected_sssp = sssp_reference(&graph, VertexId::new(0));

    for partitioner in paper_partitioners() {
        let partition = partitioner.partition(&graph, 6).unwrap();
        let metrics = PartitionMetrics::compute(&graph, &partition).unwrap();
        assert!(metrics.replication_factor >= 1.0, "{}", partitioner.name());

        let distributed = DistributedGraph::build(&graph, &partition).unwrap();
        for engine in [BspEngine::sequential(), BspEngine::threaded()] {
            let cc = engine
                .run(&distributed, &ConnectedComponents::new())
                .unwrap();
            assert_eq!(cc.values, expected_cc, "{} CC", partitioner.name());

            let sssp = engine
                .run(
                    &distributed,
                    &SingleSourceShortestPath::new(VertexId::new(0)),
                )
                .unwrap();
            assert_eq!(sssp.values, expected_sssp, "{} SSSP", partitioner.name());
        }
    }
}

/// PageRank through the whole stack agrees with the sequential reference.
#[test]
fn pagerank_through_the_whole_stack() {
    let graph = RmatGenerator::new(8, 8).with_seed(4).generate().unwrap();
    let expected = pagerank_reference(&graph, 12, 0.85);
    for partitioner in paper_partitioners() {
        let partition = partitioner.partition(&graph, 5).unwrap();
        let distributed = DistributedGraph::build(&graph, &partition).unwrap();
        let outcome = BspEngine::sequential()
            .run(&distributed, &PageRank::new(&graph, 12))
            .unwrap();
        for (a, b) in ranks(&outcome.values).iter().zip(&expected) {
            assert!((a - b).abs() < 1e-9, "{}: {a} vs {b}", partitioner.name());
        }
    }
}

/// The grid ("road") graph round-trips through the text edge-list format and
/// still produces identical partitions and statistics.
#[test]
fn io_roundtrip_preserves_partitioning_behaviour() {
    let graph = GridGenerator::new(20, 20).with_seed(3).generate().unwrap();
    let mut buffer = Vec::new();
    write_edge_list(&graph, &mut buffer).unwrap();
    let reread = read_edge_list(buffer.as_slice(), EdgeListOptions::default()).unwrap();

    let stats_a = GraphStats::compute("original", &graph).unwrap();
    let stats_b = GraphStats::compute("reread", &reread).unwrap();
    assert_eq!(stats_a.num_vertices, stats_b.num_vertices);
    assert_eq!(stats_a.num_edges, stats_b.num_edges);

    let ebv = EbvPartitioner::new();
    let a = ebv.partition(&graph, 4).unwrap();
    let b = ebv.partition(&reread, 4).unwrap();
    assert_eq!(
        PartitionMetrics::compute(&graph, &a).unwrap(),
        PartitionMetrics::compute(&reread, &b).unwrap()
    );
}

/// The execution statistics expose the communication counters the paper's
/// Tables IV/V are built from, and the cost model turns them into a
/// breakdown with consistent totals.
#[test]
fn statistics_and_cost_model_are_consistent() {
    let graph = RmatGenerator::new(9, 8).with_seed(13).generate().unwrap();
    let partition = EbvPartitioner::new().partition(&graph, 4).unwrap();
    let distributed = DistributedGraph::build(&graph, &partition).unwrap();
    let outcome = BspEngine::sequential()
        .run(&distributed, &ConnectedComponents::new())
        .unwrap();

    let stats = &outcome.stats;
    assert_eq!(stats.num_supersteps(), outcome.supersteps);
    let per_worker = stats.messages_sent_per_worker();
    assert_eq!(per_worker.len(), 4);
    assert_eq!(per_worker.iter().sum::<usize>(), stats.total_messages());
    assert!(stats.message_max_mean_ratio() >= 1.0);

    let breakdown = CostModel::default().breakdown(stats);
    assert!(breakdown.execution_time > 0.0);
    assert!(breakdown.comp > 0.0);
    assert_eq!(breakdown.timelines.len(), 4);
    for timeline in &breakdown.timelines {
        assert_eq!(timeline.len(), outcome.supersteps);
    }
}

/// Different EBV edge orders change the replication factor but never the
/// correctness of the applications running on top.
#[test]
fn edge_order_changes_quality_not_correctness() {
    let graph = RmatGenerator::new(8, 8).with_seed(17).generate().unwrap();
    let expected = cc_reference(&graph);
    for order in [
        EdgeOrder::DegreeSumAscending,
        EdgeOrder::Input,
        EdgeOrder::DegreeSumDescending,
        EdgeOrder::Random(5),
    ] {
        let partitioner = EbvPartitioner::new().with_order(order);
        let partition = partitioner.partition(&graph, 4).unwrap();
        let distributed = DistributedGraph::build(&graph, &partition).unwrap();
        let outcome = BspEngine::sequential()
            .run(&distributed, &ConnectedComponents::new())
            .unwrap();
        assert_eq!(outcome.values, expected, "{order:?}");
    }
}
