//! Shape checks for the paper's headline claims, run on the synthetic
//! substitutes.
//!
//! The absolute numbers of the paper (21.8% replication reduction, 23.7%
//! fewer messages, 16.8% faster than Ginger) were measured on billion-edge
//! SNAP graphs on a 4-node cluster; these tests assert the *direction and
//! rough magnitude* of each claim on the laptop-scale substitutes, which is
//! what a reproduction on different data can meaningfully check.

use ebv::algorithms::ConnectedComponents;
use ebv::bsp::{BspEngine, CostModel, DistributedGraph};
use ebv::graph::generators::{GraphGenerator, RmatGenerator};
use ebv::graph::Graph;
use ebv::partition::{
    CvcPartitioner, DbhPartitioner, EbvPartitioner, GingerPartitioner, MetisLikePartitioner,
    NePartitioner, PartitionMetrics, Partitioner,
};

fn power_law_graph() -> Graph {
    RmatGenerator::new(12, 16)
        .with_probabilities(0.6, 0.19, 0.16)
        .with_seed(99)
        .generate()
        .unwrap()
}

fn replication(graph: &Graph, partitioner: &dyn Partitioner, p: usize) -> f64 {
    let result = partitioner.partition(graph, p).unwrap();
    PartitionMetrics::compute(graph, &result)
        .unwrap()
        .replication_factor
}

fn cc_messages(graph: &Graph, partitioner: &dyn Partitioner, p: usize) -> usize {
    let partition = partitioner.partition(graph, p).unwrap();
    let distributed = DistributedGraph::build(graph, &partition).unwrap();
    BspEngine::sequential()
        .run(&distributed, &ConnectedComponents::new())
        .unwrap()
        .stats
        .total_messages()
}

fn cc_modeled_time(graph: &Graph, partitioner: &dyn Partitioner, p: usize) -> f64 {
    let partition = partitioner.partition(graph, p).unwrap();
    let distributed = DistributedGraph::build(graph, &partition).unwrap();
    let outcome = BspEngine::sequential()
        .run(&distributed, &ConnectedComponents::new())
        .unwrap();
    CostModel::default()
        .breakdown(&outcome.stats)
        .execution_time
}

/// Claim (abstract): "EBV reduces the replication factor by at least 21.8%
/// ... than other self-based partition algorithms." We check EBV beats every
/// self-based vertex-cut baseline (Ginger, DBH, CVC) by a clear margin.
#[test]
fn ebv_has_the_lowest_replication_factor_of_the_self_based_family() {
    let graph = power_law_graph();
    let p = 16;
    let ebv = replication(&graph, &EbvPartitioner::new(), p);
    let ginger = replication(&graph, &GingerPartitioner::new(), p);
    let dbh = replication(&graph, &DbhPartitioner::new(), p);
    let cvc = replication(&graph, &CvcPartitioner::new(), p);
    assert!(ebv < ginger, "EBV {ebv} vs Ginger {ginger}");
    assert!(ebv < dbh, "EBV {ebv} vs DBH {dbh}");
    assert!(ebv < cvc, "EBV {ebv} vs CVC {cvc}");
    // "at least 21.8%" against the best of them is graph-dependent; require
    // a clearly visible margin (>5%) against the family's best.
    let best_baseline = ginger.min(dbh).min(cvc);
    assert!(
        ebv < 0.95 * best_baseline,
        "EBV {ebv} should undercut the best self-based baseline {best_baseline} by >5%"
    );
}

/// Claim (abstract): "...and communication by at least 23.7% ... than other
/// self-based partition algorithms" — checked through the CC message counts
/// of Table IV.
#[test]
fn ebv_sends_fewer_cc_messages_than_the_self_based_baselines() {
    let graph = power_law_graph();
    let p = 16;
    let ebv = cc_messages(&graph, &EbvPartitioner::new(), p);
    let ginger = cc_messages(&graph, &GingerPartitioner::new(), p);
    let dbh = cc_messages(&graph, &DbhPartitioner::new(), p);
    let cvc = cc_messages(&graph, &CvcPartitioner::new(), p);
    assert!(ebv < ginger, "EBV {ebv} vs Ginger {ginger}");
    assert!(ebv < dbh, "EBV {ebv} vs DBH {dbh}");
    assert!(ebv < cvc, "EBV {ebv} vs CVC {cvc}");
}

/// Claim (Table II / Figure 2): at the worker counts the paper uses for its
/// skewed graphs, EBV's modeled execution time beats every baseline because
/// it balances workload *and* keeps communication low; the local-based
/// baselines additionally show a much larger accumulated synchronization gap
/// ΔC (the mechanism Table II identifies).
#[test]
fn ebv_has_the_lowest_modeled_cc_time_on_the_power_law_graph() {
    let graph = power_law_graph();
    let p = 16;
    let ebv = cc_modeled_time(&graph, &EbvPartitioner::new(), p);
    for baseline in [
        Box::new(GingerPartitioner::new()) as Box<dyn Partitioner>,
        Box::new(DbhPartitioner::new()),
        Box::new(CvcPartitioner::new()),
        Box::new(NePartitioner::new()),
        Box::new(MetisLikePartitioner::new()),
    ] {
        let time = cc_modeled_time(&graph, baseline.as_ref(), p);
        assert!(
            ebv <= time * 1.02,
            "EBV modeled time {ebv} should not exceed {} ({})",
            time,
            baseline.name()
        );
    }

    // The workload-imbalance mechanism: ΔC of the local-based partitioners
    // dwarfs EBV's.
    let delta_c = |partitioner: &dyn Partitioner| {
        let partition = partitioner.partition(&graph, p).unwrap();
        let distributed = DistributedGraph::build(&graph, &partition).unwrap();
        let outcome = BspEngine::sequential()
            .run(&distributed, &ConnectedComponents::new())
            .unwrap();
        CostModel::default().breakdown(&outcome.stats).delta_c
    };
    let ebv_gap = delta_c(&EbvPartitioner::new());
    assert!(delta_c(&NePartitioner::new()) > 2.0 * ebv_gap);
    assert!(delta_c(&MetisLikePartitioner::new()) > 2.0 * ebv_gap);
}

/// Claim (Table III trend): the local-based algorithms lose balance as the
/// graph gets more skewed — NE on vertices, METIS on edges — while EBV keeps
/// both factors near 1 everywhere.
#[test]
fn local_based_baselines_lose_balance_on_skewed_graphs_while_ebv_does_not() {
    let graph = power_law_graph();
    let p = 16;
    let ebv = {
        let r = EbvPartitioner::new().partition(&graph, p).unwrap();
        PartitionMetrics::compute(&graph, &r).unwrap()
    };
    let ne = {
        let r = NePartitioner::new().partition(&graph, p).unwrap();
        PartitionMetrics::compute(&graph, &r).unwrap()
    };
    let metis = {
        let r = MetisLikePartitioner::new().partition(&graph, p).unwrap();
        PartitionMetrics::compute(&graph, &r).unwrap()
    };
    assert!(ebv.edge_imbalance < 1.1 && ebv.vertex_imbalance < 1.1);
    assert!(
        ne.vertex_imbalance > 1.3,
        "NE vertex imbalance {} should blow up on the skewed graph",
        ne.vertex_imbalance
    );
    assert!(
        metis.edge_imbalance > 1.3,
        "METIS-like edge imbalance {} should blow up on the skewed graph",
        metis.edge_imbalance
    );
}

/// Claim (Figure 5): the sorting preprocessing lowers the final replication
/// factor, and the advantage grows with the number of subgraphs. (The paper's
/// own Figure 5 shows the curves nearly coincide at 4 subgraphs, so the
/// check starts at 8.)
#[test]
fn sorting_preprocessing_reduces_replication_and_the_gap_grows_with_p() {
    let graph = power_law_graph();
    let mut gaps = Vec::new();
    for &p in &[8usize, 16, 32] {
        let sorted = replication(&graph, &EbvPartitioner::new(), p);
        let unsorted = replication(&graph, &EbvPartitioner::new().unsorted(), p);
        assert!(
            sorted < unsorted,
            "p={p}: sorted {sorted} vs unsorted {unsorted}"
        );
        gaps.push(unsorted - sorted);
    }
    assert!(
        gaps.windows(2).all(|w| w[1] > w[0]),
        "the sort advantage should grow with the number of subgraphs: {gaps:?}"
    );
}
