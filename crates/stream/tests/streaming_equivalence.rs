//! Property tests: the streaming subsystem reproduces the batch results.
//!
//! The central claim of the `ebv-stream` subsystem is that partitioning a
//! stream is *the same computation* as partitioning a materialized graph:
//! streaming EBV equals batch EBV (same assignments, same metrics) under
//! input order, regardless of graph family, partition count or chunking.

use proptest::prelude::*;

use ebv_graph::generators::{ErdosRenyiGenerator, GraphGenerator, RmatGenerator};
use ebv_graph::Graph;
use ebv_partition::{
    EbvPartitioner, HdrfPartitioner, PartitionMetrics, Partitioner, RandomVertexCutPartitioner,
};
use ebv_stream::{ChunkedPipeline, EdgeSource, GraphEdgeSource};

/// Strategy: a power-law (R-MAT) or uniform (Erdős–Rényi) graph of modest
/// size — the two families the paper's evaluation spans.
fn arbitrary_graph() -> impl Strategy<Value = Graph> {
    (0u8..2, 5u32..9, 2u64..9, 0u64..1000).prop_filter_map(
        "generator configurations are valid by construction",
        |(family, scale, avg_degree, seed)| {
            let graph = match family {
                0 => RmatGenerator::new(scale, avg_degree as usize)
                    .with_seed(seed)
                    .generate(),
                _ => {
                    let n = 1usize << scale;
                    ErdosRenyiGenerator::new(n, n * avg_degree as usize)
                        .with_seed(seed)
                        .generate()
                }
            };
            graph.ok()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Streaming EBV produces the identical assignment — and therefore
    /// identical metrics — as batch EBV under `EdgeOrder::Input`, for any
    /// chunk size.
    #[test]
    fn streaming_ebv_equals_batch_ebv(
        graph in arbitrary_graph(),
        p in 1usize..9,
        chunk_size in 1usize..5000,
    ) {
        prop_assume!(p <= graph.num_edges());
        let batch = EbvPartitioner::new().unsorted().partition(&graph, p).unwrap();

        let source = GraphEdgeSource::new(&graph);
        let mut streaming = EbvPartitioner::new()
            .unsorted()
            .streaming(source.stream_config(p))
            .unwrap();
        let (streamed, run) = ChunkedPipeline::new(chunk_size)
            .partition_stream(source, &mut streaming)
            .unwrap();

        // Same assignments...
        prop_assert_eq!(&streamed, &batch);
        // ...and exactly equal metrics, both through the batch metric
        // computation and through the pipeline's running delta-metrics.
        let batch_metrics = PartitionMetrics::compute(&graph, &batch).unwrap();
        let streamed_metrics = PartitionMetrics::compute(&graph, &streamed).unwrap();
        prop_assert_eq!(batch_metrics, streamed_metrics);
        let delta = run.final_metrics().unwrap();
        prop_assert_eq!(delta.replication_factor, batch_metrics.replication_factor);
        prop_assert_eq!(delta.edge_imbalance, batch_metrics.edge_imbalance);
        prop_assert_eq!(delta.vertex_imbalance, batch_metrics.vertex_imbalance);
    }

    /// HDRF and Random are one-pass algorithms: their streaming forms equal
    /// their batch forms edge for edge.
    #[test]
    fn streaming_hdrf_and_random_equal_batch(graph in arbitrary_graph(), p in 1usize..7) {
        prop_assume!(p <= graph.num_edges());
        let source = GraphEdgeSource::new(&graph);

        let batch = HdrfPartitioner::new().partition(&graph, p).unwrap();
        let mut streaming = HdrfPartitioner::new()
            .streaming(source.stream_config(p))
            .unwrap();
        let (streamed, _) = ChunkedPipeline::new(1024)
            .partition_stream(source.clone(), &mut streaming)
            .unwrap();
        prop_assert_eq!(streamed, batch);

        let batch = RandomVertexCutPartitioner::new().partition(&graph, p).unwrap();
        let mut streaming = RandomVertexCutPartitioner::new()
            .streaming(source.stream_config(p))
            .unwrap();
        let (streamed, _) = ChunkedPipeline::new(1024)
            .with_parallel_prehash(true)
            .partition_stream(source, &mut streaming)
            .unwrap();
        prop_assert_eq!(streamed, batch);
    }

    /// The chunked pipeline is chunking-invariant: any two chunk sizes give
    /// the same partition for the same stream.
    #[test]
    fn chunking_is_invisible(graph in arbitrary_graph(), p in 1usize..7, chunk_size in 1usize..600) {
        prop_assume!(p <= graph.num_edges());
        let source = GraphEdgeSource::new(&graph);
        let mut single = EbvPartitioner::new()
            .streaming(source.stream_config(p))
            .unwrap();
        let (one_chunk, _) = ChunkedPipeline::new(usize::MAX)
            .partition_stream(source.clone(), &mut single)
            .unwrap();
        let mut chunked = EbvPartitioner::new()
            .streaming(source.stream_config(p))
            .unwrap();
        let (many_chunks, run) = ChunkedPipeline::new(chunk_size)
            .partition_stream(source, &mut chunked)
            .unwrap();
        prop_assert_eq!(one_chunk, many_chunks);
        prop_assert_eq!(run.total_edges(), graph.num_edges());
        prop_assert_eq!(
            run.chunks().len(),
            graph.num_edges().div_ceil(chunk_size)
        );
    }
}
