//! Property and adversarial tests for the binary varint edge-stream
//! format: arbitrary edge lists roundtrip exactly, and every malformed
//! input class (truncation, overlong varints, bad magic) surfaces as a
//! typed [`StreamError::InvalidFormat`] — never a panic.

use proptest::prelude::*;

use ebv_graph::Edge;
use ebv_stream::{BinaryEdgeReader, BinaryEdgeWriter, EdgeSource, StreamError, MAGIC};

fn encode(edges: &[(u64, u64)]) -> Vec<u8> {
    let mut buffer = Vec::new();
    let mut writer = BinaryEdgeWriter::new(&mut buffer).unwrap();
    for &pair in edges {
        writer.write_edge(Edge::from(pair)).unwrap();
    }
    writer.finish().unwrap();
    buffer
}

fn decode_all(bytes: &[u8]) -> Result<Vec<Edge>, StreamError> {
    let mut reader = BinaryEdgeReader::new(bytes)?;
    let mut out = Vec::new();
    while let Some(edge) = reader.next_edge() {
        out.push(edge?);
    }
    Ok(out)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Roundtrip: any edge list (including endpoints spanning every varint
    /// length class up to the full u64 range) decodes to exactly the edges
    /// that were written.
    #[test]
    fn arbitrary_edges_roundtrip(edges in proptest::collection::vec(
        (any::<u64>(), any::<u64>()),
        0..200,
    )) {
        let bytes = encode(&edges);
        let decoded = decode_all(&bytes).unwrap();
        prop_assert_eq!(decoded.len(), edges.len());
        for (edge, &(s, d)) in decoded.iter().zip(&edges) {
            prop_assert_eq!(*edge, Edge::from((s, d)));
        }
    }

    /// Truncating a valid stream at any byte inside the edge payload either
    /// yields a clean prefix of the edges or a typed InvalidFormat error —
    /// never a panic, never a phantom edge.
    #[test]
    fn truncation_never_panics(
        edges in proptest::collection::vec((any::<u64>(), any::<u64>()), 1..50),
        cut in any::<u64>(),
    ) {
        let bytes = encode(&edges);
        let cut = MAGIC.len() + (cut as usize) % (bytes.len() - MAGIC.len());
        match decode_all(&bytes[..cut]) {
            Ok(decoded) => {
                // A clean cut at a pair boundary: a strict prefix.
                prop_assert!(decoded.len() < edges.len());
                for (edge, &(s, d)) in decoded.iter().zip(&edges) {
                    prop_assert_eq!(*edge, Edge::from((s, d)));
                }
            }
            Err(StreamError::InvalidFormat { offset, .. }) => {
                prop_assert!(offset <= bytes.len() as u64);
            }
            Err(other) => prop_assert!(false, "unexpected error class: {}", other),
        }
    }
}

#[test]
fn truncated_varint_mid_continuation_is_invalid_format() {
    // A single continuation byte promises more bytes that never arrive.
    let mut bytes = MAGIC.to_vec();
    bytes.push(0x80);
    let mut reader = BinaryEdgeReader::new(bytes.as_slice()).unwrap();
    let err = reader.next_edge().unwrap().unwrap_err();
    assert!(
        matches!(err, StreamError::InvalidFormat { ref message, .. } if message.contains("truncated")),
        "got {err}"
    );
}

#[test]
fn truncated_second_endpoint_is_invalid_format() {
    // A complete src varint with no dst at all: EOF at a non-pair boundary.
    let mut bytes = MAGIC.to_vec();
    bytes.push(0x07);
    let mut reader = BinaryEdgeReader::new(bytes.as_slice()).unwrap();
    let err = reader.next_edge().unwrap().unwrap_err();
    assert!(
        matches!(err, StreamError::InvalidFormat { .. }),
        "got {err}"
    );
}

#[test]
fn overlong_varint_is_invalid_format_not_a_panic() {
    // Eleven continuation groups: the value would need more than 64 bits.
    let mut bytes = MAGIC.to_vec();
    bytes.extend_from_slice(&[0xFF; 10]);
    bytes.push(0x01);
    let mut reader = BinaryEdgeReader::new(bytes.as_slice()).unwrap();
    let err = reader.next_edge().unwrap().unwrap_err();
    assert!(
        matches!(err, StreamError::InvalidFormat { ref message, .. } if message.contains("overflow")),
        "got {err}"
    );
}

#[test]
fn ten_byte_varint_with_excess_high_bits_is_rejected() {
    // u64::MAX encodes as nine 0xFF bytes plus 0x01; flipping more bits
    // into the tenth byte overflows the 64-bit value range.
    let mut ok = MAGIC.to_vec();
    ok.extend_from_slice(&[0xFF; 9]);
    ok.push(0x01); // u64::MAX as src
    ok.push(0x00); // dst = 0
    let mut reader = BinaryEdgeReader::new(ok.as_slice()).unwrap();
    let edge = reader.next_edge().unwrap().unwrap();
    assert_eq!(edge.src.raw(), u64::MAX);
    assert_eq!(edge.dst.raw(), 0);

    let mut overflowing = MAGIC.to_vec();
    overflowing.extend_from_slice(&[0xFF; 9]);
    overflowing.push(0x03); // one bit beyond the 64th
    overflowing.push(0x00);
    let mut reader = BinaryEdgeReader::new(overflowing.as_slice()).unwrap();
    let err = reader.next_edge().unwrap().unwrap_err();
    assert!(
        matches!(err, StreamError::InvalidFormat { .. }),
        "got {err}"
    );
}

#[test]
fn error_offsets_point_into_the_stream() {
    // First edge decodes, the second is truncated: the reported offset
    // lands past the healthy edge.
    let mut bytes = encode(&[(300, 400)]);
    let healthy = bytes.len() as u64;
    bytes.push(0x80);
    let mut reader = BinaryEdgeReader::new(bytes.as_slice()).unwrap();
    assert_eq!(
        reader.next_edge().unwrap().unwrap(),
        Edge::from((300u64, 400u64))
    );
    match reader.next_edge().unwrap().unwrap_err() {
        StreamError::InvalidFormat { offset, .. } => assert!(offset >= healthy),
        other => panic!("unexpected error class: {other}"),
    }
}
