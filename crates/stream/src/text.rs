//! Chunked reader for edge-list text (the SNAP-compatible format of
//! [`ebv_graph::io`]).

use std::fs::File;
use std::io::{BufRead, BufReader, Read};
use std::path::Path;

use ebv_graph::io::parse_edge_line;
use ebv_graph::Edge;

use crate::error::Result;
use crate::source::EdgeSource;

/// Streams edges out of whitespace-separated edge-list text without ever
/// materializing the file: one buffered line at a time, using the same line
/// grammar as the batch reader ([`ebv_graph::io::read_edge_list`]) — blank
/// lines and `#`/`%` comments are skipped, malformed lines report their
/// 1-based line number.
///
/// # Examples
///
/// ```
/// use ebv_stream::{EdgeSource, TextEdgeReader};
///
/// let text = "# tiny graph\n0 1\n\n1 2\n";
/// let mut reader = TextEdgeReader::new(text.as_bytes());
/// let mut count = 0;
/// while let Some(edge) = reader.next_edge() {
///     edge.unwrap();
///     count += 1;
/// }
/// assert_eq!(count, 2);
/// ```
#[derive(Debug)]
pub struct TextEdgeReader<R> {
    reader: BufReader<R>,
    line_buffer: String,
    line_number: usize,
}

impl<R: Read> TextEdgeReader<R> {
    /// Creates a reader over any byte stream of edge-list text.
    pub fn new(inner: R) -> Self {
        TextEdgeReader {
            reader: BufReader::new(inner),
            line_buffer: String::new(),
            line_number: 0,
        }
    }

    /// The number of physical lines consumed so far (including comments and
    /// blanks).
    pub fn lines_read(&self) -> usize {
        self.line_number
    }
}

impl TextEdgeReader<File> {
    /// Opens an edge-list file for streaming.
    ///
    /// # Errors
    ///
    /// Returns [`StreamError::Io`](crate::StreamError::Io) when the file
    /// cannot be opened.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<Self> {
        Ok(TextEdgeReader::new(File::open(path)?))
    }
}

impl<R: Read> EdgeSource for TextEdgeReader<R> {
    fn next_edge(&mut self) -> Option<Result<Edge>> {
        loop {
            self.line_buffer.clear();
            match self.reader.read_line(&mut self.line_buffer) {
                Ok(0) => return None,
                Ok(_) => {}
                Err(err) => return Some(Err(err.into())),
            }
            self.line_number += 1;
            match parse_edge_line(&self.line_buffer, self.line_number) {
                Ok(Some(pair)) => return Some(Ok(Edge::from(pair))),
                Ok(None) => continue,
                Err(err) => return Some(Err(err.into())),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::StreamError;

    fn collect(text: &str) -> Result<Vec<Edge>> {
        let mut reader = TextEdgeReader::new(text.as_bytes());
        let mut edges = Vec::new();
        while let Some(edge) = reader.next_edge() {
            edges.push(edge?);
        }
        Ok(edges)
    }

    #[test]
    fn skips_blank_and_comment_lines() {
        let edges = collect("# header\n\n% note\n0 1\n\n1\t2\n").unwrap();
        assert_eq!(edges.len(), 2);
        assert_eq!(edges[0], Edge::from((0u64, 1u64)));
        assert_eq!(edges[1], Edge::from((1u64, 2u64)));
    }

    #[test]
    fn malformed_lines_report_physical_line_numbers() {
        let err = collect("# one\n0 1\n\nbroken\n").unwrap_err();
        match err {
            StreamError::Parse { line, content } => {
                assert_eq!(line, 4);
                assert_eq!(content, "broken");
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn agrees_with_the_batch_reader() {
        let text = "# c\n3 1\n0 2\n% c\n2 1\n";
        let streamed = collect(text).unwrap();
        let batch = ebv_graph::io::read_edge_list(
            text.as_bytes(),
            ebv_graph::io::EdgeListOptions::default(),
        )
        .unwrap();
        assert_eq!(streamed, batch.edges());
    }

    #[test]
    fn empty_input_is_an_empty_stream() {
        assert_eq!(collect("").unwrap(), Vec::new());
        assert_eq!(collect("# only comments\n\n").unwrap(), Vec::new());
    }
}
