//! Synthetic edge streams: deterministic generators that deliver edges one
//! at a time with O(1) state, so arbitrarily large workloads can be
//! partitioned without ever materializing an edge list.
//!
//! These complement the batch generators of [`ebv_graph::generators`]
//! (which build a whole [`Graph`](ebv_graph::Graph)): the streaming R-MAT
//! here draws each edge independently from the recursive-matrix
//! distribution, giving the same power-law skew the paper's evaluation
//! graphs have.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ebv_graph::Edge;

use crate::error::Result;
use crate::source::EdgeSource;

/// A streaming R-MAT generator: `num_edges` directed edges over the dense
/// vertex universe `0..2^scale`, each drawn independently by recursive
/// quadrant descent with probabilities `(a, b, c, d)`. Self loops are
/// rejected and redrawn, matching the loop-free evaluation graphs.
///
/// Deterministic for a fixed seed, and O(1) memory: the stream can be
/// replayed by constructing it again with the same parameters.
///
/// # Examples
///
/// ```
/// use ebv_stream::{EdgeSource, RmatEdgeStream};
///
/// let mut stream = RmatEdgeStream::new(10, 5_000).with_seed(42);
/// assert_eq!(stream.expected_edges(), Some(5_000));
/// assert_eq!(stream.expected_vertices(), Some(1024));
/// let first = stream.next_edge().unwrap().unwrap();
/// assert!(first.src.raw() < 1024);
/// ```
#[derive(Debug, Clone)]
pub struct RmatEdgeStream {
    scale: u32,
    num_edges: usize,
    remaining: usize,
    a: f64,
    b: f64,
    c: f64,
    rng: StdRng,
    seed: u64,
}

impl RmatEdgeStream {
    /// Creates a stream of `num_edges` edges over `2^scale` vertices with
    /// the classic Graph500 probabilities `(0.57, 0.19, 0.19, 0.05)` and
    /// seed 0.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= scale <= 30` (the same range the batch
    /// [`RmatGenerator`](ebv_graph::generators::RmatGenerator) accepts;
    /// scale 0 has no loop-free edge to draw).
    pub fn new(scale: u32, num_edges: usize) -> Self {
        assert!(
            (1..=30).contains(&scale),
            "R-MAT scale must be between 1 and 30, got {scale}"
        );
        RmatEdgeStream {
            scale,
            num_edges,
            remaining: num_edges,
            a: 0.57,
            b: 0.19,
            c: 0.19,
            rng: StdRng::seed_from_u64(0),
            seed: 0,
        }
    }

    /// Reseeds the stream (and restarts it).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self.rng = StdRng::seed_from_u64(seed);
        self.remaining = self.num_edges;
        self
    }

    /// Overrides the quadrant probabilities; `d` is implied as
    /// `1 - a - b - c`. Skew grows with `a`.
    ///
    /// # Panics
    ///
    /// Panics unless all of `a`, `b`, `c` are non-negative finite numbers
    /// with `a + b + c < 1` (quadrant `d` must keep positive mass).
    pub fn with_probabilities(mut self, a: f64, b: f64, c: f64) -> Self {
        let valid = |p: f64| p.is_finite() && p >= 0.0;
        assert!(
            valid(a) && valid(b) && valid(c) && a + b + c < 1.0,
            "R-MAT probabilities must be non-negative with a + b + c < 1, \
             got ({a}, {b}, {c})"
        );
        self.a = a;
        self.b = b;
        self.c = c;
        self
    }

    fn draw(&mut self) -> Edge {
        loop {
            let mut src: u64 = 0;
            let mut dst: u64 = 0;
            for _ in 0..self.scale {
                src <<= 1;
                dst <<= 1;
                let r: f64 = self.rng.gen();
                if r < self.a {
                    // top-left: both bits 0
                } else if r < self.a + self.b {
                    dst |= 1;
                } else if r < self.a + self.b + self.c {
                    src |= 1;
                } else {
                    src |= 1;
                    dst |= 1;
                }
            }
            if src != dst {
                return Edge::from((src, dst));
            }
        }
    }
}

impl EdgeSource for RmatEdgeStream {
    fn next_edge(&mut self) -> Option<Result<Edge>> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        Some(Ok(self.draw()))
    }

    fn expected_edges(&self) -> Option<usize> {
        Some(self.num_edges)
    }

    fn expected_vertices(&self) -> Option<usize> {
        Some(1usize << self.scale)
    }
}

/// A streaming uniform (Erdős–Rényi G(n, m)-style) generator: `num_edges`
/// directed edges with both endpoints uniform over `0..num_vertices`, self
/// loops rejected. The non-power-law control for streaming experiments.
///
/// # Examples
///
/// ```
/// use ebv_stream::{EdgeSource, UniformEdgeStream};
///
/// let mut stream = UniformEdgeStream::new(100, 500).with_seed(7);
/// let edge = stream.next_edge().unwrap().unwrap();
/// assert!(edge.src.raw() < 100 && edge.src != edge.dst);
/// ```
#[derive(Debug, Clone)]
pub struct UniformEdgeStream {
    num_vertices: u64,
    num_edges: usize,
    remaining: usize,
    rng: StdRng,
}

impl UniformEdgeStream {
    /// Creates a stream of `num_edges` uniform edges over `num_vertices`
    /// vertices with seed 0.
    ///
    /// # Panics
    ///
    /// Panics if `num_vertices < 2` (no loop-free edge exists).
    pub fn new(num_vertices: u64, num_edges: usize) -> Self {
        assert!(
            num_vertices >= 2,
            "a loop-free uniform stream needs at least 2 vertices"
        );
        UniformEdgeStream {
            num_vertices,
            num_edges,
            remaining: num_edges,
            rng: StdRng::seed_from_u64(0),
        }
    }

    /// Reseeds the stream (and restarts it).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.rng = StdRng::seed_from_u64(seed);
        self.remaining = self.num_edges;
        self
    }
}

impl EdgeSource for UniformEdgeStream {
    fn next_edge(&mut self) -> Option<Result<Edge>> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        loop {
            let src = self.rng.gen_range(0..self.num_vertices);
            let dst = self.rng.gen_range(0..self.num_vertices);
            if src != dst {
                return Some(Ok(Edge::from((src, dst))));
            }
        }
    }

    fn expected_edges(&self) -> Option<usize> {
        Some(self.num_edges)
    }

    fn expected_vertices(&self) -> Option<usize> {
        Some(self.num_vertices as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain<S: EdgeSource>(mut source: S) -> Vec<Edge> {
        let mut edges = Vec::new();
        while let Some(edge) = source.next_edge() {
            edges.push(edge.unwrap());
        }
        edges
    }

    #[test]
    fn rmat_stream_is_deterministic_and_sized() {
        let a = drain(RmatEdgeStream::new(8, 2000).with_seed(3));
        let b = drain(RmatEdgeStream::new(8, 2000).with_seed(3));
        let c = drain(RmatEdgeStream::new(8, 2000).with_seed(4));
        assert_eq!(a.len(), 2000);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.iter().all(|e| e.src.raw() < 256 && e.dst.raw() < 256));
        assert!(a.iter().all(|e| !e.is_self_loop()));
    }

    #[test]
    fn rmat_stream_is_skewed() {
        let edges = drain(RmatEdgeStream::new(9, 8000).with_seed(1));
        let mut degree = vec![0usize; 512];
        for e in &edges {
            degree[e.src.index()] += 1;
            degree[e.dst.index()] += 1;
        }
        let max = *degree.iter().max().unwrap();
        let mean = degree.iter().sum::<usize>() as f64 / 512.0;
        // Power-law-ish: the hub dominates the mean by a wide margin.
        assert!(max as f64 > 5.0 * mean, "max {max}, mean {mean}");
    }

    #[test]
    #[should_panic(expected = "R-MAT scale must be between 1 and 30")]
    fn rmat_scale_zero_is_rejected() {
        // Scale 0 has no loop-free edge: drawing would spin forever.
        let _ = RmatEdgeStream::new(0, 10);
    }

    #[test]
    #[should_panic(expected = "R-MAT probabilities")]
    fn rmat_degenerate_probabilities_are_rejected() {
        let _ = RmatEdgeStream::new(8, 10).with_probabilities(0.6, 0.3, 0.2);
    }

    #[test]
    fn uniform_stream_is_deterministic_and_in_range() {
        let a = drain(UniformEdgeStream::new(50, 1000).with_seed(9));
        let b = drain(UniformEdgeStream::new(50, 1000).with_seed(9));
        assert_eq!(a, b);
        assert_eq!(a.len(), 1000);
        assert!(a.iter().all(|e| e.src.raw() < 50 && e.dst.raw() < 50));
        assert!(a.iter().all(|e| !e.is_self_loop()));
    }
}
