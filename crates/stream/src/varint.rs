//! Shared LEB128 varint codec.
//!
//! The binary edge-stream format ([`crate::binary`]) and the durable-state
//! WAL framing (`ebv-state`) both encode integers as LEB128 varints. This
//! module is the single implementation both build on: 7 value bits per
//! byte, least-significant group first, high bit set on every byte except
//! the last.
//!
//! The reader is strict: it rejects encodings that overflow `u64` *and*
//! non-canonical over-long encodings (a multi-byte encoding whose final
//! byte contributes no bits, e.g. `[0x80, 0x00]` for zero). Canonicality
//! matters for durability framing — if every value has exactly one valid
//! encoding, a re-encoded frame is byte-identical to the original, so
//! CRC-verified frames can be compared and re-emitted without drift.

use std::io::{self, Read, Write};

/// Maximum encoded length of a `u64` varint (`ceil(64 / 7)` bytes).
pub const MAX_LEN: usize = 10;

/// Why a varint read failed.
#[derive(Debug)]
pub enum VarintError {
    /// The underlying reader failed with a real I/O error.
    Io(io::Error),
    /// The stream ended after at least one byte of an unfinished varint.
    Truncated,
    /// The encoding does not fit in 64 bits.
    Overflow,
    /// Over-long encoding: a multi-byte varint whose final byte is zero.
    /// Canonical LEB128 never emits trailing zero groups.
    NonCanonical,
}

impl std::fmt::Display for VarintError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VarintError::Io(err) => write!(f, "varint read failed: {err}"),
            VarintError::Truncated => write!(f, "stream truncated mid-varint"),
            VarintError::Overflow => write!(f, "varint overflows u64"),
            VarintError::NonCanonical => {
                write!(f, "non-canonical over-long varint encoding")
            }
        }
    }
}

impl std::error::Error for VarintError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            VarintError::Io(err) => Some(err),
            _ => None,
        }
    }
}

impl From<io::Error> for VarintError {
    fn from(err: io::Error) -> Self {
        VarintError::Io(err)
    }
}

/// Writes the canonical LEB128 encoding of `value`; returns the number of
/// bytes written (1..=[`MAX_LEN`]).
///
/// # Errors
///
/// Propagates any error from the underlying writer.
pub fn write_u64<W: Write>(writer: &mut W, mut value: u64) -> io::Result<usize> {
    let mut written = 0;
    loop {
        let byte = (value & 0x7F) as u8;
        value >>= 7;
        written += 1;
        if value == 0 {
            writer.write_all(&[byte])?;
            return Ok(written);
        }
        writer.write_all(&[byte | 0x80])?;
    }
}

/// Encoded length of `value` without writing it.
pub fn encoded_len(value: u64) -> usize {
    let bits = 64 - value.leading_zeros() as usize;
    std::cmp::max(1, bits.div_ceil(7))
}

/// Reads one varint from `reader`.
///
/// Returns `Ok(None)` on clean EOF before the first byte — the caller
/// decides whether that is a valid end of stream. `consumed` is advanced
/// by every byte actually read, including on the error paths, so callers
/// can report precise offsets.
///
/// # Errors
///
/// [`VarintError::Truncated`] when EOF hits mid-varint,
/// [`VarintError::Overflow`] when the value exceeds `u64`,
/// [`VarintError::NonCanonical`] for over-long encodings, and
/// [`VarintError::Io`] for real reader failures.
pub fn read_u64<R: Read>(reader: &mut R, consumed: &mut u64) -> Result<Option<u64>, VarintError> {
    let mut value: u64 = 0;
    let mut shift: u32 = 0;
    let mut first = true;
    loop {
        let mut byte = [0u8; 1];
        match reader.read_exact(&mut byte) {
            Ok(()) => {}
            Err(err) if err.kind() == io::ErrorKind::UnexpectedEof => {
                if first {
                    return Ok(None);
                }
                return Err(VarintError::Truncated);
            }
            Err(err) => return Err(VarintError::Io(err)),
        }
        *consumed += 1;
        if byte[0] & 0x80 == 0 && byte[0] == 0 && !first {
            return Err(VarintError::NonCanonical);
        }
        if shift >= 64 || (shift == 63 && byte[0] & 0x7E != 0) {
            return Err(VarintError::Overflow);
        }
        value |= u64::from(byte[0] & 0x7F) << shift;
        if byte[0] & 0x80 == 0 {
            return Ok(Some(value));
        }
        shift += 7;
        first = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read_all(bytes: &[u8]) -> Result<Option<u64>, VarintError> {
        let mut consumed = 0;
        read_u64(&mut &bytes[..], &mut consumed)
    }

    #[test]
    fn roundtrips_and_reports_length() {
        for value in [
            0u64,
            1,
            127,
            128,
            16_383,
            16_384,
            1 << 40,
            u64::MAX - 1,
            u64::MAX,
        ] {
            let mut buffer = Vec::new();
            let written = write_u64(&mut buffer, value).unwrap();
            assert_eq!(written, buffer.len());
            assert_eq!(written, encoded_len(value), "value {value}");
            let mut consumed = 0;
            let back = read_u64(&mut buffer.as_slice(), &mut consumed).unwrap();
            assert_eq!(back, Some(value));
            assert_eq!(consumed, buffer.len() as u64);
        }
    }

    #[test]
    fn clean_eof_is_none_and_counts_nothing() {
        let mut consumed = 0;
        assert!(matches!(read_u64(&mut &b""[..], &mut consumed), Ok(None)));
        assert_eq!(consumed, 0);
    }

    #[test]
    fn truncation_mid_varint_is_detected() {
        let mut consumed = 0;
        let err = read_u64(&mut &[0x80u8][..], &mut consumed).unwrap_err();
        assert!(matches!(err, VarintError::Truncated));
        assert_eq!(consumed, 1);
    }

    #[test]
    fn overflow_is_rejected() {
        // Eleven continuation bytes push shift past 64 bits.
        let bytes = [0xFFu8; 10];
        assert!(matches!(read_all(&bytes), Err(VarintError::Overflow)));
        // Ten bytes whose final group sets bits above bit 63.
        let mut high = [0xFFu8; 10];
        high[9] = 0x7F;
        assert!(matches!(read_all(&high), Err(VarintError::Overflow)));
    }

    #[test]
    fn over_long_encodings_are_rejected() {
        // `[0x80, 0x00]` is zero with a redundant continuation byte.
        assert!(matches!(
            read_all(&[0x80, 0x00]),
            Err(VarintError::NonCanonical)
        ));
        // `[0xFF, 0x80, 0x00]` pads 127 out to three bytes.
        assert!(matches!(
            read_all(&[0xFF, 0x80, 0x00]),
            Err(VarintError::NonCanonical)
        ));
        // A lone zero byte is the canonical encoding of zero.
        assert_eq!(read_all(&[0x00]).unwrap(), Some(0));
    }

    #[test]
    fn max_len_matches_u64_max() {
        assert_eq!(encoded_len(u64::MAX), MAX_LEN);
    }
}
