//! The chunked streaming pipeline: reader → streaming partitioner → sink.

use ebv_graph::Edge;
use ebv_obs::{NoopRecorder, Phase, Recorder, SpanCtx};
use ebv_partition::{PartitionId, PartitionResult, StreamingMetrics, StreamingPartitioner};

use crate::error::{Result, StreamError};
use crate::source::EdgeSource;

/// Drives an [`EdgeSource`] through a
/// [`StreamingPartitioner`] in fixed-size chunks.
///
/// The pipeline buffers at most `chunk_size` edges at a time — peak memory
/// is O(chunk + partitioner state), independent of the stream length — and
/// records the running delta-metrics (replication factor, edge/vertex
/// imbalance) after every chunk, giving the replication-growth view of the
/// paper's Figure 5 for free.
///
/// For hash-based partitioners exposing a
/// [`prehasher`](StreamingPartitioner::prehasher), chunk assignments can be
/// pre-computed on worker threads
/// ([`with_parallel_prehash`](Self::with_parallel_prehash)); score-based
/// partitioners (EBV, HDRF) are inherently sequential and ignore the
/// setting.
///
/// # Examples
///
/// ```
/// use ebv_partition::{EbvPartitioner, StreamingPartitioner};
/// use ebv_stream::{ChunkedPipeline, EdgeSource, RmatEdgeStream};
///
/// # fn main() -> Result<(), ebv_stream::StreamError> {
/// let stream = RmatEdgeStream::new(10, 20_000).with_seed(7);
/// let mut partitioner = EbvPartitioner::new().streaming(stream.stream_config(8))?;
/// let (result, run) = ChunkedPipeline::new(4096).partition_stream(stream, &mut partitioner)?;
/// assert_eq!(result.num_partitions(), 8);
/// assert_eq!(run.total_edges(), 20_000);
/// assert!(run.final_metrics().unwrap().edge_imbalance < 1.2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ChunkedPipeline {
    chunk_size: usize,
    parallel_prehash: bool,
    prehash_threads: usize,
}

impl ChunkedPipeline {
    /// Creates a pipeline processing `chunk_size` edges per chunk.
    pub fn new(chunk_size: usize) -> Self {
        ChunkedPipeline {
            chunk_size,
            parallel_prehash: false,
            prehash_threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        }
    }

    /// Enables parallel chunk pre-hashing for partitioners that support it
    /// (see [`StreamingPartitioner::prehasher`]).
    pub fn with_parallel_prehash(mut self, enabled: bool) -> Self {
        self.parallel_prehash = enabled;
        self
    }

    /// Overrides the pre-hash worker-thread count (defaults to the
    /// available parallelism).
    pub fn with_prehash_threads(mut self, threads: usize) -> Self {
        self.prehash_threads = threads.max(1);
        self
    }

    /// The configured chunk size.
    pub fn chunk_size(&self) -> usize {
        self.chunk_size
    }

    /// Streams every edge of `source` through `partitioner`, invoking
    /// `sink(edge, partition)` for each assignment in stream order. Returns
    /// the per-chunk report; call
    /// [`partitioner.finish()`](StreamingPartitioner::finish) afterwards
    /// for the [`PartitionResult`] (or use
    /// [`partition_stream`](Self::partition_stream)).
    ///
    /// # Errors
    ///
    /// Returns [`StreamError::InvalidParameter`] for a zero chunk size and
    /// propagates source errors; edges ingested before the failure remain
    /// in the partitioner.
    pub fn run<S, F>(
        &self,
        source: S,
        partitioner: &mut dyn StreamingPartitioner,
        sink: F,
    ) -> Result<PipelineRun>
    where
        S: EdgeSource,
        F: FnMut(Edge, PartitionId),
    {
        self.run_with(source, partitioner, sink, &NoopRecorder)
    }

    /// [`run`](Self::run) with telemetry: every chunk's ingest (including
    /// the parallel pre-hash when enabled) is recorded as a `chunk_ingest`
    /// span (superstep = chunk index), the total ingested-edge counter
    /// accumulates, and the running replication factor is exported as the
    /// `ebv_stream_replication_factor` gauge.
    ///
    /// Instrumentation does not perturb the run: assignments, reports and
    /// the final partition are bit-identical to [`run`](Self::run).
    ///
    /// # Errors
    ///
    /// Exactly as [`run`](Self::run).
    pub fn run_with<S, F, R>(
        &self,
        mut source: S,
        partitioner: &mut dyn StreamingPartitioner,
        mut sink: F,
        recorder: &R,
    ) -> Result<PipelineRun>
    where
        S: EdgeSource,
        F: FnMut(Edge, PartitionId),
        R: Recorder,
    {
        if self.chunk_size == 0 {
            return Err(StreamError::InvalidParameter {
                parameter: "chunk_size",
                message: "the chunk size must be at least 1".to_string(),
            });
        }
        let prehasher = if self.parallel_prehash {
            partitioner.prehasher()
        } else {
            None
        };

        // Cap the pre-allocation: a huge chunk size is a valid way to ask
        // for "one chunk", not a promise about the stream length.
        let mut chunk: Vec<Edge> = Vec::with_capacity(self.chunk_size.min(1 << 16));
        let mut hints: Vec<PartitionId> = Vec::new();
        let mut chunks: Vec<ChunkReport> = Vec::new();
        let mut total_edges = 0usize;
        loop {
            chunk.clear();
            while chunk.len() < self.chunk_size {
                match source.next_edge() {
                    Some(Ok(edge)) => chunk.push(edge),
                    Some(Err(err)) => return Err(err),
                    None => break,
                }
            }
            if chunk.is_empty() {
                break;
            }

            let started = recorder.start();
            if let Some(prehasher) = &prehasher {
                hints.clear();
                hints.resize(chunk.len(), PartitionId::default());
                let threads = self.prehash_threads.min(chunk.len());
                let slice_len = chunk.len().div_ceil(threads);
                std::thread::scope(|scope| {
                    for (slice_index, (edges, hints)) in chunk
                        .chunks(slice_len)
                        .zip(hints.chunks_mut(slice_len))
                        .enumerate()
                    {
                        let prehasher = &**prehasher;
                        let base = total_edges + slice_index * slice_len;
                        scope.spawn(move || {
                            for (offset, (edge, hint)) in
                                edges.iter().zip(hints.iter_mut()).enumerate()
                            {
                                *hint = prehasher(*edge, base + offset);
                            }
                        });
                    }
                });
                for (edge, hint) in chunk.iter().zip(&hints) {
                    let part = partitioner.ingest_hinted(*edge, *hint);
                    sink(*edge, part);
                }
            } else {
                for edge in &chunk {
                    let part = partitioner.ingest(*edge);
                    sink(*edge, part);
                }
            }

            recorder.span(
                started,
                SpanCtx {
                    epoch: 0,
                    superstep: chunks.len() as u32,
                    worker: 0,
                },
                Phase::ChunkIngest,
            );
            total_edges += chunk.len();
            let metrics = partitioner.delta_metrics();
            recorder.counter_add("ebv_stream_edges_ingested_total", chunk.len() as u64);
            recorder.gauge_set("ebv_stream_replication_factor", metrics.replication_factor);
            chunks.push(ChunkReport {
                chunk_index: chunks.len(),
                edges_in_chunk: chunk.len(),
                metrics,
            });
        }
        Ok(PipelineRun {
            chunks,
            total_edges,
        })
    }

    /// Convenience form of [`run`](Self::run) for callers that only need the
    /// final partition: streams everything with a no-op sink and finishes
    /// the partitioner.
    ///
    /// # Errors
    ///
    /// See [`run`](Self::run).
    pub fn partition_stream<S: EdgeSource>(
        &self,
        source: S,
        partitioner: &mut dyn StreamingPartitioner,
    ) -> Result<(PartitionResult, PipelineRun)> {
        let run = self.run(source, partitioner, |_, _| {})?;
        Ok((partitioner.finish()?, run))
    }
}

/// The running metrics recorded after one chunk.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChunkReport {
    /// 0-based index of the chunk.
    pub chunk_index: usize,
    /// Number of edges the chunk carried (only the final chunk may be
    /// short).
    pub edges_in_chunk: usize,
    /// Delta-metrics over the whole stream prefix after this chunk.
    pub metrics: StreamingMetrics,
}

/// The outcome of one pipeline run: how much was streamed, and the
/// delta-metrics trajectory.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineRun {
    chunks: Vec<ChunkReport>,
    total_edges: usize,
}

impl PipelineRun {
    /// Per-chunk reports in stream order.
    pub fn chunks(&self) -> &[ChunkReport] {
        &self.chunks
    }

    /// Total number of edges streamed.
    pub fn total_edges(&self) -> usize {
        self.total_edges
    }

    /// The metrics after the final chunk, or `None` for an empty stream.
    pub fn final_metrics(&self) -> Option<StreamingMetrics> {
        self.chunks.last().map(|c| c.metrics)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{pairs, GraphEdgeSource};
    use crate::synthetic::RmatEdgeStream;
    use ebv_graph::generators::{GraphGenerator, RmatGenerator};
    use ebv_partition::{EbvPartitioner, RandomVertexCutPartitioner, StreamConfig};

    #[test]
    fn chunk_size_does_not_change_the_result() {
        let graph = RmatGenerator::new(8, 8).with_seed(6).generate().unwrap();
        let reference = {
            let source = GraphEdgeSource::new(&graph);
            let mut partitioner = EbvPartitioner::new()
                .streaming(source.stream_config(4))
                .unwrap();
            ChunkedPipeline::new(usize::MAX)
                .partition_stream(source, &mut partitioner)
                .unwrap()
                .0
        };
        // 1 exercises the degenerate chunking, 7 a non-divisor, 64 an exact
        // divisor of 1024-edge scales, huge a single chunk.
        for chunk_size in [1usize, 7, 64, 1 << 20] {
            let source = GraphEdgeSource::new(&graph);
            let mut partitioner = EbvPartitioner::new()
                .streaming(source.stream_config(4))
                .unwrap();
            let (result, run) = ChunkedPipeline::new(chunk_size)
                .partition_stream(source, &mut partitioner)
                .unwrap();
            assert_eq!(result, reference, "chunk size {chunk_size}");
            assert_eq!(run.total_edges(), graph.num_edges());
            let reported: usize = run.chunks().iter().map(|c| c.edges_in_chunk).sum();
            assert_eq!(reported, graph.num_edges());
        }
    }

    #[test]
    fn chunk_reports_cover_boundaries() {
        let source = RmatEdgeStream::new(7, 1000).with_seed(2);
        let mut partitioner = EbvPartitioner::new()
            .streaming(source.stream_config(4))
            .unwrap();
        let (_, run) = ChunkedPipeline::new(256)
            .partition_stream(source, &mut partitioner)
            .unwrap();
        // 1000 = 3 × 256 + 232: four chunks, the last one short.
        assert_eq!(run.chunks().len(), 4);
        assert_eq!(run.chunks()[2].edges_in_chunk, 256);
        assert_eq!(run.chunks()[3].edges_in_chunk, 1000 - 3 * 256);
        assert_eq!(run.chunks()[3].metrics.edges_ingested, 1000);
        // Replication factor is non-decreasing chunk over chunk.
        for w in run.chunks().windows(2) {
            assert!(w[0].metrics.replication_factor <= w[1].metrics.replication_factor + 1e-12);
            assert!(w[0].chunk_index < w[1].chunk_index);
        }
    }

    #[test]
    fn empty_stream_produces_an_empty_run() {
        let mut partitioner = EbvPartitioner::new()
            .streaming(StreamConfig::new(3))
            .unwrap();
        let (result, run) = ChunkedPipeline::new(128)
            .partition_stream(pairs(Vec::new()), &mut partitioner)
            .unwrap();
        assert_eq!(run.total_edges(), 0);
        assert!(run.chunks().is_empty());
        assert_eq!(run.final_metrics(), None);
        assert_eq!(result.num_partitions(), 3);
        assert_eq!(result.as_vertex_cut().unwrap().num_edges(), 0);
    }

    #[test]
    fn zero_chunk_size_is_rejected() {
        let mut partitioner = EbvPartitioner::new()
            .streaming(StreamConfig::new(2))
            .unwrap();
        let err = ChunkedPipeline::new(0)
            .partition_stream(pairs(vec![(0, 1)]), &mut partitioner)
            .unwrap_err();
        assert!(matches!(err, StreamError::InvalidParameter { .. }));
    }

    #[test]
    fn parallel_prehash_matches_sequential_ingest() {
        let stream = || RmatEdgeStream::new(9, 5000).with_seed(8);
        let sequential = {
            let mut partitioner = RandomVertexCutPartitioner::new()
                .streaming(stream().stream_config(6))
                .unwrap();
            ChunkedPipeline::new(512)
                .partition_stream(stream(), &mut partitioner)
                .unwrap()
                .0
        };
        let parallel = {
            let mut partitioner = RandomVertexCutPartitioner::new()
                .streaming(stream().stream_config(6))
                .unwrap();
            ChunkedPipeline::new(512)
                .with_parallel_prehash(true)
                .with_prehash_threads(4)
                .partition_stream(stream(), &mut partitioner)
                .unwrap()
                .0
        };
        assert_eq!(sequential, parallel);

        // Score-based partitioners silently ignore the setting.
        let mut partitioner = EbvPartitioner::new()
            .streaming(stream().stream_config(6))
            .unwrap();
        let with_flag = ChunkedPipeline::new(512)
            .with_parallel_prehash(true)
            .partition_stream(stream(), &mut partitioner)
            .unwrap()
            .0;
        let mut partitioner = EbvPartitioner::new()
            .streaming(stream().stream_config(6))
            .unwrap();
        let without_flag = ChunkedPipeline::new(512)
            .partition_stream(stream(), &mut partitioner)
            .unwrap()
            .0;
        assert_eq!(with_flag, without_flag);
    }

    #[test]
    fn sink_sees_every_assignment_in_stream_order() {
        let graph = RmatGenerator::new(7, 8).with_seed(4).generate().unwrap();
        let source = GraphEdgeSource::new(&graph);
        let mut partitioner = EbvPartitioner::new()
            .streaming(source.stream_config(3))
            .unwrap();
        let mut sunk = Vec::new();
        ChunkedPipeline::new(100)
            .run(source, &mut partitioner, |edge, part| {
                sunk.push((edge, part))
            })
            .unwrap();
        let result = partitioner.finish().unwrap();
        let vc = result.as_vertex_cut().unwrap();
        assert_eq!(sunk.len(), graph.num_edges());
        for (i, ((edge, part), expected)) in sunk.iter().zip(graph.edges()).enumerate() {
            assert_eq!(edge, expected, "edge {i}");
            assert_eq!(*part, vc.part_of(i), "edge {i}");
        }
    }
}
