//! Error type for streaming ingestion and the chunked pipeline.

use std::error::Error as StdError;
use std::fmt;
use std::io;

use ebv_graph::GraphError;
use ebv_partition::PartitionError;

/// Errors produced while reading, generating or partitioning an edge
/// stream.
#[derive(Debug)]
pub enum StreamError {
    /// A line of edge-list text could not be parsed.
    Parse {
        /// 1-based line number within the stream.
        line: usize,
        /// The offending line content.
        content: String,
    },
    /// A binary edge stream is malformed (bad magic, truncated varint or a
    /// pair cut off mid-edge).
    InvalidFormat {
        /// Byte offset at which the problem was detected.
        offset: u64,
        /// Human-readable description of the problem.
        message: String,
    },
    /// A reader, generator or pipeline was configured inconsistently.
    InvalidParameter {
        /// Name of the offending parameter.
        parameter: &'static str,
        /// Human-readable description of the constraint that was violated.
        message: String,
    },
    /// An error bubbled up from the graph substrate.
    Graph(GraphError),
    /// An error bubbled up from a partitioner.
    Partition(PartitionError),
    /// An underlying I/O error.
    Io(io::Error),
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::Parse { line, content } => {
                write!(f, "could not parse edge on line {line}: {content:?}")
            }
            StreamError::InvalidFormat { offset, message } => {
                write!(f, "invalid binary edge stream at byte {offset}: {message}")
            }
            StreamError::InvalidParameter { parameter, message } => {
                write!(f, "invalid parameter `{parameter}`: {message}")
            }
            StreamError::Graph(err) => write!(f, "graph error: {err}"),
            StreamError::Partition(err) => write!(f, "partition error: {err}"),
            StreamError::Io(err) => write!(f, "i/o error: {err}"),
        }
    }
}

impl StdError for StreamError {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            StreamError::Graph(err) => Some(err),
            StreamError::Partition(err) => Some(err),
            StreamError::Io(err) => Some(err),
            _ => None,
        }
    }
}

impl From<io::Error> for StreamError {
    fn from(err: io::Error) -> Self {
        StreamError::Io(err)
    }
}

impl From<PartitionError> for StreamError {
    fn from(err: PartitionError) -> Self {
        StreamError::Partition(err)
    }
}

impl From<GraphError> for StreamError {
    fn from(err: GraphError) -> Self {
        // Parse errors keep their structured line/content form so callers
        // can report stream positions uniformly.
        match err {
            GraphError::ParseEdge { line, content } => StreamError::Parse { line, content },
            GraphError::Io(err) => StreamError::Io(err),
            other => StreamError::Graph(other),
        }
    }
}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, StreamError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_meaningful() {
        let e = StreamError::Parse {
            line: 7,
            content: "a b".to_string(),
        };
        assert!(e.to_string().contains("line 7"));
        let e = StreamError::InvalidFormat {
            offset: 12,
            message: "truncated varint".to_string(),
        };
        assert!(e.to_string().contains("byte 12"));
        let e = StreamError::InvalidParameter {
            parameter: "chunk_size",
            message: "must be positive".to_string(),
        };
        assert!(e.to_string().contains("chunk_size"));
    }

    #[test]
    fn graph_parse_errors_become_stream_parse_errors() {
        let err = StreamError::from(GraphError::ParseEdge {
            line: 3,
            content: "x".to_string(),
        });
        assert!(matches!(err, StreamError::Parse { line: 3, .. }));
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<StreamError>();
    }
}
