//! # ebv-stream — streaming edge ingestion and online partitioning
//!
//! EBV (Algorithm 1 of the reproduced paper) is a *single-pass* vertex-cut
//! algorithm, yet the batch interface of
//! [`ebv-partition`](ebv_partition) only exposes it over fully materialized
//! graphs. This crate opens the online-workload scenario family: edges flow
//! from a source through a streaming partitioner into an incrementally
//! assembled distributed graph, and the whole edge list is never resident.
//!
//! The subsystem layers as
//!
//! ```text
//! EdgeSource  ──►  StreamingPartitioner  ──►  sink (e.g. DistributedGraphBuilder)
//!     │                     │
//!     │                     └─ ebv_partition::streaming (EBV, HDRF, DBH, Random)
//!     └─ TextEdgeReader · BinaryEdgeReader · RmatEdgeStream · UniformEdgeStream
//!
//!            ChunkedPipeline drives the flow chunk-by-chunk and
//!            records delta-metrics after every chunk.
//! ```
//!
//! * [`EdgeSource`] — pull-based, fallible edge streams: chunked readers
//!   for edge-list text ([`TextEdgeReader`]) and a compact varint binary
//!   format ([`BinaryEdgeReader`]/[`BinaryEdgeWriter`]), deterministic
//!   synthetic generators ([`RmatEdgeStream`], [`UniformEdgeStream`]) and
//!   adapters ([`pairs`], [`GraphEdgeSource`]).
//! * [`ChunkedPipeline`] — configurable chunk size, per-chunk running
//!   metrics, optional parallel pre-hashing for hash-based partitioners.
//! * The sink side lives in
//!   [`ebv-bsp`](ebv_bsp): [`DistributedGraph::build_streaming`] /
//!   [`DistributedGraphBuilder`](ebv_bsp::DistributedGraphBuilder)
//!   assemble per-worker subgraphs directly from `(edge, partition)` pairs.
//!
//! ## Quick example
//!
//! Partition a synthetic stream and run a BSP application on it, without
//! ever holding the global edge vector:
//!
//! ```
//! use ebv_bsp::DistributedGraph;
//! use ebv_partition::{EbvPartitioner, StreamingPartitioner};
//! use ebv_stream::{ChunkedPipeline, EdgeSource, RmatEdgeStream};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let stream = RmatEdgeStream::new(12, 50_000).with_seed(1);
//! let workers = 8;
//! let mut partitioner = EbvPartitioner::new().streaming(stream.stream_config(workers))?;
//! let mut builder = DistributedGraph::builder(workers)?;
//!
//! let run = ChunkedPipeline::new(8_192).run(stream, &mut partitioner, |edge, part| {
//!     builder.add_edge(edge, part).expect("partition ids are in range");
//! })?;
//! let distributed = builder.finish()?;
//!
//! assert_eq!(distributed.num_edges(), 50_000);
//! assert!(run.final_metrics().unwrap().edge_imbalance < 1.2);
//! # Ok(())
//! # }
//! ```
//!
//! [`DistributedGraph::build_streaming`]: ebv_bsp::DistributedGraph::build_streaming

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

mod binary;
mod error;
mod pipeline;
mod source;
mod synthetic;
mod text;
pub mod varint;

pub use binary::{BinaryEdgeReader, BinaryEdgeWriter, MAGIC};
pub use error::{Result, StreamError};
pub use pipeline::{ChunkReport, ChunkedPipeline, PipelineRun};
pub use source::{pairs, EdgeSource, GraphEdgeSource, PairSource};
pub use synthetic::{RmatEdgeStream, UniformEdgeStream};
pub use text::TextEdgeReader;

/// Commonly used items, for glob import in examples and downstream crates.
pub mod prelude {
    pub use crate::{
        pairs, BinaryEdgeReader, BinaryEdgeWriter, ChunkedPipeline, EdgeSource, GraphEdgeSource,
        PipelineRun, RmatEdgeStream, StreamError, TextEdgeReader, UniformEdgeStream,
    };
}
