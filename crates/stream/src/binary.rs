//! A compact binary edge-stream format.
//!
//! Layout: an 8-byte magic (`EBVSTRM` plus a format version byte) followed
//! by edges as pairs of LEB128 varint-encoded vertex identifiers. Typical
//! social-network edge lists compress to 2–6 bytes per endpoint instead of
//! the 8 of fixed-width `u64`, and the format needs no length prefix — the
//! stream simply ends at a pair boundary.

use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

use ebv_graph::Edge;

use crate::error::{Result, StreamError};
use crate::source::EdgeSource;
use crate::varint::{self, VarintError};

/// Magic bytes opening every binary edge stream (version 1).
pub const MAGIC: [u8; 8] = *b"EBVSTRM\x01";

/// Serializer for the binary edge-stream format.
///
/// # Examples
///
/// ```
/// use ebv_stream::{BinaryEdgeReader, BinaryEdgeWriter, EdgeSource};
/// use ebv_graph::Edge;
///
/// # fn main() -> Result<(), ebv_stream::StreamError> {
/// let mut buffer = Vec::new();
/// let mut writer = BinaryEdgeWriter::new(&mut buffer)?;
/// writer.write_edge(Edge::from((3u64, 70_000u64)))?;
/// writer.finish()?;
///
/// let mut reader = BinaryEdgeReader::new(buffer.as_slice())?;
/// assert_eq!(reader.next_edge().unwrap()?, Edge::from((3u64, 70_000u64)));
/// assert!(reader.next_edge().is_none());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct BinaryEdgeWriter<W: Write> {
    writer: BufWriter<W>,
    edges_written: usize,
}

impl<W: Write> BinaryEdgeWriter<W> {
    /// Starts a new stream by writing the magic header.
    ///
    /// # Errors
    ///
    /// Returns [`StreamError::Io`] when writing fails.
    pub fn new(inner: W) -> Result<Self> {
        let mut writer = BufWriter::new(inner);
        writer.write_all(&MAGIC)?;
        Ok(BinaryEdgeWriter {
            writer,
            edges_written: 0,
        })
    }

    /// Appends one edge.
    ///
    /// # Errors
    ///
    /// Returns [`StreamError::Io`] when writing fails.
    pub fn write_edge(&mut self, edge: Edge) -> Result<()> {
        varint::write_u64(&mut self.writer, edge.src.raw())?;
        varint::write_u64(&mut self.writer, edge.dst.raw())?;
        self.edges_written += 1;
        Ok(())
    }

    /// Number of edges written so far.
    pub fn edges_written(&self) -> usize {
        self.edges_written
    }

    /// Flushes and closes the stream.
    ///
    /// # Errors
    ///
    /// Returns [`StreamError::Io`] when flushing fails.
    pub fn finish(mut self) -> Result<()> {
        self.writer.flush()?;
        Ok(())
    }
}

impl BinaryEdgeWriter<File> {
    /// Creates a binary edge-stream file.
    ///
    /// # Errors
    ///
    /// Returns [`StreamError::Io`] when the file cannot be created.
    pub fn create<P: AsRef<Path>>(path: P) -> Result<Self> {
        BinaryEdgeWriter::new(File::create(path)?)
    }
}

/// Streaming deserializer for the binary edge-stream format; see
/// [`BinaryEdgeWriter`].
#[derive(Debug)]
pub struct BinaryEdgeReader<R> {
    reader: BufReader<R>,
    offset: u64,
}

impl<R: Read> BinaryEdgeReader<R> {
    /// Opens a stream, validating the magic header.
    ///
    /// # Errors
    ///
    /// Returns [`StreamError::InvalidFormat`] when the magic does not match
    /// and [`StreamError::Io`] on read failures.
    pub fn new(inner: R) -> Result<Self> {
        let mut reader = BufReader::new(inner);
        let mut magic = [0u8; 8];
        reader.read_exact(&mut magic).map_err(|err| {
            if err.kind() == std::io::ErrorKind::UnexpectedEof {
                StreamError::InvalidFormat {
                    offset: 0,
                    message: "stream shorter than the 8-byte magic header".to_string(),
                }
            } else {
                StreamError::Io(err)
            }
        })?;
        if magic != MAGIC {
            return Err(StreamError::InvalidFormat {
                offset: 0,
                message: format!("bad magic {magic:?}, expected {MAGIC:?}"),
            });
        }
        Ok(BinaryEdgeReader { reader, offset: 8 })
    }

    /// Reads one varint via the shared strict codec; `Ok(None)` on clean
    /// EOF at the first byte when `allow_eof` is set.
    fn read_varint(&mut self, allow_eof: bool) -> Result<Option<u64>> {
        let invalid = |offset: u64, message: &str| StreamError::InvalidFormat {
            offset,
            message: message.to_string(),
        };
        match varint::read_u64(&mut self.reader, &mut self.offset) {
            Ok(Some(value)) => Ok(Some(value)),
            Ok(None) if allow_eof => Ok(None),
            Ok(None) => Err(invalid(self.offset, "stream truncated mid-edge")),
            Err(VarintError::Truncated) => Err(invalid(self.offset, "stream truncated mid-edge")),
            Err(VarintError::Overflow) => Err(invalid(self.offset, "varint overflows u64")),
            Err(VarintError::NonCanonical) => Err(invalid(
                self.offset,
                "non-canonical over-long varint encoding",
            )),
            Err(VarintError::Io(err)) => Err(StreamError::Io(err)),
        }
    }
}

impl BinaryEdgeReader<File> {
    /// Opens a binary edge-stream file.
    ///
    /// # Errors
    ///
    /// See [`BinaryEdgeReader::new`].
    pub fn open<P: AsRef<Path>>(path: P) -> Result<Self> {
        BinaryEdgeReader::new(File::open(path)?)
    }
}

impl<R: Read> EdgeSource for BinaryEdgeReader<R> {
    fn next_edge(&mut self) -> Option<Result<Edge>> {
        let src = match self.read_varint(true) {
            Ok(Some(src)) => src,
            Ok(None) => return None,
            Err(err) => return Some(Err(err)),
        };
        match self.read_varint(false) {
            Ok(Some(dst)) => Some(Ok(Edge::from((src, dst)))),
            // `allow_eof = false` maps EOF to InvalidFormat, so plain
            // unreachable data never reaches here.
            Ok(None) => unreachable!("read_varint(false) never yields None"),
            Err(err) => Some(Err(err)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(edges: &[(u64, u64)]) -> Vec<Edge> {
        let mut buffer = Vec::new();
        let mut writer = BinaryEdgeWriter::new(&mut buffer).unwrap();
        for &pair in edges {
            writer.write_edge(Edge::from(pair)).unwrap();
        }
        writer.finish().unwrap();
        let mut reader = BinaryEdgeReader::new(buffer.as_slice()).unwrap();
        let mut out = Vec::new();
        while let Some(edge) = reader.next_edge() {
            out.push(edge.unwrap());
        }
        out
    }

    #[test]
    fn roundtrips_varied_magnitudes() {
        let edges = [
            (0, 1),
            (127, 128),
            (16_383, 16_384),
            (u64::MAX, 42),
            (1 << 40, (1 << 50) + 3),
        ];
        let out = roundtrip(&edges);
        assert_eq!(out.len(), edges.len());
        for (edge, &(s, d)) in out.iter().zip(&edges) {
            assert_eq!(*edge, Edge::from((s, d)));
        }
    }

    #[test]
    fn empty_stream_roundtrips() {
        assert_eq!(roundtrip(&[]), Vec::new());
    }

    #[test]
    fn compactness_beats_fixed_width_for_small_ids() {
        let mut buffer = Vec::new();
        let mut writer = BinaryEdgeWriter::new(&mut buffer).unwrap();
        for i in 0..1000u64 {
            writer
                .write_edge(Edge::from((i % 100, (i + 1) % 100)))
                .unwrap();
        }
        assert_eq!(writer.edges_written(), 1000);
        writer.finish().unwrap();
        // 8 magic + 2 bytes per edge, far below 16 bytes per edge.
        assert!(buffer.len() < 8 + 1000 * 4, "{} bytes", buffer.len());
    }

    #[test]
    fn bad_magic_is_rejected() {
        let err = BinaryEdgeReader::new(&b"NOTMAGIC rest"[..]).unwrap_err();
        assert!(matches!(err, StreamError::InvalidFormat { offset: 0, .. }));
        let err = BinaryEdgeReader::new(&b"EBV"[..]).unwrap_err();
        assert!(matches!(err, StreamError::InvalidFormat { offset: 0, .. }));
    }

    #[test]
    fn over_long_varint_encodings_are_rejected() {
        // `src = [0x80, 0x00]` is a non-canonical encoding of zero: the
        // continuation byte contributes no bits. A strict reader must
        // refuse it — WAL framing reuses this decoder, and canonical
        // encodings are what make re-encoded frames byte-identical.
        let mut buffer = MAGIC.to_vec();
        buffer.extend_from_slice(&[0x80, 0x00, 0x05]);
        let mut reader = BinaryEdgeReader::new(buffer.as_slice()).unwrap();
        let err = reader.next_edge().unwrap().unwrap_err();
        match err {
            StreamError::InvalidFormat { offset, message } => {
                assert_eq!(offset, 10, "both bytes of the bad varint consumed");
                assert!(message.contains("non-canonical"), "{message}");
            }
            other => panic!("expected InvalidFormat, got {other:?}"),
        }
    }

    #[test]
    fn truncation_mid_edge_is_detected() {
        let mut buffer = Vec::new();
        let mut writer = BinaryEdgeWriter::new(&mut buffer).unwrap();
        writer.write_edge(Edge::from((300u64, 400u64))).unwrap();
        writer.finish().unwrap();
        // Drop the final byte: the second varint of the edge is now cut off.
        buffer.pop();
        let mut reader = BinaryEdgeReader::new(buffer.as_slice()).unwrap();
        let err = reader.next_edge().unwrap().unwrap_err();
        assert!(matches!(err, StreamError::InvalidFormat { .. }));
    }
}
