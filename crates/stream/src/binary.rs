//! A compact binary edge-stream format.
//!
//! Layout: an 8-byte magic (`EBVSTRM` plus a format version byte) followed
//! by edges as pairs of LEB128 varint-encoded vertex identifiers. Typical
//! social-network edge lists compress to 2–6 bytes per endpoint instead of
//! the 8 of fixed-width `u64`, and the format needs no length prefix — the
//! stream simply ends at a pair boundary.

use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

use ebv_graph::Edge;

use crate::error::{Result, StreamError};
use crate::source::EdgeSource;

/// Magic bytes opening every binary edge stream (version 1).
pub const MAGIC: [u8; 8] = *b"EBVSTRM\x01";

/// Writes the LEB128 varint encoding of `value`.
fn write_varint<W: Write>(writer: &mut W, mut value: u64) -> Result<()> {
    loop {
        let byte = (value & 0x7F) as u8;
        value >>= 7;
        if value == 0 {
            writer.write_all(&[byte])?;
            return Ok(());
        }
        writer.write_all(&[byte | 0x80])?;
    }
}

/// Serializer for the binary edge-stream format.
///
/// # Examples
///
/// ```
/// use ebv_stream::{BinaryEdgeReader, BinaryEdgeWriter, EdgeSource};
/// use ebv_graph::Edge;
///
/// # fn main() -> Result<(), ebv_stream::StreamError> {
/// let mut buffer = Vec::new();
/// let mut writer = BinaryEdgeWriter::new(&mut buffer)?;
/// writer.write_edge(Edge::from((3u64, 70_000u64)))?;
/// writer.finish()?;
///
/// let mut reader = BinaryEdgeReader::new(buffer.as_slice())?;
/// assert_eq!(reader.next_edge().unwrap()?, Edge::from((3u64, 70_000u64)));
/// assert!(reader.next_edge().is_none());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct BinaryEdgeWriter<W: Write> {
    writer: BufWriter<W>,
    edges_written: usize,
}

impl<W: Write> BinaryEdgeWriter<W> {
    /// Starts a new stream by writing the magic header.
    ///
    /// # Errors
    ///
    /// Returns [`StreamError::Io`] when writing fails.
    pub fn new(inner: W) -> Result<Self> {
        let mut writer = BufWriter::new(inner);
        writer.write_all(&MAGIC)?;
        Ok(BinaryEdgeWriter {
            writer,
            edges_written: 0,
        })
    }

    /// Appends one edge.
    ///
    /// # Errors
    ///
    /// Returns [`StreamError::Io`] when writing fails.
    pub fn write_edge(&mut self, edge: Edge) -> Result<()> {
        write_varint(&mut self.writer, edge.src.raw())?;
        write_varint(&mut self.writer, edge.dst.raw())?;
        self.edges_written += 1;
        Ok(())
    }

    /// Number of edges written so far.
    pub fn edges_written(&self) -> usize {
        self.edges_written
    }

    /// Flushes and closes the stream.
    ///
    /// # Errors
    ///
    /// Returns [`StreamError::Io`] when flushing fails.
    pub fn finish(mut self) -> Result<()> {
        self.writer.flush()?;
        Ok(())
    }
}

impl BinaryEdgeWriter<File> {
    /// Creates a binary edge-stream file.
    ///
    /// # Errors
    ///
    /// Returns [`StreamError::Io`] when the file cannot be created.
    pub fn create<P: AsRef<Path>>(path: P) -> Result<Self> {
        BinaryEdgeWriter::new(File::create(path)?)
    }
}

/// Streaming deserializer for the binary edge-stream format; see
/// [`BinaryEdgeWriter`].
#[derive(Debug)]
pub struct BinaryEdgeReader<R> {
    reader: BufReader<R>,
    offset: u64,
}

impl<R: Read> BinaryEdgeReader<R> {
    /// Opens a stream, validating the magic header.
    ///
    /// # Errors
    ///
    /// Returns [`StreamError::InvalidFormat`] when the magic does not match
    /// and [`StreamError::Io`] on read failures.
    pub fn new(inner: R) -> Result<Self> {
        let mut reader = BufReader::new(inner);
        let mut magic = [0u8; 8];
        reader.read_exact(&mut magic).map_err(|err| {
            if err.kind() == std::io::ErrorKind::UnexpectedEof {
                StreamError::InvalidFormat {
                    offset: 0,
                    message: "stream shorter than the 8-byte magic header".to_string(),
                }
            } else {
                StreamError::Io(err)
            }
        })?;
        if magic != MAGIC {
            return Err(StreamError::InvalidFormat {
                offset: 0,
                message: format!("bad magic {magic:?}, expected {MAGIC:?}"),
            });
        }
        Ok(BinaryEdgeReader { reader, offset: 8 })
    }

    /// Reads one varint; `Ok(None)` on clean EOF at the first byte.
    fn read_varint(&mut self, allow_eof: bool) -> Result<Option<u64>> {
        let mut value: u64 = 0;
        let mut shift: u32 = 0;
        let mut first = true;
        loop {
            let mut byte = [0u8; 1];
            match self.reader.read_exact(&mut byte) {
                Ok(()) => {}
                Err(err) if err.kind() == std::io::ErrorKind::UnexpectedEof => {
                    if first && allow_eof {
                        return Ok(None);
                    }
                    return Err(StreamError::InvalidFormat {
                        offset: self.offset,
                        message: "stream truncated mid-edge".to_string(),
                    });
                }
                Err(err) => return Err(StreamError::Io(err)),
            }
            self.offset += 1;
            if shift >= 64 || (shift == 63 && byte[0] & 0x7E != 0) {
                return Err(StreamError::InvalidFormat {
                    offset: self.offset,
                    message: "varint overflows u64".to_string(),
                });
            }
            value |= u64::from(byte[0] & 0x7F) << shift;
            if byte[0] & 0x80 == 0 {
                return Ok(Some(value));
            }
            shift += 7;
            first = false;
        }
    }
}

impl BinaryEdgeReader<File> {
    /// Opens a binary edge-stream file.
    ///
    /// # Errors
    ///
    /// See [`BinaryEdgeReader::new`].
    pub fn open<P: AsRef<Path>>(path: P) -> Result<Self> {
        BinaryEdgeReader::new(File::open(path)?)
    }
}

impl<R: Read> EdgeSource for BinaryEdgeReader<R> {
    fn next_edge(&mut self) -> Option<Result<Edge>> {
        let src = match self.read_varint(true) {
            Ok(Some(src)) => src,
            Ok(None) => return None,
            Err(err) => return Some(Err(err)),
        };
        match self.read_varint(false) {
            Ok(Some(dst)) => Some(Ok(Edge::from((src, dst)))),
            // `allow_eof = false` maps EOF to InvalidFormat, so plain
            // unreachable data never reaches here.
            Ok(None) => unreachable!("read_varint(false) never yields None"),
            Err(err) => Some(Err(err)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(edges: &[(u64, u64)]) -> Vec<Edge> {
        let mut buffer = Vec::new();
        let mut writer = BinaryEdgeWriter::new(&mut buffer).unwrap();
        for &pair in edges {
            writer.write_edge(Edge::from(pair)).unwrap();
        }
        writer.finish().unwrap();
        let mut reader = BinaryEdgeReader::new(buffer.as_slice()).unwrap();
        let mut out = Vec::new();
        while let Some(edge) = reader.next_edge() {
            out.push(edge.unwrap());
        }
        out
    }

    #[test]
    fn roundtrips_varied_magnitudes() {
        let edges = [
            (0, 1),
            (127, 128),
            (16_383, 16_384),
            (u64::MAX, 42),
            (1 << 40, (1 << 50) + 3),
        ];
        let out = roundtrip(&edges);
        assert_eq!(out.len(), edges.len());
        for (edge, &(s, d)) in out.iter().zip(&edges) {
            assert_eq!(*edge, Edge::from((s, d)));
        }
    }

    #[test]
    fn empty_stream_roundtrips() {
        assert_eq!(roundtrip(&[]), Vec::new());
    }

    #[test]
    fn compactness_beats_fixed_width_for_small_ids() {
        let mut buffer = Vec::new();
        let mut writer = BinaryEdgeWriter::new(&mut buffer).unwrap();
        for i in 0..1000u64 {
            writer
                .write_edge(Edge::from((i % 100, (i + 1) % 100)))
                .unwrap();
        }
        assert_eq!(writer.edges_written(), 1000);
        writer.finish().unwrap();
        // 8 magic + 2 bytes per edge, far below 16 bytes per edge.
        assert!(buffer.len() < 8 + 1000 * 4, "{} bytes", buffer.len());
    }

    #[test]
    fn bad_magic_is_rejected() {
        let err = BinaryEdgeReader::new(&b"NOTMAGIC rest"[..]).unwrap_err();
        assert!(matches!(err, StreamError::InvalidFormat { offset: 0, .. }));
        let err = BinaryEdgeReader::new(&b"EBV"[..]).unwrap_err();
        assert!(matches!(err, StreamError::InvalidFormat { offset: 0, .. }));
    }

    #[test]
    fn truncation_mid_edge_is_detected() {
        let mut buffer = Vec::new();
        let mut writer = BinaryEdgeWriter::new(&mut buffer).unwrap();
        writer.write_edge(Edge::from((300u64, 400u64))).unwrap();
        writer.finish().unwrap();
        // Drop the final byte: the second varint of the edge is now cut off.
        buffer.pop();
        let mut reader = BinaryEdgeReader::new(buffer.as_slice()).unwrap();
        let err = reader.next_edge().unwrap().unwrap_err();
        assert!(matches!(err, StreamError::InvalidFormat { .. }));
    }
}
