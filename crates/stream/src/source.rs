//! The [`EdgeSource`] abstraction: anything that can deliver edges one at a
//! time.

use ebv_graph::{Edge, Graph};
use ebv_partition::StreamConfig;

use crate::error::Result;

/// A fallible, pull-based stream of edges.
///
/// Sources deliver edges in a fixed arrival order; a [`StreamingPartitioner`]
/// (see [`ebv_partition::streaming`]) consumes them in that order. Sources
/// optionally know their cardinalities up front
/// ([`expected_edges`](EdgeSource::expected_edges) /
/// [`expected_vertices`](EdgeSource::expected_vertices)), which
/// [`stream_config`](EdgeSource::stream_config) turns into the hints EBV
/// needs for exact batch equivalence.
///
/// [`StreamingPartitioner`]: ebv_partition::StreamingPartitioner
pub trait EdgeSource {
    /// Pulls the next edge: `None` at end of stream, `Some(Err(_))` when
    /// the underlying reader failed or the input is malformed.
    fn next_edge(&mut self) -> Option<Result<Edge>>;

    /// Total number of edges the stream will deliver, when known up front.
    fn expected_edges(&self) -> Option<usize> {
        None
    }

    /// Size of the dense vertex universe the stream references, when known
    /// up front.
    fn expected_vertices(&self) -> Option<usize> {
        None
    }

    /// Builds a [`StreamConfig`] for `num_partitions` partitions carrying
    /// whatever cardinality hints this source knows.
    fn stream_config(&self, num_partitions: usize) -> StreamConfig {
        let mut config = StreamConfig::new(num_partitions);
        if let Some(v) = self.expected_vertices() {
            config = config.with_expected_vertices(v);
        }
        if let Some(e) = self.expected_edges() {
            config = config.with_expected_edges(e);
        }
        config
    }
}

/// An [`EdgeSource`] over any infallible iterator of `(src, dst)` pairs.
///
/// # Examples
///
/// ```
/// use ebv_stream::{pairs, EdgeSource};
///
/// let mut source = pairs(vec![(0, 1), (1, 2)]);
/// assert_eq!(source.next_edge().unwrap().unwrap().src.raw(), 0);
/// ```
pub fn pairs<I>(pairs: I) -> PairSource<I::IntoIter>
where
    I: IntoIterator<Item = (u64, u64)>,
{
    PairSource {
        inner: pairs.into_iter(),
    }
}

/// See [`pairs`].
#[derive(Debug, Clone)]
pub struct PairSource<I> {
    inner: I,
}

impl<I: Iterator<Item = (u64, u64)>> EdgeSource for PairSource<I> {
    fn next_edge(&mut self) -> Option<Result<Edge>> {
        self.inner.next().map(|pair| Ok(Edge::from(pair)))
    }

    fn expected_edges(&self) -> Option<usize> {
        match self.inner.size_hint() {
            (lo, Some(hi)) if lo == hi => Some(hi),
            _ => None,
        }
    }
}

/// An [`EdgeSource`] replaying the edge list of a materialized [`Graph`] in
/// insertion order. Useful for tests and for comparing streaming against
/// batch results; production pipelines should stream from a reader or
/// generator instead.
#[derive(Debug, Clone)]
pub struct GraphEdgeSource<'a> {
    graph: &'a Graph,
    next: usize,
}

impl<'a> GraphEdgeSource<'a> {
    /// Creates a source replaying `graph.edges()`.
    pub fn new(graph: &'a Graph) -> Self {
        GraphEdgeSource { graph, next: 0 }
    }
}

impl EdgeSource for GraphEdgeSource<'_> {
    fn next_edge(&mut self) -> Option<Result<Edge>> {
        let edge = self.graph.edges().get(self.next).copied()?;
        self.next += 1;
        Some(Ok(edge))
    }

    fn expected_edges(&self) -> Option<usize> {
        Some(self.graph.num_edges())
    }

    fn expected_vertices(&self) -> Option<usize> {
        Some(self.graph.num_vertices())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_source_delivers_in_order_with_exact_hint() {
        let mut source = pairs(vec![(0, 1), (2, 3), (1, 0)]);
        assert_eq!(source.expected_edges(), Some(3));
        let mut seen = Vec::new();
        while let Some(edge) = source.next_edge() {
            seen.push(edge.unwrap());
        }
        assert_eq!(seen.len(), 3);
        assert_eq!(seen[1], Edge::from((2u64, 3u64)));
    }

    #[test]
    fn graph_source_replays_the_edge_list() {
        let graph = Graph::from_edges(vec![(0, 1), (1, 2)]).unwrap();
        let mut source = GraphEdgeSource::new(&graph);
        assert_eq!(source.expected_edges(), Some(2));
        assert_eq!(source.expected_vertices(), Some(3));
        let config = source.stream_config(2);
        assert_eq!(config.expected_edges(), Some(2));
        assert_eq!(config.expected_vertices(), Some(3));
        let mut count = 0;
        while source.next_edge().is_some() {
            count += 1;
        }
        assert_eq!(count, 2);
    }
}
