//! Property tests for warm-started BSP re-execution across mutation epochs
//! (the PR 3 tentpole): over seeded churned R-MAT streams,
//!
//! 1. warm-started Connected Components
//!    ([`IncrementalConnectedComponents`] via `BspEngine::run_warm`) is
//!    **bit-identical** to a cold [`ConnectedComponents`] run after *every*
//!    insert/delete epoch — the final labels are the per-component minimum
//!    vertex ids, a pure function of the surviving graph;
//! 2. warm-started PageRank seeded from a previous epoch's ranks matches a
//!    cold run of the same kernel and iteration count within tolerance
//!    (both sit within the power-iteration contraction bound of the same
//!    fixpoint);
//! 3. the incremental epochs driving both never rebuild more workers than
//!    the distribution has.

use proptest::prelude::*;

use ebv_algorithms::{
    ranks, ConnectedComponents, IncrementalConnectedComponents, IncrementalPageRank,
};
use ebv_bsp::{BspEngine, DistributedGraph};
use ebv_dynamic::{ChurnStream, EventPipeline, InsertEvents};
use ebv_partition::EbvPartitioner;
use ebv_stream::{EdgeSource, RmatEdgeStream};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Warm CC equals cold CC bit-for-bit after every churned epoch.
    #[test]
    fn warm_cc_is_bit_identical_across_churned_epochs(
        scale in 5u32..8,
        num_edges in 60usize..400,
        seed in 0u64..400,
        churn in 1u32..6,
        p in 2usize..6,
        batch_size in 24usize..160,
    ) {
        let stream = RmatEdgeStream::new(scale, num_edges).with_seed(seed);
        let mut partitioner = EbvPartitioner::new()
            .dynamic(stream.stream_config(p))
            .unwrap();
        let mut distributed =
            DistributedGraph::build_streaming(p, Some(1 << scale), Vec::new()).unwrap();
        let engine = BspEngine::sequential();
        let mut labels = engine
            .run(&distributed, &ConnectedComponents::new())
            .unwrap()
            .values;

        let churned = ChurnStream::new(stream, churn as f64 / 10.0)
            .unwrap()
            .with_seed(seed + 1);
        let mut epochs = 0usize;
        EventPipeline::new(batch_size)
            .run(churned, &mut partitioner, |batch, _| {
                let program = IncrementalConnectedComponents::from_batch(&labels, batch);
                let stats = distributed.apply_mutations(batch)?;
                assert!(stats.workers_touched <= p);
                let warm = engine.run_warm(&distributed, &program, &labels).unwrap();
                let cold = engine
                    .run(&distributed, &ConnectedComponents::new())
                    .unwrap();
                assert_eq!(
                    warm.values, cold.values,
                    "warm CC diverged at epoch {}",
                    distributed.epoch()
                );
                labels = warm.values;
                epochs += 1;
                Ok(())
            })
            .unwrap();
        prop_assert!(epochs >= 1);
        prop_assert_eq!(distributed.num_edges(), partitioner.live_edges());
    }

    /// Warm PageRank seeded from a pre-churn epoch's ranks matches a cold
    /// run of the same kernel and iteration count within tolerance on the
    /// post-churn graph.
    #[test]
    fn warm_pagerank_matches_cold_within_tolerance(
        scale in 5u32..8,
        num_edges in 80usize..400,
        seed in 0u64..400,
        churn in 1u32..5,
        p in 2usize..6,
    ) {
        const ITERATIONS: usize = 40;
        const TOLERANCE: f64 = 1e-3;

        let stream = RmatEdgeStream::new(scale, num_edges).with_seed(seed);
        let mut partitioner = EbvPartitioner::new()
            .dynamic(stream.stream_config(p))
            .unwrap();
        let mut distributed =
            DistributedGraph::build_streaming(p, Some(1 << scale), Vec::new()).unwrap();
        let engine = BspEngine::sequential();

        // Epoch 0: insert-only build, cold ranks become the warm seed.
        EventPipeline::new(64)
            .run_applied(
                InsertEvents::new(stream),
                &mut partitioner,
                &mut distributed,
                |_, _, _| Ok(()),
            )
            .unwrap();
        let prior = engine
            .run(
                &distributed,
                &IncrementalPageRank::from_distributed(&distributed, ITERATIONS),
            )
            .unwrap()
            .values;

        // Churned epochs mutate the graph under the stale ranks.
        let churned = ChurnStream::new(
            RmatEdgeStream::new(scale, num_edges / 2).with_seed(seed + 7),
            churn as f64 / 10.0,
        )
        .unwrap()
        .with_seed(seed + 3);
        EventPipeline::new(64)
            .run_applied(churned, &mut partitioner, &mut distributed, |_, _, _| {
                Ok(())
            })
            .unwrap();

        let program = IncrementalPageRank::from_distributed(&distributed, ITERATIONS);
        let warm = engine.run_warm(&distributed, &program, &prior).unwrap();
        let cold = engine.run(&distributed, &program).unwrap();
        for (i, (a, b)) in ranks(&warm.values).iter().zip(ranks(&cold.values)).enumerate() {
            prop_assert!(
                (a - b).abs() < TOLERANCE,
                "vertex {}: warm {} vs cold {}",
                i, a, b
            );
        }
        // The bit-exact message gating means the warm run, which starts
        // near the fixpoint, never out-talks the cold run.
        prop_assert!(warm.stats.total_messages() <= cold.stats.total_messages());
    }
}
