//! Property tests for warm-started BSP re-execution across mutation epochs
//! (the PR 3 and PR 4 tentpoles): over seeded churned R-MAT streams,
//!
//! 1. warm-started Connected Components
//!    ([`IncrementalConnectedComponents`] via `BspEngine::run_warm`) is
//!    **bit-identical** to a cold [`ConnectedComponents`] run after *every*
//!    insert/delete epoch — the final labels are the per-component minimum
//!    vertex ids, a pure function of the surviving graph;
//! 2. warm-started PageRank seeded from a previous epoch's ranks matches a
//!    cold run of the same kernel and iteration count within tolerance
//!    (both sit within the power-iteration contraction bound of the same
//!    fixpoint);
//! 3. warm-started SSSP ([`IncrementalSssp`]) is **distance-equal** and
//!    warm-started BFS ([`IncrementalBfs`]) **bit-identical** to cold runs
//!    after every churned epoch, including deletion-heavy batches that
//!    disconnect previously-settled vertices (their distances must re-settle
//!    to unreachable, never keep a stale finite value);
//! 4. the incremental epochs driving them never rebuild more workers than
//!    the distribution has.

use proptest::prelude::*;

use ebv_algorithms::{
    ranks, BreadthFirstSearch, ConnectedComponents, IncrementalBfs, IncrementalConnectedComponents,
    IncrementalPageRank, IncrementalSssp, SingleSourceShortestPath, UNREACHABLE,
};
use ebv_bsp::{BspEngine, DistributedGraph, MutationBatch};
use ebv_dynamic::{ChurnStream, EventPipeline, InsertEvents};
use ebv_graph::VertexId;
use ebv_partition::EbvPartitioner;
use ebv_stream::{EdgeSource, RmatEdgeStream};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Warm CC equals cold CC bit-for-bit after every churned epoch.
    #[test]
    fn warm_cc_is_bit_identical_across_churned_epochs(
        scale in 5u32..8,
        num_edges in 60usize..400,
        seed in 0u64..400,
        churn in 1u32..6,
        p in 2usize..6,
        batch_size in 24usize..160,
    ) {
        let stream = RmatEdgeStream::new(scale, num_edges).with_seed(seed);
        let mut partitioner = EbvPartitioner::new()
            .dynamic(stream.stream_config(p))
            .unwrap();
        let mut distributed =
            DistributedGraph::build_streaming(p, Some(1 << scale), Vec::new()).unwrap();
        let engine = BspEngine::sequential();
        let mut labels = engine
            .run(&distributed, &ConnectedComponents::new())
            .unwrap()
            .values;

        let churned = ChurnStream::new(stream, churn as f64 / 10.0)
            .unwrap()
            .with_seed(seed + 1);
        let mut epochs = 0usize;
        EventPipeline::new(batch_size)
            .run(churned, &mut partitioner, |batch, _| {
                let program = IncrementalConnectedComponents::from_batch(&labels, batch);
                let stats = distributed.apply_mutations(batch)?;
                assert!(stats.workers_touched <= p);
                let warm = engine.run_warm(&distributed, &program, &labels).unwrap();
                let cold = engine
                    .run(&distributed, &ConnectedComponents::new())
                    .unwrap();
                assert_eq!(
                    warm.values, cold.values,
                    "warm CC diverged at epoch {}",
                    distributed.epoch()
                );
                labels = warm.values;
                epochs += 1;
                Ok(())
            })
            .unwrap();
        prop_assert!(epochs >= 1);
        prop_assert_eq!(distributed.num_edges(), partitioner.live_edges());
    }

    /// Warm PageRank seeded from a pre-churn epoch's ranks matches a cold
    /// run of the same kernel and iteration count within tolerance on the
    /// post-churn graph.
    #[test]
    fn warm_pagerank_matches_cold_within_tolerance(
        scale in 5u32..8,
        num_edges in 80usize..400,
        seed in 0u64..400,
        churn in 1u32..5,
        p in 2usize..6,
    ) {
        const ITERATIONS: usize = 40;
        const TOLERANCE: f64 = 1e-3;

        let stream = RmatEdgeStream::new(scale, num_edges).with_seed(seed);
        let mut partitioner = EbvPartitioner::new()
            .dynamic(stream.stream_config(p))
            .unwrap();
        let mut distributed =
            DistributedGraph::build_streaming(p, Some(1 << scale), Vec::new()).unwrap();
        let engine = BspEngine::sequential();

        // Epoch 0: insert-only build, cold ranks become the warm seed.
        EventPipeline::new(64)
            .run_applied(
                InsertEvents::new(stream),
                &mut partitioner,
                &mut distributed,
                |_, _, _, _| Ok(()),
            )
            .unwrap();
        let prior = engine
            .run(
                &distributed,
                &IncrementalPageRank::from_distributed(&distributed, ITERATIONS),
            )
            .unwrap()
            .values;

        // Churned epochs mutate the graph under the stale ranks.
        let churned = ChurnStream::new(
            RmatEdgeStream::new(scale, num_edges / 2).with_seed(seed + 7),
            churn as f64 / 10.0,
        )
        .unwrap()
        .with_seed(seed + 3);
        EventPipeline::new(64)
            .run_applied(churned, &mut partitioner, &mut distributed, |_, _, _, _| {
                Ok(())
            })
            .unwrap();

        let program = IncrementalPageRank::from_distributed(&distributed, ITERATIONS);
        let warm = engine.run_warm(&distributed, &program, &prior).unwrap();
        let cold = engine.run(&distributed, &program).unwrap();
        for (i, (a, b)) in ranks(&warm.values).iter().zip(ranks(&cold.values)).enumerate() {
            prop_assert!(
                (a - b).abs() < TOLERANCE,
                "vertex {}: warm {} vs cold {}",
                i, a, b
            );
        }
        // The bit-exact message gating means the warm run, which starts
        // near the fixpoint, never out-talks the cold run.
        prop_assert!(warm.stats.total_messages() <= cold.stats.total_messages());
    }

    /// Warm SSSP distances and warm BFS depths equal cold runs bit-for-bit
    /// after every churned epoch, driven through the incremental
    /// `EventPipeline::run_applied` loop.
    #[test]
    fn warm_sssp_and_bfs_equal_cold_across_churned_epochs(
        scale in 5u32..8,
        num_edges in 60usize..400,
        seed in 0u64..400,
        churn in 1u32..6,
        p in 2usize..6,
        batch_size in 24usize..160,
    ) {
        let source = VertexId::new(0);
        let stream = RmatEdgeStream::new(scale, num_edges).with_seed(seed);
        let mut partitioner = EbvPartitioner::new()
            .dynamic(stream.stream_config(p))
            .unwrap();
        let mut distributed =
            DistributedGraph::build_streaming(p, Some(1 << scale), Vec::new()).unwrap();
        let engine = BspEngine::sequential();
        let mut distances = engine
            .run(&distributed, &SingleSourceShortestPath::new(source))
            .unwrap()
            .values;
        let mut depths = engine
            .run(&distributed, &BreadthFirstSearch::new(source))
            .unwrap()
            .values;

        let churned = ChurnStream::new(stream, churn as f64 / 10.0)
            .unwrap()
            .with_seed(seed + 1);
        let mut epochs = 0usize;
        EventPipeline::new(batch_size)
            .run_applied(churned, &mut partitioner, &mut distributed, |dg, batch, _, stats| {
                assert!(stats.workers_touched <= p);
                // Exercise both constructors: the precise cone for SSSP
                // (`run_applied` hands the post-mutation distribution the
                // constructor expects), the graph-free horizon for BFS.
                let sssp = IncrementalSssp::from_distributed(source, dg, &distances, batch);
                let bfs = IncrementalBfs::from_batch(source, &depths, batch);
                let warm_sssp = engine.run_warm(dg, &sssp, &distances).unwrap();
                let cold_sssp = engine
                    .run(dg, &SingleSourceShortestPath::new(source))
                    .unwrap();
                assert_eq!(
                    warm_sssp.values, cold_sssp.values,
                    "warm SSSP diverged at epoch {}",
                    dg.epoch()
                );
                let warm_bfs = engine.run_warm(dg, &bfs, &depths).unwrap();
                let cold_bfs = engine
                    .run(dg, &BreadthFirstSearch::new(source))
                    .unwrap();
                assert_eq!(
                    warm_bfs.values, cold_bfs.values,
                    "warm BFS diverged at epoch {}",
                    dg.epoch()
                );
                // Unit-weight SSSP and BFS are the same function.
                assert_eq!(warm_sssp.values, warm_bfs.values);
                distances = warm_sssp.values;
                depths = warm_bfs.values;
                epochs += 1;
                Ok(())
            })
            .unwrap();
        prop_assert!(epochs >= 1);
        prop_assert_eq!(distributed.num_edges(), partitioner.live_edges());
    }

    /// Deletion-heavy batches that disconnect previously-settled vertices:
    /// after deleting every `step`-th surviving edge (step 1 = all of them)
    /// warm SSSP/BFS still equal cold runs, and every settled vertex severed
    /// from the source re-settles to unreachable instead of keeping its
    /// stale finite distance.
    #[test]
    fn deletion_heavy_batches_resettle_disconnected_vertices(
        scale in 5u32..8,
        num_edges in 60usize..300,
        seed in 0u64..400,
        p in 2usize..6,
        step in 1usize..4,
    ) {
        let source = VertexId::new(0);
        let stream = RmatEdgeStream::new(scale, num_edges).with_seed(seed);
        let mut partitioner = EbvPartitioner::new()
            .dynamic(stream.stream_config(p))
            .unwrap();
        let mut distributed =
            DistributedGraph::build_streaming(p, Some(1 << scale), Vec::new()).unwrap();
        let engine = BspEngine::sequential();
        EventPipeline::new(64)
            .run_applied(
                InsertEvents::new(stream),
                &mut partitioner,
                &mut distributed,
                |_, _, _, _| Ok(()),
            )
            .unwrap();
        let prior_sssp = engine
            .run(&distributed, &SingleSourceShortestPath::new(source))
            .unwrap()
            .values;
        let prior_bfs = engine
            .run(&distributed, &BreadthFirstSearch::new(source))
            .unwrap()
            .values;
        prop_assert_eq!(&prior_sssp, &prior_bfs);

        // One deletion-heavy batch over the survivors.
        let victims: Vec<_> = partitioner.surviving().collect();
        let mut batch = MutationBatch::new();
        for &(edge, _) in victims.iter().step_by(step) {
            batch.record_delete(edge, partitioner.delete(edge).unwrap());
        }
        let sssp = IncrementalSssp::from_batch(source, &prior_sssp, &batch);
        let bfs = IncrementalBfs::from_batch(source, &prior_bfs, &batch);
        distributed.apply_mutations(&batch).unwrap();

        let warm = engine.run_warm(&distributed, &sssp, &prior_sssp).unwrap();
        let cold = engine
            .run(&distributed, &SingleSourceShortestPath::new(source))
            .unwrap();
        prop_assert_eq!(&warm.values, &cold.values, "deletion-heavy warm SSSP diverged");
        let warm_bfs = engine.run_warm(&distributed, &bfs, &prior_bfs).unwrap();
        let cold_bfs = engine
            .run(&distributed, &BreadthFirstSearch::new(source))
            .unwrap();
        prop_assert_eq!(&warm_bfs.values, &cold_bfs.values, "deletion-heavy warm BFS diverged");

        if step == 1 {
            // Every edge is gone: all previously-settled vertices except the
            // source itself must have re-settled to unreachable.
            for (v, (&prior, &now)) in prior_sssp.iter().zip(&warm.values).enumerate() {
                if v as u64 != source.raw() && prior != UNREACHABLE {
                    prop_assert_eq!(now, UNREACHABLE, "vertex {} kept a stale distance", v);
                }
            }
        }
    }
}
