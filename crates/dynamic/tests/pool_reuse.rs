//! Pool persistence across epochs (PR 8 satellite): the shared worker pool
//! behind `ExecutionMode::Threaded` is spawned once and parked between
//! supersteps *and* between mutation epochs — warm epochs are spawn-free.
//!
//! This lives in its own integration binary on purpose: it asserts on the
//! process-wide [`ebv_bsp::pool_threads_spawned`] counter, which would race
//! with other tests creating run-local pools in the same process.

use ebv_algorithms::{ConnectedComponents, IncrementalConnectedComponents};
use ebv_bsp::{shared_worker_pool, BspEngine, DistributedGraph};
use ebv_dynamic::{ChurnStream, EventPipeline};
use ebv_partition::EbvPartitioner;
use ebv_stream::{EdgeSource, RmatEdgeStream};

/// Ten churned epochs of warm connected components reuse the exact same
/// pool threads: the spawn counter moves only when the shared pool is
/// first touched, and never again.
#[test]
fn ten_epochs_reuse_the_same_pool_threads() {
    let p = 4usize;
    let scale = 6u32;
    let stream = RmatEdgeStream::new(scale, 800).with_seed(42);
    let mut partitioner = EbvPartitioner::new()
        .dynamic(stream.stream_config(p))
        .unwrap();
    let mut distributed =
        DistributedGraph::build_streaming(p, Some(1 << scale), Vec::new()).unwrap();

    let engine = BspEngine::threaded();
    let mut labels = engine
        .run(&distributed, &ConnectedComponents::new())
        .unwrap()
        .values;
    let spawned_after_first = ebv_bsp::pool_threads_spawned();
    assert_eq!(
        spawned_after_first,
        shared_worker_pool().threads() as u64,
        "the shared pool spawns exactly its configured thread count"
    );

    // Warm epochs over a churned stream: zero additional spawns.
    let churned = ChurnStream::new(stream, 0.3).unwrap().with_seed(43);
    let mut epochs = 0usize;
    EventPipeline::new(64)
        .run_applied(
            churned,
            &mut partitioner,
            &mut distributed,
            |dg, batch, _, _| {
                let cc = IncrementalConnectedComponents::from_batch(&labels, batch);
                labels = engine.run_warm(dg, &cc, &labels).unwrap().values;
                epochs += 1;
                assert_eq!(
                    ebv_bsp::pool_threads_spawned(),
                    spawned_after_first,
                    "epoch {epochs} spawned new threads"
                );
                Ok(())
            },
        )
        .unwrap();
    assert!(epochs >= 10, "expected at least 10 epochs, got {epochs}");

    // The warm runs still compute the right thing: bit-identical to a
    // cold sequential run over the final distribution.
    let seq = BspEngine::sequential()
        .run(&distributed, &ConnectedComponents::new())
        .unwrap();
    assert_eq!(labels, seq.values);
}
