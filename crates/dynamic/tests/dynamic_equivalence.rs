//! Property tests: the evolving-graph subsystem is exactly equivalent to
//! rebuilding from scratch.
//!
//! The correctness anchors, mirroring how PR 1 anchored streaming:
//!
//! 1. after *any* event sequence (inserts + deletes, windowed or churned),
//!    the maintained [`PartitionMetrics`] are **bit-identical** to
//!    materializing the surviving edge multiset into a graph and
//!    recomputing the metrics from scratch;
//! 2. for the history-oblivious dynamic Random policy, the *assignment*
//!    itself equals a from-scratch partition of the surviving edges in
//!    insertion order;
//! 3. a [`DistributedGraph`] mutated batch-by-batch is structurally
//!    identical to a fresh streaming build of the survivors, and Connected
//!    Components over both are equal;
//! 4. the imbalance-triggered rebalancer restores the edge balance past its
//!    threshold, and the migrated distribution still agrees with a fresh
//!    build on CC.

use proptest::prelude::*;

use ebv_algorithms::ConnectedComponents;
use ebv_bsp::{BspEngine, DistributedGraph, MutationBatch};
use ebv_dynamic::{
    batch_from_plan, ChurnStream, EventPipeline, EventSource, GraphEvent, InsertEvents,
    SlidingWindow, TumblingWindow,
};
use ebv_graph::{Edge, GraphBuilder};
use ebv_partition::{
    DynamicPartitioner, EbvPartitioner, HdrfPartitioner, PartitionMetrics, Partitioner,
    RandomVertexCutPartitioner, RebalanceConfig, StreamConfig,
};
use ebv_stream::{EdgeSource, RmatEdgeStream, UniformEdgeStream};

/// The three wrapped policies, constructed fresh on demand.
fn make_partitioner(algo: u8, p: usize) -> DynamicPartitioner {
    let config = StreamConfig::new(p);
    match algo % 3 {
        0 => EbvPartitioner::new().dynamic(config).unwrap(),
        1 => HdrfPartitioner::new().dynamic(config).unwrap(),
        _ => RandomVertexCutPartitioner::new()
            .with_salt(42)
            .dynamic(config)
            .unwrap(),
    }
}

/// An arbitrary mutation stream: a power-law or uniform edge stream pushed
/// through churn and/or a window, so the event sequence mixes inserts and
/// deletes across multiple windows.
#[derive(Debug, Clone)]
struct StreamSpec {
    family: u8,
    scale: u32,
    num_edges: usize,
    seed: u64,
    shape: u8,
    window: usize,
    churn: f64,
}

fn arbitrary_stream() -> impl Strategy<Value = StreamSpec> {
    (
        0u8..2,
        5u32..9,
        50usize..600,
        0u64..1000,
        0u8..4,
        10usize..200,
        1u32..6,
    )
        .prop_map(
            |(family, scale, num_edges, seed, shape, window, churn)| StreamSpec {
                family,
                scale,
                num_edges,
                seed,
                shape,
                window,
                churn: churn as f64 / 10.0,
            },
        )
}

/// Drives the spec's event stream into `partitioner`, returning the events.
fn drive(spec: &StreamSpec, partitioner: &mut DynamicPartitioner) -> Vec<GraphEvent> {
    fn collect<S: EventSource>(
        mut source: S,
        partitioner: &mut DynamicPartitioner,
    ) -> Vec<GraphEvent> {
        let mut events = Vec::new();
        while let Some(event) = source.next_event() {
            let event = event.unwrap();
            match event {
                GraphEvent::Insert(edge) => {
                    partitioner.insert(edge);
                }
                GraphEvent::Delete(edge) => {
                    partitioner.delete(edge).unwrap();
                }
            }
            events.push(event);
        }
        events
    }

    macro_rules! with_edges {
        ($edges:expr) => {{
            let edges = $edges;
            match spec.shape % 4 {
                0 => collect(InsertEvents::new(edges), partitioner),
                1 => collect(
                    ChurnStream::new(edges, spec.churn)
                        .unwrap()
                        .with_seed(spec.seed),
                    partitioner,
                ),
                2 => collect(SlidingWindow::new(edges, spec.window).unwrap(), partitioner),
                _ => collect(
                    TumblingWindow::new(edges, spec.window).unwrap(),
                    partitioner,
                ),
            }
        }};
    }

    if spec.family == 0 {
        with_edges!(RmatEdgeStream::new(spec.scale, spec.num_edges).with_seed(spec.seed))
    } else {
        with_edges!(UniformEdgeStream::new(1 << spec.scale, spec.num_edges).with_seed(spec.seed))
    }
}

/// Recomputes the maintained metrics from scratch over the survivors.
fn reference_metrics(partitioner: &DynamicPartitioner) -> PartitionMetrics {
    let mut builder = GraphBuilder::directed();
    for (edge, _) in partitioner.surviving() {
        builder.add_edge(edge);
    }
    builder.num_vertices(partitioner.num_vertices());
    let graph = builder.build().unwrap();
    PartitionMetrics::compute(&graph, &partitioner.snapshot().unwrap()).unwrap()
}

/// Asserts `a` and `b` describe the same distribution over their common
/// vertex prefix. The universes may differ when an edge referencing the
/// highest vertex was inserted and deleted within one batch (the
/// distribution never saw it, while the partitioner's monotone universe
/// did); vertices beyond the prefix are isolated in the larger build and
/// cannot influence the shared structure.
fn assert_distributions_equal(a: &DistributedGraph, b: &DistributedGraph) {
    assert_eq!(a.num_workers(), b.num_workers());
    assert_eq!(a.num_edges(), b.num_edges());
    let common = a.num_vertices().min(b.num_vertices());
    for v in 0..common {
        let v = ebv_graph::VertexId::from(v);
        assert_eq!(a.replicas().master_of(v), b.replicas().master_of(v), "{v}");
        assert_eq!(
            a.replicas().replicas_of(v),
            b.replicas().replicas_of(v),
            "{v}"
        );
    }
    for (sa, sb) in a.subgraphs().iter().zip(b.subgraphs()) {
        assert_eq!(sa.edges(), sb.edges());
    }
}

/// Runs CC over a distribution and returns the global component labels.
fn cc_labels(distributed: &DistributedGraph) -> Vec<u64> {
    BspEngine::sequential()
        .run(distributed, &ConnectedComponents::new())
        .unwrap()
        .values
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Anchor 1: maintained metrics are bit-identical to a from-scratch
    /// recomputation over the surviving edge multiset, for every policy and
    /// every event-stream shape.
    #[test]
    fn maintained_metrics_are_exact(spec in arbitrary_stream(), algo in 0u8..3, p in 1usize..7) {
        let mut partitioner = make_partitioner(algo, p);
        drive(&spec, &mut partitioner);
        prop_assume!(partitioner.live_edges() > 0);
        let maintained = partitioner.metrics();
        let recomputed = reference_metrics(&partitioner);
        prop_assert!(
            maintained.edge_imbalance == recomputed.edge_imbalance
                && maintained.vertex_imbalance == recomputed.vertex_imbalance
                && maintained.replication_factor == recomputed.replication_factor,
            "algo {} maintained {:?} != recomputed {:?}",
            algo, maintained, recomputed
        );
    }

    /// Anchor 2: the history-oblivious Random policy reproduces a
    /// from-scratch partition of the survivors — identical assignment, not
    /// just identical metrics.
    #[test]
    fn dynamic_random_equals_from_scratch(spec in arbitrary_stream(), p in 1usize..7) {
        let mut partitioner = make_partitioner(2, p);
        drive(&spec, &mut partitioner);
        let survivors: Vec<(Edge, ebv_partition::PartitionId)> =
            partitioner.surviving().collect();
        // Pin the universe: the original observed every inserted edge, the
        // replay only sees survivors, and the universe never shrinks.
        let mut fresh = RandomVertexCutPartitioner::new()
            .with_salt(42)
            .dynamic(
                StreamConfig::new(p).with_expected_vertices(partitioner.num_vertices()),
            )
            .unwrap();
        for &(edge, expected) in &survivors {
            prop_assert_eq!(fresh.insert(edge), expected, "edge {}", edge);
        }
        prop_assert_eq!(fresh.snapshot().unwrap(), partitioner.snapshot().unwrap());
        let a = fresh.metrics();
        let b = partitioner.metrics();
        prop_assert!(a.edge_imbalance == b.edge_imbalance
            && a.replication_factor == b.replication_factor);
    }

    /// Insert-only sequences reproduce the streaming partitioners (and so,
    /// with exact hints, the batch algorithms) bit for bit.
    #[test]
    fn insert_only_equals_streaming(
        scale in 5u32..9,
        num_edges in 50usize..800,
        seed in 0u64..500,
        p in 1usize..7,
    ) {
        let stream = || RmatEdgeStream::new(scale, num_edges).with_seed(seed);
        let config = stream().stream_config(p);

        let mut dynamic = EbvPartitioner::new().dynamic(config).unwrap();
        let mut streaming = EbvPartitioner::new().streaming(config).unwrap();
        let mut source = stream();
        while let Some(edge) = source.next_edge() {
            let edge = edge.unwrap();
            prop_assert_eq!(dynamic.insert(edge), streaming.ingest(edge), "edge {}", edge);
        }
        use ebv_partition::StreamingPartitioner;
        prop_assert_eq!(dynamic.snapshot().unwrap(), streaming.finish().unwrap());

        // And therefore the batch algorithm under input order.
        let mut builder = GraphBuilder::directed();
        let mut source = stream();
        while let Some(edge) = source.next_edge() {
            builder.add_edge(edge.unwrap());
        }
        builder.num_vertices(1 << scale);
        let graph = builder.build().unwrap();
        let batch = EbvPartitioner::new().unsorted().partition(&graph, p).unwrap();
        prop_assert_eq!(dynamic.snapshot().unwrap(), batch);
    }

    /// Anchor 3: a distribution mutated batch-by-batch through the event
    /// pipeline is structurally identical to a fresh streaming build of the
    /// survivors, and CC over both agrees.
    #[test]
    fn mutated_distribution_equals_fresh_build(
        spec in arbitrary_stream(),
        algo in 0u8..3,
        p in 2usize..6,
        batch_size in 16usize..400,
    ) {
        let mut partitioner = make_partitioner(algo, p);
        let mut distributed = DistributedGraph::build_streaming(p, None, Vec::new()).unwrap();
        let mut partitioner_for_pipeline = make_partitioner(algo, p);
        let spec2 = spec.clone();
        drive(&spec, &mut partitioner); // reference state, same deterministic stream

        // Pipeline-driven copy applying every batch to the distribution
        // through the incremental path. Empty (fully cancelled) batches are
        // no-ops and do not advance the epoch.
        let source = EventCollector::new(&spec2);
        let mut absorbed = 0usize;
        EventPipeline::new(batch_size)
            .run_applied(
                source,
                &mut partitioner_for_pipeline,
                &mut distributed,
                |_, batch, _, stats| {
                    if batch.is_empty() {
                        assert_eq!(stats.workers_touched, 0);
                    } else {
                        absorbed += 1;
                        assert!(stats.workers_touched >= 1);
                        assert!(stats.workers_touched <= p);
                    }
                    Ok(())
                },
            )
            .unwrap();
        prop_assume!(partitioner.live_edges() > 0);
        prop_assert_eq!(distributed.epoch(), absorbed);
        prop_assert_eq!(distributed.num_edges(), partitioner.live_edges());

        let fresh = DistributedGraph::build_streaming(
            p,
            Some(partitioner.num_vertices()),
            partitioner.surviving(),
        )
        .unwrap();
        assert_distributions_equal(&distributed, &fresh);
        // CC labels agree over the common prefix; vertices beyond it are
        // isolated in the fresh build and keep their own label.
        let common = distributed.num_vertices().min(fresh.num_vertices());
        let a = cc_labels(&distributed);
        let b = cc_labels(&fresh);
        prop_assert_eq!(&a[..common], &b[..common]);
        prop_assert!(b[common..].iter().enumerate().all(|(i, &l)| l == (common + i) as u64));
    }
}

/// Replays the deterministic event stream of a [`StreamSpec`] — a helper
/// to feed the same sequence into the pipeline and into a reference
/// partitioner.
struct EventCollector {
    events: std::vec::IntoIter<GraphEvent>,
}

impl EventCollector {
    fn new(spec: &StreamSpec) -> Self {
        // Materialize via a throwaway partitioner drive (the stream shapes
        // are deterministic for a fixed spec).
        let mut scratch = make_partitioner(2, 1);
        let events = drive(spec, &mut scratch);
        EventCollector {
            events: events.into_iter(),
        }
    }
}

impl EventSource for EventCollector {
    fn next_event(&mut self) -> Option<ebv_dynamic::Result<GraphEvent>> {
        self.events.next().map(Ok)
    }
}

/// Anchor 4: the rebalancer demonstrably restores edge balance past its
/// threshold, and the migrated distribution still agrees with a fresh
/// build on CC.
#[test]
fn rebalance_epoch_restores_balance_and_preserves_cc() {
    let p = 4;
    let stream = RmatEdgeStream::new(10, 8_000).with_seed(77);
    let mut partitioner = EbvPartitioner::new()
        .dynamic(stream.stream_config(p))
        .unwrap();
    let mut distributed = DistributedGraph::build_streaming(p, None, Vec::new()).unwrap();
    let churn = ChurnStream::new(stream, 0.2).unwrap().with_seed(5);
    EventPipeline::new(1_000)
        .run_applied(churn, &mut partitioner, &mut distributed, |_, _, _, _| {
            Ok(())
        })
        .unwrap();

    // Starve partitions 1..p so the load concentrates on partition 0.
    let victims: Vec<Edge> = partitioner
        .surviving()
        .filter(|(_, part)| part.index() != 0)
        .map(|(edge, _)| edge)
        .collect();
    let mut batch = MutationBatch::new();
    for edge in victims.iter().take(victims.len() * 9 / 10) {
        let part = partitioner.delete(*edge).unwrap();
        batch.record_delete(*edge, part);
    }
    distributed.apply_mutations(&batch).unwrap();

    let config = RebalanceConfig::new()
        .with_max_edge_imbalance(1.25)
        .with_target_edge_imbalance(1.05);
    let before = partitioner.metrics();
    assert!(before.edge_imbalance > 1.25, "skew holds: {before:?}");
    let plan = partitioner.rebalance(&config).unwrap();
    assert!(!plan.is_empty());
    let after = partitioner.metrics();
    assert!(
        after.edge_imbalance <= config.max_edge_imbalance(),
        "restored: {} -> {}",
        before.edge_imbalance,
        after.edge_imbalance
    );

    // Replay the migrations downstream and cross-check against a fresh
    // build of the post-migration survivors. Migrations concentrate on the
    // overloaded/underloaded workers, so the incremental epoch reports its
    // touched set.
    let stats = distributed
        .apply_mutations(&batch_from_plan(&plan))
        .unwrap();
    assert!(stats.workers_touched >= 1 && stats.workers_touched <= p);
    assert_eq!(distributed.num_edges(), partitioner.live_edges());
    let fresh = DistributedGraph::build_streaming(
        p,
        Some(distributed.num_vertices()),
        partitioner.surviving(),
    )
    .unwrap();
    assert_eq!(cc_labels(&distributed), cc_labels(&fresh));

    // The maintained metrics still recompute exactly after migration.
    let recomputed = reference_metrics(&partitioner);
    assert!(
        after.edge_imbalance == recomputed.edge_imbalance
            && after.replication_factor == recomputed.replication_factor
    );
}
