//! Property tests for the telemetry plane (PR 6 tentpole): instrumentation
//! must be **invisible to execution**. A run with a live [`Telemetry`]
//! recorder (spans into the lock-free ring, phase histograms, counters)
//! must produce bit-identical per-vertex values *and* an identical
//! [`ExecutionStats`](ebv_bsp::ExecutionStats) counter structure to the
//! same run with the no-op recorder — for CC and SSSP, cold and warm,
//! sequential, threaded and pooled, across churned mutation epochs (where
//! the mutation-apply and routing-patch spans fire too).
//!
//! Pool threads are reused across workers and supersteps, so these suites
//! also prove per-worker attribution keys on the logical worker id (the
//! `SpanCtx`), never on the OS thread.
//!
//! Wall-clock fields (`MutationStats::apply_seconds`) are the only
//! sanctioned nondeterminism and are deliberately excluded: they live
//! outside `ExecutionStats`.

use proptest::prelude::*;

use ebv_algorithms::{
    ConnectedComponents, IncrementalConnectedComponents, IncrementalSssp, SingleSourceShortestPath,
};
use ebv_bsp::{BspEngine, BspOutcome, DistributedGraph, SubgraphProgram};
use ebv_dynamic::{ChurnStream, EventPipeline, InsertEvents};
use ebv_graph::VertexId;
use ebv_obs::{NoopRecorder, ObsServer, ObsServerConfig, Recorder, Telemetry};
use ebv_partition::EbvPartitioner;
use ebv_stream::{EdgeSource, RmatEdgeStream};

/// Runs `program` cold with and without the live recorder, in both
/// execution modes, and asserts bit-equality of values and counters.
fn assert_tracing_invisible<P>(
    distributed: &DistributedGraph,
    program: &P,
    telemetry: &Telemetry,
) -> BspOutcome<P::Value>
where
    P: SubgraphProgram,
    P::Value: PartialEq,
{
    let mut witness = None;
    for engine in [
        BspEngine::sequential(),
        BspEngine::threaded(),
        BspEngine::pooled(3),
    ] {
        let plain = engine.run(distributed, program).unwrap();
        let traced = engine.run_with(distributed, program, telemetry).unwrap();
        assert!(
            plain.values == traced.values,
            "{}: tracing changed the values",
            program.name()
        );
        assert_eq!(
            plain.stats,
            traced.stats,
            "{}: tracing changed the counters",
            program.name()
        );
        assert_eq!(plain.supersteps, traced.supersteps);
        witness.get_or_insert(plain);
    }
    witness.expect("both modes ran")
}

/// Same for a warm start from `prior`.
fn assert_tracing_invisible_warm<P>(
    distributed: &DistributedGraph,
    program: &P,
    prior: &[P::Value],
    telemetry: &Telemetry,
) -> BspOutcome<P::Value>
where
    P: SubgraphProgram,
    P::Value: PartialEq,
{
    let mut witness = None;
    for engine in [
        BspEngine::sequential(),
        BspEngine::threaded(),
        BspEngine::pooled(3),
    ] {
        let plain = engine.run_warm(distributed, program, prior).unwrap();
        let traced = engine
            .run_warm_with(distributed, program, prior, telemetry)
            .unwrap();
        assert!(
            plain.values == traced.values,
            "{}: tracing changed the warm values",
            program.name()
        );
        assert_eq!(
            plain.stats,
            traced.stats,
            "{}: tracing changed the warm counters",
            program.name()
        );
        assert_eq!(plain.supersteps, traced.supersteps);
        witness.get_or_insert(plain);
    }
    witness.expect("both modes ran")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Traced and untraced runs of CC and SSSP are bit-identical — values
    /// and `ExecutionStats` — cold and warm, sequential, threaded and
    /// pooled, over churned mutation epochs whose applies also run
    /// instrumented (mutation-apply, routing-patch and epoch-apply spans
    /// fire).
    #[test]
    fn tracing_is_invisible_to_execution(
        scale in 5u32..8,
        num_edges in 80usize..400,
        seed in 0u64..500,
        churn in 1u32..6,
        p in 2usize..6,
        batch_size in 32usize..160,
    ) {
        let source = VertexId::new(0);
        let stream = RmatEdgeStream::new(scale, num_edges).with_seed(seed);
        let mut partitioner = EbvPartitioner::new()
            .dynamic(stream.stream_config(p))
            .unwrap();
        let mut distributed =
            DistributedGraph::build_streaming(p, Some(1 << scale), Vec::new()).unwrap();
        let telemetry = Telemetry::isolated();

        // Prior outcomes carried warm across the churned epochs.
        let mut labels =
            assert_tracing_invisible(&distributed, &ConnectedComponents::new(), &telemetry)
                .values;
        let mut distances = assert_tracing_invisible(
            &distributed,
            &SingleSourceShortestPath::new(source),
            &telemetry,
        )
        .values;

        let churned = ChurnStream::new(stream, churn as f64 / 10.0)
            .unwrap()
            .with_seed(seed + 1);
        let mut epochs = 0usize;
        EventPipeline::new(batch_size)
            .run_applied_with(
                churned,
                &mut partitioner,
                &mut distributed,
                |dg, batch, _, _| {
                    // Cold equivalence on the mutated distribution (the
                    // instrumented apply patched the routing table).
                    assert_tracing_invisible(dg, &ConnectedComponents::new(), &telemetry);
                    // Warm equivalence for both warm-capable programs under
                    // test, carrying the traced distribution forward.
                    let cc = IncrementalConnectedComponents::from_batch(&labels, batch);
                    labels =
                        assert_tracing_invisible_warm(dg, &cc, &labels, &telemetry).values;
                    let sssp = IncrementalSssp::from_distributed(source, dg, &distances, batch);
                    distances =
                        assert_tracing_invisible_warm(dg, &sssp, &distances, &telemetry)
                            .values;
                    epochs += 1;
                    Ok(())
                },
                &telemetry,
            )
            .unwrap();
        prop_assert!(epochs >= 1, "the churned stream produced no epoch");

        // The recorder really was live: the traced runs left spans behind.
        prop_assert!(!telemetry.spans().is_empty(), "no spans were recorded");
    }
}

/// Attribution survives pool-thread reuse: on a single-lane pool every
/// worker's compute spans run on the *same* OS thread, yet the per-worker
/// phase attribution still shows one populated track per logical worker —
/// the recorder keys on `SpanCtx::worker`, not on the executing thread.
#[test]
fn attribution_survives_pool_thread_reuse() {
    use ebv_obs::Phase;

    let p = 4usize;
    let stream = RmatEdgeStream::new(6, 600).with_seed(11);
    let mut partitioner = EbvPartitioner::new()
        .dynamic(stream.stream_config(p))
        .unwrap();
    let mut distributed = DistributedGraph::build_streaming(p, Some(1 << 6), Vec::new()).unwrap();
    EventPipeline::new(200)
        .run_applied(
            InsertEvents::new(stream),
            &mut partitioner,
            &mut distributed,
            |_, _, _, _| Ok(()),
        )
        .unwrap();

    let telemetry = Telemetry::isolated();
    BspEngine::pooled(1)
        .run_with(&distributed, &ConnectedComponents::new(), &telemetry)
        .unwrap();

    let tracks = telemetry.worker_phase_seconds();
    assert!(
        tracks.len() >= p,
        "expected a track per worker, got {}",
        tracks.len()
    );
    for (worker, track) in tracks.iter().take(p).enumerate() {
        assert!(
            track[Phase::Compute.index()] > 0.0,
            "worker {worker} has no attributed compute time despite \
             running on a shared pool thread"
        );
    }
    // The spans themselves carry distinct logical worker ids.
    let workers: std::collections::BTreeSet<u32> = telemetry
        .spans()
        .iter()
        .filter(|span| span.phase == Phase::Compute)
        .map(|span| span.ctx.worker)
        .collect();
    assert_eq!(
        workers,
        (0..p as u32).collect(),
        "compute spans must cover every logical worker"
    );
}

/// One fixed churn scenario: cold CC, then warm CC carried across every
/// applied epoch, everything reporting through `recorder`. Returns the
/// final labels, the per-epoch warm counters and the applied-epoch count —
/// every deterministic observable of the run.
fn run_scenario<R: Recorder>(recorder: &R) -> (Vec<u64>, Vec<ebv_bsp::ExecutionStats>, usize) {
    let stream = RmatEdgeStream::new(7, 2_000).with_seed(99);
    let mut partitioner = EbvPartitioner::new()
        .dynamic(stream.stream_config(4))
        .unwrap();
    let mut distributed = DistributedGraph::build_streaming(4, Some(1 << 7), Vec::new()).unwrap();
    let engine = BspEngine::threaded();
    let mut labels = engine
        .run_with(&distributed, &ConnectedComponents::new(), recorder)
        .unwrap()
        .values;
    let mut stats_log = Vec::new();
    let mut applied = 0usize;
    let churned = ChurnStream::new(stream, 0.2).unwrap().with_seed(100);
    EventPipeline::new(256)
        .run_applied_with(
            churned,
            &mut partitioner,
            &mut distributed,
            |dg, batch, _, _| {
                if !batch.is_empty() {
                    applied += 1;
                }
                let cc = IncrementalConnectedComponents::from_batch(&labels, batch);
                let outcome = engine.run_warm_with(dg, &cc, &labels, recorder).unwrap();
                labels = outcome.values;
                stats_log.push(outcome.stats);
                Ok(())
            },
            recorder,
        )
        .unwrap();
    (labels, stats_log, applied)
}

/// The tentpole integration property: attaching the live HTTP server —
/// with four scraper threads hammering every route *while the churn run
/// executes* — changes no program value and no counter versus the no-op
/// recorder, and the journal holds one snapshot per applied epoch.
#[test]
fn serving_is_invisible_to_execution() {
    use std::io::{Read as _, Write as _};
    use std::net::{SocketAddr, TcpStream};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    fn scrape(addr: SocketAddr, path: &str) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect to obs server");
        stream
            .write_all(format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes())
            .expect("send scrape");
        let mut out = String::new();
        stream.read_to_string(&mut out).expect("read scrape");
        out
    }

    let (noop_labels, noop_stats, noop_applied) = run_scenario(&NoopRecorder);
    assert!(noop_applied >= 1, "the scenario produced no applied epoch");

    let telemetry = Arc::new(Telemetry::isolated());
    let server = ObsServer::bind(
        "127.0.0.1:0",
        Arc::clone(&telemetry),
        ObsServerConfig::default(),
    )
    .expect("bind an ephemeral port");
    let addr = server.local_addr();
    let stop = Arc::new(AtomicBool::new(false));
    let scrapers: Vec<_> = ["/metrics", "/healthz", "/trace.json", "/epochs.json"]
        .into_iter()
        .map(|path| {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut scrapes = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let response = scrape(addr, path);
                    assert!(
                        response.starts_with("HTTP/1.1 200"),
                        "{path} scrape failed mid-run: {}",
                        response.lines().next().unwrap_or_default(),
                    );
                    scrapes += 1;
                    std::thread::sleep(Duration::from_millis(5));
                }
                scrapes
            })
        })
        .collect();

    let (labels, stats_log, applied) = run_scenario(&*telemetry);
    stop.store(true, Ordering::Relaxed);
    let total_scrapes: u64 = scrapers
        .into_iter()
        .map(|handle| handle.join().expect("scraper thread"))
        .sum();

    assert!(total_scrapes >= 4, "each route must have been scraped");
    assert_eq!(labels, noop_labels, "serving changed the values");
    assert_eq!(stats_log, noop_stats, "serving changed the counters");
    assert_eq!(applied, noop_applied);
    // One journal snapshot per applied epoch, none lost to the scrapes.
    assert_eq!(telemetry.journal().recorded_total(), applied as u64);
    server.shutdown();
}
