//! Property tests for the message plane (PR 5 tentpole) and the executor
//! seam (PR 8 tentpole): every parallel execution mode — `Threaded` (the
//! shared persistent pool) and `Pooled(n)` swept over pool sizes
//! `{1, 2, p, p + 3}` — must be **bit-identical** to `Sequential`: same
//! per-vertex values *and* the same [`ExecutionStats`] (work, updates,
//! messages sent and received per worker per superstep) — for all four
//! algorithms, cold and warm, over churned R-MAT distributions.
//!
//! The parallel path is a two-phase partitioned exchange over the
//! precomputed routing table, placed onto pool lanes by the work-aware LPT
//! scheduler; any divergence in message routing, merge order, lane
//! placement leaking into results, or routing-table staleness after
//! `apply_mutations` (the warm re-runs mutate the distribution between
//! executions) shows up here as a value or counter mismatch. Pool size 1
//! forces every worker onto one lane (the serialization extreme),
//! `p + 3` leaves lanes idle (the oversubscribed extreme).

use proptest::prelude::*;

use ebv_algorithms::{
    BreadthFirstSearch, ConnectedComponents, IncrementalBfs, IncrementalConnectedComponents,
    IncrementalPageRank, IncrementalSssp, SingleSourceShortestPath,
};
use ebv_bsp::{BspEngine, BspOutcome, DistributedGraph, SubgraphProgram};
use ebv_dynamic::{ChurnStream, EventPipeline};
use ebv_graph::VertexId;
use ebv_partition::EbvPartitioner;
use ebv_stream::{EdgeSource, RmatEdgeStream};

/// The parallel engines every assertion compares against the sequential
/// reference: the shared persistent pool (`Threaded`) plus run-local pools
/// swept over the tentpole's size set `{1, 2, p, p + 3}`.
fn parallel_engines(distributed: &DistributedGraph) -> Vec<BspEngine> {
    let p = distributed.num_workers();
    let mut sizes = vec![1, 2, p, p + 3];
    sizes.dedup();
    let mut engines = vec![BspEngine::threaded()];
    engines.extend(sizes.into_iter().map(BspEngine::pooled));
    engines
}

/// Runs `program` cold under every mode and asserts bit-equality of values
/// and of the whole counter structure against the sequential reference.
fn assert_modes_agree<P>(distributed: &DistributedGraph, program: &P) -> BspOutcome<P::Value>
where
    P: SubgraphProgram,
    P::Value: PartialEq,
{
    let seq = BspEngine::sequential().run(distributed, program).unwrap();
    for engine in parallel_engines(distributed) {
        let other = engine.run(distributed, program).unwrap();
        assert!(
            seq.values == other.values,
            "{}: values diverged under {:?}",
            program.name(),
            engine.mode()
        );
        assert_eq!(
            seq.stats,
            other.stats,
            "{}: stats diverged under {:?}",
            program.name(),
            engine.mode()
        );
        assert_eq!(seq.supersteps, other.supersteps);
    }
    seq
}

/// Same for a warm start from `prior`.
fn assert_modes_agree_warm<P>(
    distributed: &DistributedGraph,
    program: &P,
    prior: &[P::Value],
) -> BspOutcome<P::Value>
where
    P: SubgraphProgram,
    P::Value: PartialEq,
{
    let seq = BspEngine::sequential()
        .run_warm(distributed, program, prior)
        .unwrap();
    for engine in parallel_engines(distributed) {
        let other = engine.run_warm(distributed, program, prior).unwrap();
        assert!(
            seq.values == other.values,
            "{}: warm values diverged under {:?}",
            program.name(),
            engine.mode()
        );
        assert_eq!(
            seq.stats,
            other.stats,
            "{}: warm stats diverged under {:?}",
            program.name(),
            engine.mode()
        );
        assert_eq!(seq.supersteps, other.supersteps);
    }
    seq
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Cold and warm runs of CC, SSSP, BFS and PageRank produce
    /// bit-identical values and per-worker message counters under every
    /// execution mode — the shared pool and run-local pools of sizes
    /// {1, 2, p, p + 3} — across churned mutation epochs (the warm re-runs
    /// exercise the incrementally maintained routing table).
    #[test]
    fn parallel_modes_are_bit_identical_to_sequential_cold_and_warm(
        scale in 5u32..8,
        num_edges in 80usize..400,
        seed in 0u64..500,
        churn in 1u32..6,
        p in 2usize..6,
        batch_size in 32usize..160,
    ) {
        let source = VertexId::new(0);
        let stream = RmatEdgeStream::new(scale, num_edges).with_seed(seed);
        let mut partitioner = EbvPartitioner::new()
            .dynamic(stream.stream_config(p))
            .unwrap();
        let mut distributed =
            DistributedGraph::build_streaming(p, Some(1 << scale), Vec::new()).unwrap();

        // Prior outcomes carried warm across the churned epochs.
        let mut labels = assert_modes_agree(&distributed, &ConnectedComponents::new()).values;
        let mut distances =
            assert_modes_agree(&distributed, &SingleSourceShortestPath::new(source)).values;
        let mut depths = assert_modes_agree(&distributed, &BreadthFirstSearch::new(source)).values;

        let churned = ChurnStream::new(stream, churn as f64 / 10.0)
            .unwrap()
            .with_seed(seed + 1);
        let mut epochs = 0usize;
        EventPipeline::new(batch_size)
            .run_applied(
                churned,
                &mut partitioner,
                &mut distributed,
                |dg, batch, _, _| {
                    // Cold equivalence on the mutated distribution (the
                    // routing table was updated incrementally).
                    assert_modes_agree(dg, &ConnectedComponents::new());
                    // Warm equivalence for every warm-capable program.
                    let cc = IncrementalConnectedComponents::from_batch(&labels, batch);
                    labels = assert_modes_agree_warm(dg, &cc, &labels).values;
                    let sssp = IncrementalSssp::from_distributed(source, dg, &distances, batch);
                    distances = assert_modes_agree_warm(dg, &sssp, &distances).values;
                    let bfs = IncrementalBfs::from_batch(source, &depths, batch);
                    depths = assert_modes_agree_warm(dg, &bfs, &depths).values;
                    epochs += 1;
                    Ok(())
                },
            )
            .unwrap();
        prop_assert!(epochs >= 1, "the churned stream produced no epoch");

        // PageRank exercises Master/Mirrors targets and f64 message
        // folding, where even a reordered merge would change the bits.
        let pr = IncrementalPageRank::from_distributed(&distributed, 8);
        let cold = assert_modes_agree(&distributed, &pr);
        assert_modes_agree_warm(&distributed, &pr, &cold.values);
    }
}
