//! Deterministic churn: interleave deletions of previously inserted edges
//! into a plain edge stream, modelling workloads whose edges both arrive
//! and depart (social unfollow, road closures).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ebv_graph::Edge;
use ebv_stream::EdgeSource;

use crate::error::{DynamicError, Result};
use crate::event::{EventSource, GraphEvent};

/// Wraps an [`EdgeSource`] into a mutation stream: every edge of the
/// underlying stream is inserted in arrival order, and after each insertion
/// a uniformly chosen *live* edge is deleted with probability
/// `delete_ratio`. Deterministic for a fixed seed.
///
/// The expected live size after `n` arrivals with delete ratio `r` is
/// `(1 - r) · n`; the churn never deletes an edge twice
/// (its live set mirrors the partitioner's LIFO multiset exactly), so a
/// [`ChurnStream`] composes safely with
/// [`DynamicPartitioner::delete`](ebv_partition::DynamicPartitioner::delete).
///
/// # Examples
///
/// ```
/// use ebv_dynamic::{ChurnStream, EventSource};
/// use ebv_stream::RmatEdgeStream;
///
/// # fn main() -> Result<(), ebv_dynamic::DynamicError> {
/// let mut churn = ChurnStream::new(RmatEdgeStream::new(8, 500).with_seed(3), 0.3)?
///     .with_seed(7);
/// let mut deletes = 0;
/// while let Some(event) = churn.next_event() {
///     if !event?.is_insert() {
///         deletes += 1;
///     }
/// }
/// assert!(deletes > 0 && deletes < 500);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ChurnStream<S> {
    source: S,
    delete_ratio: f64,
    live: Vec<Edge>,
    pending_delete: Option<Edge>,
    rng: StdRng,
}

impl<S: EdgeSource> ChurnStream<S> {
    /// Wraps `source` with a per-insertion deletion probability of
    /// `delete_ratio`, seed 0.
    ///
    /// # Errors
    ///
    /// Returns [`DynamicError::InvalidParameter`] unless
    /// `0 <= delete_ratio < 1` (a ratio of 1 would drain every insertion
    /// immediately and never grow a graph).
    pub fn new(source: S, delete_ratio: f64) -> Result<Self> {
        if !(0.0..1.0).contains(&delete_ratio) {
            return Err(DynamicError::InvalidParameter {
                parameter: "delete_ratio",
                message: format!("the delete ratio must be in [0, 1), got {delete_ratio}"),
            });
        }
        Ok(ChurnStream {
            source,
            delete_ratio,
            live: Vec::new(),
            pending_delete: None,
            rng: StdRng::seed_from_u64(0),
        })
    }

    /// Reseeds the churn decisions (does not reseed the wrapped source).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.rng = StdRng::seed_from_u64(seed);
        self
    }

    /// Number of edges currently live.
    pub fn live_edges(&self) -> usize {
        self.live.len() + usize::from(self.pending_delete.is_some())
    }
}

impl<S: EdgeSource> EventSource for ChurnStream<S> {
    fn next_event(&mut self) -> Option<Result<GraphEvent>> {
        if let Some(edge) = self.pending_delete.take() {
            return Some(Ok(GraphEvent::Delete(edge)));
        }
        match self.source.next_edge()? {
            Err(err) => Some(Err(err.into())),
            Ok(edge) => {
                self.live.push(edge);
                if self.rng.gen::<f64>() < self.delete_ratio {
                    let victim = self.rng.gen_range(0..self.live.len());
                    self.pending_delete = Some(self.live.swap_remove(victim));
                }
                Some(Ok(GraphEvent::Insert(edge)))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebv_stream::{pairs, RmatEdgeStream};

    fn drain<S: EventSource>(mut source: S) -> Vec<GraphEvent> {
        let mut out = Vec::new();
        while let Some(event) = source.next_event() {
            out.push(event.unwrap());
        }
        out
    }

    #[test]
    fn churn_is_deterministic_and_never_double_deletes() {
        let stream = || RmatEdgeStream::new(8, 2000).with_seed(5);
        let a = drain(ChurnStream::new(stream(), 0.4).unwrap().with_seed(9));
        let b = drain(ChurnStream::new(stream(), 0.4).unwrap().with_seed(9));
        assert_eq!(a, b);
        // Replay: every delete must hit a live copy.
        let mut live: Vec<Edge> = Vec::new();
        let mut deletes = 0;
        for event in &a {
            match event {
                GraphEvent::Insert(e) => live.push(*e),
                GraphEvent::Delete(e) => {
                    deletes += 1;
                    let at = live.iter().rposition(|x| x == e).expect("live copy");
                    live.remove(at);
                }
            }
        }
        assert!(deletes > 500, "ratio 0.4 over 2000 inserts, got {deletes}");
        assert_eq!(live.len(), 2000 - deletes);
    }

    #[test]
    fn zero_ratio_degenerates_to_inserts() {
        let events = drain(ChurnStream::new(pairs(vec![(0, 1), (1, 2)]), 0.0).unwrap());
        assert_eq!(events.len(), 2);
        assert!(events.iter().all(GraphEvent::is_insert));
    }

    #[test]
    fn invalid_ratio_is_rejected() {
        assert!(ChurnStream::new(pairs(vec![(0, 1)]), 1.0).is_err());
        assert!(ChurnStream::new(pairs(vec![(0, 1)]), -0.1).is_err());
        assert!(ChurnStream::new(pairs(vec![(0, 1)]), f64::NAN).is_err());
    }

    #[test]
    fn live_edges_reflect_pending_state() {
        let mut churn = ChurnStream::new(pairs((0..50).map(|i| (i, i + 1))), 0.5)
            .unwrap()
            .with_seed(1);
        while let Some(event) = churn.next_event() {
            event.unwrap();
        }
        assert!(churn.live_edges() <= 50);
    }
}
