//! Error type for the evolving-graph subsystem.

use std::error::Error as StdError;
use std::fmt;

use ebv_bsp::BspError;
use ebv_partition::PartitionError;
use ebv_stream::StreamError;

/// Errors produced while generating, windowing or applying mutation
/// streams.
#[derive(Debug)]
pub enum DynamicError {
    /// An event source or pipeline was configured inconsistently.
    InvalidParameter {
        /// Name of the offending parameter.
        parameter: &'static str,
        /// Human-readable description of the constraint that was violated.
        message: String,
    },
    /// An error bubbled up from the underlying edge stream.
    Stream(StreamError),
    /// An error bubbled up from the partition-maintenance layer (for
    /// example a deletion of an edge with no live copy).
    Partition(PartitionError),
    /// An error bubbled up from the distribution layer.
    Bsp(BspError),
    /// The durable state plane failed to persist a batch or checkpoint.
    /// Durability failures are fatal by design: continuing would let the
    /// in-memory lineage silently outrun what a restart can recover.
    Durability(std::io::Error),
}

impl fmt::Display for DynamicError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DynamicError::InvalidParameter { parameter, message } => {
                write!(f, "invalid parameter `{parameter}`: {message}")
            }
            DynamicError::Stream(err) => write!(f, "stream error: {err}"),
            DynamicError::Partition(err) => write!(f, "partition error: {err}"),
            DynamicError::Bsp(err) => write!(f, "bsp error: {err}"),
            DynamicError::Durability(err) => write!(f, "durability error: {err}"),
        }
    }
}

impl StdError for DynamicError {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            DynamicError::Stream(err) => Some(err),
            DynamicError::Partition(err) => Some(err),
            DynamicError::Bsp(err) => Some(err),
            DynamicError::Durability(err) => Some(err),
            DynamicError::InvalidParameter { .. } => None,
        }
    }
}

impl From<StreamError> for DynamicError {
    fn from(err: StreamError) -> Self {
        DynamicError::Stream(err)
    }
}

impl From<PartitionError> for DynamicError {
    fn from(err: PartitionError) -> Self {
        DynamicError::Partition(err)
    }
}

impl From<BspError> for DynamicError {
    fn from(err: BspError) -> Self {
        DynamicError::Bsp(err)
    }
}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, DynamicError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_sources() {
        let e = DynamicError::InvalidParameter {
            parameter: "window",
            message: "zero capacity".to_string(),
        };
        assert!(e.to_string().contains("window"));
        assert!(e.source().is_none());

        let e = DynamicError::from(PartitionError::EdgeNotPresent {
            message: "gone".to_string(),
        });
        assert!(e.to_string().contains("gone"));
        assert!(e.source().is_some());

        let e = DynamicError::from(BspError::PartitionMismatch {
            message: "p".to_string(),
        });
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DynamicError>();
    }
}
