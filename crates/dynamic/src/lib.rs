//! # ebv-dynamic — evolving-graph support for the EBV reproduction
//!
//! The batch path partitions a frozen edge list and the streaming path
//! (`ebv-stream`, PR 1) partitions an insert-only stream; real workloads
//! *mutate* — social edges churn, road segments close. This crate opens the
//! evolving-graph scenario family: mutation streams of
//! [`GraphEvent::Insert`]/[`GraphEvent::Delete`] flow through a
//! [`DynamicPartitioner`](ebv_partition::DynamicPartitioner) whose
//! reference-counted state stays *exactly* consistent under deletions, and
//! the resulting [`MutationBatch`](ebv_bsp::MutationBatch)es are absorbed by
//! [`DistributedGraph::apply_mutations`](ebv_bsp::DistributedGraph::apply_mutations)
//! so BSP applications re-run on the updated distribution.
//!
//! The subsystem layers as
//!
//! ```text
//! EventSource ──► DynamicPartitioner ──► MutationBatch ──► apply_mutations ──► BSP
//!     │                  │                                      (epoch += 1)
//!     │                  └─ ebv_partition::dynamic (EBV, HDRF, Random;
//!     │                     exact decremental metrics, rebalancer)
//!     ├─ InsertEvents(any ebv-stream EdgeSource)
//!     ├─ SlidingWindow · TumblingWindow   (bounded live edge set)
//!     └─ ChurnStream                      (randomized insert/delete mix)
//!
//!        EventPipeline drives the flow batch-by-batch and records
//!        delta-metrics after every batch; batch_from_plan() replays
//!        rebalance migrations downstream.
//! ```
//!
//! ## Quick example
//!
//! Maintain a partition under churn and absorb the mutations into a
//! distributed graph, one incremental epoch per batch — only the workers a
//! batch touches are re-assembled:
//!
//! ```
//! use ebv_bsp::DistributedGraph;
//! use ebv_dynamic::{ChurnStream, EventPipeline};
//! use ebv_partition::EbvPartitioner;
//! use ebv_stream::{EdgeSource, RmatEdgeStream};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let stream = RmatEdgeStream::new(10, 10_000).with_seed(1);
//! let workers = 4;
//! let mut partitioner = EbvPartitioner::new().dynamic(stream.stream_config(workers))?;
//! let mut distributed = DistributedGraph::build_streaming(workers, None, Vec::new())?;
//!
//! let churn = ChurnStream::new(stream, 0.25)?.with_seed(9);
//! EventPipeline::new(2_048).run_applied(
//!     churn,
//!     &mut partitioner,
//!     &mut distributed,
//!     |distributed, _batch, metrics, stats| {
//!         assert!(metrics.edge_imbalance >= 1.0);
//!         assert!(stats.workers_touched <= workers);
//!         assert_eq!(distributed.num_workers(), workers);
//!         Ok(())
//!     },
//! )?;
//!
//! assert_eq!(distributed.num_edges(), partitioner.live_edges());
//! assert!(distributed.epoch() >= 1);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

mod churn;
mod error;
mod event;
mod pipeline;
mod window;

pub use churn::ChurnStream;
pub use error::{DynamicError, Result};
pub use event::{events, EventSource, EventVec, GraphEvent, InsertEvents};
pub use pipeline::{
    batch_from_plan, confined_deletion_batch, BatchReport, EventPipeline, EventReport,
};
pub use window::{SlidingWindow, TumblingWindow};

/// Commonly used items, for glob import in examples and downstream crates.
pub mod prelude {
    pub use crate::{
        batch_from_plan, confined_deletion_batch, events, ChurnStream, DynamicError, EventPipeline,
        EventReport, EventSource, GraphEvent, InsertEvents, SlidingWindow, TumblingWindow,
    };
}
