//! The event pipeline: mutation stream → [`DynamicPartitioner`] → batched
//! [`MutationBatch`]es for the distribution layer.

use std::collections::HashMap;

use ebv_bsp::{DistributedGraph, DurabilityHook, EpochCommitter, MutationBatch, MutationStats};
use ebv_graph::Edge;
use ebv_obs::{EpochMark, NoopRecorder, Phase, Recorder, SpanCtx};
use ebv_partition::{DynamicPartitioner, MigrationPlan, PartitionId, PartitionMetrics};

use crate::error::{DynamicError, Result};
use crate::event::{EventSource, GraphEvent};

/// Drives an [`EventSource`] through a [`DynamicPartitioner`] in fixed-size
/// event batches.
///
/// Each insert is placed by the partitioner and each delete decrements its
/// state exactly; the resulting `(edge, partition)` mutations accumulate
/// into a [`MutationBatch`] (with same-batch insert/delete cancellation)
/// that is handed to `on_batch` together with the maintained delta-metrics
/// — ready to replay via
/// [`DistributedGraph::apply_mutations`](ebv_bsp::DistributedGraph::apply_mutations).
///
/// # Examples
///
/// ```
/// use ebv_dynamic::{ChurnStream, EventPipeline};
/// use ebv_partition::EbvPartitioner;
/// use ebv_stream::{EdgeSource, RmatEdgeStream};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let stream = RmatEdgeStream::new(10, 5_000).with_seed(2);
/// let mut partitioner = EbvPartitioner::new().dynamic(stream.stream_config(4))?;
/// let churn = ChurnStream::new(stream, 0.2)?.with_seed(3);
/// let report = EventPipeline::new(1_000).run(churn, &mut partitioner, |batch, metrics| {
///     assert!(!batch.is_empty());
///     assert!(metrics.edge_imbalance >= 1.0);
///     Ok(())
/// })?;
/// assert_eq!(report.total_inserts(), 5_000);
/// assert_eq!(partitioner.live_edges(), 5_000 - report.total_deletes());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct EventPipeline {
    batch_size: usize,
}

impl EventPipeline {
    /// Creates a pipeline emitting one batch every `batch_size` events (the
    /// final batch may be short).
    pub fn new(batch_size: usize) -> Self {
        EventPipeline { batch_size }
    }

    /// The configured batch size.
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// Streams every event of `source` through `partitioner`, invoking
    /// `on_batch(batch, metrics)` after every `batch_size` events and once
    /// more for a non-empty final remainder.
    ///
    /// # Errors
    ///
    /// Returns [`DynamicError::InvalidParameter`] for a zero batch size,
    /// propagates source errors, deletion of non-live edges
    /// ([`ebv_partition::PartitionError::EdgeNotPresent`]) and any error
    /// returned by `on_batch`. Events applied before a failure remain in
    /// the partitioner.
    pub fn run<S, F>(
        &self,
        source: S,
        partitioner: &mut DynamicPartitioner,
        mut on_batch: F,
    ) -> Result<EventReport>
    where
        S: EventSource,
        F: FnMut(&MutationBatch, PartitionMetrics) -> Result<()>,
    {
        self.run_inner(source, partitioner, |batch, metrics, _, _, _| {
            on_batch(batch, metrics)
        })
    }

    /// The raw batching loop behind [`run`](Self::run). The callback
    /// additionally receives the batch's *raw* insert/delete counts (which
    /// exceed the recorded mutations whenever events cancelled in-batch)
    /// and a shared view of the partitioner — the durable path needs both
    /// to stamp WAL frames and capture checkpoints.
    fn run_inner<S, F>(
        &self,
        mut source: S,
        partitioner: &mut DynamicPartitioner,
        mut on_batch: F,
    ) -> Result<EventReport>
    where
        S: EventSource,
        F: FnMut(&MutationBatch, PartitionMetrics, usize, usize, &DynamicPartitioner) -> Result<()>,
    {
        if self.batch_size == 0 {
            return Err(DynamicError::InvalidParameter {
                parameter: "batch_size",
                message: "the batch size must be at least 1".to_string(),
            });
        }
        let mut report = EventReport::default();
        let mut batch = MutationBatch::new();
        let mut batch_inserts = 0usize;
        let mut batch_deletes = 0usize;
        loop {
            let event = match source.next_event() {
                None => break,
                Some(Err(err)) => return Err(err),
                Some(Ok(event)) => event,
            };
            match event {
                GraphEvent::Insert(edge) => {
                    let part = partitioner.insert(edge);
                    batch.record_insert(edge, part);
                    batch_inserts += 1;
                }
                GraphEvent::Delete(edge) => {
                    let part = partitioner.delete(edge)?;
                    batch.record_delete(edge, part);
                    batch_deletes += 1;
                }
            }
            if batch_inserts + batch_deletes == self.batch_size {
                let metrics = partitioner.metrics();
                on_batch(&batch, metrics, batch_inserts, batch_deletes, partitioner)?;
                report.push(batch_inserts, batch_deletes, metrics);
                batch = MutationBatch::new();
                batch_inserts = 0;
                batch_deletes = 0;
            }
        }
        if batch_inserts + batch_deletes > 0 {
            let metrics = partitioner.metrics();
            on_batch(&batch, metrics, batch_inserts, batch_deletes, partitioner)?;
            report.push(batch_inserts, batch_deletes, metrics);
        }
        Ok(report)
    }

    /// The incremental epoch loop: like [`run`](Self::run), but every batch
    /// is additionally absorbed into `distributed` through the incremental
    /// [`DistributedGraph::apply_mutations`] path — only the workers a
    /// batch touches are re-assembled — before `on_epoch` observes the
    /// post-mutation distribution, the batch, the maintained metrics and
    /// the epoch's [`MutationStats`].
    ///
    /// The distribution handed to `on_epoch` is the one the batch was just
    /// applied to, so the callback can re-execute programs against it —
    /// typically warm-started via
    /// [`BspEngine::run_warm`](ebv_bsp::BspEngine::run_warm) with an
    /// `ebv_algorithms::incremental` program fed the same batch (see the
    /// `evolving_graph` example for the CC/SSSP/BFS epoch loop).
    ///
    /// A batch whose events fully cancelled in-batch is a no-op at the
    /// distribution layer (`workers_touched == 0`, the epoch counter does
    /// not advance); `on_epoch` still sees it, so callers can count raw
    /// batches if they want to.
    ///
    /// # Errors
    ///
    /// Everything [`run`](Self::run) returns, plus
    /// [`ebv_bsp::BspError`]s from `apply_mutations`. Batches applied
    /// before a failure remain absorbed in both the partitioner and the
    /// distribution.
    pub fn run_applied<S, F>(
        &self,
        source: S,
        partitioner: &mut DynamicPartitioner,
        distributed: &mut DistributedGraph,
        on_epoch: F,
    ) -> Result<EventReport>
    where
        S: EventSource,
        F: FnMut(&DistributedGraph, &MutationBatch, PartitionMetrics, MutationStats) -> Result<()>,
    {
        self.run_applied_with(source, partitioner, distributed, on_epoch, &NoopRecorder)
    }

    /// [`run_applied`](Self::run_applied) with telemetry: every batch is
    /// recorded as an `epoch_apply` span (superstep = batch index, on the
    /// engine-side track of its post-apply epoch) around the mutation
    /// application, insert/delete counters accumulate, and the maintained
    /// partition state is exported as gauges (`ebv_dynamic_live_edges`,
    /// `ebv_dynamic_replication_factor`, `ebv_dynamic_edge_imbalance`).
    /// Every non-empty batch additionally reports an
    /// [`EpochMark`](ebv_obs::EpochMark) through
    /// [`Recorder::epoch_applied`], which a live
    /// [`Telemetry`](ebv_obs::Telemetry) turns into one
    /// `EpochSnapshot` per applied epoch in its journal.
    ///
    /// Instrumentation does not perturb the run: batches, metrics and every
    /// deterministic [`MutationStats`] field are bit-identical to
    /// [`run_applied`](Self::run_applied).
    ///
    /// # Errors
    ///
    /// Exactly as [`run_applied`](Self::run_applied).
    pub fn run_applied_with<S, F, R>(
        &self,
        source: S,
        partitioner: &mut DynamicPartitioner,
        distributed: &mut DistributedGraph,
        on_epoch: F,
        recorder: &R,
    ) -> Result<EventReport>
    where
        S: EventSource,
        F: FnMut(&DistributedGraph, &MutationBatch, PartitionMetrics, MutationStats) -> Result<()>,
        R: Recorder,
    {
        self.run_applied_inner(
            source,
            partitioner,
            distributed,
            None,
            None,
            on_epoch,
            recorder,
        )
    }

    /// [`run_applied_with`](Self::run_applied_with) feeding the query
    /// plane: after `on_epoch` returns `Ok` for a non-empty batch — i.e.
    /// after the caller has re-run its programs and *staged* their values
    /// through [`ValueSink`](ebv_bsp::ValueSink)s — the `committer` is
    /// invoked once with the post-apply distribution, atomically flipping
    /// everything staged for that epoch into readers' view.
    ///
    /// Ordering is the contract: commit happens strictly *after* `on_epoch`
    /// succeeds, so concurrent readers either see the previous epoch's
    /// complete snapshot or this epoch's complete snapshot — never a
    /// half-staged mix, and never an epoch whose programs later failed.
    /// Empty (fully-cancelled) batches do not advance the graph epoch and
    /// are not committed.
    ///
    /// # Errors
    ///
    /// Exactly as [`run_applied_with`](Self::run_applied_with); a failed
    /// `on_epoch` skips the commit, leaving readers on the last good epoch.
    pub fn run_applied_publishing<S, F, R>(
        &self,
        source: S,
        partitioner: &mut DynamicPartitioner,
        distributed: &mut DistributedGraph,
        committer: &dyn EpochCommitter,
        on_epoch: F,
        recorder: &R,
    ) -> Result<EventReport>
    where
        S: EventSource,
        F: FnMut(&DistributedGraph, &MutationBatch, PartitionMetrics, MutationStats) -> Result<()>,
        R: Recorder,
    {
        self.run_applied_inner(
            source,
            partitioner,
            distributed,
            Some(committer),
            None,
            on_epoch,
            recorder,
        )
    }

    /// [`run_applied_publishing`](Self::run_applied_publishing) with a
    /// durable lineage: every non-empty batch is logged through
    /// [`DurabilityHook::log_batch`] **before** it is applied
    /// (write-ahead), and after the epoch's programs have run and the
    /// committer has flipped it into readers' view,
    /// [`DurabilityHook::epoch_durable`] observes the post-commit state —
    /// the hook's cue to take a cadenced checkpoint.
    ///
    /// `events_already_seen` seeds the cumulative raw-event counter
    /// stamped into WAL frames; a recovered process passes
    /// `RecoveredState::events_seen()` after fast-forwarding its event
    /// source by the same amount, so frame stamps stay exact across
    /// restarts. Fresh runs pass 0.
    ///
    /// Empty (fully-cancelled) batches are *not* logged — they do not
    /// advance the epoch, and a frame without an epoch would fork the WAL
    /// lineage. Their raw events still advance the counter, so the next
    /// frame's stamp accounts for them.
    ///
    /// # Errors
    ///
    /// Everything [`run_applied_publishing`](Self::run_applied_publishing)
    /// returns, plus [`DynamicError::Durability`] when the hook fails —
    /// the batch that failed to log is **not** applied, so the durable
    /// lineage never lags the in-memory state.
    #[allow(clippy::too_many_arguments)]
    pub fn run_applied_durable<S, F, R>(
        &self,
        source: S,
        partitioner: &mut DynamicPartitioner,
        distributed: &mut DistributedGraph,
        committer: &dyn EpochCommitter,
        durability: &dyn DurabilityHook,
        events_already_seen: u64,
        on_epoch: F,
        recorder: &R,
    ) -> Result<EventReport>
    where
        S: EventSource,
        F: FnMut(&DistributedGraph, &MutationBatch, PartitionMetrics, MutationStats) -> Result<()>,
        R: Recorder,
    {
        self.run_applied_inner(
            source,
            partitioner,
            distributed,
            Some(committer),
            Some((durability, events_already_seen)),
            on_epoch,
            recorder,
        )
    }

    /// Shared implementation of the applied-epoch loop: log (when
    /// durable), apply, record, hand to `on_epoch`, commit (when
    /// publishing), then mark the epoch durable.
    #[allow(clippy::too_many_arguments)]
    fn run_applied_inner<S, F, R>(
        &self,
        source: S,
        partitioner: &mut DynamicPartitioner,
        distributed: &mut DistributedGraph,
        committer: Option<&dyn EpochCommitter>,
        durability: Option<(&dyn DurabilityHook, u64)>,
        mut on_epoch: F,
        recorder: &R,
    ) -> Result<EventReport>
    where
        S: EventSource,
        F: FnMut(&DistributedGraph, &MutationBatch, PartitionMetrics, MutationStats) -> Result<()>,
        R: Recorder,
    {
        let mut batch_index = 0u32;
        let hook = durability.map(|(hook, _)| hook);
        let mut events_seen = durability.map(|(_, start)| start).unwrap_or(0);
        self.run_inner(
            source,
            partitioner,
            |batch, metrics, raw_inserts, raw_deletes, partitioner| {
                events_seen += (raw_inserts + raw_deletes) as u64;
                let applied = !batch.is_empty();
                if applied {
                    if let Some(hook) = hook {
                        // Write-ahead: the frame for the epoch this batch is
                        // about to become must be durable before the batch
                        // mutates anything.
                        hook.log_batch(distributed.epoch() as u64 + 1, events_seen, batch)
                            .map_err(DynamicError::Durability)?;
                    }
                }
                let started = recorder.start();
                let stats = distributed.apply_mutations_with(batch, recorder)?;
                recorder.span(
                    started,
                    SpanCtx {
                        epoch: distributed.epoch() as u32,
                        superstep: batch_index,
                        worker: distributed.num_workers() as u32,
                    },
                    Phase::EpochApply,
                );
                recorder.counter_add("ebv_dynamic_inserts_total", batch.added().len() as u64);
                recorder.counter_add("ebv_dynamic_deletes_total", batch.removed().len() as u64);
                recorder.gauge_set("ebv_dynamic_live_edges", distributed.num_edges() as f64);
                recorder.gauge_set("ebv_dynamic_replication_factor", metrics.replication_factor);
                recorder.gauge_set("ebv_dynamic_edge_imbalance", metrics.edge_imbalance);
                if applied {
                    recorder.epoch_applied(&EpochMark {
                        epoch: distributed.epoch() as u64,
                        batch_index,
                        apply_seconds: stats.apply_seconds,
                        workers_touched: stats.workers_touched as u32,
                        edges_rebuilt: stats.edges_rebuilt as u64,
                        edges_added: stats.edges_added as u64,
                        edges_removed: stats.edges_removed as u64,
                        live_edges: distributed.num_edges() as u64,
                        replication_factor: metrics.replication_factor,
                        edge_imbalance: metrics.edge_imbalance,
                    });
                }
                batch_index += 1;
                on_epoch(distributed, batch, metrics, stats)?;
                if applied {
                    if let Some(committer) = committer {
                        committer.commit_epoch(distributed);
                    }
                    if let Some(hook) = hook {
                        hook.epoch_durable(distributed, partitioner, events_seen)
                            .map_err(DynamicError::Durability)?;
                    }
                }
                Ok(())
            },
        )
    }
}

/// Converts a rebalancer [`MigrationPlan`] into the [`MutationBatch`] that
/// replays the same migrations against a distributed graph.
pub fn batch_from_plan(plan: &MigrationPlan) -> MutationBatch {
    let mut batch = MutationBatch::new();
    for m in plan.moves() {
        batch.record_move(m.edge, m.from, m.to);
    }
    batch
}

/// Builds a deletion-only [`MutationBatch`] confined to worker `target` —
/// the hot-shard mutation pattern: applying it through the incremental
/// [`DistributedGraph::apply_mutations`] re-assembles exactly that one
/// worker (`workers_touched == 1`).
///
/// Up to `max_len` edges of `target` are selected, restricted to
/// single-copy non-self-loop edges whose endpoints each keep at least one
/// other live incident edge: a duplicated edge's LIFO deletion could
/// remove a copy held by another worker, and a vertex losing its last
/// edge would re-home round-robin as an isolated vertex elsewhere —
/// either would widen the touched set. The selected edges are deleted
/// from `partitioner` as they are recorded, keeping both sides in sync.
///
/// Used by the `evolving_graph` example and the `bench_dynamic`
/// localized-epoch measurement.
///
/// # Errors
///
/// Propagates [`ebv_partition::PartitionError`] from the deletions
/// (unreachable for a consistent partitioner: every victim is live).
pub fn confined_deletion_batch(
    partitioner: &mut DynamicPartitioner,
    target: PartitionId,
    max_len: usize,
) -> Result<MutationBatch> {
    let mut endpoint_refs: HashMap<u64, usize> = HashMap::new();
    let mut copy_counts: HashMap<Edge, usize> = HashMap::new();
    for (edge, _) in partitioner.surviving() {
        *endpoint_refs.entry(edge.src.raw()).or_insert(0) += 1;
        *endpoint_refs.entry(edge.dst.raw()).or_insert(0) += 1;
        *copy_counts.entry(edge).or_insert(0) += 1;
    }
    let victims: Vec<Edge> = partitioner
        .surviving()
        .filter(|(edge, part)| {
            *part == target
                && edge.src != edge.dst
                && copy_counts[edge] == 1
                && endpoint_refs[&edge.src.raw()] >= 2
                && endpoint_refs[&edge.dst.raw()] >= 2
        })
        .map(|(edge, _)| edge)
        .collect();
    let mut batch = MutationBatch::new();
    for edge in victims {
        if batch.len() >= max_len {
            break;
        }
        let (src, dst) = (edge.src.raw(), edge.dst.raw());
        if endpoint_refs[&src] >= 2 && endpoint_refs[&dst] >= 2 {
            batch.record_delete(edge, partitioner.delete(edge)?);
            *endpoint_refs.get_mut(&src).unwrap() -= 1;
            *endpoint_refs.get_mut(&dst).unwrap() -= 1;
        }
    }
    Ok(batch)
}

/// The running metrics recorded after one event batch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchReport {
    /// 0-based index of the batch.
    pub batch_index: usize,
    /// Insertions the batch carried.
    pub inserts: usize,
    /// Deletions the batch carried.
    pub deletes: usize,
    /// Maintained delta-metrics after the batch.
    pub metrics: PartitionMetrics,
}

/// The outcome of one pipeline run: how much churned, batch by batch.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EventReport {
    batches: Vec<BatchReport>,
    total_inserts: usize,
    total_deletes: usize,
}

impl EventReport {
    fn push(&mut self, inserts: usize, deletes: usize, metrics: PartitionMetrics) {
        self.batches.push(BatchReport {
            batch_index: self.batches.len(),
            inserts,
            deletes,
            metrics,
        });
        self.total_inserts += inserts;
        self.total_deletes += deletes;
    }

    /// Per-batch reports in stream order.
    pub fn batches(&self) -> &[BatchReport] {
        &self.batches
    }

    /// Total insertions across the run.
    pub fn total_inserts(&self) -> usize {
        self.total_inserts
    }

    /// Total deletions across the run.
    pub fn total_deletes(&self) -> usize {
        self.total_deletes
    }

    /// The metrics after the final batch, or `None` for an empty stream.
    pub fn final_metrics(&self) -> Option<PartitionMetrics> {
        self.batches.last().map(|b| b.metrics)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::churn::ChurnStream;
    use crate::event::{events, GraphEvent, InsertEvents};
    use ebv_graph::Edge;
    use ebv_partition::{EbvPartitioner, PartitionError, RebalanceConfig, StreamConfig};
    use ebv_stream::{EdgeSource, RmatEdgeStream};

    #[test]
    fn batches_cover_every_event_and_cancel_within_batch() {
        let e = Edge::from((0u64, 1u64));
        let f = Edge::from((1u64, 2u64));
        let source = events(vec![
            GraphEvent::Insert(e),
            GraphEvent::Insert(f),
            GraphEvent::Delete(e),
        ]);
        let mut partitioner = EbvPartitioner::new().dynamic(StreamConfig::new(2)).unwrap();
        let mut seen = Vec::new();
        let report = EventPipeline::new(10)
            .run(source, &mut partitioner, |batch, _| {
                seen.push(batch.clone());
                Ok(())
            })
            .unwrap();
        assert_eq!(report.total_inserts(), 2);
        assert_eq!(report.total_deletes(), 1);
        assert_eq!(seen.len(), 1);
        // The insert of `e` cancelled against its same-batch delete.
        assert_eq!(seen[0].added().len(), 1);
        assert!(seen[0].removed().is_empty());
        assert_eq!(partitioner.live_edges(), 1);
    }

    #[test]
    fn batch_size_controls_emission() {
        let stream = RmatEdgeStream::new(8, 1000).with_seed(4);
        let mut partitioner = EbvPartitioner::new()
            .dynamic(stream.stream_config(4))
            .unwrap();
        let report = EventPipeline::new(256)
            .run(InsertEvents::new(stream), &mut partitioner, |_, _| Ok(()))
            .unwrap();
        // 1000 = 3 × 256 + 232: four batches, the last one short.
        assert_eq!(report.batches().len(), 4);
        assert_eq!(report.batches()[3].inserts, 1000 - 3 * 256);
        assert_eq!(report.final_metrics().unwrap(), partitioner.metrics());
        for w in report.batches().windows(2) {
            assert!(w[0].batch_index < w[1].batch_index);
        }
    }

    #[test]
    fn deleting_a_missing_edge_is_a_typed_error() {
        let source = events(vec![GraphEvent::Delete(Edge::from((5u64, 6u64)))]);
        let mut partitioner = EbvPartitioner::new().dynamic(StreamConfig::new(2)).unwrap();
        let err = EventPipeline::new(8)
            .run(source, &mut partitioner, |_, _| Ok(()))
            .unwrap_err();
        assert!(matches!(
            err,
            DynamicError::Partition(PartitionError::EdgeNotPresent { .. })
        ));
    }

    #[test]
    fn zero_batch_size_is_rejected_and_callback_errors_propagate() {
        let mut partitioner = EbvPartitioner::new().dynamic(StreamConfig::new(2)).unwrap();
        assert!(EventPipeline::new(0)
            .run(events(Vec::new()), &mut partitioner, |_, _| Ok(()))
            .is_err());
        let source = events(vec![GraphEvent::Insert(Edge::from((0u64, 1u64)))]);
        let err = EventPipeline::new(1)
            .run(source, &mut partitioner, |_, _| {
                Err(DynamicError::InvalidParameter {
                    parameter: "sink",
                    message: "boom".to_string(),
                })
            })
            .unwrap_err();
        assert!(err.to_string().contains("boom"));
    }

    #[test]
    fn run_applied_drives_incremental_epochs() {
        let stream = RmatEdgeStream::new(8, 1200).with_seed(11);
        let mut partitioner = EbvPartitioner::new()
            .dynamic(stream.stream_config(4))
            .unwrap();
        let mut distributed =
            ebv_bsp::DistributedGraph::build_streaming(4, None, Vec::new()).unwrap();
        let churn = ChurnStream::new(stream, 0.2).unwrap().with_seed(3);
        let mut epochs = 0usize;
        let report = EventPipeline::new(300)
            .run_applied(
                churn,
                &mut partitioner,
                &mut distributed,
                |dg, batch, metrics, stats| {
                    assert!(metrics.edge_imbalance >= 1.0);
                    assert_eq!(dg.num_workers(), 4);
                    if batch.is_empty() {
                        assert_eq!(stats.workers_touched, 0);
                    } else {
                        epochs += 1;
                        assert!(stats.workers_touched >= 1 && stats.workers_touched <= 4);
                        assert_eq!(stats.edges_added, batch.added().len());
                        assert_eq!(stats.edges_removed, batch.removed().len());
                    }
                    Ok(())
                },
            )
            .unwrap();
        assert!(report.batches().len() >= epochs);
        assert_eq!(distributed.epoch(), epochs, "only non-empty batches count");
        assert_eq!(distributed.num_edges(), partitioner.live_edges());
    }

    #[test]
    fn run_applied_publishing_commits_after_each_applied_epoch() {
        use std::sync::Mutex;

        /// Records the graph epoch at each commit, and how many epochs
        /// `on_epoch` had completed by then.
        struct RecordingCommitter {
            commits: Mutex<Vec<(usize, usize)>>,
        }

        impl EpochCommitter for RecordingCommitter {
            fn commit_epoch(&self, distributed: &DistributedGraph) {
                let staged = STAGED.with(|s| *s.borrow());
                self.commits
                    .lock()
                    .unwrap()
                    .push((distributed.epoch(), staged));
            }
        }

        thread_local! {
            static STAGED: std::cell::RefCell<usize> = const { std::cell::RefCell::new(0) };
        }
        STAGED.with(|s| *s.borrow_mut() = 0);

        let stream = RmatEdgeStream::new(8, 1200).with_seed(11);
        let mut partitioner = EbvPartitioner::new()
            .dynamic(stream.stream_config(4))
            .unwrap();
        let mut distributed =
            ebv_bsp::DistributedGraph::build_streaming(4, None, Vec::new()).unwrap();
        let churn = ChurnStream::new(stream, 0.2).unwrap().with_seed(3);
        let committer = RecordingCommitter {
            commits: Mutex::new(Vec::new()),
        };
        EventPipeline::new(300)
            .run_applied_publishing(
                churn,
                &mut partitioner,
                &mut distributed,
                &committer,
                |_, batch, _, _| {
                    if !batch.is_empty() {
                        STAGED.with(|s| *s.borrow_mut() += 1);
                    }
                    Ok(())
                },
                &ebv_obs::NoopRecorder,
            )
            .unwrap();
        let commits = committer.commits.into_inner().unwrap();
        assert_eq!(
            commits.len(),
            distributed.epoch(),
            "one commit per applied epoch"
        );
        for (i, &(epoch, staged)) in commits.iter().enumerate() {
            assert_eq!(epoch, i + 1, "commits tag consecutive epochs");
            assert_eq!(staged, i + 1, "commit runs after on_epoch staged the epoch");
        }
    }

    #[test]
    fn failed_on_epoch_skips_the_commit() {
        use std::sync::atomic::{AtomicUsize, Ordering};

        struct CountingCommitter {
            commits: AtomicUsize,
        }

        impl EpochCommitter for CountingCommitter {
            fn commit_epoch(&self, _distributed: &DistributedGraph) {
                self.commits.fetch_add(1, Ordering::SeqCst);
            }
        }

        let stream = RmatEdgeStream::new(8, 600).with_seed(7);
        let mut partitioner = EbvPartitioner::new()
            .dynamic(stream.stream_config(4))
            .unwrap();
        let mut distributed =
            ebv_bsp::DistributedGraph::build_streaming(4, None, Vec::new()).unwrap();
        let committer = CountingCommitter {
            commits: AtomicUsize::new(0),
        };
        let mut epochs = 0usize;
        let err = EventPipeline::new(200)
            .run_applied_publishing(
                InsertEvents::new(stream),
                &mut partitioner,
                &mut distributed,
                &committer,
                |_, _, _, _| {
                    epochs += 1;
                    if epochs == 2 {
                        return Err(DynamicError::InvalidParameter {
                            parameter: "sink",
                            message: "program failed".to_string(),
                        });
                    }
                    Ok(())
                },
                &ebv_obs::NoopRecorder,
            )
            .unwrap_err();
        assert!(err.to_string().contains("program failed"));
        // Epoch 1 committed; epoch 2's failure left it unpublished.
        assert_eq!(committer.commits.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn durable_runs_log_before_apply_and_mark_after_commit() {
        use std::sync::Mutex;

        /// Records the hook call sequence with enough context to check the
        /// write-ahead ordering contract.
        #[derive(Default)]
        struct RecordingHook {
            calls: Mutex<Vec<(String, u64, u64)>>,
        }

        impl DurabilityHook for RecordingHook {
            fn log_batch(
                &self,
                epoch: u64,
                events_seen: u64,
                _batch: &MutationBatch,
            ) -> std::io::Result<()> {
                self.calls
                    .lock()
                    .unwrap()
                    .push(("log".to_string(), epoch, events_seen));
                Ok(())
            }

            fn epoch_durable(
                &self,
                distributed: &DistributedGraph,
                partitioner: &DynamicPartitioner,
                events_seen: u64,
            ) -> std::io::Result<()> {
                assert_eq!(distributed.num_edges(), partitioner.live_edges());
                self.calls.lock().unwrap().push((
                    "durable".to_string(),
                    distributed.epoch() as u64,
                    events_seen,
                ));
                Ok(())
            }
        }

        struct NoopCommitter;
        impl EpochCommitter for NoopCommitter {
            fn commit_epoch(&self, _distributed: &DistributedGraph) {}
        }

        let stream = RmatEdgeStream::new(8, 1200).with_seed(11);
        let mut partitioner = EbvPartitioner::new()
            .dynamic(stream.stream_config(4))
            .unwrap();
        let mut distributed =
            ebv_bsp::DistributedGraph::build_streaming(4, None, Vec::new()).unwrap();
        let churn = ChurnStream::new(stream, 0.2).unwrap().with_seed(3);
        let hook = RecordingHook::default();
        let offset = 40u64;
        let report = EventPipeline::new(300)
            .run_applied_durable(
                churn,
                &mut partitioner,
                &mut distributed,
                &NoopCommitter,
                &hook,
                offset,
                |_, _, _, _| Ok(()),
                &ebv_obs::NoopRecorder,
            )
            .unwrap();
        let calls = hook.calls.into_inner().unwrap();
        // Per applied epoch: one `log` (stamped with the epoch the batch
        // became) immediately followed by one `durable` at that epoch.
        assert_eq!(calls.len(), 2 * distributed.epoch());
        for (i, pair) in calls.chunks(2).enumerate() {
            let epoch = i as u64 + 1;
            assert_eq!(pair[0].0, "log");
            assert_eq!(pair[0].1, epoch, "WAL frame carries the post-apply epoch");
            assert_eq!(pair[1].0, "durable");
            assert_eq!(pair[1].1, epoch);
            assert_eq!(pair[0].2, pair[1].2, "both see the same event stamp");
        }
        // The cumulative stamp starts at the carried-over offset and ends
        // having counted every raw event of this run.
        let total_events = (report.total_inserts() + report.total_deletes()) as u64;
        assert_eq!(calls.last().unwrap().2, offset + total_events);
    }

    #[test]
    fn failed_log_batch_aborts_before_the_batch_is_applied() {
        struct FailingHook;
        impl DurabilityHook for FailingHook {
            fn log_batch(
                &self,
                _epoch: u64,
                _events_seen: u64,
                _batch: &MutationBatch,
            ) -> std::io::Result<()> {
                Err(std::io::Error::other("disk full"))
            }

            fn epoch_durable(
                &self,
                _distributed: &DistributedGraph,
                _partitioner: &DynamicPartitioner,
                _events_seen: u64,
            ) -> std::io::Result<()> {
                panic!("epoch_durable must not run when the log failed");
            }
        }

        struct NoopCommitter;
        impl EpochCommitter for NoopCommitter {
            fn commit_epoch(&self, _distributed: &DistributedGraph) {
                panic!("commit must not run when the log failed");
            }
        }

        let stream = RmatEdgeStream::new(8, 600).with_seed(7);
        let mut partitioner = EbvPartitioner::new()
            .dynamic(stream.stream_config(4))
            .unwrap();
        let mut distributed =
            ebv_bsp::DistributedGraph::build_streaming(4, None, Vec::new()).unwrap();
        let err = EventPipeline::new(200)
            .run_applied_durable(
                InsertEvents::new(stream),
                &mut partitioner,
                &mut distributed,
                &NoopCommitter,
                &FailingHook,
                0,
                |_, _, _, _| panic!("on_epoch must not run when the log failed"),
                &ebv_obs::NoopRecorder,
            )
            .unwrap_err();
        assert!(matches!(err, DynamicError::Durability(_)), "{err}");
        assert!(err.to_string().contains("disk full"));
        // Write-ahead means the unlogged batch never mutated the graph.
        assert_eq!(distributed.epoch(), 0);
        assert_eq!(distributed.num_edges(), 0);
    }

    #[test]
    fn confined_batches_touch_exactly_one_worker() {
        let stream = RmatEdgeStream::new(9, 4_000).with_seed(21);
        let mut partitioner = EbvPartitioner::new()
            .dynamic(stream.stream_config(4))
            .unwrap();
        let mut distributed =
            ebv_bsp::DistributedGraph::build_streaming(4, None, Vec::new()).unwrap();
        EventPipeline::new(500)
            .run_applied(
                InsertEvents::new(stream),
                &mut partitioner,
                &mut distributed,
                |_, _, _, _| Ok(()),
            )
            .unwrap();
        let target = ebv_partition::PartitionId::new(2);
        let batch = confined_deletion_batch(&mut partitioner, target, 64).unwrap();
        assert!(!batch.is_empty() && batch.len() <= 64);
        assert!(batch.added().is_empty());
        assert!(batch.removed().iter().all(|&(_, part)| part == target));
        let stats = distributed.apply_mutations(&batch).unwrap();
        assert_eq!(stats.workers_touched, 1);
        assert_eq!(distributed.num_edges(), partitioner.live_edges());
    }

    #[test]
    fn plan_batches_replay_migrations() {
        let stream = RmatEdgeStream::new(8, 800).with_seed(6);
        let mut partitioner = EbvPartitioner::new()
            .dynamic(stream.stream_config(4))
            .unwrap();
        let churn = ChurnStream::new(stream, 0.3).unwrap().with_seed(1);
        EventPipeline::new(200)
            .run(churn, &mut partitioner, |_, _| Ok(()))
            .unwrap();
        // Starve partitions 1..4 to force a skew, then rebalance.
        let victims: Vec<Edge> = partitioner
            .surviving()
            .filter(|(_, part)| part.index() != 0)
            .map(|(e, _)| e)
            .collect();
        for e in victims.iter().take(victims.len() * 4 / 5) {
            partitioner.delete(*e).unwrap();
        }
        let plan = partitioner
            .rebalance(&RebalanceConfig::new().with_max_edge_imbalance(1.2))
            .unwrap();
        assert!(!plan.is_empty());
        let batch = batch_from_plan(&plan);
        assert_eq!(batch.added().len(), plan.len());
        assert_eq!(batch.removed().len(), plan.len());
    }
}
