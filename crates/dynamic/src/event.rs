//! Mutation events and the [`EventSource`] abstraction: anything that can
//! deliver a stream of graph mutations one at a time.

use ebv_graph::Edge;
use ebv_stream::EdgeSource;

use crate::error::Result;

/// One mutation of an evolving graph's edge multiset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GraphEvent {
    /// A new edge copy arrives.
    Insert(Edge),
    /// One live copy of the edge departs (the most recently inserted one,
    /// under the LIFO multiset semantics of
    /// [`DynamicPartitioner::delete`](ebv_partition::DynamicPartitioner::delete)).
    Delete(Edge),
}

impl GraphEvent {
    /// The edge this event concerns.
    pub fn edge(&self) -> Edge {
        match *self {
            GraphEvent::Insert(edge) | GraphEvent::Delete(edge) => edge,
        }
    }

    /// Whether this is an insertion.
    pub fn is_insert(&self) -> bool {
        matches!(self, GraphEvent::Insert(_))
    }
}

/// A fallible, pull-based stream of graph mutations — the evolving-graph
/// analogue of [`EdgeSource`].
pub trait EventSource {
    /// Pulls the next event: `None` at end of stream, `Some(Err(_))` when
    /// the underlying edge reader failed.
    fn next_event(&mut self) -> Option<Result<GraphEvent>>;

    /// Total number of events the stream will deliver, when known up front.
    fn expected_events(&self) -> Option<usize> {
        None
    }
}

/// An [`EventSource`] over any infallible iterator of events.
///
/// # Examples
///
/// ```
/// use ebv_dynamic::{events, EventSource, GraphEvent};
/// use ebv_graph::Edge;
///
/// let e = Edge::from((0u64, 1u64));
/// let mut source = events(vec![GraphEvent::Insert(e), GraphEvent::Delete(e)]);
/// assert_eq!(source.expected_events(), Some(2));
/// assert!(source.next_event().unwrap().unwrap().is_insert());
/// ```
pub fn events<I>(events: I) -> EventVec<I::IntoIter>
where
    I: IntoIterator<Item = GraphEvent>,
{
    EventVec {
        inner: events.into_iter(),
    }
}

/// See [`events`].
#[derive(Debug, Clone)]
pub struct EventVec<I> {
    inner: I,
}

impl<I: Iterator<Item = GraphEvent>> EventSource for EventVec<I> {
    fn next_event(&mut self) -> Option<Result<GraphEvent>> {
        self.inner.next().map(Ok)
    }

    fn expected_events(&self) -> Option<usize> {
        match self.inner.size_hint() {
            (lo, Some(hi)) if lo == hi => Some(hi),
            _ => None,
        }
    }
}

/// Adapts any [`EdgeSource`] into an insert-only [`EventSource`] — the
/// bridge from the PR 1 streaming readers and generators to the mutation
/// pipeline.
///
/// # Examples
///
/// ```
/// use ebv_dynamic::{EventSource, InsertEvents};
/// use ebv_stream::RmatEdgeStream;
///
/// let mut source = InsertEvents::new(RmatEdgeStream::new(8, 100).with_seed(1));
/// assert_eq!(source.expected_events(), Some(100));
/// assert!(source.next_event().unwrap().unwrap().is_insert());
/// ```
#[derive(Debug, Clone)]
pub struct InsertEvents<S> {
    source: S,
}

impl<S: EdgeSource> InsertEvents<S> {
    /// Wraps an edge source; every edge becomes a [`GraphEvent::Insert`].
    pub fn new(source: S) -> Self {
        InsertEvents { source }
    }
}

impl<S: EdgeSource> EventSource for InsertEvents<S> {
    fn next_event(&mut self) -> Option<Result<GraphEvent>> {
        match self.source.next_edge()? {
            Ok(edge) => Some(Ok(GraphEvent::Insert(edge))),
            Err(err) => Some(Err(err.into())),
        }
    }

    fn expected_events(&self) -> Option<usize> {
        self.source.expected_edges()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebv_stream::pairs;

    #[test]
    fn events_replay_in_order() {
        let a = Edge::from((0u64, 1u64));
        let b = Edge::from((1u64, 2u64));
        let mut source = events(vec![
            GraphEvent::Insert(a),
            GraphEvent::Insert(b),
            GraphEvent::Delete(a),
        ]);
        let mut seen = Vec::new();
        while let Some(event) = source.next_event() {
            seen.push(event.unwrap());
        }
        assert_eq!(seen.len(), 3);
        assert_eq!(seen[2], GraphEvent::Delete(a));
        assert_eq!(seen[2].edge(), a);
        assert!(!seen[2].is_insert());
    }

    #[test]
    fn insert_events_wrap_every_edge() {
        let mut source = InsertEvents::new(pairs(vec![(0, 1), (2, 3)]));
        assert_eq!(source.expected_events(), Some(2));
        let mut count = 0;
        while let Some(event) = source.next_event() {
            assert!(event.unwrap().is_insert());
            count += 1;
        }
        assert_eq!(count, 2);
    }
}
