//! Window sources: turn a plain edge stream into a mutation stream whose
//! live edge set is bounded by a window.
//!
//! * [`SlidingWindow`] keeps the most recent `capacity` edges: once full,
//!   each arrival first evicts (deletes) the oldest live edge, then inserts
//!   the new one.
//! * [`TumblingWindow`] processes the stream in back-to-back windows of
//!   `capacity` edges: when a window fills, the *entire* previous window is
//!   evicted before the next window starts inserting.
//!
//! Both preserve the underlying arrival order for insertions and emit
//! deletions oldest-first, so the surviving edge multiset after draining
//! the source is exactly the final window.

use std::collections::VecDeque;

use ebv_graph::Edge;
use ebv_stream::EdgeSource;

use crate::error::{DynamicError, Result};
use crate::event::{EventSource, GraphEvent};

fn validate_capacity(capacity: usize) -> Result<()> {
    if capacity == 0 {
        return Err(DynamicError::InvalidParameter {
            parameter: "capacity",
            message: "a window must hold at least one edge".to_string(),
        });
    }
    Ok(())
}

/// A sliding window of the most recent `capacity` edges: once full, each
/// arrival first evicts (deletes) the oldest live edge, then inserts the
/// new one.
///
/// # Examples
///
/// ```
/// use ebv_dynamic::{EventSource, GraphEvent, SlidingWindow};
/// use ebv_stream::pairs;
///
/// # fn main() -> Result<(), ebv_dynamic::DynamicError> {
/// let mut window = SlidingWindow::new(pairs(vec![(0, 1), (1, 2), (2, 3)]), 2)?;
/// let mut kinds = Vec::new();
/// while let Some(event) = window.next_event() {
///     kinds.push(event?.is_insert());
/// }
/// // Insert, Insert, then Delete-oldest + Insert for the third arrival.
/// assert_eq!(kinds, vec![true, true, false, true]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SlidingWindow<S> {
    source: S,
    capacity: usize,
    live: VecDeque<Edge>,
    pending_insert: Option<Edge>,
}

impl<S: EdgeSource> SlidingWindow<S> {
    /// Wraps `source` in a sliding window of `capacity` edges.
    ///
    /// # Errors
    ///
    /// Returns [`DynamicError::InvalidParameter`] for a zero capacity.
    pub fn new(source: S, capacity: usize) -> Result<Self> {
        validate_capacity(capacity)?;
        Ok(SlidingWindow {
            source,
            capacity,
            live: VecDeque::with_capacity(capacity.min(1 << 16)),
            pending_insert: None,
        })
    }

    /// The configured window capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of edges currently live in the window.
    pub fn live_edges(&self) -> usize {
        self.live.len()
    }
}

impl<S: EdgeSource> EventSource for SlidingWindow<S> {
    fn next_event(&mut self) -> Option<Result<GraphEvent>> {
        if let Some(edge) = self.pending_insert.take() {
            self.live.push_back(edge);
            return Some(Ok(GraphEvent::Insert(edge)));
        }
        match self.source.next_edge()? {
            Err(err) => Some(Err(err.into())),
            Ok(edge) => {
                if self.live.len() == self.capacity {
                    let evicted = self.live.pop_front().expect("full window is non-empty");
                    self.pending_insert = Some(edge);
                    Some(Ok(GraphEvent::Delete(evicted)))
                } else {
                    self.live.push_back(edge);
                    Some(Ok(GraphEvent::Insert(edge)))
                }
            }
        }
    }

    fn expected_events(&self) -> Option<usize> {
        // n inserts plus max(0, n - capacity) evictions.
        self.source
            .expected_edges()
            .map(|n| n + n.saturating_sub(self.capacity))
    }
}

/// A tumbling window of `capacity` edges: when a window fills, the entire
/// previous window is evicted (oldest-first) before the next window starts
/// inserting.
///
/// # Examples
///
/// ```
/// use ebv_dynamic::{EventSource, TumblingWindow};
/// use ebv_stream::pairs;
///
/// # fn main() -> Result<(), ebv_dynamic::DynamicError> {
/// let mut window = TumblingWindow::new(pairs(vec![(0, 1), (1, 2), (2, 3)]), 2)?;
/// let mut kinds = Vec::new();
/// while let Some(event) = window.next_event() {
///     kinds.push(event?.is_insert());
/// }
/// // Two inserts fill window 1; both are evicted before the third insert.
/// assert_eq!(kinds, vec![true, true, false, false, true]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct TumblingWindow<S> {
    source: S,
    capacity: usize,
    window: Vec<Edge>,
    draining: VecDeque<Edge>,
    pending_insert: Option<Edge>,
}

impl<S: EdgeSource> TumblingWindow<S> {
    /// Wraps `source` in tumbling windows of `capacity` edges.
    ///
    /// # Errors
    ///
    /// Returns [`DynamicError::InvalidParameter`] for a zero capacity.
    pub fn new(source: S, capacity: usize) -> Result<Self> {
        validate_capacity(capacity)?;
        Ok(TumblingWindow {
            source,
            capacity,
            window: Vec::with_capacity(capacity.min(1 << 16)),
            draining: VecDeque::new(),
            pending_insert: None,
        })
    }

    /// The configured window capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of edges currently live (the filling window plus any window
    /// still draining).
    pub fn live_edges(&self) -> usize {
        self.window.len() + self.draining.len()
    }
}

impl<S: EdgeSource> EventSource for TumblingWindow<S> {
    fn next_event(&mut self) -> Option<Result<GraphEvent>> {
        if let Some(evicted) = self.draining.pop_front() {
            return Some(Ok(GraphEvent::Delete(evicted)));
        }
        if let Some(edge) = self.pending_insert.take() {
            self.window.push(edge);
            return Some(Ok(GraphEvent::Insert(edge)));
        }
        match self.source.next_edge()? {
            Err(err) => Some(Err(err.into())),
            Ok(edge) => {
                if self.window.len() == self.capacity {
                    self.draining.extend(self.window.drain(..));
                    self.pending_insert = Some(edge);
                    let evicted = self.draining.pop_front().expect("full window is non-empty");
                    Some(Ok(GraphEvent::Delete(evicted)))
                } else {
                    self.window.push(edge);
                    Some(Ok(GraphEvent::Insert(edge)))
                }
            }
        }
    }

    fn expected_events(&self) -> Option<usize> {
        // n inserts plus capacity deletions per completed window.
        self.source
            .expected_edges()
            .map(|n| n + n.saturating_sub(1) / self.capacity * self.capacity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebv_stream::pairs;

    fn drain<S: EventSource>(mut source: S) -> Vec<GraphEvent> {
        let mut out = Vec::new();
        while let Some(event) = source.next_event() {
            out.push(event.unwrap());
        }
        out
    }

    fn survivors(events: &[GraphEvent]) -> Vec<Edge> {
        let mut live: Vec<Edge> = Vec::new();
        for event in events {
            match event {
                GraphEvent::Insert(e) => live.push(*e),
                GraphEvent::Delete(e) => {
                    let at = live
                        .iter()
                        .rposition(|x| x == e)
                        .expect("deletes reference live edges");
                    live.remove(at);
                }
            }
        }
        live
    }

    #[test]
    fn sliding_window_keeps_the_last_capacity_edges() {
        let input: Vec<(u64, u64)> = (0..10).map(|i| (i, i + 1)).collect();
        let window = SlidingWindow::new(pairs(input.clone()), 4).unwrap();
        assert_eq!(window.expected_events(), Some(10 + 6));
        let events = drain(window);
        assert_eq!(events.len(), 16);
        let expected: Vec<Edge> = input[6..]
            .iter()
            .map(|&(s, d)| Edge::from((s, d)))
            .collect();
        assert_eq!(survivors(&events), expected);
        // Evictions are oldest-first and interleave strictly: D I D I ...
        for pair in events[4..].chunks(2) {
            assert!(!pair[0].is_insert() && pair[1].is_insert());
        }
    }

    #[test]
    fn sliding_window_shorter_than_capacity_never_evicts() {
        let window = SlidingWindow::new(pairs(vec![(0, 1), (1, 2)]), 10).unwrap();
        assert_eq!(window.capacity(), 10);
        let events = drain(window);
        assert_eq!(events.len(), 2);
        assert!(events.iter().all(GraphEvent::is_insert));
    }

    #[test]
    fn tumbling_window_drops_whole_windows() {
        let input: Vec<(u64, u64)> = (0..7).map(|i| (i, i + 1)).collect();
        let window = TumblingWindow::new(pairs(input.clone()), 3).unwrap();
        assert_eq!(window.expected_events(), Some(7 + 6));
        let events = drain(window);
        assert_eq!(events.len(), 13);
        // The final (partial) window survives: edge 6 only.
        let expected: Vec<Edge> = input[6..]
            .iter()
            .map(|&(s, d)| Edge::from((s, d)))
            .collect();
        assert_eq!(survivors(&events), expected);
        let deletes = events.iter().filter(|e| !e.is_insert()).count();
        assert_eq!(deletes, 6);
    }

    #[test]
    fn live_edges_track_window_occupancy() {
        let mut sliding = SlidingWindow::new(pairs((0..6).map(|i| (i, i + 1))), 3).unwrap();
        let mut peak = 0;
        while let Some(event) = sliding.next_event() {
            event.unwrap();
            peak = peak.max(sliding.live_edges());
        }
        assert_eq!(peak, 3);
        assert_eq!(sliding.live_edges(), 3);

        let mut tumbling = TumblingWindow::new(pairs((0..6).map(|i| (i, i + 1))), 3).unwrap();
        while let Some(event) = tumbling.next_event() {
            event.unwrap();
            assert!(tumbling.live_edges() <= tumbling.capacity());
        }
    }

    #[test]
    fn zero_capacity_is_rejected() {
        assert!(SlidingWindow::new(pairs(vec![(0, 1)]), 0).is_err());
        assert!(TumblingWindow::new(pairs(vec![(0, 1)]), 0).is_err());
    }
}
