//! Criterion bench: partitioning throughput (edges/second) of EBV and every
//! baseline on a power-law graph. Not a table in the paper, but the paper's
//! Section VI stresses that EBV keeps "a reasonable partition overhead";
//! this bench quantifies that overhead relative to the cheapest baselines.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use ebv_bench::{Dataset, Scale};
use ebv_partition::paper_partitioners;

fn partitioner_throughput(c: &mut Criterion) {
    let graph = Dataset::livejournal_like()
        .generate(Scale::Small)
        .expect("dataset generation is deterministic and valid");
    let workers = 8;

    let mut group = c.benchmark_group("partitioner_throughput");
    group.sample_size(10);
    group.throughput(Throughput::Elements(graph.num_edges() as u64));
    for partitioner in paper_partitioners() {
        group.bench_with_input(
            BenchmarkId::from_parameter(partitioner.name()),
            &graph,
            |b, graph| {
                b.iter(|| {
                    partitioner
                        .partition(graph, workers)
                        .expect("partitioning the benchmark graph succeeds")
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, partitioner_throughput);
criterion_main!(benches);
