//! Criterion bench backing Tables II/IV and Figures 2–4: end-to-end time to
//! distribute a graph and run Connected Components on the BSP engine, per
//! partitioner. The measured wall-clock here plays the role of the paper's
//! cluster execution time; the counted messages (checked in the setup) play
//! the role of its platform-independent communication metric.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ebv_algorithms::ConnectedComponents;
use ebv_bench::{Dataset, Scale};
use ebv_bsp::{BspEngine, DistributedGraph};
use ebv_partition::paper_partitioners;

fn cc_supersteps(c: &mut Criterion) {
    let graph = Dataset::livejournal_like()
        .generate(Scale::Small)
        .expect("dataset generation is deterministic and valid");
    let workers = 4;

    let mut group = c.benchmark_group("cc_on_bsp_engine");
    group.sample_size(10);
    for partitioner in paper_partitioners() {
        let partition = partitioner
            .partition(&graph, workers)
            .expect("partitioning succeeds");
        let distributed =
            DistributedGraph::build(&graph, &partition).expect("distribution succeeds");
        // The message totals feeding Table IV are deterministic per
        // partitioner; make sure the benchmark actually exercises
        // communication before timing it.
        let outcome = BspEngine::sequential()
            .run(&distributed, &ConnectedComponents::new())
            .expect("CC converges");
        assert!(outcome.supersteps > 0);

        group.bench_with_input(
            BenchmarkId::from_parameter(partitioner.name()),
            &distributed,
            |b, distributed| {
                b.iter(|| {
                    BspEngine::sequential()
                        .run(distributed, &ConnectedComponents::new())
                        .expect("CC converges")
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, cc_supersteps);
criterion_main!(benches);
