//! Criterion bench: α/β sensitivity of EBV (the Theorem 1/2 trade-off).
//!
//! Measures partitioning time across hyper-parameter settings and, as a side
//! effect of the benchmark setup, asserts that the resulting metrics move in
//! the direction the theory predicts (larger weights → tighter balance).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ebv_bench::{Dataset, Scale};
use ebv_partition::{EbvPartitioner, PartitionMetrics, Partitioner};

fn alpha_beta_sweep(c: &mut Criterion) {
    let graph = Dataset::twitter_like()
        .generate(Scale::Small)
        .expect("dataset generation is deterministic and valid");
    let workers = 16;
    let settings = [(0.5f64, 0.5f64), (1.0, 1.0), (2.0, 2.0), (5.0, 5.0)];

    // Sanity: the balance factors must not degrade as the weights grow.
    let imbalances: Vec<f64> = settings
        .iter()
        .map(|&(alpha, beta)| {
            let result = EbvPartitioner::new()
                .with_alpha(alpha)
                .with_beta(beta)
                .partition(&graph, workers)
                .expect("partitioning succeeds");
            PartitionMetrics::compute(&graph, &result)
                .expect("metrics computable")
                .edge_imbalance
        })
        .collect();
    assert!(
        imbalances.last().unwrap() <= &(imbalances.first().unwrap() + 0.05),
        "edge imbalance should not grow with alpha/beta: {imbalances:?}"
    );

    let mut group = c.benchmark_group("ebv_alpha_beta");
    group.sample_size(10);
    for (alpha, beta) in settings {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("alpha{alpha}_beta{beta}")),
            &graph,
            |b, graph| {
                let partitioner = EbvPartitioner::new().with_alpha(alpha).with_beta(beta);
                b.iter(|| {
                    partitioner
                        .partition(graph, workers)
                        .expect("partitioning succeeds")
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, alpha_beta_sweep);
criterion_main!(benches);
