//! Criterion bench backing Table III: time to partition each dataset with
//! the paper's per-graph worker count and compute its quality metrics, for
//! EBV with and without the sorting preprocessing (the Section V-D
//! ablation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ebv_bench::{partition_with_metrics, Dataset, Scale};
use ebv_partition::EbvPartitioner;

fn table3_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3_partition_and_metrics");
    group.sample_size(10);

    for dataset in Dataset::all() {
        let graph = dataset
            .generate(Scale::Small)
            .expect("dataset generation is deterministic and valid");
        let workers = dataset.table_workers;
        for (variant, partitioner) in [
            ("sort", EbvPartitioner::new()),
            ("unsort", EbvPartitioner::new().unsorted()),
        ] {
            group.bench_with_input(
                BenchmarkId::new(dataset.name, variant),
                &graph,
                |b, graph| {
                    b.iter(|| {
                        partition_with_metrics(graph, &partitioner, workers)
                            .expect("partitioning succeeds")
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, table3_pipeline);
criterion_main!(benches);
