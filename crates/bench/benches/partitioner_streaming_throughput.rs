//! Criterion bench: one-pass streaming partitioning throughput (edges per
//! second) of the `ebv-stream` chunked pipeline, alongside the batch
//! `partitioner_throughput` bench, plus a peak-resident-memory proxy
//! (`StreamingPartitioner::state_bytes` after the full stream) for each
//! streaming algorithm — the number that stays bounded when the edge list
//! does not fit in memory.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use ebv_partition::{
    DbhPartitioner, EbvPartitioner, HdrfPartitioner, RandomVertexCutPartitioner, StreamConfig,
    StreamingPartitioner,
};
use ebv_stream::{ChunkedPipeline, EdgeSource, RmatEdgeStream};

const SCALE: u32 = 15;
const NUM_EDGES: usize = 300_000;
const WORKERS: usize = 8;
const CHUNK_SIZE: usize = 1 << 14;

fn stream() -> RmatEdgeStream {
    RmatEdgeStream::new(SCALE, NUM_EDGES).with_seed(3)
}

fn make(name: &str, config: StreamConfig) -> Box<dyn StreamingPartitioner> {
    match name {
        "EBV" => Box::new(EbvPartitioner::new().streaming(config).unwrap()),
        "HDRF" => Box::new(HdrfPartitioner::new().streaming(config).unwrap()),
        "DBH" => Box::new(DbhPartitioner::new().streaming(config).unwrap()),
        "Random-VC" => Box::new(RandomVertexCutPartitioner::new().streaming(config).unwrap()),
        other => panic!("unknown streaming partitioner {other}"),
    }
}

fn partitioner_streaming_throughput(c: &mut Criterion) {
    let config = stream().stream_config(WORKERS);
    let pipeline = ChunkedPipeline::new(CHUNK_SIZE);

    let mut group = c.benchmark_group("partitioner_streaming_throughput");
    group.sample_size(10);
    group.throughput(Throughput::Elements(NUM_EDGES as u64));
    for name in ["EBV", "HDRF", "DBH", "Random-VC"] {
        // Report the memory proxy once per algorithm: partitioner state
        // after ingesting the full stream (membership bits, counters,
        // degree tables, assignment log) — the resident footprint of the
        // streaming path, which excludes any global edge vector.
        let mut probe = make(name, config);
        pipeline
            .run(stream(), probe.as_mut(), |_, _| {})
            .expect("the synthetic stream is infallible");
        eprintln!(
            "  {name}: state_bytes after {NUM_EDGES} edges = {} ({:.1} B/edge)",
            probe.state_bytes(),
            probe.state_bytes() as f64 / NUM_EDGES as f64
        );

        group.bench_with_input(
            BenchmarkId::from_parameter(name),
            &pipeline,
            |b, pipeline| {
                b.iter(|| {
                    let mut partitioner = make(name, config);
                    let (result, _) = pipeline
                        .partition_stream(stream(), partitioner.as_mut())
                        .expect("the synthetic stream is infallible");
                    result
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, partitioner_streaming_throughput);
criterion_main!(benches);
