//! Shared experiment runner: partition a graph, distribute it, run one of
//! the paper's applications and collect every statistic the tables and
//! figures need.

use std::error::Error;

use ebv_algorithms::{ConnectedComponents, PageRank, SingleSourceShortestPath};
use ebv_bsp::{Breakdown, BspEngine, CostModel, DistributedGraph, ExecutionStats};
use ebv_graph::{Graph, VertexId};
use ebv_partition::{PartitionMetrics, PartitionResult, Partitioner};

/// The applications used in the paper's evaluation (Section V-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Application {
    /// Connected Components.
    ConnectedComponents,
    /// Single-Source Shortest Path from vertex 0.
    Sssp,
    /// PageRank with the given number of iterations.
    PageRank {
        /// Number of PageRank iterations (the paper's PR runs a fixed
        /// iteration count).
        iterations: usize,
    },
}

impl Application {
    /// The name used in tables and figure captions.
    pub fn name(&self) -> &'static str {
        match self {
            Application::ConnectedComponents => "CC",
            Application::Sssp => "SSSP",
            Application::PageRank { .. } => "PR",
        }
    }

    /// The three applications of Figure 2, with the PageRank iteration count
    /// used throughout the harness.
    pub fn figure2_set() -> Vec<Application> {
        vec![
            Application::ConnectedComponents,
            Application::PageRank { iterations: 10 },
            Application::Sssp,
        ]
    }

    /// Runs this application over an already-distributed graph and returns
    /// the execution counters.
    ///
    /// # Errors
    ///
    /// Propagates engine errors (non-convergence or invalid configuration).
    pub fn run(
        &self,
        graph: &Graph,
        distributed: &DistributedGraph,
    ) -> Result<(ExecutionStats, usize), Box<dyn Error>> {
        let engine = BspEngine::sequential();
        match self {
            Application::ConnectedComponents => {
                let outcome = engine.run(distributed, &ConnectedComponents::new())?;
                Ok((outcome.stats, outcome.supersteps))
            }
            Application::Sssp => {
                let outcome = engine.run(
                    distributed,
                    &SingleSourceShortestPath::new(VertexId::new(0)),
                )?;
                Ok((outcome.stats, outcome.supersteps))
            }
            Application::PageRank { iterations } => {
                let program = PageRank::new(graph, *iterations);
                let outcome = engine.run(distributed, &program)?;
                Ok((outcome.stats, outcome.supersteps))
            }
        }
    }
}

/// Everything one (graph, partitioner, application, worker-count) experiment
/// produces.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// Name of the partitioner that produced the distribution.
    pub partitioner: String,
    /// Number of workers.
    pub workers: usize,
    /// Partition quality metrics (Table III).
    pub metrics: PartitionMetrics,
    /// Raw execution counters (Tables IV/V).
    pub stats: ExecutionStats,
    /// Modeled time breakdown (Table II, Figures 2–4).
    pub breakdown: Breakdown,
    /// Number of supersteps the application executed.
    pub supersteps: usize,
}

/// Partitions `graph`, distributes it and runs `application`, returning the
/// full set of statistics used by the experiment binaries.
///
/// # Errors
///
/// Propagates partitioning, distribution and engine errors.
pub fn run_experiment(
    graph: &Graph,
    partitioner: &dyn Partitioner,
    workers: usize,
    application: Application,
    cost_model: &CostModel,
) -> Result<ExperimentResult, Box<dyn Error>> {
    let partition = partitioner.partition(graph, workers)?;
    let metrics = PartitionMetrics::compute(graph, &partition)?;
    let distributed = DistributedGraph::build(graph, &partition)?;
    let (stats, supersteps) = application.run(graph, &distributed)?;
    let breakdown = cost_model.breakdown(&stats);
    Ok(ExperimentResult {
        partitioner: partitioner.name(),
        workers,
        metrics,
        stats,
        breakdown,
        supersteps,
    })
}

/// Partitions `graph` and returns the partition plus its quality metrics
/// (the Table III datapoint), without running any application.
///
/// # Errors
///
/// Propagates partitioning errors.
pub fn partition_with_metrics(
    graph: &Graph,
    partitioner: &dyn Partitioner,
    workers: usize,
) -> Result<(PartitionResult, PartitionMetrics), Box<dyn Error>> {
    let partition = partitioner.partition(graph, workers)?;
    let metrics = PartitionMetrics::compute(graph, &partition)?;
    Ok((partition, metrics))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::{Dataset, Scale};
    use ebv_partition::{paper_partitioners, EbvPartitioner};

    #[test]
    fn application_names_and_figure2_set() {
        assert_eq!(Application::ConnectedComponents.name(), "CC");
        assert_eq!(Application::Sssp.name(), "SSSP");
        assert_eq!(Application::PageRank { iterations: 3 }.name(), "PR");
        assert_eq!(Application::figure2_set().len(), 3);
    }

    #[test]
    fn run_experiment_produces_consistent_statistics() {
        let graph = ebv_graph::generators::named::small_social_graph();
        let result = run_experiment(
            &graph,
            &EbvPartitioner::new(),
            4,
            Application::ConnectedComponents,
            &CostModel::default(),
        )
        .unwrap();
        assert_eq!(result.partitioner, "EBV");
        assert_eq!(result.workers, 4);
        assert!(result.metrics.replication_factor >= 1.0);
        assert!(result.breakdown.execution_time > 0.0);
        assert_eq!(result.stats.num_supersteps(), result.supersteps);
    }

    #[test]
    fn every_partitioner_runs_every_application_on_a_small_dataset() {
        let graph = Dataset::road().generate(Scale::Small).unwrap();
        // Trim to something tiny for test speed: use the small social graph
        // shape of experiments but the real registry road graph for realism.
        for partitioner in paper_partitioners() {
            for app in [
                Application::ConnectedComponents,
                Application::Sssp,
                Application::PageRank { iterations: 3 },
            ] {
                let result =
                    run_experiment(&graph, partitioner.as_ref(), 4, app, &CostModel::default())
                        .unwrap();
                assert!(result.supersteps > 0, "{} {:?}", partitioner.name(), app);
            }
        }
    }

    #[test]
    fn partition_with_metrics_matches_direct_computation() {
        let graph = Dataset::livejournal_like().generate(Scale::Small).unwrap();
        let (partition, metrics) =
            partition_with_metrics(&graph, &EbvPartitioner::new(), 8).unwrap();
        let recomputed = PartitionMetrics::compute(&graph, &partition).unwrap();
        assert_eq!(metrics, recomputed);
    }
}
