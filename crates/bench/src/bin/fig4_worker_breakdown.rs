//! Figure 4 — per-worker computation/network/synchronization timeline of CC
//! with 4 workers over the LiveJournal substitute.
//!
//! For each partitioner, prints one row per worker with its total modeled
//! computation, communication and synchronization (waiting) time plus an
//! ASCII bar showing the proportions — a textual rendering of the paper's
//! Figure 4 Gantt charts.

use ebv_bench::{run_experiment, Application, Dataset, Scale, TextTable};
use ebv_bsp::CostModel;
use ebv_partition::paper_partitioners;

fn bar(comp: f64, comm: f64, sync: f64, width: usize) -> String {
    let total = (comp + comm + sync).max(f64::EPSILON);
    let comp_cells = ((comp / total) * width as f64).round() as usize;
    let comm_cells = ((comm / total) * width as f64).round() as usize;
    let sync_cells = width.saturating_sub(comp_cells + comm_cells);
    format!(
        "{}{}{}",
        "C".repeat(comp_cells),
        "N".repeat(comm_cells),
        "S".repeat(sync_cells)
    )
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = Scale::from_env();
    let cost_model = CostModel::default();
    let graph = Dataset::livejournal_like().generate(scale)?;

    for partitioner in paper_partitioners() {
        let result = run_experiment(
            &graph,
            partitioner.as_ref(),
            4,
            Application::ConnectedComponents,
            &cost_model,
        )?;
        let mut table = TextTable::new(&format!(
            "Figure 4 panel: {} (C = computation, N = network, S = synchronization)",
            result.partitioner
        ));
        table.headers(["Worker", "comp (s)", "comm (s)", "sync (s)", "timeline"]);
        for (worker, spans) in result.breakdown.timelines.iter().enumerate() {
            let comp: f64 = spans.iter().map(|s| s.comp).sum();
            let comm: f64 = spans.iter().map(|s| s.comm).sum();
            let sync: f64 = spans.iter().map(|s| s.sync).sum();
            table.row([
                worker.to_string(),
                format!("{comp:.4}"),
                format!("{comm:.4}"),
                format!("{sync:.4}"),
                bar(comp, comm, sync, 40),
            ]);
        }
        println!("{table}");
    }

    println!(
        "Expected shape (paper, Figure 4): the four EBV/Ginger/DBH/CVC workers finish almost \
         simultaneously (tiny S spans), while NE and METIS leave some workers waiting for a \
         long time (large S spans on the underloaded workers)."
    );
    Ok(())
}
