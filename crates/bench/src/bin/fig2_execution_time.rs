//! Figure 2 — cross-partitioner execution time of CC, PR and SSSP on the
//! three power-law graphs, as a function of the number of workers.
//!
//! Prints one series block per (application, dataset) pair with a row per
//! worker count and a column per partitioner — the data behind the nine
//! panels of Figure 2. Times come from the deterministic cost model; the
//! paper's claim to check is the *ordering* (EBV fastest in most panels).

use ebv_bench::{run_experiment, Application, Dataset, Scale, TextTable};
use ebv_bsp::CostModel;
use ebv_partition::paper_partitioners;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = Scale::from_env();
    let cost_model = CostModel::default();
    // At the small scale a reduced sweep keeps the run short; the full scale
    // uses the paper's own per-graph worker counts.
    let small_sweep = [4usize, 8, 16];

    for application in Application::figure2_set() {
        for dataset in Dataset::power_law_sets() {
            let graph = dataset.generate(scale)?;
            let sweep: Vec<usize> = match scale {
                Scale::Small => small_sweep.to_vec(),
                Scale::Full => dataset.figure_workers.to_vec(),
            };
            let mut table = TextTable::new(&format!(
                "Figure 2 panel: {} - {} (modeled seconds)",
                application.name(),
                dataset.name
            ));
            let mut headers = vec!["workers".to_string()];
            headers.extend(paper_partitioners().iter().map(|p| p.name()));
            table.headers(headers);
            for &workers in &sweep {
                let mut row = vec![workers.to_string()];
                for partitioner in paper_partitioners() {
                    let result = run_experiment(
                        &graph,
                        partitioner.as_ref(),
                        workers,
                        application,
                        &cost_model,
                    )?;
                    row.push(format!("{:.4}", result.breakdown.execution_time));
                }
                table.row(row);
            }
            println!("{table}");
        }
    }

    println!(
        "Expected shape (paper, Figure 2): EBV has the lowest execution time in most panels; \
         METIS and NE are the slowest on the skewed graphs because of workload imbalance."
    );
    Ok(())
}
