//! Ablation (extension beyond the paper): which terms of the EBV evaluation
//! function matter?
//!
//! Runs EBV with (a) the full evaluation function, (b) replication terms
//! only (α = β = 0), (c) balance terms only (achieved by making the balance
//! weights overwhelm the indicator terms) and (d) no sorting preprocessing,
//! and reports the partition metrics plus the CC message count for each —
//! quantifying the design choices called out in DESIGN.md.

use ebv_bench::{run_experiment, Application, Dataset, Scale, TextTable};
use ebv_bsp::CostModel;
use ebv_partition::EbvPartitioner;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = Scale::from_env();
    let cost_model = CostModel::default();
    let dataset = Dataset::livejournal_like();
    let graph = dataset.generate(scale)?;
    let workers = dataset.table_workers;

    let variants: Vec<(&str, EbvPartitioner)> = vec![
        ("full (alpha=beta=1, sorted)", EbvPartitioner::new()),
        (
            "replication-only (alpha=beta=0)",
            EbvPartitioner::new().with_alpha(0.0).with_beta(0.0),
        ),
        (
            "balance-dominated (alpha=beta=100)",
            EbvPartitioner::new().with_alpha(100.0).with_beta(100.0),
        ),
        ("full, unsorted", EbvPartitioner::new().unsorted()),
        (
            "full, descending sort",
            EbvPartitioner::new().with_order(ebv_partition::EdgeOrder::DegreeSumDescending),
        ),
    ];

    let mut table = TextTable::new(&format!(
        "Evaluation-function ablation on {} ({} workers)",
        dataset.name, workers
    ));
    table.headers([
        "variant",
        "edge imbalance",
        "vertex imbalance",
        "replication factor",
        "CC messages",
        "modeled time (s)",
    ]);

    for (label, partitioner) in variants {
        let result = run_experiment(
            &graph,
            &partitioner,
            workers,
            Application::ConnectedComponents,
            &cost_model,
        )?;
        table.row([
            label.to_string(),
            format!("{:.3}", result.metrics.edge_imbalance),
            format!("{:.3}", result.metrics.vertex_imbalance),
            format!("{:.3}", result.metrics.replication_factor),
            result.stats.total_messages().to_string(),
            format!("{:.4}", result.breakdown.execution_time),
        ]);
    }
    // A non-EBV reference point.
    let dbh = run_experiment(
        &graph,
        &ebv_partition::DbhPartitioner::new(),
        workers,
        Application::ConnectedComponents,
        &cost_model,
    )?;
    table.row([
        "DBH (reference)".to_string(),
        format!("{:.3}", dbh.metrics.edge_imbalance),
        format!("{:.3}", dbh.metrics.vertex_imbalance),
        format!("{:.3}", dbh.metrics.replication_factor),
        dbh.stats.total_messages().to_string(),
        format!("{:.4}", dbh.breakdown.execution_time),
    ]);

    println!("{table}");
    println!(
        "Reading: dropping the balance terms wrecks the imbalance factors; drowning the \
         indicator terms raises the replication factor and the message count; dropping the \
         sort raises the replication factor — the full evaluation function needs all parts."
    );
    Ok(())
}
