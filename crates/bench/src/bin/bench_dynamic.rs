//! Machine-readable throughput benchmark for the partitioning paths:
//! batch, streaming, dynamic maintenance (insert/delete churn), the
//! incremental-vs-full mutation-epoch comparison, warm-vs-cold BSP
//! re-execution (CC, SSSP, BFS) and one rebalance epoch, written as
//! `BENCH_dynamic.json` at the workspace root for trend tracking.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p ebv-bench --bin bench_dynamic
//! ```
//!
//! Environment:
//!
//! * `EBV_BENCH_OUT` — output path (default: `BENCH_dynamic.json` at the
//!   workspace root, regardless of the invoking directory);
//! * `EBV_SCALE=full` — the larger workload size;
//! * `EBV_SCALE=smoke` — a CI-sized workload (seconds, not minutes).
//!
//! The warm-vs-cold and incremental-vs-full ratios in the JSON are gated in
//! CI by the `bench_gate` binary against `.github/bench_baseline.json`.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::time::Instant;

use ebv_algorithms::{
    BreadthFirstSearch, ConnectedComponents, IncrementalBfs, IncrementalConnectedComponents,
    IncrementalSssp, SingleSourceShortestPath,
};
use ebv_bench::TextTable;
use ebv_bsp::DurabilityHook;
use ebv_bsp::{BspEngine, CostModel, DistributedGraph, MutationBatch, RunOptions};
use ebv_dynamic::{ChurnStream, EventPipeline};
use ebv_graph::{GraphBuilder, VertexId};
use ebv_obs::{MetricsRegistry, ObsServer, ObsServerConfig, Phase, Telemetry};
use ebv_partition::{
    EbvPartitioner, Partitioner, RandomVertexCutPartitioner, RebalanceConfig, StreamingPartitioner,
};
use ebv_serve::{Series, SeriesValue, SnapshotStore};
use ebv_state::DurableState;
use ebv_stream::{EdgeSource, RmatEdgeStream};

struct Measurement {
    name: &'static str,
    items: &'static str,
    count: usize,
    seconds: f64,
    state_bytes: usize,
}

impl Measurement {
    fn throughput(&self) -> f64 {
        self.count as f64 / self.seconds
    }
}

fn json_escape_free(s: &str) -> &str {
    debug_assert!(!s.contains('"') && !s.contains('\\'));
    s
}

fn emit_json(
    workload: &str,
    edges: usize,
    workers: usize,
    rows: &[Measurement],
    phases: &[(&'static str, f64, f64)],
) -> String {
    // The vendored serde stand-in has no JSON backend; the schema is flat
    // enough to emit by hand. The measured-vs-modeled section deliberately
    // avoids the "name"/"seconds" keys the bench_gate scanner zips.
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"benchmark\": \"dynamic\",");
    let _ = writeln!(out, "  \"workload\": \"{}\",", json_escape_free(workload));
    let _ = writeln!(out, "  \"edges\": {edges},");
    let _ = writeln!(out, "  \"workers\": {workers},");
    out.push_str("  \"measurements\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"name\": \"{}\", \"items\": \"{}\", \"count\": {}, \"seconds\": {:.6}, \
             \"throughput_per_s\": {:.1}, \"state_bytes\": {}}}",
            json_escape_free(row.name),
            json_escape_free(row.items),
            row.count,
            row.seconds,
            row.throughput(),
            row.state_bytes,
        );
        out.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n  \"measured_vs_modeled\": [\n");
    for (i, (phase, measured, modeled)) in phases.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"phase\": \"{}\", \"measured_seconds\": {measured:.6}, \
             \"modeled_seconds\": {modeled:.6}}}",
            json_escape_free(phase),
        );
        out.push_str(if i + 1 < phases.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (scale, num_edges) = match std::env::var("EBV_SCALE").as_deref() {
        Ok("full") => (20, 4_000_000),
        Ok("smoke") => (13, 60_000),
        _ => (16, 500_000),
    };
    let workers = 8;
    let churn_ratio = 0.25;
    let stream = || RmatEdgeStream::new(scale, num_edges).with_seed(42);
    let mut rows: Vec<Measurement> = Vec::new();
    // (phase, measured_seconds, modeled_seconds) from the traced cold CC run
    // on the fixed route pair — filled below, emitted as its own JSON section.
    let mut phase_rows: Vec<(&'static str, f64, f64)> = Vec::new();

    // Batch EBV over the materialized graph.
    let mut builder = GraphBuilder::directed();
    let mut source = stream();
    while let Some(edge) = source.next_edge() {
        builder.add_edge(edge?);
    }
    builder.num_vertices(1 << scale);
    let graph = builder.build()?;
    let started = Instant::now();
    let batch = EbvPartitioner::new()
        .unsorted()
        .partition(&graph, workers)?;
    rows.push(Measurement {
        name: "batch_ebv_partition",
        items: "edges",
        count: graph.num_edges(),
        seconds: started.elapsed().as_secs_f64(),
        state_bytes: 0,
    });
    drop(batch);

    // Streaming EBV, one pass, exact hints.
    let source = stream();
    let mut streaming = EbvPartitioner::new().streaming(source.stream_config(workers))?;
    let started = Instant::now();
    let mut source = stream();
    while let Some(edge) = source.next_edge() {
        streaming.ingest(edge?);
    }
    let seconds = started.elapsed().as_secs_f64();
    rows.push(Measurement {
        name: "streaming_ebv_ingest",
        items: "edges",
        count: streaming.edges_ingested(),
        seconds,
        state_bytes: streaming.state_bytes(),
    });

    // Dynamic maintenance under churn, for EBV and the hash baseline.
    for hash_based in [false, true] {
        let source = stream();
        let mut partitioner = if hash_based {
            RandomVertexCutPartitioner::new().dynamic(source.stream_config(workers))?
        } else {
            EbvPartitioner::new().dynamic(source.stream_config(workers))?
        };
        let churn = ChurnStream::new(source, churn_ratio)?.with_seed(7);
        let started = Instant::now();
        let report = EventPipeline::new(1 << 16).run(churn, &mut partitioner, |_, _| Ok(()))?;
        let seconds = started.elapsed().as_secs_f64();
        rows.push(Measurement {
            name: if hash_based {
                "dynamic_random_churn"
            } else {
                "dynamic_ebv_churn"
            },
            items: "events",
            count: report.total_inserts() + report.total_deletes(),
            seconds,
            state_bytes: partitioner.state_bytes(),
        });

        if !hash_based {
            // One rebalance epoch on a forced skew.
            let victims: Vec<_> = partitioner
                .surviving()
                .filter(|(_, part)| part.index() != 0)
                .map(|(edge, _)| edge)
                .collect();
            for edge in victims.iter().take(victims.len() * 3 / 4) {
                partitioner.delete(*edge)?;
            }
            let config = RebalanceConfig::new()
                .with_max_edge_imbalance(1.2)
                .with_target_edge_imbalance(1.05);
            let started = Instant::now();
            let plan = partitioner.rebalance(&config)?;
            let seconds = started.elapsed().as_secs_f64();
            rows.push(Measurement {
                name: "rebalance_epoch",
                items: "migrations",
                count: plan.len(),
                seconds,
                state_bytes: partitioner.state_bytes(),
            });
        }
    }

    // Incremental vs full-reassembly mutation epochs, plus warm vs cold CC
    // re-execution, over the same churned batch sequence.
    {
        let source = stream();
        let mut partitioner = EbvPartitioner::new().dynamic(source.stream_config(workers))?;
        let churn = ChurnStream::new(source, churn_ratio)?.with_seed(7);
        let epoch_batch = (num_edges / 64).max(1 << 10);
        let mut batches: Vec<MutationBatch> = Vec::new();
        EventPipeline::new(epoch_batch).run(churn, &mut partitioner, |batch, _| {
            batches.push(batch.clone());
            Ok(())
        })?;

        let universe = Some(partitioner.num_vertices());
        let mut incremental = DistributedGraph::build_streaming(workers, universe, Vec::new())?;
        let mut incremental_seconds = 0.0f64;
        let mut full_seconds = 0.0f64;
        let mut touched_total = 0usize;
        for batch in &batches {
            let started = Instant::now();
            let stats = incremental.apply_mutations(batch)?;
            incremental_seconds += started.elapsed().as_secs_f64();
            touched_total += stats.workers_touched;

            // The pre-incremental behaviour: re-assemble every worker from
            // scratch over the post-batch survivors.
            let started = Instant::now();
            let full = DistributedGraph::build_streaming(
                workers,
                Some(incremental.num_vertices()),
                incremental
                    .subgraphs()
                    .iter()
                    .flat_map(|sg| sg.edges().iter().map(move |&edge| (edge, sg.part()))),
            )?;
            full_seconds += started.elapsed().as_secs_f64();
            assert_eq!(full.num_edges(), incremental.num_edges());
        }
        rows.push(Measurement {
            name: "epoch_apply_incremental",
            items: "epochs",
            count: batches.len(),
            seconds: incremental_seconds,
            state_bytes: 0,
        });
        rows.push(Measurement {
            name: "epoch_apply_full_reassembly",
            items: "epochs",
            count: batches.len(),
            seconds: full_seconds,
            state_bytes: 0,
        });
        // Scattered batches touch nearly every worker, so the margin here
        // is structural-overhead only (~10-15%); allow timing noise on
        // shared CI runners while still catching a real regression where
        // the incremental path becomes decisively slower.
        assert!(
            incremental_seconds < full_seconds * 1.25,
            "incremental epochs regressed against full reassembly: \
             {incremental_seconds:.4}s vs {full_seconds:.4}s"
        );
        println!(
            "incremental epochs {:.2}x the speed of full reassembly on scattered batches \
             (avg workers touched {:.1}/{workers})",
            full_seconds / incremental_seconds,
            touched_total as f64 / batches.len().max(1) as f64,
        );

        // Durable epochs: the same batch sequence re-applied with the
        // write-ahead log in the apply path (log-before-apply, exactly
        // what `run_applied_durable` does). Cadenced checkpoints are
        // pushed past the end of the loop so the gated
        // epoch_apply_durable/epoch_apply_incremental ratio isolates the
        // per-epoch WAL-append overhead; checkpoint cost is its own row.
        let durable_dir =
            std::env::temp_dir().join(format!("ebv-bench-state-{}-{scale}", std::process::id()));
        let _ = std::fs::remove_dir_all(&durable_dir);
        let (durable, fresh) = DurableState::open(&durable_dir, batches.len() + 1)?;
        assert!(
            fresh.is_empty(),
            "the bench state directory must start empty"
        );
        let mut durable_graph = DistributedGraph::build_streaming(workers, universe, Vec::new())?;
        let mut durable_seconds = 0.0f64;
        let mut events_seen = 0u64;
        for batch in &batches {
            events_seen += (batch.added().len() + batch.removed().len()) as u64;
            let started = Instant::now();
            if !batch.is_empty() {
                durable.log_batch(durable_graph.epoch() as u64 + 1, events_seen, batch)?;
            }
            durable_graph.apply_mutations(batch)?;
            durable_seconds += started.elapsed().as_secs_f64();
        }
        assert_eq!(durable_graph.num_edges(), incremental.num_edges());
        rows.push(Measurement {
            name: "epoch_apply_durable",
            items: "epochs",
            count: batches.len(),
            seconds: durable_seconds,
            state_bytes: 0,
        });
        println!(
            "durable epochs (WAL log-before-apply): {durable_seconds:.4}s vs undurable \
             {incremental_seconds:.4}s ({:.3}x)",
            durable_seconds / incremental_seconds,
        );

        // Recovery latency, replay vs rebuild: reopening the directory
        // replays the WAL suffix into a fresh distribution, against the
        // no-durability alternative of re-running the entire churned
        // pipeline (stream regeneration, partition maintenance, epoch
        // applies) from nothing.
        drop(durable);
        let started = Instant::now();
        let (durable, recovered) = DurableState::open(&durable_dir, batches.len() + 1)?;
        let mut replayed = match recovered.checkpoint.as_ref() {
            Some(checkpoint) => checkpoint.rebuild_graph()?,
            None => DistributedGraph::build_streaming(workers, universe, Vec::new())?,
        };
        for frame in &recovered.frames {
            replayed.apply_mutations(&frame.batch)?;
        }
        let recovery_replay_seconds = started.elapsed().as_secs_f64();
        assert!(
            replayed.same_structure(&durable_graph),
            "WAL replay must reproduce the logged distribution"
        );
        rows.push(Measurement {
            name: "recovery_replay",
            items: "edges",
            count: replayed.num_edges(),
            seconds: recovery_replay_seconds,
            state_bytes: 0,
        });

        let started = Instant::now();
        {
            let source = stream();
            let mut cold_partitioner =
                EbvPartitioner::new().dynamic(source.stream_config(workers))?;
            let churn = ChurnStream::new(source, churn_ratio)?.with_seed(7);
            let mut rebuilt = DistributedGraph::build_streaming(workers, universe, Vec::new())?;
            EventPipeline::new(epoch_batch).run(churn, &mut cold_partitioner, |batch, _| {
                rebuilt.apply_mutations(batch)?;
                Ok(())
            })?;
            assert_eq!(rebuilt.num_edges(), replayed.num_edges());
        }
        let recovery_rebuild_seconds = started.elapsed().as_secs_f64();
        rows.push(Measurement {
            name: "recovery_rebuild",
            items: "edges",
            count: replayed.num_edges(),
            seconds: recovery_rebuild_seconds,
            state_bytes: 0,
        });
        println!(
            "recovery: WAL replay {recovery_replay_seconds:.4}s vs from-scratch rebuild \
             {recovery_rebuild_seconds:.4}s ({:.1}x)",
            recovery_rebuild_seconds / recovery_replay_seconds,
        );

        // Checkpoint write throughput: one full atomic snapshot of the
        // replayed world (graph + partitioner inputs), state_bytes = the
        // on-disk checkpoint size.
        assert_eq!(durable_graph.num_edges(), partitioner.live_edges());
        let started = Instant::now();
        assert!(durable.checkpoint_now(&replayed, &partitioner, events_seen)?);
        let checkpoint_seconds = started.elapsed().as_secs_f64();
        let checkpoint_bytes =
            std::fs::metadata(durable_dir.join(format!("checkpoint-{}.ckpt", replayed.epoch())))?
                .len() as usize;
        rows.push(Measurement {
            name: "checkpoint_write",
            items: "edges",
            count: replayed.num_edges(),
            seconds: checkpoint_seconds,
            state_bytes: checkpoint_bytes,
        });
        println!(
            "checkpoint write: {checkpoint_bytes} bytes in {checkpoint_seconds:.4}s \
             ({:.3e} edges/s)",
            replayed.num_edges() as f64 / checkpoint_seconds,
        );
        drop(durable);
        let _ = std::fs::remove_dir_all(&durable_dir);

        // Localized epochs (the hot-shard pattern): batches confined to one
        // worker, where incremental assembly rebuilds 1 of p workers while
        // full reassembly still pays for the entire distribution.
        let mut localized_incremental = 0.0f64;
        let mut localized_full = 0.0f64;
        let mut localized_epochs = 0usize;
        for round in 0..workers {
            let target = ebv_partition::PartitionId::from_index(round % workers);
            let batch = ebv_dynamic::confined_deletion_batch(&mut partitioner, target, 1 << 11)?;
            if batch.is_empty() {
                continue;
            }
            localized_epochs += 1;
            let started = Instant::now();
            let stats = incremental.apply_mutations(&batch)?;
            localized_incremental += started.elapsed().as_secs_f64();
            assert_eq!(stats.workers_touched, 1, "localized batch stays local");
            let started = Instant::now();
            let full = DistributedGraph::build_streaming(
                workers,
                Some(incremental.num_vertices()),
                incremental
                    .subgraphs()
                    .iter()
                    .flat_map(|sg| sg.edges().iter().map(move |&edge| (edge, sg.part()))),
            )?;
            localized_full += started.elapsed().as_secs_f64();
            assert_eq!(full.num_edges(), incremental.num_edges());
        }
        rows.push(Measurement {
            name: "epoch_localized_incremental",
            items: "epochs",
            count: localized_epochs,
            seconds: localized_incremental,
            state_bytes: 0,
        });
        rows.push(Measurement {
            name: "epoch_localized_full_reassembly",
            items: "epochs",
            count: localized_epochs,
            seconds: localized_full,
            state_bytes: 0,
        });
        assert!(localized_incremental < localized_full);
        println!(
            "localized epochs (1/{workers} workers touched): incremental {:.1}x faster \
             than full reassembly",
            localized_full / localized_incremental,
        );

        // Sequential vs threaded cold CC: the threaded/sequential ratio is
        // gated in CI (the parallel two-phase exchange must not make the
        // threaded engine slower on CI's multi-core runners), the values
        // and counters must agree bit-for-bit, and the routed-message
        // throughput of the threaded run is reported as its own series.
        // Two noise defences keep the hard 1.0 ratio cap meaningful:
        //
        // * the pair runs on a FIXED scale-16 / 500k-edge distribution in
        //   every bench mode (including smoke) — a millisecond-scale smoke
        //   graph would measure per-superstep thread-spawn overhead, not
        //   the engine;
        // * every side takes the best of repeated runs — execution is
        //   deterministic, so repetition only strips scheduler noise.
        let route_graph = {
            let mut source = RmatEdgeStream::new(16, 500_000).with_seed(42);
            let mut builder = GraphBuilder::directed();
            while let Some(edge) = source.next_edge() {
                builder.add_edge(edge?);
            }
            builder.num_vertices(1 << 16);
            builder.build()?
        };
        let route_partition = EbvPartitioner::new()
            .unsorted()
            .partition(&route_graph, workers)?;
        let route_distributed = DistributedGraph::build(&route_graph, &route_partition)?;
        let best_of = |engine: BspEngine| -> Result<_, Box<dyn std::error::Error>> {
            let mut best = f64::INFINITY;
            let mut outcome = None;
            for _ in 0..3 {
                let started = Instant::now();
                let run = engine.run(&route_distributed, &ConnectedComponents::new())?;
                best = best.min(started.elapsed().as_secs_f64());
                outcome = Some(run);
            }
            Ok((outcome.expect("three runs produce an outcome"), best))
        };
        let (pair_sequential, cc_cold_sequential_seconds) = best_of(BspEngine::sequential())?;
        let (pair_threaded, cc_cold_threaded_seconds) = best_of(BspEngine::threaded())?;
        assert_eq!(
            pair_sequential.values, pair_threaded.values,
            "sequential and threaded CC must be bit-identical"
        );
        assert_eq!(
            pair_sequential.stats, pair_threaded.stats,
            "sequential and threaded CC counters must be identical"
        );
        rows.push(Measurement {
            name: "cc_cold_sequential",
            items: "labels",
            count: route_distributed.num_vertices(),
            seconds: cc_cold_sequential_seconds,
            state_bytes: 0,
        });
        rows.push(Measurement {
            name: "cc_cold_threaded",
            items: "labels",
            count: route_distributed.num_vertices(),
            seconds: cc_cold_threaded_seconds,
            state_bytes: 0,
        });
        // Routed replica messages per second of *end-to-end* threaded cold
        // CC wall time (computation supersteps included — the plane is
        // never driven in isolation here), per the bench contract: a trend
        // series for the whole superstep loop, not an isolated
        // exchange-stage microbenchmark.
        rows.push(Measurement {
            name: "bsp_route_throughput",
            items: "messages",
            count: pair_threaded.stats.total_messages(),
            seconds: cc_cold_threaded_seconds,
            state_bytes: 0,
        });
        // Pool-persistence measurement: an epoch loop of cold CC runs with
        // the shared worker pool held across epochs (`Threaded` — parked
        // threads, zero spawns after warm-up) against the same loop on the
        // legacy spawn-per-superstep placement (`SpawnPerStep` — scoped
        // threads created and joined every superstep). Both engines are
        // bit-identical to the sequential reference; the delta is pure
        // spawn/join overhead. Best of five samples, each timing a
        // three-epoch loop, same noise defences as the gated pair above.
        const POOL_EPOCHS: usize = 3;
        type EpochLoopSample = (f64, Option<ebv_bsp::BspOutcome<u64>>);
        let epoch_loop_best_of =
            |engine: BspEngine| -> Result<EpochLoopSample, Box<dyn std::error::Error>> {
                // Warm-up outside the timed window: the shared pool spawns
                // its threads on first touch, and both sides fault their
                // buffers in.
                let mut outcome =
                    Some(engine.run(&route_distributed, &ConnectedComponents::new())?);
                let mut best = f64::INFINITY;
                for _ in 0..5 {
                    let started = Instant::now();
                    for _ in 0..POOL_EPOCHS {
                        outcome =
                            Some(engine.run(&route_distributed, &ConnectedComponents::new())?);
                    }
                    best = best.min(started.elapsed().as_secs_f64());
                }
                Ok((best, outcome))
            };
        let spawns_before = ebv_bsp::pool_threads_spawned();
        let (pooled_loop_seconds, pooled_outcome) = epoch_loop_best_of(BspEngine::threaded())?;
        let pool_spawn_delta = ebv_bsp::pool_threads_spawned() - spawns_before;
        let (spawn_loop_seconds, spawn_outcome) = epoch_loop_best_of(BspEngine::spawn_per_step())?;
        let pooled_outcome = pooled_outcome.expect("pooled epoch loop produced an outcome");
        let spawn_outcome = spawn_outcome.expect("spawn-per-step epoch loop produced an outcome");
        assert_eq!(
            pooled_outcome.values, pair_sequential.values,
            "pooled CC must be bit-identical to the sequential reference"
        );
        assert_eq!(
            spawn_outcome.values, pair_sequential.values,
            "spawn-per-step CC must be bit-identical to the sequential reference"
        );
        assert_eq!(pooled_outcome.stats, spawn_outcome.stats);
        assert!(
            pool_spawn_delta <= ebv_bsp::shared_worker_pool().threads() as u64,
            "the shared pool must not spawn per epoch (spawned {pool_spawn_delta} threads \
             across {POOL_EPOCHS}+ epochs)"
        );
        rows.push(Measurement {
            name: "cc_cold_pooled_spawn_free",
            items: "labels",
            count: route_distributed.num_vertices() * POOL_EPOCHS,
            seconds: pooled_loop_seconds,
            state_bytes: 0,
        });
        rows.push(Measurement {
            name: "cc_cold_spawn_per_superstep",
            items: "labels",
            count: route_distributed.num_vertices() * POOL_EPOCHS,
            seconds: spawn_loop_seconds,
            state_bytes: 0,
        });
        println!(
            "pool persistence: {POOL_EPOCHS}-epoch pooled loop {pooled_loop_seconds:.4}s \
             ({pool_spawn_delta} threads spawned) vs spawn-per-superstep floor \
             {spawn_loop_seconds:.4}s ({:.2}x)",
            spawn_loop_seconds / pooled_loop_seconds,
        );

        // Trace-overhead measurement: the same sequential cold CC with a
        // live Telemetry recorder (spans into the lock-free ring + phase
        // histograms), gated in CI as cc_traced/cc_cold_sequential <= 1.05.
        // A single run is tens of milliseconds — short enough for one
        // scheduler preemption to fake a >5% "overhead" — so the traced
        // side takes the best of five samples that each time two
        // back-to-back executions, interleaved with untraced floor
        // samples so slow drift lands on both sides of the printed
        // diagnostic ratio. Instrumentation must also not perturb the
        // computation: the traced run is asserted bit-identical to the
        // untraced one.
        let cc_program = ConnectedComponents::new();
        let mut cc_traced_seconds = f64::INFINITY;
        let mut untraced_floor_seconds = f64::INFINITY;
        let mut telemetry = Telemetry::isolated();
        let mut traced = None;
        for _ in 0..5 {
            let started = Instant::now();
            let _first = BspEngine::sequential().run(&route_distributed, &cc_program)?;
            let _second = BspEngine::sequential().run(&route_distributed, &cc_program)?;
            untraced_floor_seconds =
                untraced_floor_seconds.min(started.elapsed().as_secs_f64() / 2.0);

            let sample_telemetry = Telemetry::isolated();
            let started = Instant::now();
            let first = BspEngine::sequential().run_with(
                &route_distributed,
                &cc_program,
                &sample_telemetry,
            )?;
            let _second = BspEngine::sequential().run_with(
                &route_distributed,
                &cc_program,
                &sample_telemetry,
            )?;
            let sample = started.elapsed().as_secs_f64() / 2.0;
            if sample < cc_traced_seconds {
                cc_traced_seconds = sample;
                telemetry = sample_telemetry;
                traced = Some(first);
            }
        }
        let traced = traced.expect("five samples produce an outcome");
        assert_eq!(
            traced.values, pair_sequential.values,
            "traced CC must be bit-identical to the untraced run"
        );
        assert_eq!(
            traced.stats, pair_sequential.stats,
            "traced CC counters must be identical to the untraced run"
        );
        rows.push(Measurement {
            name: "cc_traced",
            items: "labels",
            count: route_distributed.num_vertices(),
            seconds: cc_traced_seconds,
            state_bytes: 0,
        });
        println!(
            "trace overhead: traced/untraced floor = {:.3}, vs cc_cold_sequential = {:.3} \
             ({} spans recorded per run, {} dropped)",
            cc_traced_seconds / untraced_floor_seconds,
            cc_traced_seconds / cc_cold_sequential_seconds,
            telemetry.spans().len() / 2,
            telemetry.dropped(),
        );

        // Measured wall-clock phase totals vs the CostModel prediction for
        // the same run. The kept sample's ring holds two identical runs,
        // so the totals are halved to a per-run average. The model's
        // comp/comm terms are per-superstep MEANS over workers, so the
        // modeled totals multiply by p to compare with the measured sums;
        // the barrier term (delta_c) is already a total.
        let totals = telemetry.phase_totals();
        let total_of = |phase: Phase| -> f64 {
            totals
                .iter()
                .find(|(p, _)| *p == phase)
                .map(|&(_, s)| s / 2.0)
                .unwrap_or(0.0)
        };
        let breakdown = CostModel::default().breakdown(&traced.stats);
        let p = workers as f64;
        phase_rows.push(("comp", total_of(Phase::Compute), breakdown.comp * p));
        phase_rows.push((
            "comm",
            total_of(Phase::Gather) + total_of(Phase::Scatter),
            breakdown.comm * p,
        ));
        phase_rows.push(("sync", total_of(Phase::Barrier), breakdown.delta_c));
        for (phase, measured, modeled) in &phase_rows {
            println!("phase {phase}: measured {measured:.4}s, modeled {modeled:.4}s");
        }

        // Serving-overhead measurement: the same sequential cold CC with a
        // live Telemetry recorder AND an attached ObsServer being scraped
        // concurrently (/metrics and /epochs.json — the steady-state read
        // paths), gated in CI as cc_served/cc_cold_sequential <= 1.05. The
        // scraper thread paces itself so the gate measures the snapshot
        // read path's interference, not a saturation DoS of the exporter.
        // Same noise defences as cc_traced: best of five samples, each
        // timing two back-to-back executions on a fresh recorder. The
        // served run must also stay bit-identical to the untraced one.
        let mut cc_served_seconds = f64::INFINITY;
        let mut served = None;
        let mut total_scrapes = 0u64;
        for _ in 0..5 {
            let sample_telemetry = std::sync::Arc::new(Telemetry::isolated());
            let server = ObsServer::bind(
                "127.0.0.1:0",
                std::sync::Arc::clone(&sample_telemetry),
                ObsServerConfig::default(),
            )?;
            let addr = server.local_addr();
            let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
            let scraper = {
                let stop = std::sync::Arc::clone(&stop);
                std::thread::spawn(move || -> u64 {
                    use std::io::{Read as _, Write as _};
                    let mut scrapes = 0u64;
                    while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                        for path in ["/metrics", "/epochs.json"] {
                            let mut conn = std::net::TcpStream::connect(addr)
                                .expect("connect to the bench obs server");
                            conn.write_all(
                                format!("GET {path} HTTP/1.1\r\nHost: b\r\n\r\n").as_bytes(),
                            )
                            .expect("send bench scrape");
                            let mut response = String::new();
                            conn.read_to_string(&mut response)
                                .expect("read bench scrape");
                            assert!(
                                response.starts_with("HTTP/1.1 200"),
                                "bench scrape of {path} failed: {}",
                                response.lines().next().unwrap_or_default(),
                            );
                            scrapes += 1;
                        }
                        std::thread::sleep(std::time::Duration::from_millis(5));
                    }
                    scrapes
                })
            };
            let started = Instant::now();
            let first = BspEngine::sequential().run_with(
                &route_distributed,
                &cc_program,
                &*sample_telemetry,
            )?;
            let _second = BspEngine::sequential().run_with(
                &route_distributed,
                &cc_program,
                &*sample_telemetry,
            )?;
            let sample = started.elapsed().as_secs_f64() / 2.0;
            stop.store(true, std::sync::atomic::Ordering::Relaxed);
            total_scrapes += scraper.join().expect("bench scraper thread");
            server.shutdown();
            if sample < cc_served_seconds {
                cc_served_seconds = sample;
                served = Some(first);
            }
        }
        let served = served.expect("five served samples produce an outcome");
        assert_eq!(
            served.values, pair_sequential.values,
            "served CC must be bit-identical to the untraced run"
        );
        assert_eq!(
            served.stats, pair_sequential.stats,
            "served CC counters must be identical to the untraced run"
        );
        rows.push(Measurement {
            name: "cc_served",
            items: "labels",
            count: route_distributed.num_vertices(),
            seconds: cc_served_seconds,
            state_bytes: 0,
        });
        println!(
            "serving overhead: served/untraced floor = {:.3}, vs cc_cold_sequential = {:.3} \
             ({total_scrapes} live scrapes across five samples)",
            cc_served_seconds / untraced_floor_seconds,
            cc_served_seconds / cc_cold_sequential_seconds,
        );
        drop(route_distributed);
        drop(route_partition);
        drop(route_graph);

        // Warm vs cold CC across one more churned mutation epoch, on the
        // scale-selected churned distribution (best of three, symmetric
        // with the warm measurement below, for the cc_warm_epoch/cc_cold
        // gate).
        let engine = BspEngine::threaded();
        let mut cc_cold_seconds = f64::INFINITY;
        let mut cold = None;
        for _ in 0..3 {
            let started = Instant::now();
            let run = engine.run(&incremental, &ConnectedComponents::new())?;
            cc_cold_seconds = cc_cold_seconds.min(started.elapsed().as_secs_f64());
            cold = Some(run);
        }
        let cold = cold.expect("three runs produce an outcome");
        let prior = cold.values;

        let extra = ChurnStream::new(
            RmatEdgeStream::new(scale, 1 << 13).with_seed(43),
            churn_ratio,
        )?
        .with_seed(11);
        let mut warm_program = IncrementalConnectedComponents::new();
        EventPipeline::new(1 << 20).run(extra, &mut partitioner, |batch, _| {
            warm_program.absorb(&prior, batch);
            incremental.apply_mutations(batch)?;
            Ok(())
        })?;
        // Best of three, symmetric with the gated cold measurement above —
        // the warm run is deterministic and non-mutating, so repetition
        // only strips scheduler noise from the cc_warm_epoch/cc_cold gate.
        let mut cc_warm_seconds = f64::INFINITY;
        let mut warm = None;
        for _ in 0..3 {
            let started = Instant::now();
            let run = engine.run_warm(&incremental, &warm_program, &prior)?;
            cc_warm_seconds = cc_warm_seconds.min(started.elapsed().as_secs_f64());
            warm = Some(run);
        }
        let warm = warm.expect("three warm runs produce an outcome");
        let verify = engine.run(&incremental, &ConnectedComponents::new())?;
        assert_eq!(warm.values, verify.values, "warm CC must be bit-identical");
        rows.push(Measurement {
            name: "cc_cold",
            items: "labels",
            count: incremental.num_vertices(),
            seconds: cc_cold_seconds,
            state_bytes: 0,
        });
        rows.push(Measurement {
            name: "cc_warm_epoch",
            items: "labels",
            count: incremental.num_vertices(),
            seconds: cc_warm_seconds,
            state_bytes: 0,
        });

        // Served warm epochs: the same warm CC re-execution with its labels
        // published into the epoch-versioned snapshot store and flipped per
        // run, while a paced reader thread issues point lookups and top-k
        // reads against live snapshots — gated in CI as
        // cc_warm_epoch_served/cc_warm_epoch <= 1.05 (the query plane's
        // lock-free read path must not tax the epoch driver). Adjacency
        // publication stays off: the timed path is stage + atomic flip, not
        // the O(E) adjacency rebuild. The reader paces itself like the
        // cc_served scraper, so the gate measures flip interference, not a
        // saturation DoS of the store. Same noise defences as
        // cc_warm_epoch: best of three deterministic repeats.
        let served_registry = MetricsRegistry::new();
        let served_store = SnapshotStore::with_registry(&served_registry);
        served_store.stage(Series {
            name: "cc".to_string(),
            data: u64::pack(&prior),
        });
        served_store.commit(incremental.epoch() as u64, incremental.num_vertices(), None);
        let mut cc_warm_served_seconds = f64::INFINITY;
        let mut served_warm = None;
        {
            let reader_handle = served_store.handle();
            let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
            let reader = {
                let stop = std::sync::Arc::clone(&stop);
                let num_vertices = incremental.num_vertices() as u64;
                std::thread::spawn(move || -> u64 {
                    let mut reads = 0u64;
                    let mut vertex = 0u64;
                    while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                        reader_handle
                            .lookup("cc", vertex % num_vertices.max(1))
                            .expect("point lookup against a committed epoch");
                        reader_handle
                            .topk("cc", 8, true)
                            .expect("top-k against a committed epoch");
                        reads += 2;
                        vertex = vertex.wrapping_add(4097);
                        std::thread::sleep(std::time::Duration::from_millis(5));
                    }
                    reads
                })
            };
            for _ in 0..3 {
                let started = Instant::now();
                let run = engine.run_opts(
                    &incremental,
                    &warm_program,
                    RunOptions::new()
                        .warm_seed(&prior)
                        .publish_to(&served_store.series_sink::<u64>("cc")),
                )?;
                served_store.commit(incremental.epoch() as u64, incremental.num_vertices(), None);
                cc_warm_served_seconds =
                    cc_warm_served_seconds.min(started.elapsed().as_secs_f64());
                served_warm = Some(run);
            }
            stop.store(true, std::sync::atomic::Ordering::Relaxed);
            let reads = reader.join().expect("bench query reader thread");
            let served_warm = served_warm.expect("three served warm runs produce an outcome");
            assert_eq!(
                served_warm.values, warm.values,
                "served warm CC must be bit-identical to the unserved warm run"
            );
            println!(
                "served warm epochs: {cc_warm_served_seconds:.4}s best-of-3 vs unserved \
                 {cc_warm_seconds:.4}s ({reads} paced reads during the window)"
            );
        }
        rows.push(Measurement {
            name: "cc_warm_epoch_served",
            items: "labels",
            count: incremental.num_vertices(),
            seconds: cc_warm_served_seconds,
            state_bytes: 0,
        });

        // Warm vs cold SSSP and BFS across further churned mutation epochs
        // (the run_applied wiring with the precise invalidation cone); the
        // distances/depths are carried warm across every epoch like the
        // `evolving_graph` example does.
        let source = VertexId::new(0);
        let started = Instant::now();
        let mut distances = engine
            .run(&incremental, &SingleSourceShortestPath::new(source))?
            .values;
        let sssp_cold_seconds = started.elapsed().as_secs_f64();
        let started = Instant::now();
        let mut depths = engine
            .run(&incremental, &BreadthFirstSearch::new(source))?
            .values;
        let bfs_cold_seconds = started.elapsed().as_secs_f64();

        let extra = ChurnStream::new(
            RmatEdgeStream::new(scale, 1 << 13).with_seed(45),
            churn_ratio,
        )?
        .with_seed(17);
        let mut warm_epochs = 0usize;
        let mut cone_total = 0usize;
        let mut seed_total = 0usize;
        let mut sssp_warm_seconds = 0.0f64;
        let mut bfs_warm_seconds = 0.0f64;
        EventPipeline::new(1 << 20).run_applied(
            extra,
            &mut partitioner,
            &mut incremental,
            |dg, batch, _, _| {
                // The warm windows include program construction (the precise
                // cone walks the post-mutation distribution), so the gated
                // ratios cover the whole warm path, not just the BSP run.
                let started = Instant::now();
                let sssp = IncrementalSssp::from_distributed(source, dg, &distances, batch);
                let warm = engine.run_warm(dg, &sssp, &distances)?;
                sssp_warm_seconds += started.elapsed().as_secs_f64();
                let verify = engine.run(dg, &SingleSourceShortestPath::new(source))?;
                assert_eq!(
                    warm.values, verify.values,
                    "warm SSSP must be distance-equal"
                );
                distances = warm.values;
                let started = Instant::now();
                let bfs = IncrementalBfs::from_distributed(source, dg, &depths, batch);
                let warm = engine.run_warm(dg, &bfs, &depths)?;
                bfs_warm_seconds += started.elapsed().as_secs_f64();
                let verify = engine.run(dg, &BreadthFirstSearch::new(source))?;
                assert_eq!(warm.values, verify.values, "warm BFS must be bit-identical");
                depths = warm.values;
                warm_epochs += 1;
                cone_total += sssp.cone_vertices();
                seed_total += sssp.seed_vertices();
                Ok(())
            },
        )?;
        assert!(warm_epochs >= 1, "the extra churn stream produced no epoch");
        println!(
            "warm SSSP/BFS across {warm_epochs} epoch(s): re-settled {cone_total} cone \
             vertices from {seed_total} seeds"
        );
        rows.push(Measurement {
            name: "sssp_cold",
            items: "distances",
            count: incremental.num_vertices(),
            seconds: sssp_cold_seconds,
            state_bytes: 0,
        });
        rows.push(Measurement {
            name: "sssp_warm_epoch",
            items: "distances",
            count: incremental.num_vertices(),
            seconds: sssp_warm_seconds,
            state_bytes: 0,
        });
        rows.push(Measurement {
            name: "bfs_cold",
            items: "depths",
            count: incremental.num_vertices(),
            seconds: bfs_cold_seconds,
            state_bytes: 0,
        });
        rows.push(Measurement {
            name: "bfs_warm_epoch",
            items: "depths",
            count: incremental.num_vertices(),
            seconds: bfs_warm_seconds,
            state_bytes: 0,
        });

        // Query-plane read throughput and latency: two unpaced reader
        // threads hammer the snapshot store (alternating point lookups and
        // top-k) while a further churned epoch sequence runs through
        // `run_applied_publishing`, committing each epoch's warm CC labels
        // mid-read. Reported as the `query_reads` QPS series plus
        // `query_read_p50`/`query_read_p99` latencies from the store's
        // isolated `ebv_query_read_seconds` histogram — the trend series
        // for the tentpole claim that reads proceed lock-free under churn.
        let query_registry = MetricsRegistry::new();
        let query_store = SnapshotStore::with_registry(&query_registry);
        let mut labels = engine
            .run(&incremental, &ConnectedComponents::new())?
            .values;
        query_store.stage(Series {
            name: "cc".to_string(),
            data: u64::pack(&labels),
        });
        query_store.commit(incremental.epoch() as u64, incremental.num_vertices(), None);
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let readers: Vec<_> = (0..2u64)
            .map(|worker| {
                let handle = query_store.handle();
                let stop = std::sync::Arc::clone(&stop);
                let num_vertices = incremental.num_vertices() as u64;
                std::thread::spawn(move || {
                    let mut vertex = worker * 2053;
                    while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                        handle
                            .lookup("cc", vertex % num_vertices.max(1))
                            .expect("point lookup against a committed epoch");
                        if vertex % 64 == 0 {
                            handle
                                .topk("cc", 8, true)
                                .expect("top-k against a committed epoch");
                        }
                        vertex = vertex.wrapping_add(4097);
                    }
                })
            })
            .collect();
        let churn_reads = ChurnStream::new(
            RmatEdgeStream::new(scale, 1 << 13).with_seed(47),
            churn_ratio,
        )?
        .with_seed(23);
        let read_epochs_started = Instant::now();
        let mut read_epochs = 0usize;
        EventPipeline::new(1 << 11).run_applied_publishing(
            churn_reads,
            &mut partitioner,
            &mut incremental,
            &query_store,
            |dg, batch, _, _| {
                if batch.is_empty() {
                    return Ok(());
                }
                let program = IncrementalConnectedComponents::from_batch(&labels, batch);
                labels = engine
                    .run_opts(
                        dg,
                        &program,
                        RunOptions::new()
                            .warm_seed(&labels)
                            .publish_to(&query_store.series_sink::<u64>("cc")),
                    )?
                    .values;
                read_epochs += 1;
                Ok(())
            },
            &ebv_obs::NoopRecorder,
        )?;
        let read_window_seconds = read_epochs_started.elapsed().as_secs_f64();
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        for reader in readers {
            reader.join().expect("bench query hammer thread");
        }
        assert!(read_epochs >= 1, "the read-QPS churn produced no epoch");
        let read_histogram = query_registry.histogram("ebv_query_read_seconds");
        let total_reads = query_registry.counter("ebv_query_reads_total").get();
        let read_p50 = read_histogram.quantile(0.50);
        let read_p99 = read_histogram.quantile(0.99);
        rows.push(Measurement {
            name: "query_reads",
            items: "reads",
            count: total_reads as usize,
            seconds: read_window_seconds,
            state_bytes: 0,
        });
        rows.push(Measurement {
            name: "query_read_p50",
            items: "latency",
            count: total_reads as usize,
            seconds: read_p50,
            state_bytes: 0,
        });
        rows.push(Measurement {
            name: "query_read_p99",
            items: "latency",
            count: total_reads as usize,
            seconds: read_p99,
            state_bytes: 0,
        });
        println!(
            "query plane under churn: {:.3e} reads/s across {read_epochs} flipped epoch(s) \
             (p50 {:.1}us, p99 {:.1}us)",
            total_reads as f64 / read_window_seconds,
            read_p50 * 1e6,
            read_p99 * 1e6,
        );
    }

    let mut table = TextTable::new("Dynamic-subsystem throughput");
    table.headers([
        "measurement",
        "items",
        "count",
        "seconds",
        "items/s",
        "state bytes",
    ]);
    for row in &rows {
        table.row([
            row.name.to_string(),
            row.items.to_string(),
            row.count.to_string(),
            format!("{:.4}", row.seconds),
            format!("{:.3e}", row.throughput()),
            row.state_bytes.to_string(),
        ]);
    }
    println!("{table}");

    let workload = format!("rmat-scale{scale}");
    let json = emit_json(&workload, num_edges, workers, &rows, &phase_rows);
    // Default to the workspace root (two levels above this crate's
    // manifest) so the binary writes the same tracked file from any cwd.
    let out_path = std::env::var_os("EBV_BENCH_OUT")
        .map(PathBuf::from)
        .unwrap_or_else(|| {
            Path::new(env!("CARGO_MANIFEST_DIR"))
                .join("..")
                .join("..")
                .join("BENCH_dynamic.json")
        });
    std::fs::write(&out_path, &json)?;
    println!("wrote {}", out_path.display());
    Ok(())
}
