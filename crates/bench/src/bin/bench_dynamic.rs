//! Machine-readable throughput benchmark for the partitioning paths:
//! batch, streaming, dynamic maintenance (insert/delete churn) and one
//! rebalance epoch, written as `BENCH_dynamic.json` for trend tracking.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p ebv-bench --bin bench_dynamic
//! ```
//!
//! Environment:
//!
//! * `EBV_BENCH_OUT` — output path (default `BENCH_dynamic.json`);
//! * `EBV_SCALE=full` — the larger workload size.

use std::fmt::Write as _;
use std::time::Instant;

use ebv_bench::TextTable;
use ebv_dynamic::{ChurnStream, EventPipeline};
use ebv_graph::GraphBuilder;
use ebv_partition::{
    EbvPartitioner, Partitioner, RandomVertexCutPartitioner, RebalanceConfig, StreamingPartitioner,
};
use ebv_stream::{EdgeSource, RmatEdgeStream};

struct Measurement {
    name: &'static str,
    items: &'static str,
    count: usize,
    seconds: f64,
    state_bytes: usize,
}

impl Measurement {
    fn throughput(&self) -> f64 {
        self.count as f64 / self.seconds
    }
}

fn json_escape_free(s: &str) -> &str {
    debug_assert!(!s.contains('"') && !s.contains('\\'));
    s
}

fn emit_json(workload: &str, edges: usize, workers: usize, rows: &[Measurement]) -> String {
    // The vendored serde stand-in has no JSON backend; the schema is flat
    // enough to emit by hand.
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"benchmark\": \"dynamic\",");
    let _ = writeln!(out, "  \"workload\": \"{}\",", json_escape_free(workload));
    let _ = writeln!(out, "  \"edges\": {edges},");
    let _ = writeln!(out, "  \"workers\": {workers},");
    out.push_str("  \"measurements\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"name\": \"{}\", \"items\": \"{}\", \"count\": {}, \"seconds\": {:.6}, \
             \"throughput_per_s\": {:.1}, \"state_bytes\": {}}}",
            json_escape_free(row.name),
            json_escape_free(row.items),
            row.count,
            row.seconds,
            row.throughput(),
            row.state_bytes,
        );
        out.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let full = std::env::var("EBV_SCALE").is_ok_and(|v| v == "full");
    let (scale, num_edges) = if full { (20, 4_000_000) } else { (16, 500_000) };
    let workers = 8;
    let churn_ratio = 0.25;
    let stream = || RmatEdgeStream::new(scale, num_edges).with_seed(42);
    let mut rows: Vec<Measurement> = Vec::new();

    // Batch EBV over the materialized graph.
    let mut builder = GraphBuilder::directed();
    let mut source = stream();
    while let Some(edge) = source.next_edge() {
        builder.add_edge(edge?);
    }
    builder.num_vertices(1 << scale);
    let graph = builder.build()?;
    let started = Instant::now();
    let batch = EbvPartitioner::new()
        .unsorted()
        .partition(&graph, workers)?;
    rows.push(Measurement {
        name: "batch_ebv_partition",
        items: "edges",
        count: graph.num_edges(),
        seconds: started.elapsed().as_secs_f64(),
        state_bytes: 0,
    });
    drop(batch);

    // Streaming EBV, one pass, exact hints.
    let source = stream();
    let mut streaming = EbvPartitioner::new().streaming(source.stream_config(workers))?;
    let started = Instant::now();
    let mut source = stream();
    while let Some(edge) = source.next_edge() {
        streaming.ingest(edge?);
    }
    let seconds = started.elapsed().as_secs_f64();
    rows.push(Measurement {
        name: "streaming_ebv_ingest",
        items: "edges",
        count: streaming.edges_ingested(),
        seconds,
        state_bytes: streaming.state_bytes(),
    });

    // Dynamic maintenance under churn, for EBV and the hash baseline.
    for hash_based in [false, true] {
        let source = stream();
        let mut partitioner = if hash_based {
            RandomVertexCutPartitioner::new().dynamic(source.stream_config(workers))?
        } else {
            EbvPartitioner::new().dynamic(source.stream_config(workers))?
        };
        let churn = ChurnStream::new(source, churn_ratio)?.with_seed(7);
        let started = Instant::now();
        let report = EventPipeline::new(1 << 16).run(churn, &mut partitioner, |_, _| Ok(()))?;
        let seconds = started.elapsed().as_secs_f64();
        rows.push(Measurement {
            name: if hash_based {
                "dynamic_random_churn"
            } else {
                "dynamic_ebv_churn"
            },
            items: "events",
            count: report.total_inserts() + report.total_deletes(),
            seconds,
            state_bytes: partitioner.state_bytes(),
        });

        if !hash_based {
            // One rebalance epoch on a forced skew.
            let victims: Vec<_> = partitioner
                .surviving()
                .filter(|(_, part)| part.index() != 0)
                .map(|(edge, _)| edge)
                .collect();
            for edge in victims.iter().take(victims.len() * 3 / 4) {
                partitioner.delete(*edge)?;
            }
            let config = RebalanceConfig::new()
                .with_max_edge_imbalance(1.2)
                .with_target_edge_imbalance(1.05);
            let started = Instant::now();
            let plan = partitioner.rebalance(&config)?;
            let seconds = started.elapsed().as_secs_f64();
            rows.push(Measurement {
                name: "rebalance_epoch",
                items: "migrations",
                count: plan.len(),
                seconds,
                state_bytes: partitioner.state_bytes(),
            });
        }
    }

    let mut table = TextTable::new("Dynamic-subsystem throughput");
    table.headers([
        "measurement",
        "items",
        "count",
        "seconds",
        "items/s",
        "state bytes",
    ]);
    for row in &rows {
        table.row([
            row.name.to_string(),
            row.items.to_string(),
            row.count.to_string(),
            format!("{:.4}", row.seconds),
            format!("{:.3e}", row.throughput()),
            row.state_bytes.to_string(),
        ]);
    }
    println!("{table}");

    let workload = format!("rmat-scale{scale}");
    let json = emit_json(&workload, num_edges, workers, &rows);
    let out_path =
        std::env::var("EBV_BENCH_OUT").unwrap_or_else(|_| "BENCH_dynamic.json".to_string());
    std::fs::write(&out_path, &json)?;
    println!("wrote {out_path}");
    Ok(())
}
