//! Table II — breakdown of Connected Components with 4 workers over the
//! LiveJournal substitute.
//!
//! Prints comp, comm, ΔC and the modeled execution time per partitioner;
//! the absolute seconds come from the deterministic cost model, so only the
//! relative ordering is meaningful (as in the paper, EBV should have the
//! smallest execution time while NE/METIS suffer from a large ΔC).

use ebv_bench::{run_experiment, Application, Dataset, Scale, TextTable};
use ebv_bsp::CostModel;
use ebv_partition::paper_partitioners;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = Scale::from_env();
    let graph = Dataset::livejournal_like().generate(scale)?;
    let cost_model = CostModel::default();

    let mut table = TextTable::new(
        "Table II: breakdown (modeled seconds) of CC with 4 workers, LiveJournal-like",
    );
    table.headers([
        "Partitioner",
        "comp",
        "comm",
        "deltaC",
        "Execution time",
        "supersteps",
    ]);

    for partitioner in paper_partitioners() {
        let result = run_experiment(
            &graph,
            partitioner.as_ref(),
            4,
            Application::ConnectedComponents,
            &cost_model,
        )?;
        table.row([
            result.partitioner.clone(),
            format!("{:.4}", result.breakdown.comp),
            format!("{:.4}", result.breakdown.comm),
            format!("{:.4}", result.breakdown.delta_c),
            format!("{:.4}", result.breakdown.execution_time),
            result.supersteps.to_string(),
        ]);
    }

    println!("{table}");
    println!(
        "Expected shape (paper, Table II): EBV has the shortest execution time; NE and METIS \
         have small comp/comm but a much larger deltaC (workload imbalance), which makes them \
         slower overall."
    );
    Ok(())
}
