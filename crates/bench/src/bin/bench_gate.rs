//! The CI bench-regression gate: compares the warm-vs-cold and
//! incremental-vs-full ratios of a `bench_dynamic` JSON report against the
//! checked-in baseline and exits non-zero when any ratio regressed past its
//! cap — so the speedups the dynamic subsystem ships cannot silently rot.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p ebv-bench --bin bench_gate -- \
//!     BENCH_dynamic.json [.github/bench_baseline.json]
//! ```
//!
//! Both arguments are optional and default to the workspace-root
//! `BENCH_dynamic.json` and `.github/bench_baseline.json`. The baseline
//! lists `"a/b"` measurement-name pairs with the maximum allowed
//! `seconds(a) / seconds(b)` ratio; a cap of 1.0 means "a must not be
//! slower than b" (e.g. warm epochs must beat cold re-execution). Missing
//! measurements or malformed files fail the gate — it is fail-closed.
//!
//! A gate may carry a `"min_cpus"` field: speedup caps below 1.0 are only
//! physically reachable on multi-core hosts, so such entries are enforced
//! on CI's 4-vCPU runners and *skipped with a printed note* on smaller
//! machines. Skipping never loosens fail-closed-ness: the gated
//! measurements must still exist in the report, and the unconditional
//! entries still apply everywhere.
//!
//! The vendored serde stand-in has no JSON backend, so both files are read
//! with a minimal scanner for the flat schemas this repo emits.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Extracts every string or number value keyed by `key` from a flat JSON
/// document, in document order. Enough of a parser for the two schemas the
/// gate reads (no escapes, no nesting of the scanned keys).
fn scan_values(json: &str, key: &str) -> Vec<String> {
    let needle = format!("\"{key}\":");
    let mut values = Vec::new();
    let mut rest = json;
    while let Some(at) = rest.find(&needle) {
        rest = rest[at + needle.len()..].trim_start();
        let value = if let Some(quoted) = rest.strip_prefix('"') {
            let end = quoted.find('"').unwrap_or(quoted.len());
            quoted[..end].to_string()
        } else {
            rest.split(|c: char| c == ',' || c == '}' || c == ']' || c.is_whitespace())
                .next()
                .unwrap_or("")
                .to_string()
        };
        values.push(value);
    }
    values
}

/// The `(name, seconds)` measurements of a `bench_dynamic` report.
fn parse_measurements(json: &str) -> Result<Vec<(String, f64)>, String> {
    let names = scan_values(json, "name");
    let seconds = scan_values(json, "seconds");
    if names.is_empty() || names.len() != seconds.len() {
        return Err(format!(
            "malformed bench report: {} names vs {} seconds values",
            names.len(),
            seconds.len()
        ));
    }
    names
        .into_iter()
        .zip(seconds)
        .map(|(name, s)| {
            let parsed = s
                .parse::<f64>()
                .map_err(|_| format!("measurement {name}: unparseable seconds {s:?}"))?;
            Ok((name, parsed))
        })
        .collect()
}

/// One baseline entry: `numerator/denominator <= max`, optionally only
/// enforced on hosts with at least `min_cpus` logical CPUs.
#[derive(Debug, PartialEq)]
struct Gate {
    numerator: String,
    denominator: String,
    max: f64,
    min_cpus: Option<usize>,
}

/// The caps of the baseline file. Each gate object is scanned on its own
/// (between its braces) so the optional `min_cpus` field cannot shear the
/// positional `ratio`/`max` alignment.
fn parse_baseline(json: &str) -> Result<Vec<Gate>, String> {
    let mut gates = Vec::new();
    for chunk in json.split('{').filter(|chunk| chunk.contains("\"ratio\"")) {
        let object = &chunk[..chunk.find('}').unwrap_or(chunk.len())];
        let ratio = match scan_values(object, "ratio").as_slice() {
            [one] => one.clone(),
            other => {
                return Err(format!(
                    "malformed baseline: a gate object holds {} ratio keys",
                    other.len()
                ))
            }
        };
        let max = match scan_values(object, "max").as_slice() {
            [one] => one.clone(),
            other => {
                return Err(format!(
                    "baseline ratio {ratio}: expected one max, found {}",
                    other.len()
                ))
            }
        };
        let (a, b) = ratio
            .split_once('/')
            .ok_or_else(|| format!("baseline ratio {ratio:?} is not \"a/b\""))?;
        let cap = max
            .parse::<f64>()
            .map_err(|_| format!("baseline ratio {ratio}: unparseable max {max:?}"))?;
        let min_cpus = match scan_values(object, "min_cpus").as_slice() {
            [] => None,
            [one] => Some(
                one.parse::<usize>()
                    .map_err(|_| format!("baseline ratio {ratio}: unparseable min_cpus {one:?}"))?,
            ),
            other => {
                return Err(format!(
                    "baseline ratio {ratio}: expected at most one min_cpus, found {}",
                    other.len()
                ))
            }
        };
        gates.push(Gate {
            numerator: a.to_string(),
            denominator: b.to_string(),
            max: cap,
            min_cpus,
        });
    }
    if gates.is_empty() {
        return Err("malformed baseline: no gate objects found".to_string());
    }
    Ok(gates)
}

fn seconds_of(measurements: &[(String, f64)], name: &str) -> Result<f64, String> {
    measurements
        .iter()
        .find(|(n, _)| n == name)
        .map(|&(_, s)| s)
        .ok_or_else(|| format!("measurement {name:?} missing from the bench report"))
}

fn run(bench_path: &Path, baseline_path: &Path, host_cpus: usize) -> Result<bool, String> {
    let bench = std::fs::read_to_string(bench_path)
        .map_err(|e| format!("cannot read {}: {e}", bench_path.display()))?;
    let baseline = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("cannot read {}: {e}", baseline_path.display()))?;
    let measurements = parse_measurements(&bench)?;
    let gates = parse_baseline(&baseline)?;

    let mut ok = true;
    println!(
        "bench-regression gate: {} (host cpus: {host_cpus})",
        bench_path.display()
    );
    for gate in &gates {
        let Gate {
            numerator,
            denominator,
            max: cap,
            min_cpus,
        } = gate;
        // Fail-closed even for skipped gates: the measurements must exist.
        let a = seconds_of(&measurements, numerator)?;
        let b = seconds_of(&measurements, denominator)?;
        if b <= 0.0 {
            return Err(format!(
                "measurement {denominator:?} has non-positive seconds"
            ));
        }
        let ratio = a / b;
        if let Some(needed) = min_cpus {
            if host_cpus < *needed {
                println!(
                    "  {numerator}/{denominator}: {ratio:.3} (max {cap:.3}) skipped — \
                     needs >= {needed} cpus, host has {host_cpus}"
                );
                continue;
            }
        }
        let verdict = if ratio <= *cap { "ok" } else { "REGRESSED" };
        println!("  {numerator}/{denominator}: {ratio:.3} (max {cap:.3}) {verdict}");
        if ratio > *cap {
            ok = false;
        }
    }
    Ok(ok)
}

fn main() -> ExitCode {
    let workspace_root = Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..");
    let mut args = std::env::args().skip(1);
    let bench_path = args
        .next()
        .map(PathBuf::from)
        .unwrap_or_else(|| workspace_root.join("BENCH_dynamic.json"));
    let baseline_path = args
        .next()
        .map(PathBuf::from)
        .unwrap_or_else(|| workspace_root.join(".github").join("bench_baseline.json"));

    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    match run(&bench_path, &baseline_path, host_cpus) {
        Ok(true) => {
            println!("all gated ratios within baseline");
            ExitCode::SUCCESS
        }
        Ok(false) => {
            eprintln!("bench-regression gate FAILED: at least one ratio regressed");
            ExitCode::FAILURE
        }
        Err(message) => {
            eprintln!("bench-regression gate error: {message}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const REPORT: &str = r#"{
  "benchmark": "dynamic",
  "measurements": [
    {"name": "cc_cold", "items": "labels", "count": 10, "seconds": 0.100000, "throughput_per_s": 100.0, "state_bytes": 0},
    {"name": "cc_warm_epoch", "items": "labels", "count": 10, "seconds": 0.025000, "throughput_per_s": 400.0, "state_bytes": 0}
  ]
}"#;

    #[test]
    fn parses_names_and_seconds_in_order() {
        let m = parse_measurements(REPORT).unwrap();
        assert_eq!(m.len(), 2);
        assert_eq!(m[0].0, "cc_cold");
        assert!((m[0].1 - 0.1).abs() < 1e-12);
        assert_eq!(m[1].0, "cc_warm_epoch");
        assert!((m[1].1 - 0.025).abs() < 1e-12);
    }

    #[test]
    fn baseline_caps_split_into_ratio_pairs() {
        let caps = parse_baseline(r#"{"gates": [{"ratio": "cc_warm_epoch/cc_cold", "max": 1.0}]}"#)
            .unwrap();
        assert_eq!(caps.len(), 1);
        assert_eq!(caps[0].numerator, "cc_warm_epoch");
        assert_eq!(caps[0].denominator, "cc_cold");
        assert!((caps[0].max - 1.0).abs() < 1e-12);
        assert_eq!(caps[0].min_cpus, None);
    }

    #[test]
    fn min_cpus_is_parsed_per_gate_without_shearing_alignment() {
        // The cpu-gated entry sits between two plain ones: a positional
        // scanner would mis-align, the per-object scanner must not.
        let caps = parse_baseline(
            r#"{"gates": [
                {"ratio": "a/b", "max": 1.0},
                {"ratio": "c/d", "max": 0.65, "min_cpus": 4},
                {"ratio": "e/f", "max": 1.25}
            ]}"#,
        )
        .unwrap();
        assert_eq!(caps.len(), 3);
        assert_eq!(caps[0].min_cpus, None);
        assert_eq!(caps[1].numerator, "c");
        assert!((caps[1].max - 0.65).abs() < 1e-12);
        assert_eq!(caps[1].min_cpus, Some(4));
        assert_eq!(caps[2].min_cpus, None);
        assert!(
            parse_baseline(r#"{"gates": [{"ratio": "a/b", "max": 1.0, "min_cpus": "x"}]}"#)
                .is_err()
        );
    }

    #[test]
    fn missing_measurements_and_malformed_ratios_are_errors() {
        let m = parse_measurements(REPORT).unwrap();
        assert!(seconds_of(&m, "sssp_cold").is_err());
        assert!(parse_baseline(r#"{"gates": [{"ratio": "no-slash", "max": 1.0}]}"#).is_err());
        assert!(parse_baseline(r#"{"gates": []}"#).is_err());
        assert!(parse_measurements("{}").is_err());
    }

    /// The checked-in baseline must parse and keep gating the series CI
    /// depends on — in particular the threaded-vs-sequential caps of the
    /// persistent-pool engine (the gate is fail-closed: a missing
    /// measurement or a dropped entry fails CI, this test catches the
    /// dropped-entry half without a bench run).
    #[test]
    fn checked_in_baseline_gates_the_expected_ratios() {
        let baseline_path = Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("..")
            .join("..")
            .join(".github")
            .join("bench_baseline.json");
        let baseline = std::fs::read_to_string(&baseline_path).unwrap();
        let caps = parse_baseline(&baseline).unwrap();
        for (numerator, denominator, cap, min_cpus) in [
            ("cc_cold_threaded", "cc_cold_sequential", 1.0, Some(2)),
            ("cc_cold_threaded", "cc_cold_sequential", 0.65, Some(4)),
            (
                "cc_cold_pooled_spawn_free",
                "cc_cold_spawn_per_superstep",
                1.0,
                Some(4),
            ),
            ("cc_traced", "cc_cold_sequential", 1.05, None),
            ("cc_served", "cc_cold_sequential", 1.05, None),
            ("cc_warm_epoch", "cc_cold", 1.0, None),
            ("cc_warm_epoch_served", "cc_warm_epoch", 1.05, Some(2)),
            ("sssp_warm_epoch", "sssp_cold", 1.0, None),
            ("bfs_warm_epoch", "bfs_cold", 1.0, None),
            ("epoch_apply_durable", "epoch_apply_incremental", 1.25, None),
        ] {
            let gate = caps
                .iter()
                .find(|g| {
                    g.numerator == numerator
                        && g.denominator == denominator
                        && g.min_cpus == min_cpus
                })
                .unwrap_or_else(|| {
                    panic!(
                        "baseline lost the {numerator}/{denominator} (min_cpus {min_cpus:?}) gate"
                    )
                });
            assert!(gate.max <= cap, "{numerator}/{denominator} cap loosened");
        }
    }

    #[test]
    fn gate_passes_within_cap_and_fails_beyond_it() {
        let dir = std::env::temp_dir().join("ebv_bench_gate_test");
        std::fs::create_dir_all(&dir).unwrap();
        let bench = dir.join("bench.json");
        std::fs::write(&bench, REPORT).unwrap();

        let passing = dir.join("passing.json");
        std::fs::write(
            &passing,
            r#"{"gates": [{"ratio": "cc_warm_epoch/cc_cold", "max": 1.0}]}"#,
        )
        .unwrap();
        assert!(run(&bench, &passing, 1).unwrap());

        let failing = dir.join("failing.json");
        std::fs::write(
            &failing,
            r#"{"gates": [{"ratio": "cc_cold/cc_warm_epoch", "max": 1.0}]}"#,
        )
        .unwrap();
        assert!(!run(&bench, &failing, 1).unwrap());
    }

    /// `min_cpus` gates are enforced on big hosts, skipped (with the
    /// measurements still required) on small ones.
    #[test]
    fn cpu_gated_entries_skip_below_their_floor_and_enforce_at_it() {
        let dir = std::env::temp_dir().join("ebv_bench_gate_cpu_test");
        std::fs::create_dir_all(&dir).unwrap();
        let bench = dir.join("bench.json");
        std::fs::write(&bench, REPORT).unwrap();

        // cc_cold/cc_warm_epoch = 4.0 violates the cap, but the gate only
        // applies on >= 4 cpus.
        let gated = dir.join("gated.json");
        std::fs::write(
            &gated,
            r#"{"gates": [{"ratio": "cc_cold/cc_warm_epoch", "max": 1.0, "min_cpus": 4}]}"#,
        )
        .unwrap();
        assert!(run(&bench, &gated, 1).unwrap(), "skipped below the floor");
        assert!(!run(&bench, &gated, 4).unwrap(), "enforced at the floor");

        // Skipping is not a loophole: a missing measurement still fails.
        let missing = dir.join("missing.json");
        std::fs::write(
            &missing,
            r#"{"gates": [{"ratio": "sssp_cold/cc_warm_epoch", "max": 1.0, "min_cpus": 4096}]}"#,
        )
        .unwrap();
        assert!(run(&bench, &missing, 1).is_err());
    }
}
