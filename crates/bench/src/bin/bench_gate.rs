//! The CI bench-regression gate: compares the warm-vs-cold and
//! incremental-vs-full ratios of a `bench_dynamic` JSON report against the
//! checked-in baseline and exits non-zero when any ratio regressed past its
//! cap — so the speedups the dynamic subsystem ships cannot silently rot.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p ebv-bench --bin bench_gate -- \
//!     BENCH_dynamic.json [.github/bench_baseline.json]
//! ```
//!
//! Both arguments are optional and default to the workspace-root
//! `BENCH_dynamic.json` and `.github/bench_baseline.json`. The baseline
//! lists `"a/b"` measurement-name pairs with the maximum allowed
//! `seconds(a) / seconds(b)` ratio; a cap of 1.0 means "a must not be
//! slower than b" (e.g. warm epochs must beat cold re-execution). Missing
//! measurements or malformed files fail the gate — it is fail-closed.
//!
//! The vendored serde stand-in has no JSON backend, so both files are read
//! with a minimal scanner for the flat schemas this repo emits.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Extracts every string or number value keyed by `key` from a flat JSON
/// document, in document order. Enough of a parser for the two schemas the
/// gate reads (no escapes, no nesting of the scanned keys).
fn scan_values(json: &str, key: &str) -> Vec<String> {
    let needle = format!("\"{key}\":");
    let mut values = Vec::new();
    let mut rest = json;
    while let Some(at) = rest.find(&needle) {
        rest = rest[at + needle.len()..].trim_start();
        let value = if let Some(quoted) = rest.strip_prefix('"') {
            let end = quoted.find('"').unwrap_or(quoted.len());
            quoted[..end].to_string()
        } else {
            rest.split(|c: char| c == ',' || c == '}' || c == ']' || c.is_whitespace())
                .next()
                .unwrap_or("")
                .to_string()
        };
        values.push(value);
    }
    values
}

/// The `(name, seconds)` measurements of a `bench_dynamic` report.
fn parse_measurements(json: &str) -> Result<Vec<(String, f64)>, String> {
    let names = scan_values(json, "name");
    let seconds = scan_values(json, "seconds");
    if names.is_empty() || names.len() != seconds.len() {
        return Err(format!(
            "malformed bench report: {} names vs {} seconds values",
            names.len(),
            seconds.len()
        ));
    }
    names
        .into_iter()
        .zip(seconds)
        .map(|(name, s)| {
            let parsed = s
                .parse::<f64>()
                .map_err(|_| format!("measurement {name}: unparseable seconds {s:?}"))?;
            Ok((name, parsed))
        })
        .collect()
}

/// The `(numerator, denominator, max_ratio)` caps of the baseline file.
fn parse_baseline(json: &str) -> Result<Vec<(String, String, f64)>, String> {
    let names = scan_values(json, "ratio");
    let maxima = scan_values(json, "max");
    if names.is_empty() || names.len() != maxima.len() {
        return Err(format!(
            "malformed baseline: {} ratios vs {} max values",
            names.len(),
            maxima.len()
        ));
    }
    names
        .into_iter()
        .zip(maxima)
        .map(|(ratio, max)| {
            let (a, b) = ratio
                .split_once('/')
                .ok_or_else(|| format!("baseline ratio {ratio:?} is not \"a/b\""))?;
            let cap = max
                .parse::<f64>()
                .map_err(|_| format!("baseline ratio {ratio}: unparseable max {max:?}"))?;
            Ok((a.to_string(), b.to_string(), cap))
        })
        .collect()
}

fn seconds_of(measurements: &[(String, f64)], name: &str) -> Result<f64, String> {
    measurements
        .iter()
        .find(|(n, _)| n == name)
        .map(|&(_, s)| s)
        .ok_or_else(|| format!("measurement {name:?} missing from the bench report"))
}

fn run(bench_path: &Path, baseline_path: &Path) -> Result<bool, String> {
    let bench = std::fs::read_to_string(bench_path)
        .map_err(|e| format!("cannot read {}: {e}", bench_path.display()))?;
    let baseline = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("cannot read {}: {e}", baseline_path.display()))?;
    let measurements = parse_measurements(&bench)?;
    let caps = parse_baseline(&baseline)?;
    if caps.is_empty() {
        return Err("the baseline gates nothing".to_string());
    }

    let mut ok = true;
    println!("bench-regression gate: {}", bench_path.display());
    for (numerator, denominator, cap) in &caps {
        let a = seconds_of(&measurements, numerator)?;
        let b = seconds_of(&measurements, denominator)?;
        if b <= 0.0 {
            return Err(format!(
                "measurement {denominator:?} has non-positive seconds"
            ));
        }
        let ratio = a / b;
        let verdict = if ratio <= *cap { "ok" } else { "REGRESSED" };
        println!("  {numerator}/{denominator}: {ratio:.3} (max {cap:.3}) {verdict}");
        if ratio > *cap {
            ok = false;
        }
    }
    Ok(ok)
}

fn main() -> ExitCode {
    let workspace_root = Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..");
    let mut args = std::env::args().skip(1);
    let bench_path = args
        .next()
        .map(PathBuf::from)
        .unwrap_or_else(|| workspace_root.join("BENCH_dynamic.json"));
    let baseline_path = args
        .next()
        .map(PathBuf::from)
        .unwrap_or_else(|| workspace_root.join(".github").join("bench_baseline.json"));

    match run(&bench_path, &baseline_path) {
        Ok(true) => {
            println!("all gated ratios within baseline");
            ExitCode::SUCCESS
        }
        Ok(false) => {
            eprintln!("bench-regression gate FAILED: at least one ratio regressed");
            ExitCode::FAILURE
        }
        Err(message) => {
            eprintln!("bench-regression gate error: {message}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const REPORT: &str = r#"{
  "benchmark": "dynamic",
  "measurements": [
    {"name": "cc_cold", "items": "labels", "count": 10, "seconds": 0.100000, "throughput_per_s": 100.0, "state_bytes": 0},
    {"name": "cc_warm_epoch", "items": "labels", "count": 10, "seconds": 0.025000, "throughput_per_s": 400.0, "state_bytes": 0}
  ]
}"#;

    #[test]
    fn parses_names_and_seconds_in_order() {
        let m = parse_measurements(REPORT).unwrap();
        assert_eq!(m.len(), 2);
        assert_eq!(m[0].0, "cc_cold");
        assert!((m[0].1 - 0.1).abs() < 1e-12);
        assert_eq!(m[1].0, "cc_warm_epoch");
        assert!((m[1].1 - 0.025).abs() < 1e-12);
    }

    #[test]
    fn baseline_caps_split_into_ratio_pairs() {
        let caps = parse_baseline(r#"{"gates": [{"ratio": "cc_warm_epoch/cc_cold", "max": 1.0}]}"#)
            .unwrap();
        assert_eq!(caps.len(), 1);
        assert_eq!(caps[0].0, "cc_warm_epoch");
        assert_eq!(caps[0].1, "cc_cold");
        assert!((caps[0].2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn missing_measurements_and_malformed_ratios_are_errors() {
        let m = parse_measurements(REPORT).unwrap();
        assert!(seconds_of(&m, "sssp_cold").is_err());
        assert!(parse_baseline(r#"{"gates": [{"ratio": "no-slash", "max": 1.0}]}"#).is_err());
        assert!(parse_baseline(r#"{"gates": []}"#).is_err());
        assert!(parse_measurements("{}").is_err());
    }

    /// The checked-in baseline must parse and keep gating the series CI
    /// depends on — in particular the threaded-vs-sequential cap of the
    /// parallel message plane (the gate is fail-closed: a missing
    /// measurement or a dropped entry fails CI, this test catches the
    /// dropped-entry half without a bench run).
    #[test]
    fn checked_in_baseline_gates_the_expected_ratios() {
        let baseline_path = Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("..")
            .join("..")
            .join(".github")
            .join("bench_baseline.json");
        let baseline = std::fs::read_to_string(&baseline_path).unwrap();
        let caps = parse_baseline(&baseline).unwrap();
        for (numerator, denominator, cap) in [
            ("cc_cold_threaded", "cc_cold_sequential", 1.0),
            ("cc_traced", "cc_cold_sequential", 1.05),
            ("cc_served", "cc_cold_sequential", 1.05),
            ("cc_warm_epoch", "cc_cold", 1.0),
            ("sssp_warm_epoch", "sssp_cold", 1.0),
            ("bfs_warm_epoch", "bfs_cold", 1.0),
        ] {
            let gate = caps
                .iter()
                .find(|(a, b, _)| a == numerator && b == denominator)
                .unwrap_or_else(|| panic!("baseline lost the {numerator}/{denominator} gate"));
            assert!(gate.2 <= cap, "{numerator}/{denominator} cap loosened");
        }
    }

    #[test]
    fn gate_passes_within_cap_and_fails_beyond_it() {
        let dir = std::env::temp_dir().join("ebv_bench_gate_test");
        std::fs::create_dir_all(&dir).unwrap();
        let bench = dir.join("bench.json");
        std::fs::write(&bench, REPORT).unwrap();

        let passing = dir.join("passing.json");
        std::fs::write(
            &passing,
            r#"{"gates": [{"ratio": "cc_warm_epoch/cc_cold", "max": 1.0}]}"#,
        )
        .unwrap();
        assert!(run(&bench, &passing).unwrap());

        let failing = dir.join("failing.json");
        std::fs::write(
            &failing,
            r#"{"gates": [{"ratio": "cc_cold/cc_warm_epoch", "max": 1.0}]}"#,
        )
        .unwrap();
        assert!(!run(&bench, &failing).unwrap());
    }
}
