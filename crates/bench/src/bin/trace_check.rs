//! The CI trace-smoke gate: validates the Chrome-trace JSON (and optional
//! Prometheus metrics snapshot) emitted by `EBV_TRACE=... evolving_graph`
//! and exits non-zero when the telemetry plane stopped producing the spans
//! it promises — so the observability surface cannot silently rot.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p ebv-bench --bin trace_check -- \
//!     trace.json [metrics.prom]
//! ```
//!
//! The vendored serde stand-in has no JSON backend, so the trace is read
//! with the same minimal key scanner as `bench_gate` — enough of a parser
//! for the flat event schema `ebv-obs` emits. Missing files, zero events,
//! a missing phase, or a malformed event all fail the check — it is
//! fail-closed.

use std::path::Path;
use std::process::ExitCode;

/// Every phase the `evolving_graph` example must leave at least one span
/// for: the BSP superstep quartet, the mutation path, and the warm-start
/// invalidation hooks. (`chunk_ingest` is a streaming-pipeline phase and is
/// deliberately not required here.)
const REQUIRED_PHASES: [&str; 8] = [
    "gather",
    "compute",
    "scatter",
    "barrier",
    "mutation_apply",
    "routing_patch",
    "warm_invalidation",
    "epoch_apply",
];

/// Metric families the Prometheus snapshot must expose.
const REQUIRED_METRICS: [&str; 3] = [
    "ebv_bsp_supersteps_total",
    "ebv_mutation_epochs_total",
    "ebv_phase_compute_seconds_bucket",
];

/// Extracts every string or number value keyed by `key` from a flat JSON
/// document, in document order — the `bench_gate` scanner, reused for the
/// trace-event schema (no escapes, no nesting of the scanned keys).
fn scan_values(json: &str, key: &str) -> Vec<String> {
    let needle = format!("\"{key}\":");
    let mut values = Vec::new();
    let mut rest = json;
    while let Some(at) = rest.find(&needle) {
        rest = rest[at + needle.len()..].trim_start();
        let value = if let Some(quoted) = rest.strip_prefix('"') {
            let end = quoted.find('"').unwrap_or(quoted.len());
            quoted[..end].to_string()
        } else {
            rest.split(|c: char| c == ',' || c == '}' || c == ']' || c.is_whitespace())
                .next()
                .unwrap_or("")
                .to_string()
        };
        values.push(value);
    }
    values
}

/// Validates a Chrome trace-event document. Returns the event count.
fn check_trace(json: &str) -> Result<usize, String> {
    if !json.contains("\"traceEvents\"") {
        return Err("trace is missing the \"traceEvents\" array".to_string());
    }
    let names = scan_values(json, "name");
    if names.is_empty() {
        return Err("trace contains no events".to_string());
    }
    let phs = scan_values(json, "ph");
    let ts = scan_values(json, "ts");
    let durs = scan_values(json, "dur");
    if phs.len() != names.len() || ts.len() != names.len() || durs.len() != names.len() {
        return Err(format!(
            "malformed trace: {} names vs {} ph vs {} ts vs {} dur values",
            names.len(),
            phs.len(),
            ts.len(),
            durs.len()
        ));
    }
    if let Some(ph) = phs.iter().find(|ph| ph.as_str() != "X") {
        return Err(format!("unexpected event phase type {ph:?} (want \"X\")"));
    }
    for (key, values) in [("ts", &ts), ("dur", &durs)] {
        for value in values {
            let parsed: u64 = value
                .parse()
                .map_err(|_| format!("unparseable {key} value {value:?}"))?;
            if key == "dur" && parsed == 0 {
                return Err("zero-duration event (durations are clamped >= 1us)".to_string());
            }
        }
    }
    for phase in REQUIRED_PHASES {
        if !names.iter().any(|n| n == phase) {
            return Err(format!("trace has no {phase:?} span"));
        }
    }
    Ok(names.len())
}

/// Validates the Prometheus text snapshot.
fn check_metrics(text: &str) -> Result<(), String> {
    if !text.contains("# TYPE") {
        return Err("metrics snapshot has no # TYPE lines".to_string());
    }
    for metric in REQUIRED_METRICS {
        if !text.contains(metric) {
            return Err(format!("metrics snapshot is missing {metric}"));
        }
    }
    Ok(())
}

fn run(trace_path: &Path, metrics_path: Option<&Path>) -> Result<(), String> {
    let trace = std::fs::read_to_string(trace_path)
        .map_err(|e| format!("cannot read {}: {e}", trace_path.display()))?;
    let events = check_trace(&trace)?;
    println!(
        "trace ok: {} ({events} events, all {} required phases present)",
        trace_path.display(),
        REQUIRED_PHASES.len()
    );
    if let Some(metrics_path) = metrics_path {
        let metrics = std::fs::read_to_string(metrics_path)
            .map_err(|e| format!("cannot read {}: {e}", metrics_path.display()))?;
        check_metrics(&metrics)?;
        println!("metrics ok: {}", metrics_path.display());
    }
    Ok(())
}

fn main() -> ExitCode {
    let mut args = std::env::args_os().skip(1);
    let Some(trace) = args.next() else {
        eprintln!("usage: trace_check <trace.json> [metrics.prom]");
        return ExitCode::FAILURE;
    };
    let metrics = args.next();
    match run(Path::new(&trace), metrics.as_deref().map(Path::new)) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("trace_check: {message}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(name: &str, ts: u64, dur: u64) -> String {
        format!(
            "{{\"name\":\"{name}\",\"cat\":\"bsp\",\"ph\":\"X\",\"ts\":{ts},\"dur\":{dur},\
             \"pid\":1,\"tid\":0,\"args\":{{\"epoch\":0,\"superstep\":0,\"worker\":0}}}}"
        )
    }

    fn trace_with(names: &[&str]) -> String {
        let events: Vec<String> = names
            .iter()
            .enumerate()
            .map(|(i, name)| event(name, i as u64 * 10, 2))
            .collect();
        format!("{{\"traceEvents\":[\n{}\n]}}\n", events.join(",\n"))
    }

    #[test]
    fn complete_trace_passes() {
        let json = trace_with(&REQUIRED_PHASES);
        assert_eq!(check_trace(&json).unwrap(), REQUIRED_PHASES.len());
    }

    #[test]
    fn missing_phase_fails() {
        let json = trace_with(&REQUIRED_PHASES[..7]);
        let err = check_trace(&json).unwrap_err();
        assert!(err.contains("epoch_apply"), "{err}");
    }

    #[test]
    fn empty_trace_fails() {
        assert!(check_trace("{\"traceEvents\":[]}").is_err());
        assert!(check_trace("not json at all").is_err());
    }

    #[test]
    fn zero_duration_fails() {
        let mut names: Vec<&str> = REQUIRED_PHASES.to_vec();
        names.push("gather");
        let json = trace_with(&names).replace("\"dur\":2", "\"dur\":0");
        let err = check_trace(&json).unwrap_err();
        assert!(err.contains("zero-duration"), "{err}");
    }

    #[test]
    fn wrong_event_type_fails() {
        let json = trace_with(&REQUIRED_PHASES).replace("\"ph\":\"X\"", "\"ph\":\"B\"");
        assert!(check_trace(&json).is_err());
    }

    #[test]
    fn metrics_snapshot_is_checked() {
        let good = "# TYPE ebv_bsp_supersteps_total counter\n\
                    ebv_bsp_supersteps_total 12\n\
                    # TYPE ebv_mutation_epochs_total counter\n\
                    ebv_mutation_epochs_total 3\n\
                    # TYPE ebv_phase_compute_seconds histogram\n\
                    ebv_phase_compute_seconds_bucket{le=\"+Inf\"} 9\n";
        check_metrics(good).unwrap();
        assert!(check_metrics("# TYPE only\n").is_err());
        assert!(check_metrics("ebv_bsp_supersteps_total 1\n").is_err());
    }
}
