//! The CI trace-smoke gate: validates the Chrome-trace JSON (and optional
//! Prometheus metrics snapshot) emitted by `EBV_TRACE=... evolving_graph`
//! — plus, with the `--scrape-*` flags, the four payloads scraped from a
//! *live* `EBV_OBS_ADDR` server mid-run — and exits non-zero when the
//! telemetry plane stopped producing what it promises, so the
//! observability surface cannot silently rot.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p ebv-bench --bin trace_check -- \
//!     trace.json [metrics.prom] \
//!     [--scrape-metrics scrape.prom] [--scrape-epochs epochs.json] \
//!     [--scrape-healthz healthz.json] [--scrape-trace scrape-trace.json]
//! ```
//!
//! The vendored serde stand-in has no JSON backend, so the trace is read
//! with the same minimal key scanner as `bench_gate` — enough of a parser
//! for the flat event schema `ebv-obs` emits. Missing files, zero events,
//! a missing phase, or a malformed event all fail the check — it is
//! fail-closed.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Every phase the `evolving_graph` example must leave at least one span
/// for: the BSP superstep quartet, the mutation path, and the warm-start
/// invalidation hooks. (`chunk_ingest` is a streaming-pipeline phase and is
/// deliberately not required here.)
const REQUIRED_PHASES: [&str; 8] = [
    "gather",
    "compute",
    "scatter",
    "barrier",
    "mutation_apply",
    "routing_patch",
    "warm_invalidation",
    "epoch_apply",
];

/// Phases a *mid-run* scrape of `/trace.json` must contain. The epoch
/// journal records its mark before the epoch callback runs, so a scrape
/// raced against the first epochs may legitimately predate the first
/// `warm_invalidation` span — it is excluded here, everything else from
/// the end-of-run set is required.
const SCRAPED_PHASES: [&str; 7] = [
    "gather",
    "compute",
    "scatter",
    "barrier",
    "mutation_apply",
    "routing_patch",
    "epoch_apply",
];

/// Metric families the Prometheus snapshot must expose. The pool trio
/// (queue-wait histogram, lane-width gauge, work-skew gauge) is emitted by
/// the executor seam on every instrumented run, in every execution mode.
const REQUIRED_METRICS: [&str; 6] = [
    "ebv_bsp_supersteps_total",
    "ebv_mutation_epochs_total",
    "ebv_phase_compute_seconds_bucket",
    "ebv_bsp_pool_queue_wait_seconds_bucket",
    "ebv_bsp_pool_chunk_workers",
    "ebv_bsp_work_max_mean_ratio",
];

/// Extracts every string or number value keyed by `key` from a flat JSON
/// document, in document order — the `bench_gate` scanner, reused for the
/// trace-event schema (no escapes, no nesting of the scanned keys).
fn scan_values(json: &str, key: &str) -> Vec<String> {
    let needle = format!("\"{key}\":");
    let mut values = Vec::new();
    let mut rest = json;
    while let Some(at) = rest.find(&needle) {
        rest = rest[at + needle.len()..].trim_start();
        let value = if let Some(quoted) = rest.strip_prefix('"') {
            let end = quoted.find('"').unwrap_or(quoted.len());
            quoted[..end].to_string()
        } else {
            rest.split(|c: char| c == ',' || c == '}' || c == ']' || c.is_whitespace())
                .next()
                .unwrap_or("")
                .to_string()
        };
        values.push(value);
    }
    values
}

/// Validates a Chrome trace-event document against `required_phases`.
/// Returns the event count.
fn check_trace(json: &str, required_phases: &[&str]) -> Result<usize, String> {
    if !json.contains("\"traceEvents\"") {
        return Err("trace is missing the \"traceEvents\" array".to_string());
    }
    let names = scan_values(json, "name");
    if names.is_empty() {
        return Err("trace contains no events".to_string());
    }
    let phs = scan_values(json, "ph");
    let ts = scan_values(json, "ts");
    let durs = scan_values(json, "dur");
    if phs.len() != names.len() || ts.len() != names.len() || durs.len() != names.len() {
        return Err(format!(
            "malformed trace: {} names vs {} ph vs {} ts vs {} dur values",
            names.len(),
            phs.len(),
            ts.len(),
            durs.len()
        ));
    }
    if let Some(ph) = phs.iter().find(|ph| ph.as_str() != "X") {
        return Err(format!("unexpected event phase type {ph:?} (want \"X\")"));
    }
    for (key, values) in [("ts", &ts), ("dur", &durs)] {
        for value in values {
            let parsed: u64 = value
                .parse()
                .map_err(|_| format!("unparseable {key} value {value:?}"))?;
            if key == "dur" && parsed == 0 {
                return Err("zero-duration event (durations are clamped >= 1us)".to_string());
            }
        }
    }
    for phase in required_phases {
        if !names.iter().any(|n| n == phase) {
            return Err(format!("trace has no {phase:?} span"));
        }
    }
    Ok(names.len())
}

/// Validates the Prometheus text snapshot.
fn check_metrics(text: &str) -> Result<(), String> {
    if !text.contains("# TYPE") {
        return Err("metrics snapshot has no # TYPE lines".to_string());
    }
    for metric in REQUIRED_METRICS {
        if !text.contains(metric) {
            return Err(format!("metrics snapshot is missing {metric}"));
        }
    }
    Ok(())
}

/// Validates a `/metrics` scrape from a live server: everything a file
/// snapshot must have, plus the per-worker attribution families and the
/// straggler gauge only the live exposition carries.
fn check_scraped_metrics(text: &str) -> Result<(), String> {
    check_metrics(text)?;
    if !text.contains("ebv_worker_phase_seconds{worker=\"") {
        return Err("scraped metrics have no per-worker ebv_worker_phase_seconds family".into());
    }
    if !text.contains("ebv_bsp_straggler_ratio") {
        return Err("scraped metrics are missing ebv_bsp_straggler_ratio".into());
    }
    Ok(())
}

/// Validates an `/epochs.json` scrape: at least one snapshot, strictly
/// increasing epoch ids (one snapshot per applied epoch), and per-entry
/// apply-cost and per-phase-seconds objects.
fn check_epochs(json: &str) -> Result<usize, String> {
    if !json.contains("\"epochs\"") {
        return Err("epoch journal is missing the \"epochs\" array".to_string());
    }
    let epochs: Vec<u64> = scan_values(json, "epoch")
        .iter()
        .map(|value| {
            value
                .parse()
                .map_err(|_| format!("unparseable epoch id {value:?}"))
        })
        .collect::<Result<_, _>>()?;
    if epochs.is_empty() {
        return Err("epoch journal holds no snapshots".to_string());
    }
    if !epochs.windows(2).all(|pair| pair[0] < pair[1]) {
        return Err(format!("epoch ids are not strictly increasing: {epochs:?}"));
    }
    for key in ["apply_seconds", "phase_seconds", "straggler_ratio"] {
        let count = json.matches(&format!("\"{key}\":")).count();
        if count != epochs.len() {
            return Err(format!(
                "{} snapshots but {count} {key:?} entries",
                epochs.len()
            ));
        }
    }
    Ok(epochs.len())
}

/// Validates a `/healthz` scrape: the run must have reported itself live.
fn check_healthz(json: &str) -> Result<(), String> {
    let statuses = scan_values(json, "status");
    if statuses != ["ok"] {
        return Err(format!("healthz status is {statuses:?}, want [\"ok\"]"));
    }
    Ok(())
}

#[derive(Debug, Default)]
struct Options {
    trace: PathBuf,
    metrics: Option<PathBuf>,
    scrape_metrics: Option<PathBuf>,
    scrape_epochs: Option<PathBuf>,
    scrape_healthz: Option<PathBuf>,
    scrape_trace: Option<PathBuf>,
}

fn read(path: &Path) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("cannot read {}: {e}", path.display()))
}

fn run(options: &Options) -> Result<(), String> {
    let trace = read(&options.trace)?;
    let events = check_trace(&trace, &REQUIRED_PHASES)?;
    println!(
        "trace ok: {} ({events} events, all {} required phases present)",
        options.trace.display(),
        REQUIRED_PHASES.len()
    );
    if let Some(path) = &options.metrics {
        check_metrics(&read(path)?)?;
        println!("metrics ok: {}", path.display());
    }
    if let Some(path) = &options.scrape_trace {
        let events = check_trace(&read(path)?, &SCRAPED_PHASES)?;
        println!("scraped trace ok: {} ({events} events)", path.display());
    }
    if let Some(path) = &options.scrape_metrics {
        check_scraped_metrics(&read(path)?)?;
        println!(
            "scraped metrics ok: {} (per-worker families + straggler gauge present)",
            path.display()
        );
    }
    if let Some(path) = &options.scrape_epochs {
        let epochs = check_epochs(&read(path)?)?;
        println!("scraped epochs ok: {} ({epochs} snapshots)", path.display());
    }
    if let Some(path) = &options.scrape_healthz {
        check_healthz(&read(path)?)?;
        println!("scraped healthz ok: {}", path.display());
    }
    Ok(())
}

fn parse_args() -> Result<Options, String> {
    let mut args = std::env::args().skip(1);
    let mut options = Options::default();
    let mut positionals = Vec::new();
    while let Some(arg) = args.next() {
        let slot = match arg.as_str() {
            "--scrape-metrics" => &mut options.scrape_metrics,
            "--scrape-epochs" => &mut options.scrape_epochs,
            "--scrape-healthz" => &mut options.scrape_healthz,
            "--scrape-trace" => &mut options.scrape_trace,
            _ if arg.starts_with("--") => return Err(format!("unknown flag {arg}")),
            _ => {
                positionals.push(PathBuf::from(arg));
                continue;
            }
        };
        *slot = Some(PathBuf::from(
            args.next()
                .ok_or(format!("flag {arg} needs a file argument"))?,
        ));
    }
    let mut positionals = positionals.into_iter();
    options.trace = positionals
        .next()
        .ok_or("missing the <trace.json> argument".to_string())?;
    options.metrics = positionals.next();
    if let Some(extra) = positionals.next() {
        return Err(format!("unexpected argument {}", extra.display()));
    }
    Ok(options)
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(options) => options,
        Err(message) => {
            eprintln!(
                "trace_check: {message}\nusage: trace_check <trace.json> [metrics.prom] \
                 [--scrape-metrics F] [--scrape-epochs F] [--scrape-healthz F] [--scrape-trace F]"
            );
            return ExitCode::FAILURE;
        }
    };
    match run(&options) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("trace_check: {message}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(name: &str, ts: u64, dur: u64) -> String {
        format!(
            "{{\"name\":\"{name}\",\"cat\":\"bsp\",\"ph\":\"X\",\"ts\":{ts},\"dur\":{dur},\
             \"pid\":1,\"tid\":0,\"args\":{{\"epoch\":0,\"superstep\":0,\"worker\":0}}}}"
        )
    }

    fn trace_with(names: &[&str]) -> String {
        let events: Vec<String> = names
            .iter()
            .enumerate()
            .map(|(i, name)| event(name, i as u64 * 10, 2))
            .collect();
        format!("{{\"traceEvents\":[\n{}\n]}}\n", events.join(",\n"))
    }

    fn epochs_json(ids: &[u64]) -> String {
        let entries: Vec<String> = ids
            .iter()
            .map(|id| {
                format!(
                    "{{\"epoch\": {id}, \"batch_index\": 0, \"at_seconds\": 0.5, \
                     \"apply_seconds\": 0.01, \"straggler_ratio\": 1.25, \
                     \"phase_seconds\": {{\"gather\": 0.001, \"compute\": 0.002}}}}"
                )
            })
            .collect();
        format!(
            "{{\"recorded_total\": {}, \"capacity\": 1024, \"epochs\": [{}]}}",
            ids.len(),
            entries.join(", ")
        )
    }

    #[test]
    fn complete_trace_passes() {
        let json = trace_with(&REQUIRED_PHASES);
        assert_eq!(
            check_trace(&json, &REQUIRED_PHASES).unwrap(),
            REQUIRED_PHASES.len()
        );
    }

    #[test]
    fn missing_phase_fails() {
        let json = trace_with(&REQUIRED_PHASES[..7]);
        let err = check_trace(&json, &REQUIRED_PHASES).unwrap_err();
        assert!(err.contains("epoch_apply"), "{err}");
    }

    #[test]
    fn scraped_trace_does_not_require_warm_invalidation() {
        // A mid-run scrape may predate the first warm_invalidation span.
        let json = trace_with(&SCRAPED_PHASES);
        assert!(check_trace(&json, &REQUIRED_PHASES).is_err());
        assert_eq!(
            check_trace(&json, &SCRAPED_PHASES).unwrap(),
            SCRAPED_PHASES.len()
        );
        // But it still requires the BSP quartet and the mutation path.
        let gutted = trace_with(&SCRAPED_PHASES[..4]);
        assert!(check_trace(&gutted, &SCRAPED_PHASES).is_err());
    }

    #[test]
    fn empty_trace_fails() {
        assert!(check_trace("{\"traceEvents\":[]}", &REQUIRED_PHASES).is_err());
        assert!(check_trace("not json at all", &REQUIRED_PHASES).is_err());
    }

    #[test]
    fn zero_duration_fails() {
        let mut names: Vec<&str> = REQUIRED_PHASES.to_vec();
        names.push("gather");
        let json = trace_with(&names).replace("\"dur\":2", "\"dur\":0");
        let err = check_trace(&json, &REQUIRED_PHASES).unwrap_err();
        assert!(err.contains("zero-duration"), "{err}");
    }

    #[test]
    fn wrong_event_type_fails() {
        let json = trace_with(&REQUIRED_PHASES).replace("\"ph\":\"X\"", "\"ph\":\"B\"");
        assert!(check_trace(&json, &REQUIRED_PHASES).is_err());
    }

    #[test]
    fn metrics_snapshot_is_checked() {
        let good = "# TYPE ebv_bsp_supersteps_total counter\n\
                    ebv_bsp_supersteps_total 12\n\
                    # TYPE ebv_mutation_epochs_total counter\n\
                    ebv_mutation_epochs_total 3\n\
                    # TYPE ebv_phase_compute_seconds histogram\n\
                    ebv_phase_compute_seconds_bucket{le=\"+Inf\"} 9\n\
                    # TYPE ebv_bsp_pool_queue_wait_seconds histogram\n\
                    ebv_bsp_pool_queue_wait_seconds_bucket{le=\"+Inf\"} 9\n\
                    # TYPE ebv_bsp_pool_chunk_workers gauge\n\
                    ebv_bsp_pool_chunk_workers 4\n\
                    # TYPE ebv_bsp_work_max_mean_ratio gauge\n\
                    ebv_bsp_work_max_mean_ratio 1.1\n";
        check_metrics(good).unwrap();
        assert!(check_metrics("# TYPE only\n").is_err());
        assert!(check_metrics("ebv_bsp_supersteps_total 1\n").is_err());
        // Losing any of the pool trio fails the snapshot check.
        assert!(check_metrics(&good.replace("ebv_bsp_pool_queue_wait_seconds", "x")).is_err());
        assert!(check_metrics(&good.replace("ebv_bsp_pool_chunk_workers", "x")).is_err());
        assert!(check_metrics(&good.replace("ebv_bsp_work_max_mean_ratio", "x")).is_err());

        // A live scrape additionally needs the labeled worker families and
        // the straggler gauge.
        assert!(check_scraped_metrics(good).is_err());
        let live = format!(
            "{good}# TYPE ebv_bsp_straggler_ratio gauge\n\
             ebv_bsp_straggler_ratio 1.5\n\
             # TYPE ebv_worker_phase_seconds counter\n\
             ebv_worker_phase_seconds{{worker=\"3\",phase=\"compute\"}} 0.25\n"
        );
        check_scraped_metrics(&live).unwrap();
    }

    #[test]
    fn epoch_journal_scrape_is_checked() {
        assert_eq!(check_epochs(&epochs_json(&[1, 2, 5])).unwrap(), 3);
        // Empty, non-increasing, or incomplete entries all fail.
        assert!(check_epochs(&epochs_json(&[])).is_err());
        assert!(check_epochs(&epochs_json(&[1, 1])).is_err());
        assert!(check_epochs(&epochs_json(&[2, 1])).is_err());
        assert!(check_epochs("{\"nothing\": true}").is_err());
        let missing_phases = epochs_json(&[1]).replace("\"phase_seconds\"", "\"other\"");
        assert!(check_epochs(&missing_phases).is_err());
    }

    #[test]
    fn healthz_scrape_is_checked() {
        check_healthz("{\"status\": \"ok\", \"epochs_recorded\": 4}").unwrap();
        assert!(check_healthz("{\"status\": \"stale\"}").is_err());
        assert!(check_healthz("{}").is_err());
    }
}
