//! Table III — partitioning metrics comparison.
//!
//! For every dataset and every partitioner of the paper's roster, prints the
//! edge imbalance factor, vertex imbalance factor and replication factor,
//! using the same per-graph worker counts as the paper (12/12/32/32).

use ebv_bench::{partition_with_metrics, Dataset, Scale, TextTable};
use ebv_partition::paper_partitioners;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = Scale::from_env();
    let mut table = TextTable::new(
        "Table III: edge imbalance / vertex imbalance / replication factor per partitioner",
    );
    let mut headers = vec!["Graph".to_string(), "workers".to_string()];
    headers.extend(paper_partitioners().iter().map(|p| p.name()));
    table.headers(headers);

    for dataset in Dataset::all() {
        let graph = dataset.generate(scale)?;
        let workers = dataset.table_workers;
        let mut row = vec![dataset.name.to_string(), workers.to_string()];
        for partitioner in paper_partitioners() {
            let (_, metrics) = partition_with_metrics(&graph, partitioner.as_ref(), workers)?;
            row.push(format!(
                "{:.2}/{:.2} rf={:.2}",
                metrics.edge_imbalance, metrics.vertex_imbalance, metrics.replication_factor
            ));
        }
        table.row(row);
    }

    println!("{table}");
    println!(
        "Expected shape (paper): EBV/Ginger/DBH/CVC stay near 1.00/1.00 on both imbalance \
         factors; NE's vertex imbalance and METIS's edge imbalance grow as eta decreases; \
         EBV's replication factor is the lowest of the self-based (hash/greedy) family."
    );
    Ok(())
}
