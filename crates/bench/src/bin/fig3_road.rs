//! Figure 3 — CC and SSSP on the non-power-law road graph.
//!
//! The control experiment: on a mesh-like graph the local-based partitioners
//! (NE, METIS) are expected to be competitive or better, unlike on the
//! power-law graphs of Figure 2.

use ebv_bench::{run_experiment, Application, Dataset, Scale, TextTable};
use ebv_bsp::CostModel;
use ebv_partition::paper_partitioners;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = Scale::from_env();
    let cost_model = CostModel::default();
    let dataset = Dataset::road();
    let graph = dataset.generate(scale)?;
    let sweep: Vec<usize> = match scale {
        Scale::Small => vec![4, 8, 16],
        Scale::Full => dataset.figure_workers.to_vec(),
    };

    for application in [Application::ConnectedComponents, Application::Sssp] {
        let mut table = TextTable::new(&format!(
            "Figure 3 panel: {} - {} (modeled seconds)",
            application.name(),
            dataset.name
        ));
        let mut headers = vec!["workers".to_string()];
        headers.extend(paper_partitioners().iter().map(|p| p.name()));
        table.headers(headers);
        for &workers in &sweep {
            let mut row = vec![workers.to_string()];
            for partitioner in paper_partitioners() {
                let result = run_experiment(
                    &graph,
                    partitioner.as_ref(),
                    workers,
                    application,
                    &cost_model,
                )?;
                row.push(format!("{:.4}", result.breakdown.execution_time));
            }
            table.row(row);
        }
        println!("{table}");
    }

    println!(
        "Expected shape (paper, Figure 3): on the road graph NE achieves the best time, METIS \
         is comparable to EBV/Ginger/CVC, and the gap between partitioners is much smaller \
         than on the power-law graphs."
    );
    Ok(())
}
