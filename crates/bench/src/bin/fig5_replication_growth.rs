//! Figure 5 — replication-factor growth curve of EBV with and without the
//! degree-sum sorting preprocessing.
//!
//! For each power-law dataset and each subgraph count in {4, 8, 16, 32},
//! prints the replication factor after every ~10% of the edges has been
//! assigned, for EBV-sort and EBV-unsort — the data behind the three panels
//! of Figure 5.

use ebv_bench::{Dataset, Scale, TextTable};
use ebv_partition::EbvPartitioner;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = Scale::from_env();
    let subgraph_counts = [4usize, 8, 16, 32];

    for dataset in Dataset::power_law_sets() {
        let graph = dataset.generate(scale)?;
        let mut table = TextTable::new(&format!(
            "Figure 5 panel: {} — replication factor vs edges processed",
            dataset.name
        ));
        table.headers([
            "variant",
            "subgraphs",
            "10%",
            "20%",
            "30%",
            "40%",
            "50%",
            "60%",
            "70%",
            "80%",
            "90%",
            "100%",
        ]);

        for &p in &subgraph_counts {
            for (label, partitioner) in [
                ("EBV-sort", EbvPartitioner::new().with_trace_samples(10)),
                (
                    "EBV-unsort",
                    EbvPartitioner::new().unsorted().with_trace_samples(10),
                ),
            ] {
                let (_, trace) = partitioner.partition_with_trace(&graph, p)?;
                let mut row = vec![label.to_string(), p.to_string()];
                for point in trace.points().iter().take(10) {
                    row.push(format!("{:.3}", point.replication_factor));
                }
                while row.len() < 12 {
                    row.push(format!("{:.3}", trace.final_replication_factor()));
                }
                table.row(row);
            }
        }
        println!("{table}");
    }

    println!(
        "Expected shape (paper, Figure 5): EBV-sort ends with a lower replication factor than \
         EBV-unsort on every power-law graph, the gap widens as the number of subgraphs grows, \
         and the sorted curves rise sharply at the beginning before flattening (low-degree \
         edges create almost all vertices early)."
    );
    Ok(())
}
