//! Table IV — total number of communication messages on the CC algorithm.
//!
//! For every dataset (with the paper's per-graph worker counts) and every
//! partitioner, prints the total number of replica messages exchanged while
//! computing Connected Components, together with the replication factor in
//! parentheses, exactly as Table IV of the paper does.

use ebv_bench::{run_experiment, scientific, Application, Dataset, Scale, TextTable};
use ebv_bsp::CostModel;
use ebv_partition::paper_partitioners;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = Scale::from_env();
    let cost_model = CostModel::default();
    let mut table =
        TextTable::new("Table IV: total communication messages for CC (replication factor)");
    let mut headers = vec!["Graph".to_string(), "workers".to_string()];
    headers.extend(paper_partitioners().iter().map(|p| p.name()));
    table.headers(headers);

    for dataset in Dataset::all() {
        let graph = dataset.generate(scale)?;
        let workers = dataset.table_workers;
        let mut row = vec![dataset.name.to_string(), workers.to_string()];
        for partitioner in paper_partitioners() {
            let result = run_experiment(
                &graph,
                partitioner.as_ref(),
                workers,
                Application::ConnectedComponents,
                &cost_model,
            )?;
            row.push(format!(
                "{} ({:.2})",
                scientific(result.stats.total_messages()),
                result.metrics.replication_factor
            ));
        }
        table.row(row);
    }

    println!("{table}");
    println!(
        "Expected shape (paper, Table IV): message totals track the replication factor; \
         EBV sends fewer messages than Ginger/DBH/CVC on every graph, while NE and METIS \
         send the fewest on the non-power-law road graph."
    );
    Ok(())
}
