//! Table I — statistics of the tested graphs.
//!
//! Prints name, type, |V|, |E|, average degree and the fitted power-law
//! exponent η for each synthetic substitute, in the same layout as Table I
//! of the paper.

use ebv_bench::{Dataset, Scale, TextTable};
use ebv_graph::GraphStats;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = Scale::from_env();
    let mut table = TextTable::new("Table I: Statistics of tested graphs (synthetic substitutes)");
    table.headers([
        "Graph",
        "Substitutes for",
        "Type",
        "V",
        "E",
        "AvgDeg",
        "eta",
        "power-law",
    ]);

    for dataset in Dataset::all() {
        let graph = dataset.generate(scale)?;
        let stats = GraphStats::compute(dataset.name, &graph)?;
        table.row([
            dataset.name.to_string(),
            dataset.substitutes_for.to_string(),
            stats.kind.to_string(),
            stats.num_vertices.to_string(),
            stats.num_input_edges.to_string(),
            format!("{:.2}", stats.average_degree),
            format!("{:.2}", stats.eta),
            stats.is_power_law.to_string(),
        ]);
    }

    println!("{table}");
    println!(
        "Paper reference: USARoad eta=6.30 (non-power-law), LiveJournal eta=2.64, \
         Friendster eta=2.43, Twitter eta=1.87 (all power-law)."
    );
    Ok(())
}
