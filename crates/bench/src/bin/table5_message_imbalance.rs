//! Table V — the max/mean ratio of per-worker messages on the CC algorithm.
//!
//! For every dataset and partitioner, prints the ratio between the busiest
//! worker's sent messages and the mean, together with the edge/vertex
//! imbalance factors in parentheses (the quantities Table V correlates).

use ebv_bench::{run_experiment, Application, Dataset, Scale, TextTable};
use ebv_bsp::CostModel;
use ebv_partition::paper_partitioners;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = Scale::from_env();
    let cost_model = CostModel::default();
    let mut table = TextTable::new(
        "Table V: max/mean ratio of per-worker CC messages (edge/vertex imbalance factors)",
    );
    let mut headers = vec!["Graph".to_string(), "workers".to_string()];
    headers.extend(paper_partitioners().iter().map(|p| p.name()));
    table.headers(headers);

    for dataset in Dataset::all() {
        let graph = dataset.generate(scale)?;
        let workers = dataset.table_workers;
        let mut row = vec![dataset.name.to_string(), workers.to_string()];
        for partitioner in paper_partitioners() {
            let result = run_experiment(
                &graph,
                partitioner.as_ref(),
                workers,
                Application::ConnectedComponents,
                &cost_model,
            )?;
            row.push(format!(
                "{:.3} ({:.2}/{:.2})",
                result.stats.message_max_mean_ratio(),
                result.metrics.edge_imbalance,
                result.metrics.vertex_imbalance
            ));
        }
        table.row(row);
    }

    println!("{table}");
    println!(
        "Expected shape (paper, Table V): EBV/Ginger/DBH/CVC stay near 1.0 on every graph; \
         NE and METIS have clearly larger ratios that grow with the corresponding imbalance \
         factor as the graphs get more skewed."
    );
    Ok(())
}
