//! Minimal text-table reporting used by the per-experiment binaries.

use std::fmt;

/// A simple aligned text table, printed to stdout by every experiment
/// binary in the same visual layout as the paper's tables.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TextTable {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates an empty table with a title.
    pub fn new(title: &str) -> Self {
        TextTable {
            title: title.to_string(),
            headers: Vec::new(),
            rows: Vec::new(),
        }
    }

    /// Sets the column headers.
    pub fn headers<I, S>(&mut self, headers: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.headers = headers.into_iter().map(Into::into).collect();
        self
    }

    /// Appends a row.
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    fn column_widths(&self) -> Vec<usize> {
        let columns = self
            .headers
            .len()
            .max(self.rows.iter().map(|r| r.len()).max().unwrap_or(0));
        let mut widths = vec![0usize; columns];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        widths
    }
}

impl fmt::Display for TextTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let widths = self.column_widths();
        let total: usize = widths.iter().sum::<usize>() + 3 * widths.len().saturating_sub(1);
        writeln!(f, "{}", self.title)?;
        writeln!(f, "{}", "=".repeat(self.title.len().max(total)))?;
        if !self.headers.is_empty() {
            let header_line: Vec<String> = self
                .headers
                .iter()
                .enumerate()
                .map(|(i, h)| format!("{:width$}", h, width = widths[i]))
                .collect();
            writeln!(f, "{}", header_line.join(" | "))?;
            writeln!(f, "{}", "-".repeat(total))?;
        }
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, cell)| format!("{:width$}", cell, width = widths[i]))
                .collect();
            writeln!(f, "{}", line.join(" | "))?;
        }
        Ok(())
    }
}

/// Formats a large count the way the paper's Table IV does (`4.05e7`).
pub fn scientific(count: usize) -> String {
    if count == 0 {
        return "0".to_string();
    }
    format!("{:.2e}", count as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_with_aligned_columns() {
        let mut table = TextTable::new("Table X: demo");
        table.headers(["Graph", "EBV", "Ginger"]);
        table.row(["livejournal-like", "1.80", "2.23"]);
        table.row(["twitter-like", "3.59", "4.51"]);
        let rendered = table.to_string();
        assert!(rendered.contains("Table X: demo"));
        assert!(rendered.contains("Graph"));
        assert!(rendered.contains("livejournal-like"));
        assert_eq!(table.num_rows(), 2);
        // Every data line has the separator in the same position.
        let lines: Vec<&str> = rendered.lines().filter(|l| l.contains('|')).collect();
        let positions: Vec<usize> = lines.iter().map(|l| l.find('|').unwrap()).collect();
        assert!(positions.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn scientific_formatting() {
        assert_eq!(scientific(0), "0");
        assert_eq!(scientific(40_500_000), "4.05e7");
        assert_eq!(scientific(16_300), "1.63e4");
    }
}
