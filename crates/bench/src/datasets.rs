//! The dataset registry: synthetic substitutes for the paper's evaluation
//! graphs (Table I).
//!
//! The original datasets (USARoad, LiveJournal, Twitter, Friendster) range
//! from 58 million to 1.8 billion edges and cannot be redistributed here.
//! Each substitute reproduces the property the paper's analysis actually
//! depends on — the degree-distribution skew η and the directed/undirected
//! character — at a scale that runs in seconds on a laptop. The relative
//! sizes (road ≪ lj < twitter/friendster) and the worker counts used per
//! graph (12/12/32/32) mirror the paper.

use ebv_graph::generators::{
    BarabasiAlbertGenerator, ConfigurationModelGenerator, GraphGenerator, GridGenerator,
    RmatGenerator,
};
use ebv_graph::{Graph, GraphError};

use serde::{Deserialize, Serialize};

/// How large the synthetic substitutes should be.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum Scale {
    /// Fast sizes for CI and the default binary runs (tens of thousands of
    /// edges).
    #[default]
    Small,
    /// Larger sizes for benchmark runs (hundreds of thousands of edges).
    Full,
}

impl Scale {
    /// Reads the scale from the `EBV_SCALE` environment variable
    /// (`"full"` selects [`Scale::Full`]; anything else, or an unset
    /// variable, selects [`Scale::Small`]).
    pub fn from_env() -> Self {
        match std::env::var("EBV_SCALE") {
            Ok(v) if v.eq_ignore_ascii_case("full") => Scale::Full,
            _ => Scale::Small,
        }
    }
}

/// One synthetic evaluation dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dataset {
    /// Name used in reports ("usaroad-like", "livejournal-like", ...).
    pub name: &'static str,
    /// The paper graph this dataset substitutes for.
    pub substitutes_for: &'static str,
    /// Number of workers the paper uses for this graph in Tables III–V.
    pub table_workers: usize,
    /// Worker sweep the paper uses for this graph in Figures 2–3.
    pub figure_workers: &'static [usize],
    /// Whether the paper treats this graph as power-law.
    pub power_law: bool,
    kind: DatasetKind,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DatasetKind {
    Road,
    LiveJournalLike,
    TwitterLike,
    FriendsterLike,
}

impl Dataset {
    /// The non-power-law control graph (substitute for USARoad).
    pub fn road() -> Self {
        Dataset {
            name: "usaroad-like",
            substitutes_for: "USARoad",
            table_workers: 12,
            figure_workers: &[4, 8, 12, 16, 20, 24],
            power_law: false,
            kind: DatasetKind::Road,
        }
    }

    /// Moderately skewed directed power-law graph (substitute for
    /// LiveJournal, η ≈ 2.6).
    pub fn livejournal_like() -> Self {
        Dataset {
            name: "livejournal-like",
            substitutes_for: "LiveJournal",
            table_workers: 12,
            figure_workers: &[4, 8, 12, 16, 20, 24],
            power_law: true,
            kind: DatasetKind::LiveJournalLike,
        }
    }

    /// Heavily skewed directed power-law graph (substitute for Twitter,
    /// η ≈ 1.9).
    pub fn twitter_like() -> Self {
        Dataset {
            name: "twitter-like",
            substitutes_for: "Twitter",
            table_workers: 32,
            figure_workers: &[24, 32, 40, 48],
            power_law: true,
            kind: DatasetKind::TwitterLike,
        }
    }

    /// Large undirected power-law graph (substitute for Friendster,
    /// η ≈ 2.4).
    pub fn friendster_like() -> Self {
        Dataset {
            name: "friendster-like",
            substitutes_for: "Friendster",
            table_workers: 32,
            figure_workers: &[24, 32, 40, 48],
            power_law: true,
            kind: DatasetKind::FriendsterLike,
        }
    }

    /// All four datasets in the order of Table I (by descending η).
    pub fn all() -> Vec<Dataset> {
        vec![
            Dataset::road(),
            Dataset::livejournal_like(),
            Dataset::friendster_like(),
            Dataset::twitter_like(),
        ]
    }

    /// The three power-law datasets used by Figures 2 and 5.
    pub fn power_law_sets() -> Vec<Dataset> {
        vec![
            Dataset::livejournal_like(),
            Dataset::twitter_like(),
            Dataset::friendster_like(),
        ]
    }

    /// Generates the dataset at the requested scale. Deterministic: the same
    /// scale always produces the same graph.
    ///
    /// # Errors
    ///
    /// Propagates generator errors (which only occur for invalid
    /// configurations and therefore indicate a bug in this registry).
    pub fn generate(&self, scale: Scale) -> Result<Graph, GraphError> {
        match (self.kind, scale) {
            (DatasetKind::Road, Scale::Small) => GridGenerator::new(80, 75)
                .with_deletion_probability(0.05)
                .with_seed(42)
                .generate(),
            (DatasetKind::Road, Scale::Full) => GridGenerator::new(320, 300)
                .with_deletion_probability(0.05)
                .with_seed(42)
                .generate(),
            (DatasetKind::LiveJournalLike, Scale::Small) => BarabasiAlbertGenerator::new(6_000, 7)
                .with_seed(7)
                .generate(),
            (DatasetKind::LiveJournalLike, Scale::Full) => BarabasiAlbertGenerator::new(60_000, 7)
                .with_seed(7)
                .generate(),
            (DatasetKind::TwitterLike, Scale::Small) => RmatGenerator::new(13, 16)
                .with_probabilities(0.62, 0.18, 0.15)
                .with_seed(11)
                .generate(),
            (DatasetKind::TwitterLike, Scale::Full) => RmatGenerator::new(16, 18)
                .with_probabilities(0.62, 0.18, 0.15)
                .with_seed(11)
                .generate(),
            (DatasetKind::FriendsterLike, Scale::Small) => {
                ConfigurationModelGenerator::new(10_000, 2.4)
                    .with_min_degree(6)
                    .with_seed(13)
                    .generate()
            }
            (DatasetKind::FriendsterLike, Scale::Full) => {
                ConfigurationModelGenerator::new(80_000, 2.4)
                    .with_min_degree(7)
                    .with_seed(13)
                    .generate()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebv_graph::estimate_graph_eta;

    #[test]
    fn registry_covers_the_four_paper_graphs() {
        let all = Dataset::all();
        assert_eq!(all.len(), 4);
        let names: Vec<&str> = all.iter().map(|d| d.substitutes_for).collect();
        assert_eq!(
            names,
            vec!["USARoad", "LiveJournal", "Friendster", "Twitter"]
        );
        assert_eq!(Dataset::power_law_sets().len(), 3);
    }

    #[test]
    fn small_datasets_generate_and_match_their_skew_class() {
        for dataset in Dataset::all() {
            let graph = dataset.generate(Scale::Small).unwrap();
            assert!(graph.num_edges() > 1_000, "{}", dataset.name);
            let eta = estimate_graph_eta(&graph).unwrap();
            assert_eq!(
                eta.is_power_law(),
                dataset.power_law,
                "{}: eta {}",
                dataset.name,
                eta.eta
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Dataset::twitter_like().generate(Scale::Small).unwrap();
        let b = Dataset::twitter_like().generate(Scale::Small).unwrap();
        assert_eq!(a.edges(), b.edges());
    }

    #[test]
    fn scale_from_env_defaults_to_small() {
        // The environment variable is unset in the test harness.
        assert_eq!(Scale::from_env(), Scale::Small);
        assert_eq!(Scale::default(), Scale::Small);
    }

    #[test]
    fn worker_counts_match_the_paper() {
        assert_eq!(Dataset::road().table_workers, 12);
        assert_eq!(Dataset::livejournal_like().table_workers, 12);
        assert_eq!(Dataset::twitter_like().table_workers, 32);
        assert_eq!(Dataset::friendster_like().table_workers, 32);
        assert_eq!(Dataset::road().figure_workers, &[4, 8, 12, 16, 20, 24]);
        assert_eq!(Dataset::twitter_like().figure_workers, &[24, 32, 40, 48]);
    }
}
