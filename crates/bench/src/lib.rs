//! # ebv-bench — the experiment harness
//!
//! Reproduces every table and figure of the paper's evaluation section from
//! the synthetic dataset registry:
//!
//! | Experiment | Binary |
//! |------------|--------|
//! | Table I — graph statistics | `table1_graph_stats` |
//! | Table II — CC breakdown, 4 workers | `table2_cc_breakdown` |
//! | Table III — partition metrics | `table3_partition_metrics` |
//! | Table IV — CC communication messages | `table4_cc_messages` |
//! | Table V — message max/mean imbalance | `table5_message_imbalance` |
//! | Figure 2 — CC/PR/SSSP execution time vs workers (power-law) | `fig2_execution_time` |
//! | Figure 3 — CC/SSSP on the road graph | `fig3_road` |
//! | Figure 4 — per-worker timeline breakdown | `fig4_worker_breakdown` |
//! | Figure 5 — replication-factor growth (EBV-sort vs unsort) | `fig5_replication_growth` |
//! | Evaluation-function ablation (extension) | `ablation_eval_terms` |
//!
//! Run a binary with `cargo run --release -p ebv-bench --bin <name>`; set
//! `EBV_SCALE=full` for the larger dataset sizes. Criterion benches for
//! partitioner throughput and the α/β ablation live under `benches/`.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod datasets;
pub mod report;
pub mod runner;

pub use datasets::{Dataset, Scale};
pub use report::{scientific, TextTable};
pub use runner::{partition_with_metrics, run_experiment, Application, ExperimentResult};
