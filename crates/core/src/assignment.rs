//! Partition assignment representations.
//!
//! The paper distinguishes the two classical families (Section III-B):
//!
//! * **vertex-cut (edge partitioning)** — the edge set is split into `p`
//!   disjoint subsets; vertices touched by several subsets are *replicated*.
//!   Represented here by [`EdgePartition`].
//! * **edge-cut (vertex partitioning)** — the vertex set is split into `p`
//!   disjoint subsets; edges crossing subsets are *replicated*. Represented
//!   here by [`VertexPartition`].
//!
//! [`PartitionResult`] wraps either so that frameworks and metrics can
//! handle the two families uniformly.

use serde::{Deserialize, Serialize};

use ebv_graph::{Edge, Graph, VertexId};

use crate::error::{PartitionError, Result};
use crate::membership::MembershipMatrix;
use crate::types::PartitionId;

/// A vertex-cut (edge partitioning) result: every edge of the graph is
/// assigned to exactly one partition, in the same order as
/// [`Graph::edges`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EdgePartition {
    num_partitions: usize,
    /// `assignment[i]` is the partition of `graph.edges()[i]`.
    assignment: Vec<PartitionId>,
}

impl EdgePartition {
    /// Creates an edge partition from a per-edge assignment vector.
    ///
    /// # Errors
    ///
    /// Returns [`PartitionError::InconsistentAssignment`] when any entry
    /// references a partition `>= num_partitions`, and
    /// [`PartitionError::InvalidPartitionCount`] when `num_partitions == 0`.
    pub fn new(num_partitions: usize, assignment: Vec<PartitionId>) -> Result<Self> {
        if num_partitions == 0 {
            return Err(PartitionError::InvalidPartitionCount {
                requested: 0,
                message: "at least one partition is required".to_string(),
            });
        }
        if let Some(bad) = assignment.iter().find(|p| p.index() >= num_partitions) {
            return Err(PartitionError::InconsistentAssignment {
                message: format!(
                    "edge assigned to partition {bad} but only {num_partitions} partitions exist"
                ),
            });
        }
        Ok(EdgePartition {
            num_partitions,
            assignment,
        })
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.num_partitions
    }

    /// Number of assigned edges.
    pub fn num_edges(&self) -> usize {
        self.assignment.len()
    }

    /// The partition of the `edge_index`-th edge of the graph.
    pub fn part_of(&self, edge_index: usize) -> PartitionId {
        self.assignment[edge_index]
    }

    /// The raw per-edge assignment, aligned with [`Graph::edges`].
    pub fn assignment(&self) -> &[PartitionId] {
        &self.assignment
    }

    /// Number of edges assigned to each partition — the paper's
    /// `ecount[i]` after the final edge.
    pub fn edge_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_partitions];
        for p in &self.assignment {
            counts[p.index()] += 1;
        }
        counts
    }

    /// Computes which vertices each partition covers (`V_i` in the paper):
    /// a vertex belongs to every partition that received one of its incident
    /// edges.
    ///
    /// # Panics
    ///
    /// Panics if `graph` has a different number of edges than this
    /// assignment; use [`EdgePartition::validate`] for a fallible check.
    pub fn vertex_membership(&self, graph: &Graph) -> MembershipMatrix {
        assert_eq!(
            graph.num_edges(),
            self.assignment.len(),
            "graph and assignment describe different edge sets"
        );
        let mut membership = MembershipMatrix::new(graph.num_vertices(), self.num_partitions);
        for (edge, part) in graph.edges().iter().zip(&self.assignment) {
            membership.insert(edge.src, *part);
            membership.insert(edge.dst, *part);
        }
        membership
    }

    /// The edges assigned to `part`, in graph order.
    pub fn edges_of<'a>(&'a self, graph: &'a Graph, part: PartitionId) -> Vec<Edge> {
        graph
            .edges()
            .iter()
            .zip(&self.assignment)
            .filter(|(_, &p)| p == part)
            .map(|(e, _)| *e)
            .collect()
    }

    /// Checks that this assignment covers exactly the edges of `graph`.
    ///
    /// # Errors
    ///
    /// Returns [`PartitionError::InconsistentAssignment`] on a length
    /// mismatch.
    pub fn validate(&self, graph: &Graph) -> Result<()> {
        if graph.num_edges() != self.assignment.len() {
            return Err(PartitionError::InconsistentAssignment {
                message: format!(
                    "assignment covers {} edges but the graph has {}",
                    self.assignment.len(),
                    graph.num_edges()
                ),
            });
        }
        Ok(())
    }
}

/// An edge-cut (vertex partitioning) result: every vertex is assigned to
/// exactly one partition; edges whose endpoints live in different partitions
/// are replicated in both.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VertexPartition {
    num_partitions: usize,
    /// `assignment[v]` is the partition owning vertex `v`.
    assignment: Vec<PartitionId>,
}

impl VertexPartition {
    /// Creates a vertex partition from a per-vertex assignment vector.
    ///
    /// # Errors
    ///
    /// Returns [`PartitionError::InconsistentAssignment`] when any entry
    /// references a partition `>= num_partitions`, and
    /// [`PartitionError::InvalidPartitionCount`] when `num_partitions == 0`.
    pub fn new(num_partitions: usize, assignment: Vec<PartitionId>) -> Result<Self> {
        if num_partitions == 0 {
            return Err(PartitionError::InvalidPartitionCount {
                requested: 0,
                message: "at least one partition is required".to_string(),
            });
        }
        if let Some(bad) = assignment.iter().find(|p| p.index() >= num_partitions) {
            return Err(PartitionError::InconsistentAssignment {
                message: format!(
                    "vertex assigned to partition {bad} but only {num_partitions} partitions exist"
                ),
            });
        }
        Ok(VertexPartition {
            num_partitions,
            assignment,
        })
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.num_partitions
    }

    /// Number of assigned vertices.
    pub fn num_vertices(&self) -> usize {
        self.assignment.len()
    }

    /// The partition owning vertex `v`.
    pub fn part_of(&self, v: VertexId) -> PartitionId {
        self.assignment[v.index()]
    }

    /// The raw per-vertex assignment, indexed by vertex.
    pub fn assignment(&self) -> &[PartitionId] {
        &self.assignment
    }

    /// Number of vertices owned by each partition.
    pub fn vertex_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_partitions];
        for p in &self.assignment {
            counts[p.index()] += 1;
        }
        counts
    }

    /// Number of edges held by each partition under the paper's edge-cut
    /// definition `E_i = {(u,v) | u ∈ V_i ∨ v ∈ V_i}` (cross-partition edges
    /// count in both partitions).
    pub fn edge_counts(&self, graph: &Graph) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_partitions];
        for e in graph.edges() {
            let ps = self.part_of(e.src);
            let pd = self.part_of(e.dst);
            counts[ps.index()] += 1;
            if ps != pd {
                counts[pd.index()] += 1;
            }
        }
        counts
    }

    /// Number of edges crossing partition boundaries (the classical edge-cut
    /// objective value).
    pub fn cut_edges(&self, graph: &Graph) -> usize {
        graph
            .edges()
            .iter()
            .filter(|e| self.part_of(e.src) != self.part_of(e.dst))
            .count()
    }

    /// Checks that this assignment covers exactly the vertices of `graph`.
    ///
    /// # Errors
    ///
    /// Returns [`PartitionError::InconsistentAssignment`] on a length
    /// mismatch.
    pub fn validate(&self, graph: &Graph) -> Result<()> {
        if graph.num_vertices() != self.assignment.len() {
            return Err(PartitionError::InconsistentAssignment {
                message: format!(
                    "assignment covers {} vertices but the graph has {}",
                    self.assignment.len(),
                    graph.num_vertices()
                ),
            });
        }
        Ok(())
    }
}

/// Either family of partition result, handled uniformly by metrics, the BSP
/// engine and the experiment harness.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum PartitionResult {
    /// A vertex-cut (edge partitioning) result.
    VertexCut(EdgePartition),
    /// An edge-cut (vertex partitioning) result.
    EdgeCut(VertexPartition),
}

impl PartitionResult {
    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        match self {
            PartitionResult::VertexCut(p) => p.num_partitions(),
            PartitionResult::EdgeCut(p) => p.num_partitions(),
        }
    }

    /// Whether this is a vertex-cut result.
    pub fn is_vertex_cut(&self) -> bool {
        matches!(self, PartitionResult::VertexCut(_))
    }

    /// Borrows the vertex-cut assignment, if this is one.
    pub fn as_vertex_cut(&self) -> Option<&EdgePartition> {
        match self {
            PartitionResult::VertexCut(p) => Some(p),
            PartitionResult::EdgeCut(_) => None,
        }
    }

    /// Borrows the edge-cut assignment, if this is one.
    pub fn as_edge_cut(&self) -> Option<&VertexPartition> {
        match self {
            PartitionResult::EdgeCut(p) => Some(p),
            PartitionResult::VertexCut(_) => None,
        }
    }

    /// Number of edges held by each partition (replicated edges counted per
    /// holder for edge-cut results).
    pub fn edge_counts(&self, graph: &Graph) -> Vec<usize> {
        match self {
            PartitionResult::VertexCut(p) => p.edge_counts(),
            PartitionResult::EdgeCut(p) => p.edge_counts(graph),
        }
    }

    /// Number of vertices held by each partition (covered vertices for
    /// vertex-cut, owned vertices for edge-cut).
    pub fn vertex_counts(&self, graph: &Graph) -> Vec<usize> {
        match self {
            PartitionResult::VertexCut(p) => {
                let membership = p.vertex_membership(graph);
                (0..p.num_partitions())
                    .map(|i| membership.partition_size(PartitionId::from_index(i)))
                    .collect()
            }
            PartitionResult::EdgeCut(p) => p.vertex_counts(),
        }
    }

    /// Checks the assignment against the graph it claims to partition.
    ///
    /// # Errors
    ///
    /// Returns [`PartitionError::InconsistentAssignment`] when the assignment
    /// does not match the graph's edge or vertex count.
    pub fn validate(&self, graph: &Graph) -> Result<()> {
        match self {
            PartitionResult::VertexCut(p) => p.validate(graph),
            PartitionResult::EdgeCut(p) => p.validate(graph),
        }
    }
}

impl From<EdgePartition> for PartitionResult {
    fn from(p: EdgePartition) -> Self {
        PartitionResult::VertexCut(p)
    }
}

impl From<VertexPartition> for PartitionResult {
    fn from(p: VertexPartition) -> Self {
        PartitionResult::EdgeCut(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebv_graph::Graph;

    fn square() -> Graph {
        // 0 -> 1 -> 2 -> 3 -> 0
        Graph::from_edges(vec![(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap()
    }

    fn pid(i: u32) -> PartitionId {
        PartitionId::new(i)
    }

    #[test]
    fn edge_partition_counts_and_lookup() {
        let g = square();
        let part = EdgePartition::new(2, vec![pid(0), pid(0), pid(1), pid(1)]).unwrap();
        assert_eq!(part.num_partitions(), 2);
        assert_eq!(part.num_edges(), 4);
        assert_eq!(part.edge_counts(), vec![2, 2]);
        assert_eq!(part.part_of(2), pid(1));
        assert_eq!(part.edges_of(&g, pid(0)).len(), 2);
        assert!(part.validate(&g).is_ok());
    }

    #[test]
    fn edge_partition_vertex_membership_covers_endpoints() {
        let g = square();
        let part = EdgePartition::new(2, vec![pid(0), pid(0), pid(1), pid(1)]).unwrap();
        let m = part.vertex_membership(&g);
        // Partition 0 holds edges (0,1), (1,2): vertices {0, 1, 2}.
        assert_eq!(m.partition_size(pid(0)), 3);
        // Partition 1 holds edges (2,3), (3,0): vertices {2, 3, 0}.
        assert_eq!(m.partition_size(pid(1)), 3);
        // Vertices 0 and 2 are replicated.
        assert_eq!(m.replica_count(VertexId::new(0)), 2);
        assert_eq!(m.replica_count(VertexId::new(1)), 1);
    }

    #[test]
    fn edge_partition_rejects_bad_input() {
        assert!(EdgePartition::new(0, vec![]).is_err());
        assert!(EdgePartition::new(2, vec![pid(5)]).is_err());
        let g = square();
        let short = EdgePartition::new(2, vec![pid(0)]).unwrap();
        assert!(short.validate(&g).is_err());
    }

    #[test]
    fn vertex_partition_counts() {
        let g = square();
        let part = VertexPartition::new(2, vec![pid(0), pid(0), pid(1), pid(1)]).unwrap();
        assert_eq!(part.vertex_counts(), vec![2, 2]);
        assert_eq!(part.part_of(VertexId::new(3)), pid(1));
        // Edges (1,2) and (3,0) cross; each is counted in both partitions.
        assert_eq!(part.cut_edges(&g), 2);
        assert_eq!(part.edge_counts(&g), vec![3, 3]);
        assert!(part.validate(&g).is_ok());
    }

    #[test]
    fn vertex_partition_rejects_bad_input() {
        assert!(VertexPartition::new(0, vec![]).is_err());
        assert!(VertexPartition::new(2, vec![pid(3)]).is_err());
        let g = square();
        let short = VertexPartition::new(2, vec![pid(0)]).unwrap();
        assert!(short.validate(&g).is_err());
    }

    #[test]
    fn partition_result_unifies_both_families() {
        let g = square();
        let vc: PartitionResult = EdgePartition::new(2, vec![pid(0), pid(0), pid(1), pid(1)])
            .unwrap()
            .into();
        let ec: PartitionResult = VertexPartition::new(2, vec![pid(0), pid(0), pid(1), pid(1)])
            .unwrap()
            .into();
        assert!(vc.is_vertex_cut());
        assert!(!ec.is_vertex_cut());
        assert!(vc.as_vertex_cut().is_some());
        assert!(ec.as_edge_cut().is_some());
        assert_eq!(vc.num_partitions(), 2);
        assert_eq!(vc.edge_counts(&g), vec![2, 2]);
        assert_eq!(ec.edge_counts(&g), vec![3, 3]);
        assert_eq!(vc.vertex_counts(&g), vec![3, 3]);
        assert_eq!(ec.vertex_counts(&g), vec![2, 2]);
        assert!(vc.validate(&g).is_ok());
        assert!(ec.validate(&g).is_ok());
    }
}
