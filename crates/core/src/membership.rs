//! Compact vertex-to-partition membership matrix.
//!
//! Several partitioners (EBV, Ginger, HDRF, NE) and the metrics module need
//! to answer "is vertex `v` already kept by partition `i`?" millions of
//! times. A dense bitset with one row per vertex and one bit per partition
//! answers that in O(1) with `|V| · p / 8` bytes of memory.

use crate::types::PartitionId;
use ebv_graph::VertexId;

/// A `|V| × p` bit matrix recording which partitions keep which vertices —
/// the `keep[i]` sets of Algorithm 1 in the paper.
#[derive(Debug, Clone)]
pub struct MembershipMatrix {
    num_vertices: usize,
    num_partitions: usize,
    words_per_row: usize,
    bits: Vec<u64>,
    /// Number of set bits per partition (the paper's `vcount[i]`).
    per_partition_counts: Vec<usize>,
}

impl MembershipMatrix {
    /// Creates an empty membership matrix for `num_vertices` vertices and
    /// `num_partitions` partitions.
    pub fn new(num_vertices: usize, num_partitions: usize) -> Self {
        let words_per_row = num_partitions.div_ceil(64).max(1);
        MembershipMatrix {
            num_vertices,
            num_partitions,
            words_per_row,
            bits: vec![0; num_vertices * words_per_row],
            per_partition_counts: vec![0; num_partitions],
        }
    }

    /// Number of vertices (rows).
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Grows the matrix to at least `num_vertices` rows, keeping existing
    /// memberships. Used by the streaming partitioners, which discover the
    /// vertex universe one edge at a time.
    pub fn grow_to(&mut self, num_vertices: usize) {
        if num_vertices > self.num_vertices {
            self.num_vertices = num_vertices;
            self.bits.resize(num_vertices * self.words_per_row, 0);
        }
    }

    /// Number of partitions (columns).
    pub fn num_partitions(&self) -> usize {
        self.num_partitions
    }

    #[inline]
    fn cell(&self, v: VertexId, part: PartitionId) -> (usize, u64) {
        debug_assert!(v.index() < self.num_vertices, "vertex out of range");
        debug_assert!(part.index() < self.num_partitions, "partition out of range");
        let word = v.index() * self.words_per_row + part.index() / 64;
        let mask = 1u64 << (part.index() % 64);
        (word, mask)
    }

    /// Returns `true` when `part` keeps vertex `v`.
    #[inline]
    pub fn contains(&self, v: VertexId, part: PartitionId) -> bool {
        let (word, mask) = self.cell(v, part);
        self.bits[word] & mask != 0
    }

    /// Marks vertex `v` as kept by `part`. Returns `true` if the vertex was
    /// newly added (i.e. it was not already a member).
    #[inline]
    pub fn insert(&mut self, v: VertexId, part: PartitionId) -> bool {
        let (word, mask) = self.cell(v, part);
        let newly = self.bits[word] & mask == 0;
        if newly {
            self.bits[word] |= mask;
            self.per_partition_counts[part.index()] += 1;
        }
        newly
    }

    /// Number of vertices kept by `part` — the paper's `vcount[i]`.
    #[inline]
    pub fn partition_size(&self, part: PartitionId) -> usize {
        self.per_partition_counts[part.index()]
    }

    /// Number of partitions that keep vertex `v` (its replica count).
    pub fn replica_count(&self, v: VertexId) -> usize {
        let start = v.index() * self.words_per_row;
        self.bits[start..start + self.words_per_row]
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum()
    }

    /// Iterator over the partitions that keep vertex `v`, in increasing
    /// partition order.
    pub fn partitions_of(&self, v: VertexId) -> impl Iterator<Item = PartitionId> + '_ {
        let start = v.index() * self.words_per_row;
        let words = &self.bits[start..start + self.words_per_row];
        (0..self.num_partitions)
            .filter(move |&i| words[i / 64] & (1u64 << (i % 64)) != 0)
            .map(PartitionId::from_index)
    }

    /// Sum of `partition_size` over all partitions: `Σ |V_i|`, the numerator
    /// of the replication factor.
    pub fn total_replicas(&self) -> usize {
        self.per_partition_counts.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u64) -> VertexId {
        VertexId::new(i)
    }

    fn p(i: u32) -> PartitionId {
        PartitionId::new(i)
    }

    #[test]
    fn insert_and_contains() {
        let mut m = MembershipMatrix::new(10, 4);
        assert!(!m.contains(v(3), p(2)));
        assert!(m.insert(v(3), p(2)));
        assert!(m.contains(v(3), p(2)));
        // Second insert is a no-op.
        assert!(!m.insert(v(3), p(2)));
        assert_eq!(m.partition_size(p(2)), 1);
    }

    #[test]
    fn counts_track_insertions() {
        let mut m = MembershipMatrix::new(5, 3);
        m.insert(v(0), p(0));
        m.insert(v(1), p(0));
        m.insert(v(1), p(1));
        m.insert(v(1), p(2));
        assert_eq!(m.partition_size(p(0)), 2);
        assert_eq!(m.partition_size(p(1)), 1);
        assert_eq!(m.replica_count(v(1)), 3);
        assert_eq!(m.replica_count(v(0)), 1);
        assert_eq!(m.replica_count(v(4)), 0);
        assert_eq!(m.total_replicas(), 4);
    }

    #[test]
    fn partitions_of_lists_members_in_order() {
        let mut m = MembershipMatrix::new(3, 8);
        m.insert(v(2), p(5));
        m.insert(v(2), p(1));
        m.insert(v(2), p(7));
        let parts: Vec<u32> = m.partitions_of(v(2)).map(|q| q.raw()).collect();
        assert_eq!(parts, vec![1, 5, 7]);
    }

    #[test]
    fn works_with_more_than_64_partitions() {
        let mut m = MembershipMatrix::new(4, 130);
        m.insert(v(1), p(0));
        m.insert(v(1), p(64));
        m.insert(v(1), p(129));
        assert!(m.contains(v(1), p(64)));
        assert!(m.contains(v(1), p(129)));
        assert!(!m.contains(v(1), p(128)));
        assert_eq!(m.replica_count(v(1)), 3);
        let parts: Vec<u32> = m.partitions_of(v(1)).map(|q| q.raw()).collect();
        assert_eq!(parts, vec![0, 64, 129]);
    }

    #[test]
    fn grow_to_keeps_existing_memberships() {
        let mut m = MembershipMatrix::new(2, 3);
        m.insert(v(1), p(2));
        m.grow_to(10);
        assert_eq!(m.num_vertices(), 10);
        assert!(m.contains(v(1), p(2)));
        assert!(!m.contains(v(9), p(0)));
        m.insert(v(9), p(0));
        assert_eq!(m.partition_size(p(0)), 1);
        // Shrinking is a no-op.
        m.grow_to(4);
        assert_eq!(m.num_vertices(), 10);
        assert!(m.contains(v(9), p(0)));
    }

    #[test]
    fn dimensions_are_reported() {
        let m = MembershipMatrix::new(7, 3);
        assert_eq!(m.num_vertices(), 7);
        assert_eq!(m.num_partitions(), 3);
        assert_eq!(m.total_replicas(), 0);
    }
}
