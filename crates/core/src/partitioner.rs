//! The common [`Partitioner`] interface and partition-count validation.

use ebv_graph::Graph;

use crate::assignment::PartitionResult;
use crate::error::{PartitionError, Result};

/// A graph partition algorithm.
///
/// Every algorithm evaluated in the paper — EBV itself plus the Ginger, DBH,
/// CVC, NE and METIS-like baselines — implements this trait, so the
/// experiment harness, the BSP engine and the metrics can treat them
/// uniformly. The trait is object safe: the harness iterates over
/// `Vec<Box<dyn Partitioner>>`.
pub trait Partitioner {
    /// A short, stable name used in reports and tables (e.g. `"EBV"`,
    /// `"DBH"`).
    fn name(&self) -> String;

    /// Partitions `graph` into `num_partitions` subgraphs.
    ///
    /// # Errors
    ///
    /// Returns [`PartitionError::InvalidPartitionCount`] when
    /// `num_partitions` is zero or exceeds what the algorithm can fill, and
    /// algorithm-specific [`PartitionError`] values otherwise.
    fn partition(&self, graph: &Graph, num_partitions: usize) -> Result<PartitionResult>;
}

/// Validates the requested partition count against the graph, a check shared
/// by every partitioner in this crate.
///
/// # Errors
///
/// Returns [`PartitionError::InvalidPartitionCount`] when `num_partitions`
/// is zero or exceeds the number of edges in the graph (some partition would
/// necessarily stay empty).
pub fn check_partition_count(graph: &Graph, num_partitions: usize) -> Result<()> {
    if num_partitions == 0 {
        return Err(PartitionError::InvalidPartitionCount {
            requested: 0,
            message: "at least one partition is required".to_string(),
        });
    }
    if num_partitions > graph.num_edges() {
        return Err(PartitionError::InvalidPartitionCount {
            requested: num_partitions,
            message: format!(
                "cannot split {} edges into {num_partitions} non-empty partitions",
                graph.num_edges()
            ),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebv_graph::Graph;

    #[test]
    fn zero_partitions_rejected() {
        let g = Graph::from_edges(vec![(0, 1), (1, 2)]).unwrap();
        assert!(check_partition_count(&g, 0).is_err());
    }

    #[test]
    fn more_partitions_than_edges_rejected() {
        let g = Graph::from_edges(vec![(0, 1), (1, 2)]).unwrap();
        assert!(check_partition_count(&g, 3).is_err());
        assert!(check_partition_count(&g, 2).is_ok());
        assert!(check_partition_count(&g, 1).is_ok());
    }
}
