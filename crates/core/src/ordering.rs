//! Edge-processing orders for sequential (streaming) partitioners.
//!
//! Section IV-C of the paper: "as a sequential graph partition algorithm,
//! the quality of results for EBV is naturally affected by the edge
//! processing order. For offline partition jobs, we sort edges in ascending
//! order by the sum of end-vertices' degrees before the execution of EBV."
//! This module provides that preprocessing step plus the orders used as
//! controls in the Section V-D sorting analysis.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use ebv_graph::{Edge, Graph};

use serde::{Deserialize, Serialize};

/// The order in which a streaming partitioner visits the edge list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum EdgeOrder {
    /// The order edges appear in the input graph (the paper's "EBV-unsort").
    Input,
    /// Ascending by the sum of the end-vertices' total degrees (the paper's
    /// "EBV-sort" preprocessing).
    #[default]
    DegreeSumAscending,
    /// Descending by the sum of the end-vertices' total degrees — the
    /// adversarial control: hubs first.
    DegreeSumDescending,
    /// A deterministic pseudo-random shuffle with the given seed.
    Random(u64),
}

impl EdgeOrder {
    /// A short label used in reports ("sort", "unsort", ...).
    pub fn label(&self) -> String {
        match self {
            EdgeOrder::Input => "unsort".to_string(),
            EdgeOrder::DegreeSumAscending => "sort".to_string(),
            EdgeOrder::DegreeSumDescending => "sort-desc".to_string(),
            EdgeOrder::Random(seed) => format!("random-{seed}"),
        }
    }

    /// Produces the edge list of `graph` in this order. The graph itself is
    /// not modified.
    pub fn arrange(&self, graph: &Graph) -> Vec<Edge> {
        self.arrange_indices(graph)
            .into_iter()
            .map(|i| graph.edges()[i])
            .collect()
    }

    /// Produces a permutation of edge *indices* (into [`Graph::edges`]) in
    /// this order. Streaming partitioners use the indices so that their
    /// output assignment stays aligned with the graph's edge list.
    pub fn arrange_indices(&self, graph: &Graph) -> Vec<usize> {
        let mut indices: Vec<usize> = (0..graph.num_edges()).collect();
        match self {
            EdgeOrder::Input => {}
            EdgeOrder::DegreeSumAscending => {
                indices.sort_by_key(|&i| degree_sum(graph, &graph.edges()[i]));
            }
            EdgeOrder::DegreeSumDescending => {
                indices.sort_by_key(|&i| std::cmp::Reverse(degree_sum(graph, &graph.edges()[i])));
            }
            EdgeOrder::Random(seed) => {
                let mut rng = StdRng::seed_from_u64(*seed);
                indices.shuffle(&mut rng);
            }
        }
        indices
    }
}

/// The sorting key of the paper's preprocessing: the sum of the end
/// vertices' total degrees.
pub fn degree_sum(graph: &Graph, edge: &Edge) -> usize {
    graph.degree(edge.src) + graph.degree(edge.dst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebv_graph::generators::named;
    use ebv_graph::VertexId;

    #[test]
    fn input_order_is_graph_order() {
        let g = named::figure1_graph();
        assert_eq!(EdgeOrder::Input.arrange(&g), g.edges().to_vec());
    }

    #[test]
    fn ascending_order_puts_low_degree_edges_first() {
        let g = named::figure1_graph();
        let edges = EdgeOrder::DegreeSumAscending.arrange(&g);
        let sums: Vec<usize> = edges.iter().map(|e| degree_sum(&g, e)).collect();
        let mut sorted = sums.clone();
        sorted.sort_unstable();
        assert_eq!(sums, sorted);
        // The hub A (vertex 0) has degree 8; the first edge must not touch it.
        assert_ne!(edges[0].src, VertexId::new(0));
        assert_ne!(edges[0].dst, VertexId::new(0));
    }

    #[test]
    fn descending_order_is_reverse_sorted() {
        let g = named::figure1_graph();
        let edges = EdgeOrder::DegreeSumDescending.arrange(&g);
        let sums: Vec<usize> = edges.iter().map(|e| degree_sum(&g, e)).collect();
        let mut sorted = sums.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        assert_eq!(sums, sorted);
    }

    #[test]
    fn random_order_is_deterministic_per_seed() {
        let g = named::figure1_graph();
        let a = EdgeOrder::Random(5).arrange(&g);
        let b = EdgeOrder::Random(5).arrange(&g);
        let c = EdgeOrder::Random(6).arrange(&g);
        assert_eq!(a, b);
        assert_ne!(a, c);
        // Same multiset of edges regardless of order.
        let mut a_sorted = a.clone();
        let mut input_sorted = g.edges().to_vec();
        a_sorted.sort();
        input_sorted.sort();
        assert_eq!(a_sorted, input_sorted);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(EdgeOrder::Input.label(), "unsort");
        assert_eq!(EdgeOrder::DegreeSumAscending.label(), "sort");
        assert_eq!(EdgeOrder::DegreeSumDescending.label(), "sort-desc");
        assert_eq!(EdgeOrder::Random(3).label(), "random-3");
        assert_eq!(EdgeOrder::default(), EdgeOrder::DegreeSumAscending);
    }
}
