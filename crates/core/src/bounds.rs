//! Worst-case imbalance bounds for EBV (Theorems 1 and 2 of the paper).
//!
//! Theorem 1: for any graph `G(V, E)` and any `p`, the edge imbalance factor
//! of the EBV result is at most
//! `1 + (p-1)/|E| · (1 + ⌊2|E|/(αp) + (β/α)|E|⌋)`.
//!
//! Theorem 2: the vertex imbalance factor is at most
//! `1 + (p-1)/Σ|V_j| · (1 + ⌊2|V|/(βp) + (α/β)|V|⌋)`.
//!
//! With the default `α = β = 1` these bounds are loose (they mainly show the
//! imbalance cannot grow without limit), but they tighten as `α`/`β` grow —
//! which is exactly the knob the paper describes for trading replication
//! against balance. The property tests in this module and in
//! `tests/claims.rs` check that every EBV run stays within the bounds.

use crate::error::{PartitionError, Result};

/// The Theorem 1 upper bound on the edge imbalance factor.
///
/// # Errors
///
/// Returns [`PartitionError::InvalidParameter`] when `num_edges` or
/// `num_partitions` is zero, or `alpha` is not strictly positive (the bound
/// divides by `α`).
pub fn edge_imbalance_bound(
    num_edges: usize,
    num_partitions: usize,
    alpha: f64,
    beta: f64,
) -> Result<f64> {
    validate(num_edges, "num_edges", num_partitions, alpha, "alpha")?;
    let e = num_edges as f64;
    let p = num_partitions as f64;
    let inner = (2.0 * e / (alpha * p) + beta / alpha * e).floor();
    Ok(1.0 + (p - 1.0) / e * (1.0 + inner))
}

/// The Theorem 2 upper bound on the vertex imbalance factor.
///
/// `total_covered_vertices` is `Σ_j |V_j|`, the total number of vertex
/// replicas in the final result (the denominator of the paper's vertex
/// imbalance factor).
///
/// # Errors
///
/// Returns [`PartitionError::InvalidParameter`] when `num_vertices`,
/// `total_covered_vertices` or `num_partitions` is zero, or `beta` is not
/// strictly positive.
pub fn vertex_imbalance_bound(
    num_vertices: usize,
    total_covered_vertices: usize,
    num_partitions: usize,
    alpha: f64,
    beta: f64,
) -> Result<f64> {
    validate(num_vertices, "num_vertices", num_partitions, beta, "beta")?;
    if total_covered_vertices == 0 {
        return Err(PartitionError::InvalidParameter {
            parameter: "total_covered_vertices",
            message: "the partition result covers no vertices".to_string(),
        });
    }
    let v = num_vertices as f64;
    let p = num_partitions as f64;
    let inner = (2.0 * v / (beta * p) + alpha / beta * v).floor();
    Ok(1.0 + (p - 1.0) / total_covered_vertices as f64 * (1.0 + inner))
}

fn validate(
    count: usize,
    count_name: &'static str,
    num_partitions: usize,
    weight: f64,
    weight_name: &'static str,
) -> Result<()> {
    if count == 0 {
        return Err(PartitionError::InvalidParameter {
            parameter: count_name,
            message: "must be positive".to_string(),
        });
    }
    if num_partitions == 0 {
        return Err(PartitionError::InvalidPartitionCount {
            requested: 0,
            message: "at least one partition is required".to_string(),
        });
    }
    if !weight.is_finite() || weight <= 0.0 {
        return Err(PartitionError::InvalidParameter {
            parameter: weight_name,
            message: format!("must be strictly positive and finite, got {weight}"),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ebv::EbvPartitioner;
    use crate::metrics::PartitionMetrics;
    use crate::Partitioner;
    use ebv_graph::generators::{GraphGenerator, RmatGenerator};

    #[test]
    fn bounds_exceed_one() {
        let b = edge_imbalance_bound(1_000, 8, 1.0, 1.0).unwrap();
        assert!(b > 1.0);
        let b = vertex_imbalance_bound(500, 900, 8, 1.0, 1.0).unwrap();
        assert!(b > 1.0);
    }

    #[test]
    fn larger_alpha_tightens_the_edge_bound() {
        let loose = edge_imbalance_bound(10_000, 16, 0.5, 1.0).unwrap();
        let tight = edge_imbalance_bound(10_000, 16, 50.0, 1.0).unwrap();
        assert!(tight < loose);
    }

    #[test]
    fn larger_beta_tightens_the_vertex_bound() {
        let loose = vertex_imbalance_bound(10_000, 15_000, 16, 1.0, 0.5).unwrap();
        let tight = vertex_imbalance_bound(10_000, 15_000, 16, 1.0, 50.0).unwrap();
        assert!(tight < loose);
    }

    #[test]
    fn single_partition_bound_is_exactly_one() {
        assert!((edge_imbalance_bound(100, 1, 1.0, 1.0).unwrap() - 1.0).abs() < 1e-12);
        assert!((vertex_imbalance_bound(100, 100, 1, 1.0, 1.0).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        assert!(edge_imbalance_bound(0, 4, 1.0, 1.0).is_err());
        assert!(edge_imbalance_bound(10, 0, 1.0, 1.0).is_err());
        assert!(edge_imbalance_bound(10, 4, 0.0, 1.0).is_err());
        assert!(vertex_imbalance_bound(10, 0, 4, 1.0, 1.0).is_err());
        assert!(vertex_imbalance_bound(10, 12, 4, 1.0, -1.0).is_err());
    }

    #[test]
    fn ebv_results_respect_both_bounds() {
        let g = RmatGenerator::new(10, 8).with_seed(11).generate().unwrap();
        for &(alpha, beta) in &[(1.0, 1.0), (2.0, 0.5), (5.0, 5.0)] {
            for &p in &[2usize, 4, 8, 16] {
                let partitioner = EbvPartitioner::new().with_alpha(alpha).with_beta(beta);
                let result = partitioner.partition(&g, p).unwrap();
                let covered: usize = result.vertex_counts(&g).iter().sum();
                let metrics = PartitionMetrics::compute(&g, &result).unwrap();
                let e_bound = edge_imbalance_bound(g.num_edges(), p, alpha, beta).unwrap();
                let v_bound =
                    vertex_imbalance_bound(g.num_vertices(), covered, p, alpha, beta).unwrap();
                assert!(
                    metrics.edge_imbalance <= e_bound + 1e-9,
                    "alpha={alpha} beta={beta} p={p}: {} > {e_bound}",
                    metrics.edge_imbalance
                );
                assert!(
                    metrics.vertex_imbalance <= v_bound + 1e-9,
                    "alpha={alpha} beta={beta} p={p}: {} > {v_bound}",
                    metrics.vertex_imbalance
                );
            }
        }
    }
}
