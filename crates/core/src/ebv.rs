//! The Efficient and Balanced Vertex-cut partitioner (Algorithm 1 of the
//! paper) — the primary contribution this workspace reproduces.
//!
//! EBV is a sequential, self-based vertex-cut algorithm. It walks the edge
//! list once (optionally after the degree-sum sorting preprocessing) and
//! assigns each edge `(u, v)` to the subgraph `i` minimizing the evaluation
//! function
//!
//! ```text
//! Eva_(u,v)(i) = I(u ∉ keep[i]) + I(v ∉ keep[i])
//!              + α · ecount[i] / (|E| / p)
//!              + β · vcount[i] / (|V| / p)
//! ```
//!
//! The indicator terms penalize creating new vertex replicas (driving the
//! replication factor down); the `α`/`β` terms penalize partitions that are
//! already ahead in edges or vertices (driving the imbalance factors toward
//! 1). Theorems 1 and 2 of the paper bound the resulting imbalance; those
//! bounds are exported by [`crate::bounds`] and enforced by property tests.

use serde::{Deserialize, Serialize};

use ebv_graph::Graph;

use crate::assignment::{EdgePartition, PartitionResult};
use crate::error::{PartitionError, Result};
use crate::membership::MembershipMatrix;
use crate::ordering::EdgeOrder;
use crate::partitioner::{check_partition_count, Partitioner};
use crate::types::PartitionId;

/// Configuration and entry point for the EBV algorithm.
///
/// # Examples
///
/// ```
/// use ebv_graph::generators::{GraphGenerator, RmatGenerator};
/// use ebv_partition::{EbvPartitioner, Partitioner, PartitionMetrics};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let graph = RmatGenerator::new(9, 8).with_seed(1).generate()?;
/// let result = EbvPartitioner::new().partition(&graph, 8)?;
/// let metrics = PartitionMetrics::compute(&graph, &result)?;
/// assert!(metrics.edge_imbalance < 1.2);
/// assert!(metrics.vertex_imbalance < 1.2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EbvPartitioner {
    alpha: f64,
    beta: f64,
    order: EdgeOrder,
    trace_samples: usize,
}

impl Default for EbvPartitioner {
    fn default() -> Self {
        Self::new()
    }
}

impl EbvPartitioner {
    /// Creates an EBV partitioner with the paper's default hyper-parameters
    /// (`α = β = 1`) and the degree-sum sorting preprocessing enabled.
    pub fn new() -> Self {
        EbvPartitioner {
            alpha: 1.0,
            beta: 1.0,
            order: EdgeOrder::DegreeSumAscending,
            trace_samples: 200,
        }
    }

    /// Sets the edge-balance weight `α` (default 1). Larger values tighten
    /// the edge imbalance bound of Theorem 1 at the cost of more replicas.
    pub fn with_alpha(mut self, alpha: f64) -> Self {
        self.alpha = alpha;
        self
    }

    /// Sets the vertex-balance weight `β` (default 1). Larger values tighten
    /// the vertex imbalance bound of Theorem 2 at the cost of more replicas.
    pub fn with_beta(mut self, beta: f64) -> Self {
        self.beta = beta;
        self
    }

    /// Sets the edge-processing order (default
    /// [`EdgeOrder::DegreeSumAscending`], the paper's "EBV-sort").
    pub fn with_order(mut self, order: EdgeOrder) -> Self {
        self.order = order;
        self
    }

    /// Convenience: disables the sorting preprocessing (the paper's
    /// "EBV-unsort" control).
    pub fn unsorted(self) -> Self {
        self.with_order(EdgeOrder::Input)
    }

    /// Sets how many points the replication-factor growth trace records
    /// (default 200). The trace always contains the final state.
    pub fn with_trace_samples(mut self, samples: usize) -> Self {
        self.trace_samples = samples.max(1);
        self
    }

    /// The configured `α`.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The configured `β`.
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// The configured edge order.
    pub fn order(&self) -> EdgeOrder {
        self.order
    }

    fn validate(&self) -> Result<()> {
        if !self.alpha.is_finite() || self.alpha < 0.0 {
            return Err(PartitionError::InvalidParameter {
                parameter: "alpha",
                message: format!(
                    "alpha must be a non-negative finite number, got {}",
                    self.alpha
                ),
            });
        }
        if !self.beta.is_finite() || self.beta < 0.0 {
            return Err(PartitionError::InvalidParameter {
                parameter: "beta",
                message: format!(
                    "beta must be a non-negative finite number, got {}",
                    self.beta
                ),
            });
        }
        Ok(())
    }

    /// Creates the streaming (online) form of this partitioner: an
    /// [`ingest`](crate::StreamingPartitioner::ingest)-driven partitioner
    /// with the same `α`/`β` configuration.
    ///
    /// With exact cardinality hints in `config`, the streaming output is
    /// bit-identical to [`Partitioner::partition`] under
    /// [`EdgeOrder::Input`]; see [`crate::streaming`]. The configured edge
    /// order is ignored — a stream is consumed in arrival order.
    ///
    /// # Errors
    ///
    /// Returns [`PartitionError::InvalidParameter`] for invalid `α`/`β` and
    /// [`PartitionError::InvalidPartitionCount`] for a zero partition count.
    pub fn streaming(&self, config: crate::StreamConfig) -> Result<crate::StreamingEbv> {
        self.validate()?;
        crate::StreamingEbv::from_parts(self.alpha, self.beta, config)
    }

    /// Creates the dynamic (evolving-graph) form of this partitioner: an
    /// insert/delete-driven partitioner with the same `α`/`β` configuration
    /// whose maintained state stays exact under deletions; see
    /// [`crate::dynamic`]. Insert-only sequences are bit-identical to
    /// [`EbvPartitioner::streaming`].
    ///
    /// # Errors
    ///
    /// Returns [`PartitionError::InvalidParameter`] for invalid `α`/`β` and
    /// [`PartitionError::InvalidPartitionCount`] for a zero partition count.
    pub fn dynamic(&self, config: crate::StreamConfig) -> Result<crate::DynamicPartitioner> {
        self.validate()?;
        crate::DynamicPartitioner::ebv(self.alpha, self.beta, config)
    }

    /// Runs Algorithm 1 and additionally records the replication-factor
    /// growth curve plotted in Figure 5 of the paper.
    ///
    /// # Errors
    ///
    /// Returns [`PartitionError::InvalidParameter`] for invalid `α`/`β` and
    /// [`PartitionError::InvalidPartitionCount`] for an unusable partition
    /// count.
    pub fn partition_with_trace(
        &self,
        graph: &Graph,
        num_partitions: usize,
    ) -> Result<(EdgePartition, EbvTrace)> {
        self.validate()?;
        check_partition_count(graph, num_partitions)?;

        let num_edges = graph.num_edges();
        let num_vertices = graph.num_vertices();
        let edges_per_part = num_edges as f64 / num_partitions as f64;
        let vertices_per_part = num_vertices as f64 / num_partitions as f64;

        let mut keep = MembershipMatrix::new(num_vertices, num_partitions);
        let mut ecount = vec![0usize; num_partitions];
        let mut vcount = vec![0usize; num_partitions];
        let mut assignment = vec![PartitionId::default(); num_edges];

        let sample_every = (num_edges / self.trace_samples).max(1);
        let mut trace = EbvTrace::with_capacity(self.trace_samples + 2, self.order.label());

        let order = self.order.arrange_indices(graph);
        for (processed, &edge_index) in order.iter().enumerate() {
            let edge = graph.edges()[edge_index];
            let (u, v) = edge.endpoints();

            let mut best_part = 0usize;
            let mut best_score = f64::INFINITY;
            for i in 0..num_partitions {
                let part = PartitionId::from_index(i);
                let mut score = 0.0;
                if !keep.contains(u, part) {
                    score += 1.0;
                }
                if !keep.contains(v, part) {
                    score += 1.0;
                }
                score += self.alpha * ecount[i] as f64 / edges_per_part;
                score += self.beta * vcount[i] as f64 / vertices_per_part;
                if score < best_score {
                    best_score = score;
                    best_part = i;
                }
            }

            let part = PartitionId::from_index(best_part);
            assignment[edge_index] = part;
            ecount[best_part] += 1;
            if keep.insert(u, part) {
                vcount[best_part] += 1;
            }
            if v != u && keep.insert(v, part) {
                vcount[best_part] += 1;
            }

            if (processed + 1) % sample_every == 0 || processed + 1 == num_edges {
                trace.push(
                    processed + 1,
                    keep.total_replicas() as f64 / num_vertices as f64,
                );
            }
        }

        let partition = EdgePartition::new(num_partitions, assignment)?;
        Ok((partition, trace))
    }
}

impl Partitioner for EbvPartitioner {
    fn name(&self) -> String {
        match self.order {
            EdgeOrder::DegreeSumAscending => "EBV".to_string(),
            EdgeOrder::Input => "EBV-unsort".to_string(),
            other => format!("EBV-{}", other.label()),
        }
    }

    fn partition(&self, graph: &Graph, num_partitions: usize) -> Result<PartitionResult> {
        let (partition, _) = self.partition_with_trace(graph, num_partitions)?;
        Ok(partition.into())
    }
}

/// One sample of the replication-factor growth curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TracePoint {
    /// Number of edges assigned so far.
    pub edges_processed: usize,
    /// Replication factor `Σ|V_i| / |V|` of the partial result.
    pub replication_factor: f64,
}

/// The replication-factor growth curve recorded while EBV runs — the data
/// behind Figure 5 of the paper.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EbvTrace {
    label: String,
    points: Vec<TracePoint>,
}

impl EbvTrace {
    fn with_capacity(capacity: usize, label: String) -> Self {
        EbvTrace {
            label,
            points: Vec::with_capacity(capacity),
        }
    }

    fn push(&mut self, edges_processed: usize, replication_factor: f64) {
        self.points.push(TracePoint {
            edges_processed,
            replication_factor,
        });
    }

    /// Label of the edge order that produced this trace (`"sort"`,
    /// `"unsort"`, ...).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The recorded samples in processing order.
    pub fn points(&self) -> &[TracePoint] {
        &self.points
    }

    /// The final replication factor, or 1.0 if no point was recorded.
    pub fn final_replication_factor(&self) -> f64 {
        self.points
            .last()
            .map(|p| p.replication_factor)
            .unwrap_or(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::PartitionMetrics;
    use ebv_graph::generators::{named, GraphGenerator, RmatGenerator};

    #[test]
    fn partitions_every_edge_exactly_once() {
        let g = named::figure1_graph();
        let (part, _) = EbvPartitioner::new().partition_with_trace(&g, 2).unwrap();
        assert_eq!(part.num_edges(), g.num_edges());
        assert_eq!(part.edge_counts().iter().sum::<usize>(), g.num_edges());
    }

    #[test]
    fn figure1_graph_is_balanced_into_two_subgraphs() {
        let g = named::figure1_graph();
        let (part, _) = EbvPartitioner::new().partition_with_trace(&g, 2).unwrap();
        let counts = part.edge_counts();
        // 12 directed edges split 6/6 — the balanced outcome Figure 1 shows
        // for the sorting preprocessing.
        assert_eq!(counts.iter().max(), counts.iter().min());
    }

    #[test]
    fn sorted_replication_factor_never_worse_on_figure1() {
        let g = named::figure1_graph();
        let sorted = EbvPartitioner::new();
        let unsorted = EbvPartitioner::new().unsorted();
        let m_sorted = PartitionMetrics::compute(&g, &sorted.partition(&g, 2).unwrap()).unwrap();
        let m_unsorted =
            PartitionMetrics::compute(&g, &unsorted.partition(&g, 2).unwrap()).unwrap();
        assert!(m_sorted.replication_factor <= m_unsorted.replication_factor + 1e-12);
    }

    #[test]
    fn power_law_graph_is_nearly_balanced() {
        let g = RmatGenerator::new(10, 8).with_seed(3).generate().unwrap();
        let result = EbvPartitioner::new().partition(&g, 8).unwrap();
        let m = PartitionMetrics::compute(&g, &result).unwrap();
        assert!(
            m.edge_imbalance < 1.15,
            "edge imbalance {}",
            m.edge_imbalance
        );
        assert!(
            m.vertex_imbalance < 1.15,
            "vertex imbalance {}",
            m.vertex_imbalance
        );
        assert!(m.replication_factor >= 1.0);
        assert!(m.replication_factor <= 8.0);
    }

    #[test]
    fn sorting_reduces_replication_on_power_law_graphs() {
        let g = RmatGenerator::new(11, 8).with_seed(9).generate().unwrap();
        let sorted = EbvPartitioner::new().partition(&g, 16).unwrap();
        let unsorted = EbvPartitioner::new().unsorted().partition(&g, 16).unwrap();
        let m_sorted = PartitionMetrics::compute(&g, &sorted).unwrap();
        let m_unsorted = PartitionMetrics::compute(&g, &unsorted).unwrap();
        assert!(
            m_sorted.replication_factor < m_unsorted.replication_factor,
            "sorted {} vs unsorted {}",
            m_sorted.replication_factor,
            m_unsorted.replication_factor
        );
    }

    #[test]
    fn trace_is_monotone_and_ends_at_final_replication_factor() {
        let g = RmatGenerator::new(9, 8).with_seed(2).generate().unwrap();
        let (part, trace) = EbvPartitioner::new()
            .with_trace_samples(50)
            .partition_with_trace(&g, 4)
            .unwrap();
        assert!(!trace.points().is_empty());
        for w in trace.points().windows(2) {
            assert!(w[0].edges_processed < w[1].edges_processed);
            assert!(w[0].replication_factor <= w[1].replication_factor + 1e-12);
        }
        let m = PartitionMetrics::compute(&g, &part.into()).unwrap();
        assert!((trace.final_replication_factor() - m.replication_factor).abs() < 1e-9);
        assert_eq!(trace.label(), "sort");
    }

    #[test]
    fn balance_terms_control_the_imbalance() {
        let g = RmatGenerator::new(9, 8).with_seed(4).generate().unwrap();
        // With α = β = 0 the evaluation function degenerates to the
        // replication terms only and ties collapse onto partition 0: the
        // result is badly imbalanced.
        let degenerate = EbvPartitioner::new().with_alpha(0.0).with_beta(0.0);
        let m_degenerate =
            PartitionMetrics::compute(&g, &degenerate.partition(&g, 8).unwrap()).unwrap();
        assert!(
            m_degenerate.edge_imbalance > 2.0,
            "expected a degenerate imbalance, got {}",
            m_degenerate.edge_imbalance
        );
        // The paper's default α = β = 1 keeps both factors near 1, and
        // larger weights keep them there too.
        let m_default =
            PartitionMetrics::compute(&g, &EbvPartitioner::new().partition(&g, 8).unwrap())
                .unwrap();
        let tight = EbvPartitioner::new().with_alpha(10.0).with_beta(10.0);
        let m_tight = PartitionMetrics::compute(&g, &tight.partition(&g, 8).unwrap()).unwrap();
        assert!(m_default.edge_imbalance < 1.15);
        assert!(m_tight.edge_imbalance < 1.15);
        // The degenerate run replicates the least: it never cuts a vertex
        // unless it has to.
        assert!(m_degenerate.replication_factor <= m_default.replication_factor + 1e-9);
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        let g = named::figure1_graph();
        assert!(EbvPartitioner::new()
            .with_alpha(-1.0)
            .partition(&g, 2)
            .is_err());
        assert!(EbvPartitioner::new()
            .with_beta(f64::NAN)
            .partition(&g, 2)
            .is_err());
        assert!(EbvPartitioner::new().partition(&g, 0).is_err());
        assert!(EbvPartitioner::new().partition(&g, 1_000).is_err());
    }

    #[test]
    fn partitioner_names_reflect_order() {
        assert_eq!(EbvPartitioner::new().name(), "EBV");
        assert_eq!(EbvPartitioner::new().unsorted().name(), "EBV-unsort");
        assert_eq!(
            EbvPartitioner::new()
                .with_order(EdgeOrder::Random(1))
                .name(),
            "EBV-random-1"
        );
    }

    #[test]
    fn single_partition_keeps_everything_local() {
        let g = named::two_triangles();
        let result = EbvPartitioner::new().partition(&g, 1).unwrap();
        let m = PartitionMetrics::compute(&g, &result).unwrap();
        assert!((m.replication_factor - 1.0).abs() < 1e-12);
        assert!((m.edge_imbalance - 1.0).abs() < 1e-12);
    }
}
