//! Error type for partitioning operations.

use std::error::Error as StdError;
use std::fmt;

use ebv_graph::GraphError;

/// Errors produced while partitioning a graph.
#[derive(Debug)]
pub enum PartitionError {
    /// The requested number of partitions is invalid (zero, or larger than
    /// the number of edges/vertices available to fill them).
    InvalidPartitionCount {
        /// The requested number of partitions.
        requested: usize,
        /// Human-readable description of the constraint that was violated.
        message: String,
    },
    /// A partitioner was configured with an invalid parameter.
    InvalidParameter {
        /// Name of the offending parameter.
        parameter: &'static str,
        /// Human-readable description of the constraint that was violated.
        message: String,
    },
    /// The partition result does not cover the graph it claims to describe
    /// (wrong edge or vertex count). Indicates a bug in a partitioner.
    InconsistentAssignment {
        /// Human-readable description of the inconsistency.
        message: String,
    },
    /// A deletion or migration referenced an edge with no live copy in a
    /// dynamic partitioner's state.
    EdgeNotPresent {
        /// Human-readable description naming the missing edge.
        message: String,
    },
    /// An error bubbled up from the graph substrate.
    Graph(GraphError),
}

impl fmt::Display for PartitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartitionError::InvalidPartitionCount { requested, message } => {
                write!(f, "invalid partition count {requested}: {message}")
            }
            PartitionError::InvalidParameter { parameter, message } => {
                write!(f, "invalid parameter `{parameter}`: {message}")
            }
            PartitionError::InconsistentAssignment { message } => {
                write!(f, "inconsistent partition assignment: {message}")
            }
            PartitionError::EdgeNotPresent { message } => {
                write!(f, "edge not present: {message}")
            }
            PartitionError::Graph(err) => write!(f, "graph error: {err}"),
        }
    }
}

impl StdError for PartitionError {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            PartitionError::Graph(err) => Some(err),
            _ => None,
        }
    }
}

impl From<GraphError> for PartitionError {
    fn from(err: GraphError) -> Self {
        PartitionError::Graph(err)
    }
}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, PartitionError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_meaningful() {
        let e = PartitionError::InvalidPartitionCount {
            requested: 0,
            message: "must be positive".to_string(),
        };
        assert!(e.to_string().contains("partition count 0"));

        let e = PartitionError::InvalidParameter {
            parameter: "alpha",
            message: "must be non-negative".to_string(),
        };
        assert!(e.to_string().contains("alpha"));

        let e = PartitionError::InconsistentAssignment {
            message: "edge count mismatch".to_string(),
        };
        assert!(e.to_string().contains("mismatch"));
    }

    #[test]
    fn graph_errors_are_wrapped() {
        let inner = GraphError::EmptyGraph;
        let e = PartitionError::from(inner);
        assert!(e.to_string().contains("graph error"));
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PartitionError>();
    }
}
