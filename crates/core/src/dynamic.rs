//! Dynamic (evolving-graph) forms of the vertex-cut partitioners: exact
//! partition maintenance under edge **deletions** and imbalance-triggered
//! **rebalancing**.
//!
//! The streaming module ([`crate::streaming`]) opened the insert-only online
//! scenario; this module opens full mutation streams. A
//! [`DynamicPartitioner`] accepts [`insert`](DynamicPartitioner::insert) and
//! [`delete`](DynamicPartitioner::delete) calls and keeps three pieces of
//! state *exactly* consistent with the surviving edge multiset:
//!
//! * per-partition edge loads (`ecount[i]`, decrementable),
//! * per-partition vertex cover sets (`V_i`), maintained as **reference
//!   counts** of live incident edges so that removing the last incident
//!   edge of a vertex removes the replica — a plain membership bitset
//!   cannot decrement,
//! * the edge→partition assignment log of every live copy (duplicate edges
//!   form a multiset; deletion removes the most recently inserted copy).
//!
//! ## Exactness guarantees
//!
//! * **Metrics**: after *any* event sequence,
//!   [`DynamicPartitioner::metrics`] is bit-identical to materializing the
//!   surviving edges into a graph and recomputing
//!   [`PartitionMetrics::compute`] from scratch over the maintained
//!   assignment — the decrement path never drifts.
//! * **Insert-only equivalence**: a sequence with no deletions reproduces
//!   the corresponding [`StreamingPartitioner`](crate::StreamingPartitioner)
//!   (and therefore, with exact hints and input order, the batch algorithm)
//!   bit for bit.
//! * **History-obliviousness (Random)**: the dynamic Random variant hashes
//!   only the edge endpoints (not the stream position), so after any event
//!   sequence its assignment — not just its metrics — equals a from-scratch
//!   run over the surviving edges in insertion order.
//!
//! EBV and HDRF are *online* algorithms: each insertion is scored against
//! the live state at insertion time, so a deletion does not retroactively
//! re-place edges that were scored while the deleted edge was present.
//! Quality is restored instead by the explicit
//! [`rebalance`](DynamicPartitioner::rebalance) epoch, which migrates edges
//! out of overloaded partitions (and consolidates replicas) when the
//! maintained metrics drift past the [`RebalanceConfig`] thresholds,
//! emitting a [`MigrationPlan`] that the distribution layer
//! (`ebv_bsp::DistributedGraph::apply_mutations`) can replay.

use std::collections::HashMap;

use ebv_graph::{Edge, VertexId};

use crate::baselines::mix64;
use crate::error::{PartitionError, Result};
use crate::metrics::PartitionMetrics;
use crate::streaming::StreamConfig;
use crate::types::PartitionId;

/// One migrated edge copy: `edge` leaves partition `from` for partition
/// `to`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeMove {
    /// The migrated edge.
    pub edge: Edge,
    /// The partition the copy is leaving.
    pub from: PartitionId,
    /// The partition the copy is joining.
    pub to: PartitionId,
}

/// The outcome of one rebalance epoch: the ordered list of edge migrations
/// the partitioner performed on its own state. Replay it against the
/// distribution layer to keep both in sync.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MigrationPlan {
    moves: Vec<EdgeMove>,
}

impl MigrationPlan {
    /// The migrations in execution order.
    pub fn moves(&self) -> &[EdgeMove] {
        &self.moves
    }

    /// Number of migrated edge copies.
    pub fn len(&self) -> usize {
        self.moves.len()
    }

    /// Whether the epoch migrated nothing.
    pub fn is_empty(&self) -> bool {
        self.moves.is_empty()
    }
}

/// Thresholds and targets for [`DynamicPartitioner::rebalance`].
///
/// A rebalance epoch triggers when the maintained edge imbalance exceeds
/// [`max_edge_imbalance`](Self::with_max_edge_imbalance) or the maintained
/// replication factor exceeds
/// [`max_replication_factor`](Self::with_max_replication_factor); it then
/// migrates edges until every partition load is at most
/// `target_edge_imbalance × |E| / p` (rounded up to the feasible floor).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RebalanceConfig {
    max_edge_imbalance: f64,
    max_replication_factor: f64,
    target_edge_imbalance: f64,
}

impl Default for RebalanceConfig {
    fn default() -> Self {
        RebalanceConfig {
            max_edge_imbalance: 1.10,
            max_replication_factor: f64::INFINITY,
            target_edge_imbalance: 1.02,
        }
    }
}

impl RebalanceConfig {
    /// Creates the default configuration: trigger above an edge imbalance of
    /// 1.10, never trigger on the replication factor, rebalance toward 1.02.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the edge-imbalance trigger threshold (≥ 1).
    pub fn with_max_edge_imbalance(mut self, threshold: f64) -> Self {
        self.max_edge_imbalance = threshold;
        self
    }

    /// Sets the replication-factor trigger threshold (≥ 1). A triggered
    /// epoch always includes the replica-consolidation sweep.
    pub fn with_max_replication_factor(mut self, threshold: f64) -> Self {
        self.max_replication_factor = threshold;
        self
    }

    /// Sets the post-rebalance edge-imbalance target (≥ 1, at most the
    /// trigger threshold).
    pub fn with_target_edge_imbalance(mut self, target: f64) -> Self {
        self.target_edge_imbalance = target;
        self
    }

    /// The configured edge-imbalance trigger.
    pub fn max_edge_imbalance(&self) -> f64 {
        self.max_edge_imbalance
    }

    /// The configured replication-factor trigger.
    pub fn max_replication_factor(&self) -> f64 {
        self.max_replication_factor
    }

    /// The configured post-rebalance target.
    pub fn target_edge_imbalance(&self) -> f64 {
        self.target_edge_imbalance
    }

    fn validate(&self) -> Result<()> {
        let ok = |x: f64| x >= 1.0 && !x.is_nan();
        if !ok(self.max_edge_imbalance)
            || !ok(self.max_replication_factor)
            || !ok(self.target_edge_imbalance)
            || self.target_edge_imbalance > self.max_edge_imbalance
        {
            return Err(PartitionError::InvalidParameter {
                parameter: "rebalance_config",
                message: format!(
                    "thresholds must be >= 1 with target <= max_edge_imbalance, got \
                     max_edge_imbalance {}, max_replication_factor {}, target {}",
                    self.max_edge_imbalance,
                    self.max_replication_factor,
                    self.target_edge_imbalance
                ),
            });
        }
        Ok(())
    }
}

/// The placement policy of a [`DynamicPartitioner`].
#[derive(Debug, Clone)]
enum Policy {
    /// EBV's evaluation function over the live state (Algorithm 1 scoring).
    Ebv { alpha: f64, beta: f64 },
    /// HDRF scoring with *live* partial degrees (decremented on delete).
    Hdrf {
        lambda: f64,
        degree: HashMap<VertexId, usize>,
    },
    /// Position-independent hash of the edge endpoints.
    Random { salt: u64 },
}

/// The deletion-oblivious Random-VC assignment: a pure hash of the edge
/// endpoints and the salt. Unlike the streaming form it deliberately does
/// **not** mix in the stream position, so deleting unrelated edges never
/// changes where an edge hashes — the assignment after any event sequence
/// equals a from-scratch run over the survivors.
fn dynamic_random_part(salt: u64, num_partitions: usize, edge: Edge) -> PartitionId {
    let key = mix64(edge.src.raw()) ^ mix64(edge.dst.raw().rotate_left(17)) ^ mix64(salt);
    PartitionId::new((mix64(key) % num_partitions as u64) as u32)
}

/// Once the log reaches this length, deletions compact it whenever dead
/// entries outnumber live ones (the classic doubling argument bounds the
/// amortized cost at O(1) per deletion).
const COMPACT_FLOOR: usize = 1024;

/// One insertion recorded in the assignment log. Deleted copies are marked
/// dead in place so that surviving copies keep their insertion order, and
/// are dropped wholesale by [`DynamicPartitioner::compact`].
#[derive(Debug, Clone, Copy)]
struct LogEntry {
    edge: Edge,
    part: PartitionId,
    live: bool,
}

/// A vertex-cut partitioner for evolving graphs; see the [module
/// documentation](self) for the maintained invariants.
///
/// Construct via [`EbvPartitioner::dynamic`](crate::EbvPartitioner::dynamic),
/// [`HdrfPartitioner::dynamic`](crate::HdrfPartitioner::dynamic) or
/// [`RandomVertexCutPartitioner::dynamic`](crate::RandomVertexCutPartitioner::dynamic).
///
/// # Examples
///
/// ```
/// use ebv_graph::Edge;
/// use ebv_partition::{EbvPartitioner, StreamConfig};
///
/// # fn main() -> Result<(), ebv_partition::PartitionError> {
/// let mut dynamic = EbvPartitioner::new().dynamic(StreamConfig::new(2))?;
/// dynamic.insert(Edge::from((0u64, 1u64)));
/// dynamic.insert(Edge::from((1u64, 2u64)));
/// let part = dynamic.insert(Edge::from((2u64, 0u64)));
/// dynamic.delete(Edge::from((2u64, 0u64)))?;
/// assert_eq!(dynamic.live_edges(), 2);
/// let _ = part;
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct DynamicPartitioner {
    policy: Policy,
    num_partitions: usize,
    log: Vec<LogEntry>,
    /// Live copies of each edge as a stack of log positions (LIFO deletion).
    copies: HashMap<Edge, Vec<usize>>,
    ecount: Vec<usize>,
    live_edges: usize,
    /// Per-partition vertex cover as live-incidence reference counts:
    /// `incidence[i][v]` is the number of live edge copies in partition `i`
    /// incident to `v`; the keys of `incidence[i]` are exactly `V_i`.
    incidence: Vec<HashMap<VertexId, usize>>,
    max_vertex_exclusive: usize,
    expected_vertices: Option<usize>,
    expected_edges: Option<usize>,
}

impl DynamicPartitioner {
    fn new(policy: Policy, config: StreamConfig) -> Result<Self> {
        if config.num_partitions() == 0 {
            return Err(PartitionError::InvalidPartitionCount {
                requested: 0,
                message: "at least one partition is required".to_string(),
            });
        }
        Ok(DynamicPartitioner {
            policy,
            num_partitions: config.num_partitions(),
            log: Vec::new(),
            copies: HashMap::new(),
            ecount: vec![0; config.num_partitions()],
            live_edges: 0,
            incidence: vec![HashMap::new(); config.num_partitions()],
            max_vertex_exclusive: 0,
            expected_vertices: config.expected_vertices(),
            expected_edges: config.expected_edges(),
        })
    }

    pub(crate) fn ebv(alpha: f64, beta: f64, config: StreamConfig) -> Result<Self> {
        Self::new(Policy::Ebv { alpha, beta }, config)
    }

    pub(crate) fn hdrf(lambda: f64, config: StreamConfig) -> Result<Self> {
        Self::new(
            Policy::Hdrf {
                lambda,
                degree: HashMap::new(),
            },
            config,
        )
    }

    pub(crate) fn random(salt: u64, config: StreamConfig) -> Result<Self> {
        Self::new(Policy::Random { salt }, config)
    }

    /// A short, stable name used in reports (e.g. `"EBV-dynamic"`).
    pub fn name(&self) -> String {
        match self.policy {
            Policy::Ebv { .. } => "EBV-dynamic".to_string(),
            Policy::Hdrf { .. } => "HDRF-dynamic".to_string(),
            Policy::Random { .. } => "Random-VC-dynamic".to_string(),
        }
    }

    /// The configured partition count.
    pub fn num_partitions(&self) -> usize {
        self.num_partitions
    }

    /// Number of live (surviving) edge copies.
    pub fn live_edges(&self) -> usize {
        self.live_edges
    }

    /// Whether no edge copy is currently live.
    pub fn is_empty(&self) -> bool {
        self.live_edges == 0
    }

    /// Size of the vertex universe: the configured
    /// [`StreamConfig::with_expected_vertices`] hint, or the densely
    /// numbered universe implied by the largest endpoint ever inserted.
    /// Deletions never shrink the universe.
    pub fn num_vertices(&self) -> usize {
        self.expected_vertices
            .unwrap_or(0)
            .max(self.max_vertex_exclusive)
    }

    /// Number of live edges held by each partition.
    pub fn edge_counts(&self) -> &[usize] {
        &self.ecount
    }

    /// Number of covered vertices (`|V_i|`) per partition.
    pub fn vertex_counts(&self) -> Vec<usize> {
        self.incidence.iter().map(|m| m.len()).collect()
    }

    /// Whether partition `part` currently covers vertex `v`.
    pub fn covers(&self, v: VertexId, part: PartitionId) -> bool {
        self.incidence[part.index()].contains_key(&v)
    }

    /// Approximate bytes of resident state (the assignment log, the copy
    /// stacks and the incidence refcounts). A memory proxy for benchmarks;
    /// excludes allocator overhead.
    pub fn state_bytes(&self) -> usize {
        use std::mem::size_of;
        let incidence_entries: usize = self.incidence.iter().map(|m| m.len()).sum();
        self.log.len() * size_of::<LogEntry>()
            + self.copies.len() * (size_of::<Edge>() + size_of::<Vec<usize>>())
            + self.live_edges * size_of::<usize>()
            + incidence_entries * (size_of::<VertexId>() + size_of::<usize>())
            + self.num_partitions * size_of::<usize>()
    }

    fn observe(&mut self, edge: Edge) {
        let needed = edge.src.index().max(edge.dst.index()) + 1;
        if needed > self.max_vertex_exclusive {
            self.max_vertex_exclusive = needed;
        }
    }

    fn add_incidence(&mut self, v: VertexId, part: PartitionId) {
        *self.incidence[part.index()].entry(v).or_insert(0) += 1;
    }

    fn remove_incidence(&mut self, v: VertexId, part: PartitionId) {
        let map = &mut self.incidence[part.index()];
        let count = map
            .get_mut(&v)
            .expect("live incidence refcount exists for every live endpoint");
        *count -= 1;
        if *count == 0 {
            map.remove(&v);
        }
    }

    /// Scores the partitions for `edge` with the configured policy against
    /// the live state. Mirrors the streaming implementations expression for
    /// expression so that insert-only sequences are bit-identical.
    fn place(&mut self, edge: Edge) -> PartitionId {
        let p = self.num_partitions;
        let (u, v) = edge.endpoints();
        match &mut self.policy {
            Policy::Ebv { alpha, beta } => {
                let (alpha, beta) = (*alpha, *beta);
                let edges_per_part = match self.expected_edges {
                    Some(e) => e as f64 / p as f64,
                    None => (self.live_edges + 1) as f64 / p as f64,
                };
                let vertices_per_part = self.num_vertices() as f64 / p as f64;
                let mut best_part = 0usize;
                let mut best_score = f64::INFINITY;
                for i in 0..p {
                    let mut score = 0.0;
                    if !self.incidence[i].contains_key(&u) {
                        score += 1.0;
                    }
                    if !self.incidence[i].contains_key(&v) {
                        score += 1.0;
                    }
                    score += alpha * self.ecount[i] as f64 / edges_per_part;
                    score += beta * self.incidence[i].len() as f64 / vertices_per_part;
                    if score < best_score {
                        best_score = score;
                        best_part = i;
                    }
                }
                PartitionId::from_index(best_part)
            }
            Policy::Hdrf { lambda, degree } => {
                const EPSILON: f64 = 1.0;
                let lambda = *lambda;
                *degree.entry(u).or_insert(0) += 1;
                *degree.entry(v).or_insert(0) += 1;
                let du = degree[&u] as f64;
                let dv = degree[&v] as f64;
                let theta_u = du / (du + dv);
                let theta_v = 1.0 - theta_u;
                let max_size = *self.ecount.iter().max().expect("non-empty") as f64;
                let min_size = *self.ecount.iter().min().expect("non-empty") as f64;
                let mut best_part = 0usize;
                let mut best_score = f64::NEG_INFINITY;
                for i in 0..p {
                    let mut replication = 0.0;
                    if self.incidence[i].contains_key(&u) {
                        replication += 1.0 + (1.0 - theta_u);
                    }
                    if self.incidence[i].contains_key(&v) {
                        replication += 1.0 + (1.0 - theta_v);
                    }
                    let balance = lambda * (max_size - self.ecount[i] as f64)
                        / (EPSILON + max_size - min_size);
                    let score = replication + balance;
                    if score > best_score {
                        best_score = score;
                        best_part = i;
                    }
                }
                PartitionId::from_index(best_part)
            }
            Policy::Random { salt } => dynamic_random_part(*salt, p, edge),
        }
    }

    /// Inserts one edge copy, scoring it against the live state, and returns
    /// the partition it was assigned to.
    pub fn insert(&mut self, edge: Edge) -> PartitionId {
        self.observe(edge);
        let part = self.place(edge);
        let position = self.log.len();
        self.log.push(LogEntry {
            edge,
            part,
            live: true,
        });
        self.copies.entry(edge).or_default().push(position);
        self.ecount[part.index()] += 1;
        self.live_edges += 1;
        self.add_incidence(edge.src, part);
        if edge.dst != edge.src {
            self.add_incidence(edge.dst, part);
        }
        part
    }

    /// Deletes the most recently inserted live copy of `edge` and returns
    /// the partition that copy was assigned to. Partition load, vertex
    /// cover refcounts (and HDRF degrees) are decremented exactly.
    ///
    /// # Errors
    ///
    /// Returns [`PartitionError::EdgeNotPresent`] when no live copy of
    /// `edge` exists.
    pub fn delete(&mut self, edge: Edge) -> Result<PartitionId> {
        let position = match self.copies.get_mut(&edge) {
            Some(stack) if !stack.is_empty() => stack.pop().expect("checked non-empty"),
            _ => {
                return Err(PartitionError::EdgeNotPresent {
                    message: format!("no live copy of edge {edge} to delete"),
                })
            }
        };
        if self.copies.get(&edge).is_some_and(|s| s.is_empty()) {
            self.copies.remove(&edge);
        }
        let entry = &mut self.log[position];
        entry.live = false;
        let part = entry.part;
        self.ecount[part.index()] -= 1;
        self.live_edges -= 1;
        self.remove_incidence(edge.src, part);
        if edge.dst != edge.src {
            self.remove_incidence(edge.dst, part);
        }
        if let Policy::Hdrf { degree, .. } = &mut self.policy {
            for v in [edge.src, edge.dst] {
                let d = degree
                    .get_mut(&v)
                    .expect("HDRF degree exists for every live endpoint");
                *d -= 1;
                if *d == 0 {
                    degree.remove(&v);
                }
            }
        }
        if self.log.len() >= COMPACT_FLOOR && self.log.len() >= 2 * self.live_edges {
            self.compact();
        }
        Ok(part)
    }

    /// Drops dead log entries and rebuilds the copy stacks, preserving the
    /// insertion order (and therefore the LIFO stacks) of every live copy.
    /// Triggered from [`delete`](Self::delete) once dead entries outnumber
    /// live ones, so resident state is O(live edges) — a windowed stream
    /// can run forever — at amortized O(1) per deletion.
    fn compact(&mut self) {
        self.log.retain(|entry| entry.live);
        self.copies.clear();
        for (position, entry) in self.log.iter().enumerate() {
            self.copies.entry(entry.edge).or_default().push(position);
        }
    }

    /// Restores a freshly constructed partitioner from a checkpoint: the
    /// surviving `(edge, partition)` pairs in insertion order (exactly
    /// what [`surviving`](Self::surviving) yielded when the checkpoint was
    /// taken) and the vertex universe the original had observed.
    ///
    /// Every placement-relevant piece of state — incidence refcounts, the
    /// copy stacks' LIFO order, partition loads, HDRF degrees — is a pure
    /// function of the surviving pairs, so replaying them with their
    /// *recorded* partitions (never re-scored) reproduces a partitioner
    /// whose future placements are bit-identical to the original's. The
    /// one exception is the universe: deleted edges may have observed
    /// larger vertices than any survivor, and the universe feeds the EBV
    /// balance denominators, so it is restored from the stored
    /// `universe` (the original's [`num_vertices`](Self::num_vertices))
    /// rather than re-derived.
    ///
    /// # Errors
    ///
    /// Returns [`PartitionError::InvalidParameter`] when `self` already
    /// holds state, and [`PartitionError::InconsistentAssignment`] when a
    /// pair names an out-of-range partition or a vertex outside
    /// `universe`.
    pub fn restore(
        &mut self,
        universe: usize,
        pairs: impl IntoIterator<Item = (Edge, PartitionId)>,
    ) -> Result<()> {
        if !self.log.is_empty() || self.live_edges != 0 {
            return Err(PartitionError::InvalidParameter {
                parameter: "restore",
                message: "restore requires a freshly constructed partitioner".to_string(),
            });
        }
        for (edge, part) in pairs {
            if part.index() >= self.num_partitions {
                return Err(PartitionError::InconsistentAssignment {
                    message: format!(
                        "checkpoint assigns edge {edge} to partition {part} but only {} \
                         partitions exist",
                        self.num_partitions
                    ),
                });
            }
            let needed = edge.src.index().max(edge.dst.index()) + 1;
            if needed > universe {
                return Err(PartitionError::InconsistentAssignment {
                    message: format!(
                        "checkpoint universe is {universe} vertices but edge {edge} \
                         references vertex {}",
                        needed - 1
                    ),
                });
            }
            // The insert path minus scoring: push the recorded placement
            // and maintain exactly the refcounts `insert` would.
            let position = self.log.len();
            self.log.push(LogEntry {
                edge,
                part,
                live: true,
            });
            self.copies.entry(edge).or_default().push(position);
            self.ecount[part.index()] += 1;
            self.live_edges += 1;
            self.add_incidence(edge.src, part);
            if edge.dst != edge.src {
                self.add_incidence(edge.dst, part);
            }
            if let Policy::Hdrf { degree, .. } = &mut self.policy {
                // `place` bumps both endpoints per insertion (a self-loop
                // counts twice), and `delete` undoes it symmetrically, so
                // live-copy replay lands on the original live degrees.
                *degree.entry(edge.src).or_insert(0) += 1;
                *degree.entry(edge.dst).or_insert(0) += 1;
            }
        }
        self.max_vertex_exclusive = universe;
        Ok(())
    }

    /// The surviving `(edge, partition)` pairs in insertion order — the
    /// edge multiset a from-scratch rebuild would consume.
    pub fn surviving(&self) -> impl Iterator<Item = (Edge, PartitionId)> + '_ {
        self.log
            .iter()
            .filter(|entry| entry.live)
            .map(|entry| (entry.edge, entry.part))
    }

    /// The maintained assignment of the surviving edges as an
    /// [`EdgePartition`](crate::EdgePartition)-backed
    /// [`PartitionResult`](crate::PartitionResult), aligned with
    /// [`surviving`](Self::surviving) order.
    ///
    /// # Errors
    ///
    /// Propagates [`PartitionError`] from result construction.
    pub fn snapshot(&self) -> Result<crate::PartitionResult> {
        let assignment: Vec<PartitionId> = self.surviving().map(|(_, part)| part).collect();
        Ok(crate::EdgePartition::new(self.num_partitions, assignment)?.into())
    }

    /// The maintained quality metrics of the surviving assignment —
    /// bit-identical to [`PartitionMetrics::compute`] over a graph holding
    /// exactly the surviving edges (in any order) with
    /// [`num_vertices`](Self::num_vertices) declared vertices.
    pub fn metrics(&self) -> PartitionMetrics {
        let p = self.num_partitions;
        let max_edges = self.ecount.iter().copied().max().unwrap_or(0) as f64;
        let vcounts = self.vertex_counts();
        let max_vertices = vcounts.iter().copied().max().unwrap_or(0) as f64;
        let total_covered: usize = vcounts.iter().sum();
        let universe = self.num_vertices();
        let edge_imbalance = if self.live_edges == 0 {
            1.0
        } else {
            max_edges / (self.live_edges as f64 / p as f64)
        };
        let vertex_imbalance = if total_covered == 0 {
            1.0
        } else {
            max_vertices / (total_covered as f64 / p as f64)
        };
        let replication_factor = if universe == 0 {
            1.0
        } else {
            total_covered as f64 / universe as f64
        };
        PartitionMetrics {
            edge_imbalance,
            vertex_imbalance,
            replication_factor,
            num_partitions: p,
        }
    }

    /// Whether the maintained metrics have drifted past the `config`
    /// thresholds.
    pub fn needs_rebalance(&self, config: &RebalanceConfig) -> bool {
        let m = self.metrics();
        m.edge_imbalance > config.max_edge_imbalance
            || m.replication_factor > config.max_replication_factor
    }

    /// The per-move replication-factor delta of migrating `edge` from
    /// `from` to `to`: new replicas created in `to` minus replicas freed in
    /// `from`.
    fn move_delta(&self, edge: Edge, from: PartitionId, to: PartitionId) -> i64 {
        let mut delta = 0i64;
        let (u, v) = edge.endpoints();
        for (i, w) in [u, v].into_iter().enumerate() {
            if i == 1 && v == u {
                break;
            }
            if !self.incidence[to.index()].contains_key(&w) {
                delta += 1;
            }
            if self.incidence[from.index()][&w] == 1 {
                delta -= 1;
            }
        }
        delta
    }

    /// Applies one migration to the maintained state.
    fn apply_move(&mut self, position: usize, to: PartitionId) {
        let entry = &mut self.log[position];
        debug_assert!(entry.live, "only live copies migrate");
        let edge = entry.edge;
        let from = entry.part;
        entry.part = to;
        self.ecount[from.index()] -= 1;
        self.ecount[to.index()] += 1;
        self.remove_incidence(edge.src, from);
        self.add_incidence(edge.src, to);
        if edge.dst != edge.src {
            self.remove_incidence(edge.dst, from);
            self.add_incidence(edge.dst, to);
        }
    }

    /// Runs one rebalance epoch if the maintained metrics exceed the
    /// `config` thresholds, migrating edge copies on the partitioner's own
    /// state and returning the [`MigrationPlan`] to replay downstream
    /// (e.g. via `ebv_bsp::MutationBatch::record_move`).
    ///
    /// The epoch is greedy and deterministic:
    ///
    /// 1. **Load phase** — while some partition holds more than
    ///    `target_edge_imbalance × |E| / p` edges (rounded up to the
    ///    feasible floor `⌈|E| / p⌉`), move the copy with the smallest
    ///    replication delta from the most loaded partition to the least
    ///    loaded one.
    /// 2. **Consolidation sweep** — when the replication factor triggered
    ///    the epoch, additionally migrate copies whose move strictly frees
    ///    replicas without pushing any partition over the load cap.
    ///
    /// # Errors
    ///
    /// Returns [`PartitionError::InvalidParameter`] for thresholds below 1
    /// or a target above the trigger threshold.
    pub fn rebalance(&mut self, config: &RebalanceConfig) -> Result<MigrationPlan> {
        config.validate()?;
        let mut plan = MigrationPlan::default();
        if !self.needs_rebalance(config) {
            return Ok(plan);
        }
        let p = self.num_partitions;
        let average = self.live_edges as f64 / p as f64;
        // Clamp to at least one live edge of headroom: on tiny or
        // near-empty graphs (`average < 1`) the scaled target floors to 0,
        // which would forbid every receiver (`load + 1 > cap`) and stall
        // the epoch with the trigger still firing.
        let cap = (average.ceil() as usize)
            .max((average * config.target_edge_imbalance).floor() as usize)
            .max(1);

        // Live log positions per partition, in insertion order.
        let mut positions: Vec<Vec<usize>> = vec![Vec::new(); p];
        for (position, entry) in self.log.iter().enumerate() {
            if entry.live {
                positions[entry.part.index()].push(position);
            }
        }

        // Load phase: drain each overloaded partition in turn. The donor's
        // copies are scored *once* (against the least-loaded partition at
        // scan time — the replica-freeing component of the delta dominates
        // and is receiver-independent), sorted, and migrated cheapest
        // first; each individual move still goes to the least-loaded
        // partition at that moment.
        let mut stop = false;
        while !stop {
            let donor = (0..p).max_by_key(|&i| self.ecount[i]).expect("p >= 1");
            if self.ecount[donor] <= cap {
                break;
            }
            let from = PartitionId::from_index(donor);
            let hint_receiver =
                PartitionId::from_index((0..p).min_by_key(|&i| self.ecount[i]).expect("p >= 1"));
            let mut candidates: Vec<(i64, usize)> = positions[donor]
                .iter()
                .map(|&position| {
                    (
                        self.move_delta(self.log[position].edge, from, hint_receiver),
                        position,
                    )
                })
                .collect();
            candidates.sort_unstable();
            let mut iter = candidates.into_iter();
            while self.ecount[donor] > cap {
                let receiver = (0..p).min_by_key(|&i| self.ecount[i]).expect("p >= 1");
                if receiver == donor || self.ecount[receiver] + 1 > cap {
                    stop = true;
                    break;
                }
                let Some((_, position)) = iter.next() else {
                    stop = true;
                    break;
                };
                let to = PartitionId::from_index(receiver);
                let edge = self.log[position].edge;
                self.apply_move(position, to);
                positions[receiver].push(position);
                plan.moves.push(EdgeMove { edge, from, to });
            }
            positions[donor] = iter.map(|(_, position)| position).collect();
        }

        // Consolidation sweep: only when replication triggered the epoch.
        if self.metrics().replication_factor > config.max_replication_factor {
            for position in 0..self.log.len() {
                if !self.log[position].live {
                    continue;
                }
                let edge = self.log[position].edge;
                let from = self.log[position].part;
                let mut best: Option<(i64, usize)> = None;
                for i in 0..p {
                    let to = PartitionId::from_index(i);
                    if to == from || self.ecount[i] + 1 > cap {
                        continue;
                    }
                    let delta = self.move_delta(edge, from, to);
                    if delta < 0 && best.is_none_or(|(d, _)| delta < d) {
                        best = Some((delta, i));
                    }
                }
                if let Some((_, i)) = best {
                    let to = PartitionId::from_index(i);
                    self.apply_move(position, to);
                    plan.moves.push(EdgeMove { edge, from, to });
                }
            }
        }

        Ok(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;
    use ebv_graph::generators::{GraphGenerator, RmatGenerator};
    use ebv_graph::GraphBuilder;

    fn edge(s: u64, d: u64) -> Edge {
        Edge::from((s, d))
    }

    /// Recomputes the maintained metrics from scratch over the survivors.
    fn reference_metrics(partitioner: &DynamicPartitioner) -> PartitionMetrics {
        let mut builder = GraphBuilder::directed();
        for (e, _) in partitioner.surviving() {
            builder.add_edge(e);
        }
        builder.num_vertices(partitioner.num_vertices());
        let graph = builder.build().unwrap();
        let result = partitioner.snapshot().unwrap();
        PartitionMetrics::compute(&graph, &result).unwrap()
    }

    fn assert_bit_identical(a: PartitionMetrics, b: PartitionMetrics) {
        assert!(
            a.edge_imbalance == b.edge_imbalance
                && a.vertex_imbalance == b.vertex_imbalance
                && a.replication_factor == b.replication_factor,
            "maintained {a:?} != recomputed {b:?}"
        );
    }

    #[test]
    fn insert_only_matches_streaming_bit_for_bit() {
        let g = RmatGenerator::new(8, 8).with_seed(21).generate().unwrap();
        let config = StreamConfig::new(5)
            .with_expected_vertices(g.num_vertices())
            .with_expected_edges(g.num_edges());
        let mut streaming = EbvPartitioner::new().streaming(config).unwrap();
        let mut dynamic = EbvPartitioner::new().dynamic(config).unwrap();
        for &e in g.edges() {
            assert_eq!(streaming.ingest(e), dynamic.insert(e), "edge {e}");
        }
        let streamed = streaming.finish().unwrap();
        assert_eq!(streamed, dynamic.snapshot().unwrap());

        let mut s_hdrf = HdrfPartitioner::new().streaming(config).unwrap();
        let mut d_hdrf = HdrfPartitioner::new().dynamic(config).unwrap();
        for &e in g.edges() {
            assert_eq!(s_hdrf.ingest(e), d_hdrf.insert(e), "edge {e}");
        }
    }

    #[test]
    fn deletion_reverts_state_exactly() {
        let mut dynamic = EbvPartitioner::new().dynamic(StreamConfig::new(3)).unwrap();
        for (s, d) in [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)] {
            dynamic.insert(edge(s, d));
        }
        let before = dynamic.metrics();
        let part = dynamic.insert(edge(4, 5));
        assert_eq!(dynamic.delete(edge(4, 5)).unwrap(), part);
        let after = dynamic.metrics();
        assert_eq!(dynamic.live_edges(), 5);
        // The universe grew (vertices 4 and 5 were observed), so the
        // replication factor denominator changed; load and cover state are
        // identical.
        assert_eq!(before.edge_imbalance, after.edge_imbalance);
        assert_eq!(before.vertex_imbalance, after.vertex_imbalance);
        assert_bit_identical(after, reference_metrics(&dynamic));
    }

    #[test]
    fn duplicate_copies_form_a_multiset_with_lifo_deletion() {
        let mut dynamic = RandomVertexCutPartitioner::new()
            .dynamic(StreamConfig::new(4))
            .unwrap();
        let e = edge(7, 9);
        let p1 = dynamic.insert(e);
        let p2 = dynamic.insert(e);
        assert_eq!(p1, p2, "edge-hash placement is copy-independent");
        assert_eq!(dynamic.live_edges(), 2);
        dynamic.delete(e).unwrap();
        assert_eq!(dynamic.live_edges(), 1);
        assert!(dynamic.covers(VertexId::new(7), p1));
        dynamic.delete(e).unwrap();
        assert!(!dynamic.covers(VertexId::new(7), p1));
        assert!(matches!(
            dynamic.delete(e),
            Err(PartitionError::EdgeNotPresent { .. })
        ));
    }

    #[test]
    fn metrics_stay_exact_under_interleaved_churn() {
        let g = RmatGenerator::new(7, 8).with_seed(3).generate().unwrap();
        let mut dynamic = HdrfPartitioner::new()
            .dynamic(StreamConfig::new(4))
            .unwrap();
        let mut live: Vec<Edge> = Vec::new();
        for (i, &e) in g.edges().iter().enumerate() {
            dynamic.insert(e);
            live.push(e);
            if i % 3 == 2 {
                let victim = live.swap_remove((i * 7) % live.len());
                dynamic.delete(victim).unwrap();
            }
        }
        assert_eq!(dynamic.live_edges(), live.len());
        assert_bit_identical(dynamic.metrics(), reference_metrics(&dynamic));
    }

    #[test]
    fn dynamic_random_is_history_oblivious() {
        let g = RmatGenerator::new(7, 6).with_seed(5).generate().unwrap();
        let mut dynamic = RandomVertexCutPartitioner::new()
            .with_salt(11)
            .dynamic(StreamConfig::new(6))
            .unwrap();
        for &e in g.edges() {
            dynamic.insert(e);
        }
        for &e in g.edges().iter().step_by(2) {
            dynamic.delete(e).unwrap();
        }
        let survivors: Vec<(Edge, PartitionId)> = dynamic.surviving().collect();
        let mut fresh = RandomVertexCutPartitioner::new()
            .with_salt(11)
            .dynamic(StreamConfig::new(6))
            .unwrap();
        for &(e, expected) in &survivors {
            assert_eq!(fresh.insert(e), expected, "edge {e}");
        }
        assert_eq!(fresh.snapshot().unwrap(), dynamic.snapshot().unwrap());
    }

    /// Churns a partitioner and returns the edges that are still live (in
    /// an arbitrary but deterministic order usable for further deletes).
    fn churn(dynamic: &mut DynamicPartitioner, graph_seed: u64) -> Vec<Edge> {
        let g = RmatGenerator::new(7, 8)
            .with_seed(graph_seed)
            .generate()
            .unwrap();
        let mut live: Vec<Edge> = Vec::new();
        for (i, &e) in g.edges().iter().enumerate() {
            dynamic.insert(e);
            live.push(e);
            if i % 4 == 3 {
                let victim = live.swap_remove((i * 13) % live.len());
                dynamic.delete(victim).unwrap();
            }
        }
        live
    }

    #[test]
    #[allow(clippy::type_complexity)]
    fn restored_partitioner_continues_bit_identically() {
        let cases: [(fn() -> DynamicPartitioner, &str); 3] = [
            (
                || {
                    EbvPartitioner::new()
                        .dynamic(StreamConfig::new(4).with_expected_edges(200))
                        .unwrap()
                },
                "ebv",
            ),
            (
                || {
                    HdrfPartitioner::new()
                        .dynamic(StreamConfig::new(4))
                        .unwrap()
                },
                "hdrf",
            ),
            (
                || {
                    RandomVertexCutPartitioner::new()
                        .dynamic(StreamConfig::new(4))
                        .unwrap()
                },
                "random",
            ),
        ];
        for (make, name) in cases {
            let mut original = make();
            let mut live = churn(&mut original, 17);

            let survivors: Vec<(Edge, PartitionId)> = original.surviving().collect();
            let mut restored = make();
            restored
                .restore(original.num_vertices(), survivors.iter().copied())
                .unwrap();
            assert_eq!(restored.live_edges(), original.live_edges(), "{name}");
            assert_eq!(restored.num_vertices(), original.num_vertices(), "{name}");
            assert_eq!(
                restored.snapshot().unwrap(),
                original.snapshot().unwrap(),
                "{name}"
            );

            // Future churn must place and delete bit-identically.
            let extra = RmatGenerator::new(6, 8).with_seed(23).generate().unwrap();
            for (i, &e) in extra.edges().iter().enumerate() {
                assert_eq!(original.insert(e), restored.insert(e), "{name} edge {e}");
                live.push(e);
                if i % 3 == 1 {
                    let victim = live.swap_remove((i * 11) % live.len());
                    assert_eq!(
                        original.delete(victim).unwrap(),
                        restored.delete(victim).unwrap(),
                        "{name} delete {victim}"
                    );
                }
            }
            assert_eq!(
                original.snapshot().unwrap(),
                restored.snapshot().unwrap(),
                "{name} final"
            );
            assert_bit_identical(original.metrics(), restored.metrics());
            assert_bit_identical(restored.metrics(), reference_metrics(&restored));
        }
    }

    #[test]
    fn restore_rejects_non_fresh_state_and_bad_pairs() {
        let mut used = EbvPartitioner::new().dynamic(StreamConfig::new(2)).unwrap();
        used.insert(edge(0, 1));
        assert!(matches!(
            used.restore(4, [(edge(1, 2), PartitionId::new(0))]),
            Err(PartitionError::InvalidParameter { .. })
        ));

        let mut fresh = EbvPartitioner::new().dynamic(StreamConfig::new(2)).unwrap();
        assert!(matches!(
            fresh.restore(4, [(edge(0, 1), PartitionId::new(7))]),
            Err(PartitionError::InconsistentAssignment { .. })
        ));
        let mut fresh = EbvPartitioner::new().dynamic(StreamConfig::new(2)).unwrap();
        assert!(matches!(
            fresh.restore(2, [(edge(0, 5), PartitionId::new(0))]),
            Err(PartitionError::InconsistentAssignment { .. })
        ));
    }

    #[test]
    fn rebalancer_restores_edge_balance() {
        let g = RmatGenerator::new(8, 8).with_seed(13).generate().unwrap();
        let mut dynamic = EbvPartitioner::new().dynamic(StreamConfig::new(4)).unwrap();
        for &e in g.edges() {
            dynamic.insert(e);
        }
        // Starve three partitions: delete most of their edges so the
        // remaining load concentrates on partition 0.
        let victims: Vec<Edge> = dynamic
            .surviving()
            .filter(|(_, part)| part.index() != 0)
            .map(|(e, _)| e)
            .collect();
        for e in victims.iter().take(victims.len() * 9 / 10) {
            dynamic.delete(*e).unwrap();
        }
        let config = RebalanceConfig::new()
            .with_max_edge_imbalance(1.2)
            .with_target_edge_imbalance(1.05);
        let before = dynamic.metrics();
        assert!(before.edge_imbalance > 1.2, "setup is skewed: {before:?}");
        assert!(dynamic.needs_rebalance(&config));
        let plan = dynamic.rebalance(&config).unwrap();
        assert!(!plan.is_empty());
        let after = dynamic.metrics();
        assert!(
            after.edge_imbalance < before.edge_imbalance,
            "rebalance must reduce imbalance: {} -> {}",
            before.edge_imbalance,
            after.edge_imbalance
        );
        assert!(!dynamic.needs_rebalance(&config), "after {after:?}");
        // The migrated state is still exactly consistent.
        assert_bit_identical(after, reference_metrics(&dynamic));
        // And the plan replays: every move names a partition in range.
        for m in plan.moves() {
            assert!(m.from.index() < 4 && m.to.index() < 4 && m.from != m.to);
        }
    }

    #[test]
    fn consolidation_sweep_reduces_replication() {
        // Spread copies of a small clique across partitions with the
        // position-dependent streaming-style churn, then ask the rebalancer
        // to consolidate.
        let mut dynamic = HdrfPartitioner::new()
            .with_lambda(50.0)
            .dynamic(StreamConfig::new(4))
            .unwrap();
        for s in 0..6u64 {
            for d in 0..6u64 {
                if s != d {
                    dynamic.insert(edge(s, d));
                }
            }
        }
        let before = dynamic.metrics();
        let config = RebalanceConfig::new()
            .with_max_edge_imbalance(4.0)
            .with_target_edge_imbalance(1.4)
            .with_max_replication_factor(1.0);
        let plan = dynamic.rebalance(&config).unwrap();
        let after = dynamic.metrics();
        assert!(!plan.is_empty());
        assert!(
            after.replication_factor < before.replication_factor,
            "consolidation must free replicas: {} -> {}",
            before.replication_factor,
            after.replication_factor
        );
        assert_bit_identical(after, reference_metrics(&dynamic));
    }

    #[test]
    fn rebalance_handles_tiny_and_near_empty_graphs() {
        let aggressive = RebalanceConfig::new()
            .with_max_edge_imbalance(1.0)
            .with_target_edge_imbalance(1.0);

        // Empty graph: nothing to migrate, nothing to panic over.
        let mut empty = EbvPartitioner::new().dynamic(StreamConfig::new(4)).unwrap();
        assert!(!empty.needs_rebalance(&aggressive));
        assert!(empty.rebalance(&aggressive).unwrap().is_empty());

        // One-edge graph: the single copy cannot be split; the epoch must
        // terminate with the copy intact.
        let mut single = EbvPartitioner::new().dynamic(StreamConfig::new(4)).unwrap();
        single.insert(edge(0, 1));
        let plan = single.rebalance(&aggressive).unwrap();
        assert!(plan.is_empty(), "one edge in one partition is feasible");
        assert_eq!(single.live_edges(), 1);
        assert_bit_identical(single.metrics(), reference_metrics(&single));

        // More partitions than edges (`average < 1`): without the clamp the
        // scaled target floors to a zero cap that blocks every receiver.
        // Three copies of one edge hash to the same partition (the Random
        // policy is copy-independent), giving a deterministic skew; the
        // epoch must spread them to one copy per partition.
        let mut sparse = RandomVertexCutPartitioner::new()
            .dynamic(StreamConfig::new(8))
            .unwrap();
        for _ in 0..3 {
            sparse.insert(edge(0, 1));
        }
        assert_eq!(*sparse.edge_counts().iter().max().unwrap(), 3);
        assert!(sparse.needs_rebalance(&aggressive));
        let plan = sparse.rebalance(&aggressive).unwrap();
        assert_eq!(plan.len(), 2, "two copies migrate to empty partitions");
        assert_eq!(*sparse.edge_counts().iter().max().unwrap(), 1);
        assert_bit_identical(sparse.metrics(), reference_metrics(&sparse));
    }

    #[test]
    fn below_threshold_epoch_is_a_no_op() {
        let mut dynamic = EbvPartitioner::new().dynamic(StreamConfig::new(2)).unwrap();
        for (s, d) in [(0, 1), (1, 2), (2, 3), (3, 0)] {
            dynamic.insert(edge(s, d));
        }
        let plan = dynamic
            .rebalance(&RebalanceConfig::new().with_max_edge_imbalance(8.0))
            .unwrap();
        assert!(plan.is_empty());
    }

    #[test]
    fn invalid_configs_are_rejected() {
        assert!(EbvPartitioner::new().dynamic(StreamConfig::new(0)).is_err());
        assert!(EbvPartitioner::new()
            .with_alpha(-1.0)
            .dynamic(StreamConfig::new(2))
            .is_err());
        assert!(HdrfPartitioner::new()
            .with_lambda(f64::NAN)
            .dynamic(StreamConfig::new(2))
            .is_err());
        let mut dynamic = EbvPartitioner::new().dynamic(StreamConfig::new(2)).unwrap();
        dynamic.insert(edge(0, 1));
        let bad = RebalanceConfig::new()
            .with_max_edge_imbalance(1.1)
            .with_target_edge_imbalance(2.0);
        assert!(dynamic.rebalance(&bad).is_err());
        assert!(RebalanceConfig::new()
            .with_max_edge_imbalance(0.5)
            .validate()
            .is_err());
    }

    #[test]
    fn empty_partitioner_reports_unit_metrics() {
        let dynamic = EbvPartitioner::new().dynamic(StreamConfig::new(3)).unwrap();
        let m = dynamic.metrics();
        assert_eq!(m.edge_imbalance, 1.0);
        assert_eq!(m.vertex_imbalance, 1.0);
        assert_eq!(m.replication_factor, 1.0);
        assert!(dynamic.is_empty());
        assert_eq!(dynamic.name(), "EBV-dynamic");
        assert!(dynamic.state_bytes() >= 3 * std::mem::size_of::<usize>());
    }

    #[test]
    fn compaction_bounds_state_by_live_edges() {
        let mut dynamic = EbvPartitioner::new().dynamic(StreamConfig::new(4)).unwrap();
        // A window-like workload: 50k arrivals, live set capped at 100 by
        // deleting the oldest edge on every arrival past the cap.
        let mut live: std::collections::VecDeque<Edge> = std::collections::VecDeque::new();
        for i in 0..50_000u64 {
            let e = edge(i % 997, (i * 7 + 1) % 997);
            dynamic.insert(e);
            live.push_back(e);
            if live.len() > 100 {
                dynamic.delete(live.pop_front().unwrap()).unwrap();
            }
        }
        assert_eq!(dynamic.live_edges(), 100);
        // Without compaction the log alone would hold 50k entries
        // (~1.7 MB); compaction keeps resident state proportional to the
        // live set.
        assert!(
            dynamic.state_bytes() < 100_000,
            "state not compacted: {} bytes",
            dynamic.state_bytes()
        );
        // The compacted state is still exactly consistent and usable.
        assert_bit_identical(dynamic.metrics(), reference_metrics(&dynamic));
        let (expected_edge, expected_part) = dynamic.surviving().next().unwrap();
        assert_eq!(dynamic.delete(expected_edge).unwrap(), expected_part);
    }

    #[test]
    fn self_loops_count_one_replica() {
        let mut dynamic = RandomVertexCutPartitioner::new()
            .dynamic(StreamConfig::new(2))
            .unwrap();
        let part = dynamic.insert(edge(3, 3));
        assert_eq!(dynamic.vertex_counts()[part.index()], 1);
        dynamic.delete(edge(3, 3)).unwrap();
        assert_eq!(dynamic.vertex_counts()[part.index()], 0);
    }
}
