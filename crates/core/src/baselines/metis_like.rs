//! A multilevel edge-cut partitioner in the style of METIS
//! (Karypis & Kumar): coarsen by heavy-edge matching, partition the coarsest
//! graph by greedy region growing, then uncoarsen with boundary
//! Kernighan–Lin/Fiduccia–Mattheyses refinement.
//!
//! This is a from-scratch reimplementation of the *algorithmic family*, not a
//! binding to the METIS library: the paper uses METIS as "the local-based
//! edge-cut baseline that balances vertices only", and that is precisely the
//! objective implemented here. Its failure mode on power-law graphs — vertex
//! counts balanced, edge counts wildly imbalanced — is what Tables II/III/V
//! of the paper document, and what the experiments in this repository
//! reproduce.

use std::collections::HashMap;

use ebv_graph::Graph;

use crate::assignment::{PartitionResult, VertexPartition};
use crate::error::Result;
use crate::partitioner::{check_partition_count, Partitioner};
use crate::types::PartitionId;

/// The multilevel edge-cut (vertex partitioning) baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct MetisLikePartitioner {
    /// Stop coarsening once the graph has at most `coarsen_factor × p`
    /// vertices.
    coarsen_factor: usize,
    /// Allowed vertex-weight imbalance during refinement (METIS' ubfactor);
    /// 0.03 means any part may hold at most 3% more than the average weight.
    balance_tolerance: f64,
    /// Number of boundary-refinement passes per level.
    refinement_passes: usize,
}

impl Default for MetisLikePartitioner {
    fn default() -> Self {
        Self::new()
    }
}

impl MetisLikePartitioner {
    /// Creates the partitioner with METIS-like defaults (coarsen to ~30·p
    /// vertices, 3% imbalance tolerance, 4 refinement passes).
    pub fn new() -> Self {
        MetisLikePartitioner {
            coarsen_factor: 30,
            balance_tolerance: 0.03,
            refinement_passes: 4,
        }
    }

    /// Sets the coarsening stop factor.
    pub fn with_coarsen_factor(mut self, factor: usize) -> Self {
        self.coarsen_factor = factor.max(1);
        self
    }

    /// Sets the allowed vertex-weight imbalance (e.g. 0.03 for 3%).
    pub fn with_balance_tolerance(mut self, tolerance: f64) -> Self {
        self.balance_tolerance = tolerance.max(0.0);
        self
    }

    /// Sets the number of refinement passes per level.
    pub fn with_refinement_passes(mut self, passes: usize) -> Self {
        self.refinement_passes = passes;
        self
    }
}

/// Converts a neighbour→weight map into an adjacency list with a
/// deterministic (sorted) neighbour order, so that the whole multilevel
/// pipeline is reproducible run to run despite using hash maps internally.
fn sorted_adjacency(map: HashMap<usize, usize>) -> Vec<(usize, usize)> {
    let mut list: Vec<(usize, usize)> = map.into_iter().collect();
    list.sort_unstable();
    list
}

/// An undirected weighted graph used internally by the multilevel scheme.
#[derive(Debug, Clone)]
struct Level {
    vertex_weights: Vec<usize>,
    /// Adjacency as (neighbour, edge weight); no self loops.
    adjacency: Vec<Vec<(usize, usize)>>,
    /// Mapping from the finer level's vertices to this level's vertices
    /// (empty for level 0).
    fine_to_coarse: Vec<usize>,
}

impl Level {
    fn num_vertices(&self) -> usize {
        self.vertex_weights.len()
    }

    fn from_graph(graph: &Graph) -> Self {
        let n = graph.num_vertices();
        let mut weights: Vec<HashMap<usize, usize>> = vec![HashMap::new(); n];
        for e in graph.edges() {
            let (a, b) = (e.src.index(), e.dst.index());
            if a == b {
                continue;
            }
            *weights[a].entry(b).or_insert(0) += 1;
            *weights[b].entry(a).or_insert(0) += 1;
        }
        Level {
            vertex_weights: vec![1; n],
            adjacency: weights.into_iter().map(sorted_adjacency).collect(),
            fine_to_coarse: Vec::new(),
        }
    }

    /// Heavy-edge matching followed by contraction. Returns `None` when the
    /// matching no longer shrinks the graph meaningfully.
    fn coarsen(&self) -> Option<Level> {
        let n = self.num_vertices();
        let mut matched = vec![usize::MAX; n];
        // Visit vertices from lowest degree so leaves match early.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&v| self.adjacency[v].len());
        for &v in &order {
            if matched[v] != usize::MAX {
                continue;
            }
            let mut best: Option<(usize, usize)> = None;
            for &(u, w) in &self.adjacency[v] {
                if matched[u] == usize::MAX && Some(w) > best.map(|(_, bw)| bw) {
                    best = Some((u, w));
                }
            }
            match best {
                Some((u, _)) => {
                    matched[v] = u;
                    matched[u] = v;
                }
                None => matched[v] = v,
            }
        }

        // Assign coarse identifiers.
        let mut fine_to_coarse = vec![usize::MAX; n];
        let mut next = 0usize;
        for v in 0..n {
            if fine_to_coarse[v] != usize::MAX {
                continue;
            }
            let mate = matched[v];
            fine_to_coarse[v] = next;
            if mate != v && mate != usize::MAX {
                fine_to_coarse[mate] = next;
            }
            next += 1;
        }
        if next as f64 > 0.95 * n as f64 {
            return None; // matching stalled
        }

        let mut vertex_weights = vec![0usize; next];
        for v in 0..n {
            vertex_weights[fine_to_coarse[v]] += self.vertex_weights[v];
        }
        let mut edge_maps: Vec<HashMap<usize, usize>> = vec![HashMap::new(); next];
        for v in 0..n {
            let cv = fine_to_coarse[v];
            for &(u, w) in &self.adjacency[v] {
                let cu = fine_to_coarse[u];
                if cu == cv {
                    continue;
                }
                *edge_maps[cv].entry(cu).or_insert(0) += w;
            }
        }
        // Each undirected edge was visited from both sides; halve the weight.
        let adjacency = edge_maps
            .into_iter()
            .map(|m| {
                sorted_adjacency(
                    m.into_iter()
                        .map(|(u, w)| (u, w.div_ceil(2)))
                        .collect::<HashMap<_, _>>(),
                )
            })
            .collect();
        Some(Level {
            vertex_weights,
            adjacency,
            fine_to_coarse,
        })
    }

    /// Greedy region-growing initial partition balancing vertex weight.
    fn initial_partition(&self, p: usize) -> Vec<usize> {
        let n = self.num_vertices();
        let total_weight: usize = self.vertex_weights.iter().sum();
        let target = total_weight as f64 / p as f64;
        let mut part = vec![usize::MAX; n];
        let mut part_weight = vec![0usize; p];
        let mut current = 0usize;

        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&v| self.adjacency[v].len());
        let mut queue: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
        let mut cursor = 0usize;

        let mut assigned = 0usize;
        while assigned < n {
            let v = match queue.pop_front() {
                Some(v) if part[v] == usize::MAX => v,
                Some(_) => continue,
                None => {
                    while cursor < n && part[order[cursor]] != usize::MAX {
                        cursor += 1;
                    }
                    if cursor >= n {
                        break;
                    }
                    order[cursor]
                }
            };
            if part[v] != usize::MAX {
                continue;
            }
            part[v] = current;
            part_weight[current] += self.vertex_weights[v];
            assigned += 1;
            for &(u, _) in &self.adjacency[v] {
                if part[u] == usize::MAX {
                    queue.push_back(u);
                }
            }
            if part_weight[current] as f64 >= target && current + 1 < p {
                current += 1;
                queue.clear();
            }
        }
        // Anything left (isolated vertices) goes to the lightest part.
        for (v, home) in part.iter_mut().enumerate() {
            if *home == usize::MAX {
                let lightest = (0..p).min_by_key(|&i| part_weight[i]).unwrap_or(0);
                *home = lightest;
                part_weight[lightest] += self.vertex_weights[v];
            }
        }
        part
    }

    /// Boundary KL/FM-style refinement: greedily move boundary vertices to
    /// the neighbouring part with the largest cut-weight gain, subject to the
    /// vertex-weight balance constraint.
    fn refine(&self, part: &mut [usize], p: usize, tolerance: f64, passes: usize) {
        let total_weight: usize = self.vertex_weights.iter().sum();
        let max_weight = ((total_weight as f64 / p as f64) * (1.0 + tolerance)).ceil() as usize;
        let mut part_weight = vec![0usize; p];
        for v in 0..self.num_vertices() {
            part_weight[part[v]] += self.vertex_weights[v];
        }

        for _ in 0..passes {
            let mut moved = 0usize;
            for v in 0..self.num_vertices() {
                let own = part[v];
                // Connectivity of v to each part.
                let mut link = vec![0usize; p];
                for &(u, w) in &self.adjacency[v] {
                    link[part[u]] += w;
                }
                let internal = link[own];
                let mut best_gain = 0isize;
                let mut best_part = own;
                for candidate in 0..p {
                    if candidate == own {
                        continue;
                    }
                    if part_weight[candidate] + self.vertex_weights[v] > max_weight {
                        continue;
                    }
                    let gain = link[candidate] as isize - internal as isize;
                    if gain > best_gain {
                        best_gain = gain;
                        best_part = candidate;
                    }
                }
                if best_part != own {
                    part_weight[own] -= self.vertex_weights[v];
                    part_weight[best_part] += self.vertex_weights[v];
                    part[v] = best_part;
                    moved += 1;
                }
            }
            if moved == 0 {
                break;
            }
        }

        // Balance pass: the greedy initial partition can overshoot the
        // target weight; force every part back under the cap by moving its
        // least-connected vertices to the lightest part, accepting cut-size
        // regressions (METIS likewise prioritizes the balance constraint).
        let mut safety = 4 * self.num_vertices();
        loop {
            safety = safety.saturating_sub(1);
            if safety == 0 {
                break;
            }
            let Some(over) = (0..p).find(|&i| part_weight[i] > max_weight) else {
                break;
            };
            let lightest = (0..p)
                .min_by_key(|&i| part_weight[i])
                .expect("at least one partition");
            if lightest == over {
                break;
            }
            let mut best: Option<(isize, usize)> = None;
            for v in 0..self.num_vertices() {
                if part[v] != over {
                    continue;
                }
                let mut to_lightest = 0usize;
                let mut internal = 0usize;
                for &(u, w) in &self.adjacency[v] {
                    if part[u] == lightest {
                        to_lightest += w;
                    } else if part[u] == over {
                        internal += w;
                    }
                }
                let gain = to_lightest as isize - internal as isize;
                if best.map(|(g, _)| gain > g).unwrap_or(true) {
                    best = Some((gain, v));
                }
            }
            let Some((_, v)) = best else { break };
            part_weight[over] -= self.vertex_weights[v];
            part_weight[lightest] += self.vertex_weights[v];
            part[v] = lightest;
        }
    }
}

impl Partitioner for MetisLikePartitioner {
    fn name(&self) -> String {
        "METIS-like".to_string()
    }

    fn partition(&self, graph: &Graph, num_partitions: usize) -> Result<PartitionResult> {
        check_partition_count(graph, num_partitions)?;
        let p = num_partitions;

        // Phase 1: coarsen.
        let mut levels = vec![Level::from_graph(graph)];
        let stop_at = (self.coarsen_factor * p).max(p * 2);
        while levels.last().expect("non-empty").num_vertices() > stop_at {
            match levels.last().expect("non-empty").coarsen() {
                Some(coarser) => levels.push(coarser),
                None => break,
            }
        }

        // Phase 2: initial partition of the coarsest level.
        let coarsest = levels.last().expect("non-empty");
        let mut part = coarsest.initial_partition(p);
        coarsest.refine(&mut part, p, self.balance_tolerance, self.refinement_passes);

        // Phase 3: uncoarsen and refine level by level.
        for window in (1..levels.len()).rev() {
            let coarse = &levels[window];
            let fine = &levels[window - 1];
            let mut fine_part = vec![0usize; fine.num_vertices()];
            for v in 0..fine.num_vertices() {
                fine_part[v] = part[coarse.fine_to_coarse[v]];
            }
            fine.refine(
                &mut fine_part,
                p,
                self.balance_tolerance,
                self.refinement_passes,
            );
            part = fine_part;
        }

        let assignment = part
            .into_iter()
            .map(PartitionId::from_index)
            .collect::<Vec<_>>();
        Ok(VertexPartition::new(p, assignment)?.into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::RandomEdgeCutPartitioner;
    use crate::metrics::PartitionMetrics;
    use ebv_graph::generators::{named, GraphGenerator, GridGenerator, RmatGenerator};
    use ebv_graph::VertexId;

    #[test]
    fn produces_a_complete_vertex_assignment() {
        let g = RmatGenerator::new(9, 8).with_seed(1).generate().unwrap();
        let result = MetisLikePartitioner::new().partition(&g, 8).unwrap();
        let ec = result.as_edge_cut().unwrap();
        assert_eq!(ec.num_vertices(), g.num_vertices());
        assert_eq!(ec.vertex_counts().iter().sum::<usize>(), g.num_vertices());
    }

    #[test]
    fn vertex_balance_is_tight() {
        let g = RmatGenerator::new(10, 8).with_seed(3).generate().unwrap();
        let m =
            PartitionMetrics::compute(&g, &MetisLikePartitioner::new().partition(&g, 8).unwrap())
                .unwrap();
        assert!(
            m.vertex_imbalance < 1.25,
            "vertex imbalance {}",
            m.vertex_imbalance
        );
    }

    #[test]
    fn cuts_fewer_edges_than_random_placement() {
        let g = GridGenerator::new(30, 30).generate().unwrap();
        let metis = MetisLikePartitioner::new().partition(&g, 4).unwrap();
        let random = RandomEdgeCutPartitioner::new().partition(&g, 4).unwrap();
        let metis_cut = metis.as_edge_cut().unwrap().cut_edges(&g);
        let random_cut = random.as_edge_cut().unwrap().cut_edges(&g);
        assert!(
            metis_cut < random_cut / 2,
            "metis cut {metis_cut} vs random cut {random_cut}"
        );
    }

    #[test]
    fn grid_partition_is_spatially_coherent() {
        // On a mesh the replication factor (Σ|E_i|/|E|) should stay close to
        // 1: few edges cross tiles.
        let g = GridGenerator::new(32, 32).generate().unwrap();
        let m =
            PartitionMetrics::compute(&g, &MetisLikePartitioner::new().partition(&g, 4).unwrap())
                .unwrap();
        assert!(m.replication_factor < 1.2, "rf {}", m.replication_factor);
    }

    #[test]
    fn edge_imbalance_grows_with_skew() {
        let skewed = RmatGenerator::new(11, 16).with_seed(7).generate().unwrap();
        let road = GridGenerator::new(60, 60).generate().unwrap();
        let m_skewed = PartitionMetrics::compute(
            &skewed,
            &MetisLikePartitioner::new().partition(&skewed, 8).unwrap(),
        )
        .unwrap();
        let m_road = PartitionMetrics::compute(
            &road,
            &MetisLikePartitioner::new().partition(&road, 8).unwrap(),
        )
        .unwrap();
        assert!(
            m_skewed.edge_imbalance > m_road.edge_imbalance,
            "skewed {} vs road {}",
            m_skewed.edge_imbalance,
            m_road.edge_imbalance
        );
    }

    #[test]
    fn figure1_graph_partitions_without_panicking() {
        let g = named::figure1_graph();
        let result = MetisLikePartitioner::new().partition(&g, 2).unwrap();
        result.validate(&g).unwrap();
        let ec = result.as_edge_cut().unwrap();
        // Both partitions are non-empty.
        assert!(ec.vertex_counts().iter().all(|&c| c > 0));
        // Every vertex has a valid owner.
        for v in g.vertices() {
            assert!(ec.part_of(v).index() < 2);
        }
        let _ = ec.part_of(VertexId::new(0));
    }

    #[test]
    fn configuration_setters_are_respected() {
        let g = GridGenerator::new(20, 20).generate().unwrap();
        let quick = MetisLikePartitioner::new()
            .with_coarsen_factor(5)
            .with_refinement_passes(1)
            .with_balance_tolerance(0.5)
            .partition(&g, 4)
            .unwrap();
        quick.validate(&g).unwrap();
    }
}
