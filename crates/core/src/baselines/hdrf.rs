//! HDRF — High-Degree Replicated First streaming vertex-cut
//! (Petroni et al., CIKM 2015). Discussed in the paper's related-work
//! section; included here as an extra streaming baseline for the ablations.

use ebv_graph::Graph;

use crate::assignment::{EdgePartition, PartitionResult};
use crate::error::{PartitionError, Result};
use crate::membership::MembershipMatrix;
use crate::ordering::EdgeOrder;
use crate::partitioner::{check_partition_count, Partitioner};
use crate::types::PartitionId;

/// The HDRF streaming vertex-cut partitioner.
///
/// For each edge `(u, v)` HDRF scores every partition with a replication
/// term that prefers partitions already holding `u` or `v` — weighted so
/// that the *lower-degree* endpoint counts more, pushing replication onto
/// hubs — plus a balance term `λ · (maxsize − |E_i|) / (ε + maxsize −
/// minsize)`. The edge goes to the highest-scoring partition.
#[derive(Debug, Clone, PartialEq)]
pub struct HdrfPartitioner {
    lambda: f64,
    order: EdgeOrder,
}

impl Default for HdrfPartitioner {
    fn default() -> Self {
        Self::new()
    }
}

impl HdrfPartitioner {
    /// Creates an HDRF partitioner with the original paper's default
    /// balance weight `λ = 1`.
    pub fn new() -> Self {
        HdrfPartitioner {
            lambda: 1.0,
            order: EdgeOrder::Input,
        }
    }

    /// Sets the balance weight λ.
    pub fn with_lambda(mut self, lambda: f64) -> Self {
        self.lambda = lambda;
        self
    }

    /// Sets the streaming order (default: input order, as HDRF is a one-pass
    /// streaming algorithm).
    pub fn with_order(mut self, order: EdgeOrder) -> Self {
        self.order = order;
        self
    }

    /// Creates the streaming form of this partitioner. HDRF is one-pass by
    /// construction, so under the default input order the streaming output
    /// is bit-identical to [`Partitioner::partition`].
    ///
    /// # Errors
    ///
    /// Returns [`PartitionError::InvalidParameter`] for an invalid `λ` and
    /// [`PartitionError::InvalidPartitionCount`] for a zero partition count.
    pub fn streaming(&self, config: crate::StreamConfig) -> Result<crate::StreamingHdrf> {
        self.validate()?;
        crate::StreamingHdrf::from_parts(self.lambda, config)
    }

    fn validate(&self) -> Result<()> {
        if !self.lambda.is_finite() || self.lambda < 0.0 {
            return Err(PartitionError::InvalidParameter {
                parameter: "lambda",
                message: format!(
                    "lambda must be non-negative and finite, got {}",
                    self.lambda
                ),
            });
        }
        Ok(())
    }

    /// Creates the dynamic (evolving-graph) form of this partitioner, whose
    /// partial degrees and cover state are decremented exactly under edge
    /// deletions; see [`crate::dynamic`]. Insert-only sequences are
    /// bit-identical to [`HdrfPartitioner::streaming`].
    ///
    /// # Errors
    ///
    /// Returns [`PartitionError::InvalidParameter`] for an invalid `λ` and
    /// [`PartitionError::InvalidPartitionCount`] for a zero partition count.
    pub fn dynamic(&self, config: crate::StreamConfig) -> Result<crate::DynamicPartitioner> {
        self.validate()?;
        crate::DynamicPartitioner::hdrf(self.lambda, config)
    }
}

impl Partitioner for HdrfPartitioner {
    fn name(&self) -> String {
        "HDRF".to_string()
    }

    fn partition(&self, graph: &Graph, num_partitions: usize) -> Result<PartitionResult> {
        check_partition_count(graph, num_partitions)?;
        self.validate()?;
        const EPSILON: f64 = 1.0;

        let mut keep = MembershipMatrix::new(graph.num_vertices(), num_partitions);
        let mut ecount = vec![0usize; num_partitions];
        // Partial degrees observed so far in the stream, as in the original
        // single-pass algorithm.
        let mut partial_degree = vec![0usize; graph.num_vertices()];
        let mut assignment = vec![PartitionId::default(); graph.num_edges()];

        for edge_index in self.order.arrange_indices(graph) {
            let edge = graph.edges()[edge_index];
            let (u, v) = edge.endpoints();
            partial_degree[u.index()] += 1;
            partial_degree[v.index()] += 1;
            let du = partial_degree[u.index()] as f64;
            let dv = partial_degree[v.index()] as f64;
            let theta_u = du / (du + dv);
            let theta_v = 1.0 - theta_u;

            let max_size = *ecount.iter().max().expect("non-empty") as f64;
            let min_size = *ecount.iter().min().expect("non-empty") as f64;

            let mut best_part = 0usize;
            let mut best_score = f64::NEG_INFINITY;
            for (i, &edges_here) in ecount.iter().enumerate() {
                let part = PartitionId::from_index(i);
                let mut replication = 0.0;
                if keep.contains(u, part) {
                    replication += 1.0 + (1.0 - theta_u);
                }
                if keep.contains(v, part) {
                    replication += 1.0 + (1.0 - theta_v);
                }
                let balance =
                    self.lambda * (max_size - edges_here as f64) / (EPSILON + max_size - min_size);
                let score = replication + balance;
                if score > best_score {
                    best_score = score;
                    best_part = i;
                }
            }

            let part = PartitionId::from_index(best_part);
            assignment[edge_index] = part;
            ecount[best_part] += 1;
            keep.insert(u, part);
            if v != u {
                keep.insert(v, part);
            }
        }

        Ok(EdgePartition::new(num_partitions, assignment)?.into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::PartitionMetrics;
    use ebv_graph::generators::{named, GraphGenerator, RmatGenerator};

    #[test]
    fn produces_balanced_edges() {
        let g = RmatGenerator::new(10, 8).with_seed(2).generate().unwrap();
        let result = HdrfPartitioner::new().partition(&g, 8).unwrap();
        let m = PartitionMetrics::compute(&g, &result).unwrap();
        assert!(
            m.edge_imbalance < 1.2,
            "edge imbalance {}",
            m.edge_imbalance
        );
        assert!(m.replication_factor >= 1.0);
    }

    #[test]
    fn beats_random_hashing_on_replication() {
        use crate::baselines::RandomVertexCutPartitioner;
        let g = RmatGenerator::new(10, 8).with_seed(6).generate().unwrap();
        let hdrf = PartitionMetrics::compute(&g, &HdrfPartitioner::new().partition(&g, 8).unwrap())
            .unwrap();
        let random = PartitionMetrics::compute(
            &g,
            &RandomVertexCutPartitioner::new().partition(&g, 8).unwrap(),
        )
        .unwrap();
        assert!(hdrf.replication_factor < random.replication_factor);
    }

    #[test]
    fn larger_lambda_improves_balance() {
        let g = RmatGenerator::new(9, 8).with_seed(4).generate().unwrap();
        let loose = HdrfPartitioner::new()
            .with_lambda(0.0)
            .partition(&g, 8)
            .unwrap();
        let tight = HdrfPartitioner::new()
            .with_lambda(5.0)
            .partition(&g, 8)
            .unwrap();
        let m_loose = PartitionMetrics::compute(&g, &loose).unwrap();
        let m_tight = PartitionMetrics::compute(&g, &tight).unwrap();
        assert!(m_tight.edge_imbalance <= m_loose.edge_imbalance + 1e-9);
    }

    #[test]
    fn invalid_lambda_is_rejected() {
        let g = named::figure1_graph();
        assert!(HdrfPartitioner::new()
            .with_lambda(-0.1)
            .partition(&g, 2)
            .is_err());
    }

    #[test]
    fn deterministic() {
        let g = RmatGenerator::new(8, 4).with_seed(1).generate().unwrap();
        assert_eq!(
            HdrfPartitioner::new().partition(&g, 4).unwrap(),
            HdrfPartitioner::new().partition(&g, 4).unwrap()
        );
    }
}
