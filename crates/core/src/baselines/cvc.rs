//! Cartesian (2-D) Vertex-Cut — Boman, Devine & Rajamanickam, SC 2013.

use ebv_graph::Graph;

use crate::assignment::{EdgePartition, PartitionResult};
use crate::baselines::mix64;
use crate::error::Result;
use crate::partitioner::{check_partition_count, Partitioner};
use crate::types::PartitionId;

/// The Cartesian Vertex-Cut (CVC) partitioner.
///
/// CVC arranges the `p` workers as an `r × c` process grid and splits the
/// adjacency matrix in 2-D: edge `(u, v)` goes to the worker at
/// `(row(u), col(v))`, where `row` and `col` hash the endpoints onto the grid
/// axes. Every vertex is then replicated across at most `r + c - 1` workers
/// regardless of its degree — good worst-case behaviour for hubs, but a high
/// replication factor overall (Table III).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CvcPartitioner {
    salt: u64,
}

impl CvcPartitioner {
    /// Creates a CVC partitioner with the default hash salt.
    pub fn new() -> Self {
        CvcPartitioner { salt: 0 }
    }

    /// Uses a different hash salt.
    pub fn with_salt(mut self, salt: u64) -> Self {
        self.salt = salt;
        self
    }

    /// Chooses the most square `r × c = p` grid for the given worker count.
    /// Prime worker counts degrade to a `1 × p` grid, exactly as a real 2-D
    /// partitioner would.
    pub fn grid_shape(num_partitions: usize) -> (usize, usize) {
        let mut best = (1, num_partitions);
        let mut r = 1;
        while r * r <= num_partitions {
            if num_partitions.is_multiple_of(r) {
                best = (r, num_partitions / r);
            }
            r += 1;
        }
        best
    }
}

impl Partitioner for CvcPartitioner {
    fn name(&self) -> String {
        "CVC".to_string()
    }

    fn partition(&self, graph: &Graph, num_partitions: usize) -> Result<PartitionResult> {
        check_partition_count(graph, num_partitions)?;
        let (rows, cols) = Self::grid_shape(num_partitions);
        let assignment = graph
            .edges()
            .iter()
            .map(|edge| {
                let row = mix64(edge.src.raw() ^ self.salt) % rows as u64;
                let col = mix64(edge.dst.raw() ^ self.salt.rotate_left(32)) % cols as u64;
                PartitionId::new((row * cols as u64 + col) as u32)
            })
            .collect();
        Ok(EdgePartition::new(num_partitions, assignment)?.into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::PartitionMetrics;
    use ebv_graph::generators::{GraphGenerator, RmatGenerator};
    use ebv_graph::VertexId;

    #[test]
    fn grid_shape_prefers_square_grids() {
        assert_eq!(CvcPartitioner::grid_shape(12), (3, 4));
        assert_eq!(CvcPartitioner::grid_shape(16), (4, 4));
        assert_eq!(CvcPartitioner::grid_shape(32), (4, 8));
        assert_eq!(CvcPartitioner::grid_shape(7), (1, 7));
        assert_eq!(CvcPartitioner::grid_shape(1), (1, 1));
    }

    #[test]
    fn replicas_per_vertex_are_bounded_by_grid_perimeter() {
        let g = RmatGenerator::new(10, 16).with_seed(2).generate().unwrap();
        let p = 16;
        let (rows, cols) = CvcPartitioner::grid_shape(p);
        let result = CvcPartitioner::new().partition(&g, p).unwrap();
        let membership = result.as_vertex_cut().unwrap().vertex_membership(&g);
        for v in g.vertices() {
            assert!(
                membership.replica_count(v) <= rows + cols,
                "vertex {v} has {} replicas",
                membership.replica_count(v)
            );
        }
        // Even the biggest hub stays below the grid perimeter bound.
        let hub = g
            .vertices()
            .max_by_key(|&v| g.degree(v))
            .unwrap_or(VertexId::new(0));
        assert!(membership.replica_count(hub) <= rows + cols);
    }

    #[test]
    fn edges_are_roughly_balanced() {
        let g = RmatGenerator::new(10, 8).with_seed(5).generate().unwrap();
        let result = CvcPartitioner::new().partition(&g, 16).unwrap();
        let m = PartitionMetrics::compute(&g, &result).unwrap();
        assert!(
            m.edge_imbalance < 1.6,
            "edge imbalance {}",
            m.edge_imbalance
        );
        assert!(m.replication_factor > 1.0);
    }

    #[test]
    fn deterministic_per_salt() {
        let g = RmatGenerator::new(8, 4).with_seed(1).generate().unwrap();
        assert_eq!(
            CvcPartitioner::new().partition(&g, 6).unwrap(),
            CvcPartitioner::new().partition(&g, 6).unwrap()
        );
        assert_ne!(
            CvcPartitioner::new().partition(&g, 6).unwrap(),
            CvcPartitioner::new().with_salt(3).partition(&g, 6).unwrap()
        );
    }
}
