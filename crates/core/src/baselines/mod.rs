//! Baseline partition algorithms evaluated against EBV in the paper.
//!
//! Section V compares EBV against five algorithms spanning both families:
//!
//! | Algorithm | Family | Based on |
//! |-----------|--------|----------|
//! | [`DbhPartitioner`] | vertex-cut, self-based | hash the lower-degree endpoint |
//! | [`GingerPartitioner`] | vertex-cut, self-based | PowerLyra hybrid-cut + Fennel-style greedy |
//! | [`CvcPartitioner`] | vertex-cut, self-based | 2-D (Cartesian) partition of the adjacency matrix |
//! | [`NePartitioner`] | vertex-cut, local-based | neighbour expansion from core vertices |
//! | [`MetisLikePartitioner`] | edge-cut, local-based | multilevel coarsen / partition / refine |
//!
//! Two extra baselines round out the ablations: [`RandomVertexCutPartitioner`]
//! / [`RandomEdgeCutPartitioner`] (pure hashing, the floor for structure
//! awareness) and [`HdrfPartitioner`] (the streaming partitioner discussed in
//! the related-work section).

mod cvc;
mod dbh;
mod ginger;
mod hdrf;
mod metis_like;
mod ne;
mod random;

pub use cvc::CvcPartitioner;
pub use dbh::DbhPartitioner;
pub use ginger::GingerPartitioner;
pub use hdrf::HdrfPartitioner;
pub use metis_like::MetisLikePartitioner;
pub use ne::NePartitioner;
pub use random::{RandomEdgeCutPartitioner, RandomVertexCutPartitioner};

/// A deterministic 64-bit mix used by all hash-based baselines
/// (SplitMix64). Using one shared mixer keeps the baselines comparable and
/// the experiments reproducible across platforms.
pub(crate) fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assignment::PartitionResult;
    use crate::metrics::PartitionMetrics;
    use crate::partitioner::Partitioner;
    use ebv_graph::generators::{GraphGenerator, RmatGenerator};

    /// Shared sanity check: every baseline must produce a complete, valid
    /// assignment whose metrics are computable.
    #[test]
    fn every_baseline_produces_a_valid_partition() {
        let graph = RmatGenerator::new(9, 8).with_seed(1).generate().unwrap();
        let partitioners: Vec<Box<dyn Partitioner>> = vec![
            Box::new(DbhPartitioner::new()),
            Box::new(GingerPartitioner::new()),
            Box::new(CvcPartitioner::new()),
            Box::new(NePartitioner::new()),
            Box::new(MetisLikePartitioner::new()),
            Box::new(HdrfPartitioner::new()),
            Box::new(RandomVertexCutPartitioner::new()),
            Box::new(RandomEdgeCutPartitioner::new()),
        ];
        for p in partitioners {
            let result = p.partition(&graph, 8).unwrap();
            result.validate(&graph).unwrap();
            assert_eq!(result.num_partitions(), 8, "{}", p.name());
            let metrics = PartitionMetrics::compute(&graph, &result).unwrap();
            assert!(metrics.replication_factor >= 1.0, "{}", p.name());
            match &result {
                PartitionResult::VertexCut(vc) => {
                    assert_eq!(vc.num_edges(), graph.num_edges(), "{}", p.name());
                }
                PartitionResult::EdgeCut(ec) => {
                    assert_eq!(ec.num_vertices(), graph.num_vertices(), "{}", p.name());
                }
            }
        }
    }

    #[test]
    fn mix64_is_deterministic_and_spreads_bits() {
        assert_eq!(mix64(1), mix64(1));
        assert_ne!(mix64(1), mix64(2));
        // Low-entropy inputs should not collide onto the same residues.
        let residues: std::collections::HashSet<u64> = (0..64).map(|i| mix64(i) % 16).collect();
        assert!(residues.len() > 8);
    }
}
