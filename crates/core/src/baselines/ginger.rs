//! Ginger — the hybrid-cut of PowerLyra improved with a Fennel-style greedy
//! objective (Chen et al., TOPC 2019).

use ebv_graph::Graph;
#[cfg(test)]
use ebv_graph::VertexId;

use crate::assignment::{EdgePartition, PartitionResult};
use crate::baselines::mix64;
use crate::error::{PartitionError, Result};
use crate::membership::MembershipMatrix;
use crate::partitioner::{check_partition_count, Partitioner};
use crate::types::PartitionId;

/// The Ginger vertex-cut partitioner.
///
/// Ginger differentiates vertices by in-degree, like PowerLyra's hybrid-cut:
///
/// * **low-degree target vertices** are placed greedily — the vertex (and all
///   of its in-edges) goes to the partition maximizing the Fennel-style score
///   `|N_in(v) ∩ V_i| − γ/2 · (vcount_i/(|V|/p) + ecount_i/(|E|/p))`, so that
///   neighbourhoods stay together while the balance penalty spreads load;
/// * **high-degree target vertices** have their in-edges scattered by hashing
///   the *source* endpoint, accepting replication of the hub itself.
///
/// This reproduces the behaviour the paper reports: good balance, lower
/// replication than plain hashing, but a higher replication factor than EBV
/// on power-law graphs.
#[derive(Debug, Clone, PartialEq)]
pub struct GingerPartitioner {
    /// In-degree above which a vertex is treated as high-degree. `None`
    /// selects `4 × average in-degree`, PowerLyra's recommended ballpark.
    degree_threshold: Option<usize>,
    /// Weight of the balance penalty (the paper's Fennel-like γ).
    gamma: f64,
    salt: u64,
}

impl Default for GingerPartitioner {
    fn default() -> Self {
        Self::new()
    }
}

impl GingerPartitioner {
    /// Creates a Ginger partitioner with the default threshold
    /// (4 × average in-degree) and balance weight (γ = 1.5).
    pub fn new() -> Self {
        GingerPartitioner {
            degree_threshold: None,
            gamma: 1.5,
            salt: 0,
        }
    }

    /// Fixes the high-degree threshold explicitly.
    pub fn with_degree_threshold(mut self, threshold: usize) -> Self {
        self.degree_threshold = Some(threshold);
        self
    }

    /// Sets the balance-penalty weight γ.
    pub fn with_gamma(mut self, gamma: f64) -> Self {
        self.gamma = gamma;
        self
    }

    /// Uses a different hash salt for the high-degree fallback.
    pub fn with_salt(mut self, salt: u64) -> Self {
        self.salt = salt;
        self
    }

    fn threshold(&self, graph: &Graph) -> usize {
        self.degree_threshold.unwrap_or_else(|| {
            let avg_in = graph.num_edges() as f64 / graph.num_vertices().max(1) as f64;
            (4.0 * avg_in).ceil() as usize
        })
    }
}

impl Partitioner for GingerPartitioner {
    fn name(&self) -> String {
        "Ginger".to_string()
    }

    fn partition(&self, graph: &Graph, num_partitions: usize) -> Result<PartitionResult> {
        check_partition_count(graph, num_partitions)?;
        if !self.gamma.is_finite() || self.gamma < 0.0 {
            return Err(PartitionError::InvalidParameter {
                parameter: "gamma",
                message: format!("gamma must be non-negative and finite, got {}", self.gamma),
            });
        }
        let threshold = self.threshold(graph);
        let edges_per_part = graph.num_edges() as f64 / num_partitions as f64;
        let vertices_per_part = graph.num_vertices() as f64 / num_partitions as f64;

        let mut keep = MembershipMatrix::new(graph.num_vertices(), num_partitions);
        let mut ecount = vec![0usize; num_partitions];
        let mut vcount = vec![0usize; num_partitions];
        let mut assignment = vec![PartitionId::default(); graph.num_edges()];

        // Index edges by target vertex so a low-degree vertex's in-edges can
        // be assigned as a group.
        let mut edges_by_target: Vec<Vec<usize>> = vec![Vec::new(); graph.num_vertices()];
        for (i, e) in graph.edges().iter().enumerate() {
            edges_by_target[e.dst.index()].push(i);
        }

        let assign = |edge_index: usize,
                      part: PartitionId,
                      keep: &mut MembershipMatrix,
                      ecount: &mut Vec<usize>,
                      vcount: &mut Vec<usize>,
                      assignment: &mut Vec<PartitionId>| {
            let edge = graph.edges()[edge_index];
            assignment[edge_index] = part;
            ecount[part.index()] += 1;
            if keep.insert(edge.src, part) {
                vcount[part.index()] += 1;
            }
            if edge.dst != edge.src && keep.insert(edge.dst, part) {
                vcount[part.index()] += 1;
            }
        };

        for v in graph.vertices() {
            let in_edges = &edges_by_target[v.index()];
            if in_edges.is_empty() {
                continue;
            }
            if graph.in_degree(v) <= threshold {
                // Low-degree: place the whole in-neighbourhood greedily.
                // A hard capacity cap (10% slack over |E|/p, as in Fennel's
                // ν constraint) keeps the greedy locality term from piling
                // everything onto the first partitions.
                let capacity = (1.1 * edges_per_part).ceil() as usize;
                let group = in_edges.len();
                let mut best_part = 0usize;
                let mut best_score = f64::NEG_INFINITY;
                for i in 0..num_partitions {
                    let part = PartitionId::from_index(i);
                    let over_capacity = ecount[i] + group > capacity;
                    let locality = graph
                        .in_neighbors(v)
                        .iter()
                        .filter(|&&u| keep.contains(u, part))
                        .count() as f64
                        + if keep.contains(v, part) { 1.0 } else { 0.0 };
                    let balance = self.gamma / 2.0
                        * (vcount[i] as f64 / vertices_per_part
                            + ecount[i] as f64 / edges_per_part);
                    let mut score = locality - balance;
                    if over_capacity {
                        score -= 1e9;
                    }
                    if score > best_score {
                        best_score = score;
                        best_part = i;
                    }
                }
                let part = PartitionId::from_index(best_part);
                for &edge_index in in_edges {
                    assign(
                        edge_index,
                        part,
                        &mut keep,
                        &mut ecount,
                        &mut vcount,
                        &mut assignment,
                    );
                }
            } else {
                // High-degree: scatter in-edges by source hash, falling back
                // to the least-loaded partition when the hashed one is
                // already over its capacity.
                let capacity = (1.05 * edges_per_part).ceil() as usize;
                for &edge_index in in_edges {
                    let src = graph.edges()[edge_index].src;
                    let hashed = (mix64(src.raw() ^ self.salt) % num_partitions as u64) as usize;
                    let chosen = if ecount[hashed] < capacity {
                        hashed
                    } else {
                        (0..num_partitions)
                            .min_by_key(|&i| ecount[i])
                            .expect("at least one partition")
                    };
                    let part = PartitionId::from_index(chosen);
                    assign(
                        edge_index,
                        part,
                        &mut keep,
                        &mut ecount,
                        &mut vcount,
                        &mut assignment,
                    );
                }
            }
        }

        Ok(EdgePartition::new(num_partitions, assignment)?.into())
    }
}

/// Helper used in tests: the number of distinct partitions holding the
/// in-edges of `v`.
#[cfg(test)]
fn distinct_parts_of_in_edges(graph: &Graph, result: &EdgePartition, v: VertexId) -> usize {
    use std::collections::HashSet;
    graph
        .edges()
        .iter()
        .enumerate()
        .filter(|(_, e)| e.dst == v)
        .map(|(i, _)| result.part_of(i))
        .collect::<HashSet<_>>()
        .len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::PartitionMetrics;
    use ebv_graph::generators::{named, GraphGenerator, RmatGenerator};

    #[test]
    fn low_degree_in_edges_stay_together() {
        let g = RmatGenerator::new(9, 8).with_seed(3).generate().unwrap();
        let result = GingerPartitioner::new().partition(&g, 8).unwrap();
        let vc = result.as_vertex_cut().unwrap();
        let threshold = GingerPartitioner::new().threshold(&g);
        for v in g.vertices() {
            if g.in_degree(v) > 0 && g.in_degree(v) <= threshold {
                assert_eq!(
                    distinct_parts_of_in_edges(&g, vc, v),
                    1,
                    "vertex {v} (in-degree {})",
                    g.in_degree(v)
                );
            }
        }
    }

    #[test]
    fn balance_is_reasonable_on_power_law_graphs() {
        let g = RmatGenerator::new(10, 8).with_seed(5).generate().unwrap();
        let result = GingerPartitioner::new().partition(&g, 8).unwrap();
        let m = PartitionMetrics::compute(&g, &result).unwrap();
        assert!(
            m.edge_imbalance < 1.15,
            "edge imbalance {}",
            m.edge_imbalance
        );
        assert!(m.replication_factor >= 1.0);
    }

    #[test]
    fn explicit_threshold_and_gamma_are_respected() {
        let g = named::small_social_graph();
        // Threshold 0 forces every vertex down the high-degree (hash) path.
        let all_hash = GingerPartitioner::new()
            .with_degree_threshold(0)
            .partition(&g, 4)
            .unwrap();
        // A huge threshold forces every vertex down the greedy path.
        let all_greedy = GingerPartitioner::new()
            .with_degree_threshold(usize::MAX)
            .partition(&g, 4)
            .unwrap();
        let m_hash = PartitionMetrics::compute(&g, &all_hash).unwrap();
        let m_greedy = PartitionMetrics::compute(&g, &all_greedy).unwrap();
        // Greedy grouping keeps neighbourhoods local, so it replicates less.
        assert!(m_greedy.replication_factor <= m_hash.replication_factor + 1e-9);
    }

    #[test]
    fn invalid_gamma_is_rejected() {
        let g = named::figure1_graph();
        assert!(GingerPartitioner::new()
            .with_gamma(f64::NAN)
            .partition(&g, 2)
            .is_err());
        assert!(GingerPartitioner::new()
            .with_gamma(-1.0)
            .partition(&g, 2)
            .is_err());
    }

    #[test]
    fn deterministic() {
        let g = RmatGenerator::new(8, 4).with_seed(1).generate().unwrap();
        assert_eq!(
            GingerPartitioner::new().partition(&g, 4).unwrap(),
            GingerPartitioner::new().partition(&g, 4).unwrap()
        );
    }
}
