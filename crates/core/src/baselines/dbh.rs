//! Degree-Based Hashing (DBH) — Xie et al., NeurIPS 2014.

use ebv_graph::Graph;

use crate::assignment::{EdgePartition, PartitionResult};
use crate::baselines::mix64;
use crate::error::Result;
use crate::partitioner::{check_partition_count, Partitioner};
use crate::types::PartitionId;

/// The Degree-Based Hashing vertex-cut partitioner.
///
/// DBH exploits the skew of power-law graphs directly: each edge is assigned
/// by hashing the identifier of its *lower-degree* endpoint. Low-degree
/// vertices therefore stay whole (all their edges land together) while the
/// hubs — which would be replicated everywhere anyway — absorb the cuts.
/// The result is near-perfect edge balance but a high replication factor, as
/// Table III of the paper shows.
///
/// # Examples
///
/// ```
/// use ebv_graph::generators::{GraphGenerator, RmatGenerator};
/// use ebv_partition::{DbhPartitioner, Partitioner};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let graph = RmatGenerator::new(8, 8).with_seed(0).generate()?;
/// let result = DbhPartitioner::new().partition(&graph, 4)?;
/// assert_eq!(result.num_partitions(), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DbhPartitioner {
    salt: u64,
}

impl DbhPartitioner {
    /// Creates a DBH partitioner with the default hash salt.
    pub fn new() -> Self {
        DbhPartitioner { salt: 0 }
    }

    /// Uses a different hash salt, producing a different (but still
    /// deterministic) assignment. Useful for variance studies.
    pub fn with_salt(mut self, salt: u64) -> Self {
        self.salt = salt;
        self
    }

    /// Creates the streaming (greedy one-pass) form of this partitioner,
    /// which hashes the endpoint with the lower degree *observed so far* —
    /// full degrees are unavailable online, so this intentionally differs
    /// from the batch assignment (see [`crate::streaming`]).
    ///
    /// # Errors
    ///
    /// Returns [`crate::PartitionError::InvalidPartitionCount`] for a zero
    /// partition count.
    pub fn streaming(&self, config: crate::StreamConfig) -> crate::Result<crate::StreamingDbh> {
        crate::StreamingDbh::from_parts(self.salt, config)
    }
}

impl Partitioner for DbhPartitioner {
    fn name(&self) -> String {
        "DBH".to_string()
    }

    fn partition(&self, graph: &Graph, num_partitions: usize) -> Result<PartitionResult> {
        check_partition_count(graph, num_partitions)?;
        let assignment = graph
            .edges()
            .iter()
            .map(|edge| {
                let du = graph.degree(edge.src);
                let dv = graph.degree(edge.dst);
                // Hash the endpoint with the lower degree; break ties toward
                // the source so the choice stays deterministic.
                let key = if du <= dv { edge.src } else { edge.dst };
                let part = mix64(key.raw() ^ self.salt) % num_partitions as u64;
                PartitionId::new(part as u32)
            })
            .collect();
        Ok(EdgePartition::new(num_partitions, assignment)?.into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::PartitionMetrics;
    use ebv_graph::generators::{named, GraphGenerator, RmatGenerator};
    use ebv_graph::VertexId;

    #[test]
    fn low_degree_vertices_keep_all_their_edges_together() {
        let g = named::star_graph(32).unwrap();
        let result = DbhPartitioner::new().partition(&g, 4).unwrap();
        let vc = result.as_vertex_cut().unwrap();
        // Every leaf has degree 2 < hub degree, so both directed edges of a
        // leaf hash on the leaf and land in the same partition.
        for leaf in 1..=32u64 {
            let parts: Vec<PartitionId> = g
                .edges()
                .iter()
                .enumerate()
                .filter(|(_, e)| e.src == VertexId::new(leaf) || e.dst == VertexId::new(leaf))
                .map(|(i, _)| vc.part_of(i))
                .collect();
            assert!(parts.windows(2).all(|w| w[0] == w[1]), "leaf {leaf}");
        }
    }

    #[test]
    fn edges_are_roughly_balanced_on_power_law_graphs() {
        let g = RmatGenerator::new(10, 8).with_seed(7).generate().unwrap();
        let result = DbhPartitioner::new().partition(&g, 8).unwrap();
        let m = PartitionMetrics::compute(&g, &result).unwrap();
        assert!(
            m.edge_imbalance < 1.3,
            "edge imbalance {}",
            m.edge_imbalance
        );
    }

    #[test]
    fn deterministic_per_salt() {
        let g = RmatGenerator::new(8, 4).with_seed(1).generate().unwrap();
        let a = DbhPartitioner::new().partition(&g, 4).unwrap();
        let b = DbhPartitioner::new().partition(&g, 4).unwrap();
        let c = DbhPartitioner::new()
            .with_salt(99)
            .partition(&g, 4)
            .unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn rejects_bad_partition_counts() {
        let g = named::figure1_graph();
        assert!(DbhPartitioner::new().partition(&g, 0).is_err());
        assert!(DbhPartitioner::new().partition(&g, 1_000).is_err());
    }
}
