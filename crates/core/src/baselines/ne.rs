//! Neighbor Expansion (NE) — Zhang et al., KDD 2017.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use ebv_graph::{Graph, VertexId};

use crate::assignment::{EdgePartition, PartitionResult};
use crate::error::Result;
use crate::partitioner::{check_partition_count, Partitioner};
use crate::types::PartitionId;

/// The Neighbor Expansion vertex-cut (edge partitioning) algorithm.
///
/// NE is a *local-based* partitioner: it grows each subgraph around core
/// vertices, repeatedly absorbing the boundary vertex with the fewest
/// unassigned incident edges and claiming those edges, until the subgraph
/// reaches its edge quota `|E|/p`. The last subgraph receives the leftovers.
///
/// Growing connected regions keeps the replication factor low (local
/// structure is preserved), but on power-law graphs the subgraph that
/// swallows a hub covers far more distinct vertices than the others — the
/// vertex imbalance the paper reports for NE in Table III.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NePartitioner {
    _private: (),
}

impl NePartitioner {
    /// Creates an NE partitioner.
    pub fn new() -> Self {
        NePartitioner { _private: () }
    }
}

impl Partitioner for NePartitioner {
    fn name(&self) -> String {
        "NE".to_string()
    }

    fn partition(&self, graph: &Graph, num_partitions: usize) -> Result<PartitionResult> {
        check_partition_count(graph, num_partitions)?;
        let num_edges = graph.num_edges();
        let num_vertices = graph.num_vertices();

        // Incidence lists: for every vertex, the indices of all incident
        // directed edges (out and in).
        let mut incident: Vec<Vec<usize>> = vec![Vec::new(); num_vertices];
        for (i, e) in graph.edges().iter().enumerate() {
            incident[e.src.index()].push(i);
            if e.dst != e.src {
                incident[e.dst.index()].push(i);
            }
        }

        let mut assigned = vec![false; num_edges];
        let mut unassigned_degree: Vec<usize> = incident.iter().map(|v| v.len()).collect();
        let mut assignment = vec![PartitionId::default(); num_edges];
        let mut remaining = num_edges;

        // Seed candidates in ascending total-degree order: NE starts each
        // expansion from a low-degree vertex so early subgraphs stay compact.
        let mut seeds: Vec<usize> = (0..num_vertices).collect();
        seeds.sort_by_key(|&v| graph.degree(VertexId::from(v)));
        let mut seed_cursor = 0usize;

        let mut in_core = vec![false; num_vertices];
        let mut in_boundary = vec![false; num_vertices];

        for k in 0..num_partitions {
            let part = PartitionId::from_index(k);
            let remaining_parts = num_partitions - k;
            let quota = remaining.div_ceil(remaining_parts);
            if quota == 0 {
                continue;
            }
            let mut allocated = 0usize;

            // Reset the per-partition expansion state.
            in_core.iter_mut().for_each(|b| *b = false);
            in_boundary.iter_mut().for_each(|b| *b = false);
            // Min-heap over (unassigned degree, vertex) with lazy deletion.
            let mut boundary: BinaryHeap<Reverse<(usize, usize)>> = BinaryHeap::new();

            while allocated < quota && remaining > 0 {
                // Pick the next vertex to absorb into the core.
                let x = loop {
                    match boundary.pop() {
                        Some(Reverse((key, v))) => {
                            if in_core[v] || unassigned_degree[v] != key {
                                continue; // stale heap entry
                            }
                            if unassigned_degree[v] == 0 {
                                continue;
                            }
                            break Some(v);
                        }
                        None => {
                            // Boundary exhausted: restart from a fresh seed.
                            while seed_cursor < num_vertices
                                && unassigned_degree[seeds[seed_cursor]] == 0
                            {
                                seed_cursor += 1;
                            }
                            break if seed_cursor < num_vertices {
                                Some(seeds[seed_cursor])
                            } else {
                                None
                            };
                        }
                    }
                };
                let Some(x) = x else { break };

                in_core[x] = true;
                // Claim every still-unassigned edge incident to x, stopping
                // at the quota so edge balance stays tight.
                for &edge_index in &incident[x] {
                    if assigned[edge_index] {
                        continue;
                    }
                    if allocated >= quota {
                        break;
                    }
                    assigned[edge_index] = true;
                    assignment[edge_index] = part;
                    allocated += 1;
                    remaining -= 1;
                    let e = graph.edges()[edge_index];
                    for endpoint in [e.src.index(), e.dst.index()] {
                        unassigned_degree[endpoint] = unassigned_degree[endpoint].saturating_sub(1);
                        if !in_core[endpoint] && unassigned_degree[endpoint] > 0 {
                            in_boundary[endpoint] = true;
                            boundary.push(Reverse((unassigned_degree[endpoint], endpoint)));
                        }
                    }
                    // The self-loop case decrements the same endpoint twice,
                    // which saturating_sub already handles.
                }
            }
        }

        // Any stragglers (possible only if quotas rounded oddly) go to the
        // last partition.
        let last = PartitionId::from_index(num_partitions - 1);
        for (i, done) in assigned.iter().enumerate() {
            if !done {
                assignment[i] = last;
            }
        }

        Ok(EdgePartition::new(num_partitions, assignment)?.into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::RandomVertexCutPartitioner;
    use crate::metrics::PartitionMetrics;
    use ebv_graph::generators::{named, GraphGenerator, GridGenerator, RmatGenerator};

    #[test]
    fn assigns_every_edge() {
        let g = RmatGenerator::new(9, 8).with_seed(1).generate().unwrap();
        let result = NePartitioner::new().partition(&g, 8).unwrap();
        let vc = result.as_vertex_cut().unwrap();
        assert_eq!(vc.edge_counts().iter().sum::<usize>(), g.num_edges());
    }

    #[test]
    fn edge_balance_is_tight() {
        let g = RmatGenerator::new(10, 8).with_seed(3).generate().unwrap();
        let m =
            PartitionMetrics::compute(&g, &NePartitioner::new().partition(&g, 8).unwrap()).unwrap();
        assert!(
            m.edge_imbalance < 1.05,
            "edge imbalance {}",
            m.edge_imbalance
        );
    }

    #[test]
    fn replication_beats_random_hashing() {
        let g = RmatGenerator::new(10, 8).with_seed(5).generate().unwrap();
        let ne =
            PartitionMetrics::compute(&g, &NePartitioner::new().partition(&g, 8).unwrap()).unwrap();
        let random = PartitionMetrics::compute(
            &g,
            &RandomVertexCutPartitioner::new().partition(&g, 8).unwrap(),
        )
        .unwrap();
        assert!(
            ne.replication_factor < random.replication_factor,
            "NE {} vs random {}",
            ne.replication_factor,
            random.replication_factor
        );
    }

    #[test]
    fn excellent_on_road_like_graphs() {
        let g = GridGenerator::new(40, 40).generate().unwrap();
        let m =
            PartitionMetrics::compute(&g, &NePartitioner::new().partition(&g, 8).unwrap()).unwrap();
        // Mesh-like graphs partition into compact tiles: tiny replication.
        assert!(m.replication_factor < 1.5, "rf {}", m.replication_factor);
        assert!(m.edge_imbalance < 1.05);
    }

    #[test]
    fn vertex_imbalance_grows_on_power_law_graphs() {
        let g = RmatGenerator::new(11, 16).with_seed(9).generate().unwrap();
        let ne = PartitionMetrics::compute(&g, &NePartitioner::new().partition(&g, 16).unwrap())
            .unwrap();
        let road = GridGenerator::new(60, 60).generate().unwrap();
        let ne_road =
            PartitionMetrics::compute(&road, &NePartitioner::new().partition(&road, 16).unwrap())
                .unwrap();
        // The skewed graph shows clearly more vertex imbalance than the mesh,
        // reproducing the trend of Table III.
        assert!(
            ne.vertex_imbalance > ne_road.vertex_imbalance,
            "power-law {} vs road {}",
            ne.vertex_imbalance,
            ne_road.vertex_imbalance
        );
    }

    #[test]
    fn handles_tiny_graphs_and_bad_counts() {
        let g = named::figure1_graph();
        assert!(NePartitioner::new().partition(&g, 0).is_err());
        let result = NePartitioner::new().partition(&g, 3).unwrap();
        result.validate(&g).unwrap();
    }
}
