//! Pure hash-based partitioners — the floor for structure awareness.

use ebv_graph::Graph;

use crate::assignment::{EdgePartition, PartitionResult, VertexPartition};
use crate::baselines::mix64;
use crate::error::Result;
use crate::partitioner::{check_partition_count, Partitioner};
use crate::types::PartitionId;

/// Random (hash) vertex-cut: every edge is hashed to a partition with no
/// regard for structure. Perfectly balanced edges, worst-case replication —
/// the natural lower bound every structure-aware vertex-cut must beat.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RandomVertexCutPartitioner {
    salt: u64,
}

impl RandomVertexCutPartitioner {
    /// Creates a random vertex-cut partitioner with the default salt.
    pub fn new() -> Self {
        RandomVertexCutPartitioner { salt: 0 }
    }

    /// Uses a different hash salt.
    pub fn with_salt(mut self, salt: u64) -> Self {
        self.salt = salt;
        self
    }

    /// Creates the streaming form of this partitioner. The assignment is a
    /// pure hash of each edge and its stream position, so the streaming
    /// output is bit-identical to [`Partitioner::partition`] and supports
    /// [`crate::StreamingPartitioner::prehasher`] pre-hashing.
    ///
    /// # Errors
    ///
    /// Returns [`crate::PartitionError::InvalidPartitionCount`] for a zero
    /// partition count.
    pub fn streaming(&self, config: crate::StreamConfig) -> crate::Result<crate::StreamingRandom> {
        crate::StreamingRandom::from_parts(self.salt, config)
    }

    /// Creates the dynamic (evolving-graph) form of this partitioner. The
    /// assignment is a pure hash of the edge *endpoints* only — unlike the
    /// streaming form it deliberately ignores the stream position, so after
    /// any insert/delete sequence the assignment equals a from-scratch run
    /// over the surviving edges; see [`crate::dynamic`].
    ///
    /// # Errors
    ///
    /// Returns [`crate::PartitionError::InvalidPartitionCount`] for a zero
    /// partition count.
    pub fn dynamic(&self, config: crate::StreamConfig) -> crate::Result<crate::DynamicPartitioner> {
        crate::DynamicPartitioner::random(self.salt, config)
    }
}

impl Partitioner for RandomVertexCutPartitioner {
    fn name(&self) -> String {
        "Random-VC".to_string()
    }

    fn partition(&self, graph: &Graph, num_partitions: usize) -> Result<PartitionResult> {
        check_partition_count(graph, num_partitions)?;
        let assignment = graph
            .edges()
            .iter()
            .enumerate()
            .map(|(i, edge)| {
                crate::streaming::random_vertex_cut_part(self.salt, num_partitions, *edge, i)
            })
            .collect();
        Ok(EdgePartition::new(num_partitions, assignment)?.into())
    }
}

/// Random (hash) edge-cut: every vertex is hashed to a partition, the
/// default placement of vertex-centric systems such as Giraph/Pregel.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RandomEdgeCutPartitioner {
    salt: u64,
}

impl RandomEdgeCutPartitioner {
    /// Creates a random edge-cut partitioner with the default salt.
    pub fn new() -> Self {
        RandomEdgeCutPartitioner { salt: 0 }
    }

    /// Uses a different hash salt.
    pub fn with_salt(mut self, salt: u64) -> Self {
        self.salt = salt;
        self
    }
}

impl Partitioner for RandomEdgeCutPartitioner {
    fn name(&self) -> String {
        "Random-EC".to_string()
    }

    fn partition(&self, graph: &Graph, num_partitions: usize) -> Result<PartitionResult> {
        check_partition_count(graph, num_partitions)?;
        let assignment = graph
            .vertices()
            .map(|v| PartitionId::new((mix64(v.raw() ^ self.salt) % num_partitions as u64) as u32))
            .collect();
        Ok(VertexPartition::new(num_partitions, assignment)?.into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::PartitionMetrics;
    use ebv_graph::generators::{GraphGenerator, RmatGenerator};

    #[test]
    fn random_vertex_cut_balances_edges_but_replicates_heavily() {
        let g = RmatGenerator::new(10, 8).with_seed(3).generate().unwrap();
        let result = RandomVertexCutPartitioner::new().partition(&g, 8).unwrap();
        let m = PartitionMetrics::compute(&g, &result).unwrap();
        assert!(m.edge_imbalance < 1.1);
        assert!(m.replication_factor > 1.5);
    }

    #[test]
    fn random_edge_cut_balances_vertices() {
        let g = RmatGenerator::new(10, 8).with_seed(3).generate().unwrap();
        let result = RandomEdgeCutPartitioner::new().partition(&g, 8).unwrap();
        let m = PartitionMetrics::compute(&g, &result).unwrap();
        assert!(
            m.vertex_imbalance < 1.2,
            "vertex imbalance {}",
            m.vertex_imbalance
        );
    }

    #[test]
    fn both_are_deterministic_and_salt_sensitive() {
        let g = RmatGenerator::new(8, 4).with_seed(1).generate().unwrap();
        assert_eq!(
            RandomVertexCutPartitioner::new().partition(&g, 4).unwrap(),
            RandomVertexCutPartitioner::new().partition(&g, 4).unwrap()
        );
        assert_ne!(
            RandomVertexCutPartitioner::new().partition(&g, 4).unwrap(),
            RandomVertexCutPartitioner::new()
                .with_salt(5)
                .partition(&g, 4)
                .unwrap()
        );
        assert_eq!(
            RandomEdgeCutPartitioner::new().partition(&g, 4).unwrap(),
            RandomEdgeCutPartitioner::new().partition(&g, 4).unwrap()
        );
    }
}
