//! Identifier types for partitions.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of a partition (subgraph / worker).
///
/// Partition identifiers are dense: partitioning into `p` subgraphs uses the
/// identifiers `0..p`, matching the paper's `i ∈ [1, p]` (shifted to
/// zero-based indexing).
///
/// # Examples
///
/// ```
/// use ebv_partition::PartitionId;
///
/// let p = PartitionId::new(3);
/// assert_eq!(p.index(), 3);
/// assert_eq!(format!("{p}"), "3");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct PartitionId(u32);

impl PartitionId {
    /// Creates a partition identifier from its dense index.
    #[inline]
    pub const fn new(raw: u32) -> Self {
        PartitionId(raw)
    }

    /// Creates a partition identifier from a `usize` index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in 32 bits (far beyond any realistic
    /// worker count).
    #[inline]
    pub fn from_index(index: usize) -> Self {
        PartitionId(u32::try_from(index).expect("partition index exceeds u32::MAX"))
    }

    /// Returns the raw 32-bit value of this identifier.
    #[inline]
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// Returns the identifier as a `usize` suitable for indexing
    /// per-partition arrays.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PartitionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for PartitionId {
    fn from(raw: u32) -> Self {
        PartitionId(raw)
    }
}

impl From<PartitionId> for u32 {
    fn from(id: PartitionId) -> Self {
        id.0
    }
}

impl From<PartitionId> for usize {
    fn from(id: PartitionId) -> Self {
        id.index()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_conversions() {
        let p = PartitionId::new(5);
        assert_eq!(p.raw(), 5);
        assert_eq!(p.index(), 5);
        assert_eq!(u32::from(p), 5);
        assert_eq!(usize::from(p), 5);
        assert_eq!(PartitionId::from(5u32), p);
        assert_eq!(PartitionId::from_index(5), p);
    }

    #[test]
    fn ordering_and_display() {
        assert!(PartitionId::new(1) < PartitionId::new(2));
        assert_eq!(PartitionId::new(7).to_string(), "7");
        assert_eq!(PartitionId::default(), PartitionId::new(0));
    }

    #[test]
    #[should_panic(expected = "partition index exceeds")]
    fn from_index_panics_on_overflow() {
        let _ = PartitionId::from_index(usize::MAX);
    }
}
