//! Streaming (online) forms of the vertex-cut partitioners.
//!
//! EBV is defined by the paper as a *single-pass* algorithm: Algorithm 1
//! walks the edge list once and keeps only O(|V| · p) bits of state. The
//! batch [`Partitioner`](crate::Partitioner) interface hides that property
//! behind a fully materialized [`Graph`](ebv_graph::Graph); this module
//! exposes it directly. A [`StreamingPartitioner`] consumes edges one at a
//! time — [`StreamingPartitioner::ingest`] returns the partition of each
//! edge in O(state) — and [`StreamingPartitioner::finish`] produces the same
//! [`PartitionResult`] the batch interface would.
//!
//! Guarantees:
//!
//! * **EBV** ([`StreamingEbv`]): with exact
//!   [`StreamConfig::with_expected_vertices`]/[`StreamConfig::with_expected_edges`]
//!   hints, the output is *bit-identical* to
//!   [`EbvPartitioner`](crate::EbvPartitioner) under
//!   [`EdgeOrder::Input`](crate::EdgeOrder::Input). Without hints it runs in
//!   a self-normalizing online mode (balance terms normalized by the stream
//!   seen so far).
//! * **HDRF** ([`StreamingHdrf`]): bit-identical to
//!   [`HdrfPartitioner`](crate::HdrfPartitioner) in its default input order
//!   — HDRF was a one-pass algorithm all along.
//! * **Random** ([`StreamingRandom`]): bit-identical to
//!   [`RandomVertexCutPartitioner`](crate::RandomVertexCutPartitioner); the
//!   assignment is a pure hash of the edge and its stream position, exposed
//!   through [`StreamingPartitioner::prehasher`] so pipelines can
//!   pre-compute it in parallel.
//! * **DBH** ([`StreamingDbh`]): a greedy one-pass variant that hashes the
//!   endpoint with the lower *partial* degree (the degree observed in the
//!   stream so far, as in the original streaming formulation), since full
//!   degrees are unavailable online. It intentionally differs from the
//!   batch [`DbhPartitioner`](crate::DbhPartitioner), which uses final
//!   degrees.

use std::fmt;
use std::sync::Arc;

use ebv_graph::{Edge, VertexId};

use crate::assignment::{EdgePartition, PartitionResult};
use crate::baselines::mix64;
use crate::error::{PartitionError, Result};
use crate::membership::MembershipMatrix;
use crate::types::PartitionId;

/// Configuration shared by every streaming partitioner: the partition count
/// plus optional cardinality hints.
///
/// The hints matter for EBV: Algorithm 1 normalizes its balance terms by
/// `|E| / p` and `|V| / p`, which a one-pass algorithm cannot know mid
/// stream. Supplying the exact totals reproduces the batch output exactly;
/// omitting them switches to running normalizers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamConfig {
    num_partitions: usize,
    expected_vertices: Option<usize>,
    expected_edges: Option<usize>,
}

impl StreamConfig {
    /// Creates a configuration for `num_partitions` partitions and no
    /// cardinality hints.
    pub fn new(num_partitions: usize) -> Self {
        StreamConfig {
            num_partitions,
            expected_vertices: None,
            expected_edges: None,
        }
    }

    /// Declares the number of vertices the stream will reference. A zero
    /// hint carries no information and is treated as "no hint".
    pub fn with_expected_vertices(mut self, num_vertices: usize) -> Self {
        self.expected_vertices = (num_vertices > 0).then_some(num_vertices);
        self
    }

    /// Declares the number of edges the stream will deliver. A zero hint
    /// carries no information and is treated as "no hint", so a wrong zero
    /// can never poison EBV's balance normalizers.
    pub fn with_expected_edges(mut self, num_edges: usize) -> Self {
        self.expected_edges = (num_edges > 0).then_some(num_edges);
        self
    }

    /// The configured partition count.
    pub fn num_partitions(&self) -> usize {
        self.num_partitions
    }

    /// The declared vertex count, if any.
    pub fn expected_vertices(&self) -> Option<usize> {
        self.expected_vertices
    }

    /// The declared edge count, if any.
    pub fn expected_edges(&self) -> Option<usize> {
        self.expected_edges
    }

    fn validate(&self) -> Result<()> {
        if self.num_partitions == 0 {
            return Err(PartitionError::InvalidPartitionCount {
                requested: 0,
                message: "at least one partition is required".to_string(),
            });
        }
        Ok(())
    }
}

/// Running partition-quality metrics over the prefix of the stream ingested
/// so far — the same three quantities as
/// [`PartitionMetrics`](crate::PartitionMetrics), computed incrementally.
///
/// When the stream is exhausted (and exact cardinality hints were given for
/// the vertex universe) these equal the batch metrics of the final
/// partition exactly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamingMetrics {
    /// Number of edges ingested so far.
    pub edges_ingested: usize,
    /// Size of the vertex universe: the configured
    /// [`StreamConfig::with_expected_vertices`] hint, or the densely
    /// numbered universe implied by the largest endpoint seen so far.
    pub observed_vertices: usize,
    /// `max_i |E_i| / (edges_ingested / p)`.
    pub edge_imbalance: f64,
    /// `max_i |V_i| / (Σ_i |V_i| / p)`.
    pub vertex_imbalance: f64,
    /// `Σ_i |V_i| / observed_vertices`.
    pub replication_factor: f64,
}

impl fmt::Display for StreamingMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} edges: edge imbalance {:.3}, vertex imbalance {:.3}, replication factor {:.3}",
            self.edges_ingested,
            self.edge_imbalance,
            self.vertex_imbalance,
            self.replication_factor
        )
    }
}

/// A one-pass vertex-cut partitioner: edges go in, partition assignments
/// come out, and only O(state) work happens per edge.
///
/// Obtain implementations from the batch configurations via
/// [`EbvPartitioner::streaming`](crate::EbvPartitioner::streaming),
/// [`HdrfPartitioner::streaming`](crate::HdrfPartitioner::streaming),
/// [`DbhPartitioner::streaming`](crate::DbhPartitioner::streaming) and
/// [`RandomVertexCutPartitioner::streaming`](crate::RandomVertexCutPartitioner::streaming).
/// The trait is object safe; pipelines drive `Box<dyn
/// StreamingPartitioner>` values.
pub trait StreamingPartitioner {
    /// A short, stable name used in reports (e.g. `"EBV-stream"`).
    fn name(&self) -> String;

    /// The configured partition count.
    fn num_partitions(&self) -> usize;

    /// Assigns the next edge of the stream to a partition and updates the
    /// internal state. O(p) for score-based partitioners, O(1) for
    /// hash-based ones.
    fn ingest(&mut self, edge: Edge) -> PartitionId;

    /// Like [`ingest`](StreamingPartitioner::ingest), but with a partition
    /// pre-computed by this partitioner's
    /// [`prehasher`](StreamingPartitioner::prehasher). Implementations whose
    /// assignment equals the hint skip re-scoring; the default ignores the
    /// hint.
    fn ingest_hinted(&mut self, edge: Edge, hint: PartitionId) -> PartitionId {
        let _ = hint;
        self.ingest(edge)
    }

    /// For partitioners whose assignment is a pure function of the edge and
    /// its stream position: a self-contained hasher computing the partition
    /// an edge *will* get. The closure is `Send + Sync`, so pipelines can
    /// fan it out over worker threads to pre-hash whole chunks in parallel
    /// and then replay the results through
    /// [`ingest_hinted`](StreamingPartitioner::ingest_hinted). Returns
    /// `None` for state-dependent partitioners, which must score
    /// sequentially.
    fn prehasher(&self) -> Option<Arc<dyn Fn(Edge, usize) -> PartitionId + Send + Sync>> {
        None
    }

    /// Number of edges ingested so far.
    fn edges_ingested(&self) -> usize;

    /// Running quality metrics over the prefix ingested so far.
    fn delta_metrics(&self) -> StreamingMetrics;

    /// Approximate bytes of partitioner state currently resident (the
    /// membership bitset, per-partition counters, degree tables and the
    /// assignment log). A memory proxy for benchmarks; excludes allocator
    /// overhead.
    fn state_bytes(&self) -> usize;

    /// Consumes the accumulated assignment and returns the final
    /// [`PartitionResult`]. The partitioner is empty afterwards: a second
    /// call observes a partitioner that has ingested nothing.
    ///
    /// # Errors
    ///
    /// Propagates [`PartitionError`] from result construction.
    fn finish(&mut self) -> Result<PartitionResult>;
}

/// State shared by every streaming implementation: the membership bitset,
/// per-partition edge counters and the assignment log.
#[derive(Debug, Clone)]
struct StreamState {
    num_partitions: usize,
    keep: MembershipMatrix,
    ecount: Vec<usize>,
    assignment: Vec<PartitionId>,
    max_vertex_exclusive: usize,
    expected_vertices: Option<usize>,
    expected_edges: Option<usize>,
}

impl StreamState {
    fn new(config: StreamConfig) -> Result<Self> {
        config.validate()?;
        let initial_vertices = config.expected_vertices.unwrap_or(0);
        Ok(StreamState {
            num_partitions: config.num_partitions,
            keep: MembershipMatrix::new(initial_vertices, config.num_partitions),
            ecount: vec![0; config.num_partitions],
            assignment: Vec::new(),
            max_vertex_exclusive: 0,
            expected_vertices: config.expected_vertices,
            expected_edges: config.expected_edges,
        })
    }

    /// Grows the vertex universe to cover both endpoints.
    fn observe(&mut self, edge: Edge) {
        let needed = edge.src.index().max(edge.dst.index()) + 1;
        if needed > self.max_vertex_exclusive {
            self.max_vertex_exclusive = needed;
        }
        self.keep.grow_to(needed);
    }

    /// Records the chosen partition for an edge: bumps the edge counter,
    /// inserts both endpoints into the membership set and logs the
    /// assignment.
    fn record(&mut self, edge: Edge, part: PartitionId) {
        self.assignment.push(part);
        self.ecount[part.index()] += 1;
        self.keep.insert(edge.src, part);
        if edge.dst != edge.src {
            self.keep.insert(edge.dst, part);
        }
    }

    fn vcount(&self, i: usize) -> usize {
        self.keep.partition_size(PartitionId::from_index(i))
    }

    fn observed_vertices(&self) -> usize {
        self.expected_vertices
            .unwrap_or(0)
            .max(self.max_vertex_exclusive)
    }

    fn metrics(&self) -> StreamingMetrics {
        let p = self.num_partitions;
        let edges = self.assignment.len();
        let max_edges = self.ecount.iter().copied().max().unwrap_or(0) as f64;
        let vcounts: Vec<usize> = (0..p).map(|i| self.vcount(i)).collect();
        let max_vertices = vcounts.iter().copied().max().unwrap_or(0) as f64;
        let total_replicas: usize = vcounts.iter().sum();
        let observed = self.observed_vertices();
        let edge_imbalance = if edges == 0 {
            1.0
        } else {
            max_edges / (edges as f64 / p as f64)
        };
        let vertex_imbalance = if total_replicas == 0 {
            1.0
        } else {
            max_vertices / (total_replicas as f64 / p as f64)
        };
        let replication_factor = if observed == 0 {
            1.0
        } else {
            total_replicas as f64 / observed as f64
        };
        StreamingMetrics {
            edges_ingested: edges,
            observed_vertices: observed,
            edge_imbalance,
            vertex_imbalance,
            replication_factor,
        }
    }

    fn state_bytes(&self) -> usize {
        let words_per_row = self.num_partitions.div_ceil(64).max(1);
        self.keep.num_vertices() * words_per_row * 8
            + self.num_partitions * 2 * std::mem::size_of::<usize>()
            + self.assignment.len() * std::mem::size_of::<PartitionId>()
    }

    fn take_result(&mut self) -> Result<PartitionResult> {
        let assignment = std::mem::take(&mut self.assignment);
        let reset_vertices = self.expected_vertices.unwrap_or(0);
        self.keep = MembershipMatrix::new(reset_vertices, self.num_partitions);
        self.ecount = vec![0; self.num_partitions];
        self.max_vertex_exclusive = 0;
        Ok(EdgePartition::new(self.num_partitions, assignment)?.into())
    }
}

/// The streaming form of [`EbvPartitioner`](crate::EbvPartitioner) — see the
/// [module documentation](self) for the exactness guarantee.
#[derive(Debug, Clone)]
pub struct StreamingEbv {
    alpha: f64,
    beta: f64,
    state: StreamState,
}

impl StreamingEbv {
    pub(crate) fn from_parts(alpha: f64, beta: f64, config: StreamConfig) -> Result<Self> {
        Ok(StreamingEbv {
            alpha,
            beta,
            state: StreamState::new(config)?,
        })
    }
}

impl StreamingPartitioner for StreamingEbv {
    fn name(&self) -> String {
        "EBV-stream".to_string()
    }

    fn num_partitions(&self) -> usize {
        self.state.num_partitions
    }

    fn ingest(&mut self, edge: Edge) -> PartitionId {
        self.state.observe(edge);
        let p = self.state.num_partitions;
        let (u, v) = edge.endpoints();

        // The batch algorithm normalizes by |E| / p and |V| / p of the full
        // graph; the online fallback normalizes by the stream seen so far
        // (including the edge being placed).
        let edges_per_part = match self.state.expected_edges {
            Some(e) => e as f64 / p as f64,
            None => (self.state.assignment.len() + 1) as f64 / p as f64,
        };
        let vertices_per_part = self.state.observed_vertices() as f64 / p as f64;

        let mut best_part = 0usize;
        let mut best_score = f64::INFINITY;
        for i in 0..p {
            let part = PartitionId::from_index(i);
            let mut score = 0.0;
            if !self.state.keep.contains(u, part) {
                score += 1.0;
            }
            if !self.state.keep.contains(v, part) {
                score += 1.0;
            }
            score += self.alpha * self.state.ecount[i] as f64 / edges_per_part;
            score += self.beta * self.state.vcount(i) as f64 / vertices_per_part;
            if score < best_score {
                best_score = score;
                best_part = i;
            }
        }

        let part = PartitionId::from_index(best_part);
        self.state.record(edge, part);
        part
    }

    fn edges_ingested(&self) -> usize {
        self.state.assignment.len()
    }

    fn delta_metrics(&self) -> StreamingMetrics {
        self.state.metrics()
    }

    fn state_bytes(&self) -> usize {
        self.state.state_bytes()
    }

    fn finish(&mut self) -> Result<PartitionResult> {
        self.state.take_result()
    }
}

/// The streaming form of [`HdrfPartitioner`](crate::HdrfPartitioner) —
/// bit-identical to the batch form, which is itself one-pass.
#[derive(Debug, Clone)]
pub struct StreamingHdrf {
    lambda: f64,
    partial_degree: Vec<usize>,
    state: StreamState,
}

impl StreamingHdrf {
    pub(crate) fn from_parts(lambda: f64, config: StreamConfig) -> Result<Self> {
        Ok(StreamingHdrf {
            lambda,
            partial_degree: vec![0; config.expected_vertices().unwrap_or(0)],
            state: StreamState::new(config)?,
        })
    }
}

impl StreamingPartitioner for StreamingHdrf {
    fn name(&self) -> String {
        "HDRF-stream".to_string()
    }

    fn num_partitions(&self) -> usize {
        self.state.num_partitions
    }

    fn ingest(&mut self, edge: Edge) -> PartitionId {
        const EPSILON: f64 = 1.0;
        self.state.observe(edge);
        if self.partial_degree.len() < self.state.max_vertex_exclusive {
            self.partial_degree
                .resize(self.state.max_vertex_exclusive, 0);
        }
        let p = self.state.num_partitions;
        let (u, v) = edge.endpoints();

        self.partial_degree[u.index()] += 1;
        self.partial_degree[v.index()] += 1;
        let du = self.partial_degree[u.index()] as f64;
        let dv = self.partial_degree[v.index()] as f64;
        let theta_u = du / (du + dv);
        let theta_v = 1.0 - theta_u;

        let max_size = *self.state.ecount.iter().max().expect("non-empty") as f64;
        let min_size = *self.state.ecount.iter().min().expect("non-empty") as f64;

        let mut best_part = 0usize;
        let mut best_score = f64::NEG_INFINITY;
        for i in 0..p {
            let part = PartitionId::from_index(i);
            let mut replication = 0.0;
            if self.state.keep.contains(u, part) {
                replication += 1.0 + (1.0 - theta_u);
            }
            if self.state.keep.contains(v, part) {
                replication += 1.0 + (1.0 - theta_v);
            }
            let balance = self.lambda * (max_size - self.state.ecount[i] as f64)
                / (EPSILON + max_size - min_size);
            let score = replication + balance;
            if score > best_score {
                best_score = score;
                best_part = i;
            }
        }

        let part = PartitionId::from_index(best_part);
        self.state.record(edge, part);
        part
    }

    fn edges_ingested(&self) -> usize {
        self.state.assignment.len()
    }

    fn delta_metrics(&self) -> StreamingMetrics {
        self.state.metrics()
    }

    fn state_bytes(&self) -> usize {
        self.state.state_bytes() + self.partial_degree.len() * std::mem::size_of::<usize>()
    }

    fn finish(&mut self) -> Result<PartitionResult> {
        self.partial_degree.clear();
        self.state.take_result()
    }
}

/// The streaming (greedy one-pass) form of
/// [`DbhPartitioner`](crate::DbhPartitioner): hashes the endpoint with the
/// lower degree *observed so far* in the stream.
#[derive(Debug, Clone)]
pub struct StreamingDbh {
    salt: u64,
    partial_degree: Vec<usize>,
    state: StreamState,
}

impl StreamingDbh {
    pub(crate) fn from_parts(salt: u64, config: StreamConfig) -> Result<Self> {
        Ok(StreamingDbh {
            salt,
            partial_degree: vec![0; config.expected_vertices().unwrap_or(0)],
            state: StreamState::new(config)?,
        })
    }
}

impl StreamingPartitioner for StreamingDbh {
    fn name(&self) -> String {
        "DBH-stream".to_string()
    }

    fn num_partitions(&self) -> usize {
        self.state.num_partitions
    }

    fn ingest(&mut self, edge: Edge) -> PartitionId {
        self.state.observe(edge);
        if self.partial_degree.len() < self.state.max_vertex_exclusive {
            self.partial_degree
                .resize(self.state.max_vertex_exclusive, 0);
        }
        self.partial_degree[edge.src.index()] += 1;
        self.partial_degree[edge.dst.index()] += 1;
        let du = self.partial_degree[edge.src.index()];
        let dv = self.partial_degree[edge.dst.index()];
        // Hash the endpoint with the lower partial degree; ties toward the
        // source, matching the batch tie-breaking rule.
        let key: VertexId = if du <= dv { edge.src } else { edge.dst };
        let part = PartitionId::new(
            (mix64(key.raw() ^ self.salt) % self.state.num_partitions as u64) as u32,
        );
        self.state.record(edge, part);
        part
    }

    fn edges_ingested(&self) -> usize {
        self.state.assignment.len()
    }

    fn delta_metrics(&self) -> StreamingMetrics {
        self.state.metrics()
    }

    fn state_bytes(&self) -> usize {
        self.state.state_bytes() + self.partial_degree.len() * std::mem::size_of::<usize>()
    }

    fn finish(&mut self) -> Result<PartitionResult> {
        self.partial_degree.clear();
        self.state.take_result()
    }
}

/// The streaming form of
/// [`RandomVertexCutPartitioner`](crate::RandomVertexCutPartitioner) —
/// bit-identical to the batch form, and a pure hash of `(edge, position)`,
/// so it supports [`StreamingPartitioner::prehasher`].
#[derive(Debug, Clone)]
pub struct StreamingRandom {
    salt: u64,
    state: StreamState,
}

/// The Random-VC assignment: a pure hash of the edge and its stream
/// position. The single source of truth shared by the batch
/// [`RandomVertexCutPartitioner`](crate::RandomVertexCutPartitioner), the
/// streaming [`StreamingRandom`] and its parallel prehasher — their
/// agreement *is* the bit-identical guarantee, so never fork this formula.
pub(crate) fn random_vertex_cut_part(
    salt: u64,
    num_partitions: usize,
    edge: Edge,
    index: usize,
) -> PartitionId {
    let key =
        mix64(edge.src.raw()) ^ mix64(edge.dst.raw().rotate_left(17)) ^ mix64(index as u64 ^ salt);
    PartitionId::new((mix64(key) % num_partitions as u64) as u32)
}

impl StreamingRandom {
    pub(crate) fn from_parts(salt: u64, config: StreamConfig) -> Result<Self> {
        Ok(StreamingRandom {
            salt,
            state: StreamState::new(config)?,
        })
    }

    fn hash(&self, edge: Edge, index: usize) -> PartitionId {
        random_vertex_cut_part(self.salt, self.state.num_partitions, edge, index)
    }
}

impl StreamingPartitioner for StreamingRandom {
    fn name(&self) -> String {
        "Random-VC-stream".to_string()
    }

    fn num_partitions(&self) -> usize {
        self.state.num_partitions
    }

    fn ingest(&mut self, edge: Edge) -> PartitionId {
        let part = self.hash(edge, self.state.assignment.len());
        self.ingest_hinted(edge, part)
    }

    fn ingest_hinted(&mut self, edge: Edge, hint: PartitionId) -> PartitionId {
        self.state.observe(edge);
        self.state.record(edge, hint);
        hint
    }

    fn prehasher(&self) -> Option<Arc<dyn Fn(Edge, usize) -> PartitionId + Send + Sync>> {
        let salt = self.salt;
        let num_partitions = self.state.num_partitions;
        Some(Arc::new(move |edge, index| {
            random_vertex_cut_part(salt, num_partitions, edge, index)
        }))
    }

    fn edges_ingested(&self) -> usize {
        self.state.assignment.len()
    }

    fn delta_metrics(&self) -> StreamingMetrics {
        self.state.metrics()
    }

    fn state_bytes(&self) -> usize {
        self.state.state_bytes()
    }

    fn finish(&mut self) -> Result<PartitionResult> {
        self.state.take_result()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::PartitionMetrics;
    use crate::partitioner::Partitioner;
    use crate::prelude::*;
    use ebv_graph::generators::{named, GraphGenerator, RmatGenerator};
    use ebv_graph::Graph;

    fn stream_all(partitioner: &mut dyn StreamingPartitioner, graph: &Graph) -> PartitionResult {
        for &edge in graph.edges() {
            partitioner.ingest(edge);
        }
        partitioner.finish().unwrap()
    }

    fn exact_config(graph: &Graph, p: usize) -> StreamConfig {
        StreamConfig::new(p)
            .with_expected_vertices(graph.num_vertices())
            .with_expected_edges(graph.num_edges())
    }

    #[test]
    fn streaming_ebv_matches_batch_under_input_order() {
        let g = RmatGenerator::new(9, 8).with_seed(13).generate().unwrap();
        for p in [1, 2, 5, 8] {
            let batch = EbvPartitioner::new().unsorted().partition(&g, p).unwrap();
            let mut streaming = EbvPartitioner::new()
                .unsorted()
                .streaming(exact_config(&g, p))
                .unwrap();
            let streamed = stream_all(&mut streaming, &g);
            assert_eq!(batch, streamed, "p = {p}");
        }
    }

    #[test]
    fn streaming_hdrf_and_random_match_batch() {
        let g = RmatGenerator::new(8, 8).with_seed(5).generate().unwrap();
        let batch_hdrf = HdrfPartitioner::new().partition(&g, 4).unwrap();
        let mut s_hdrf = HdrfPartitioner::new()
            .streaming(exact_config(&g, 4))
            .unwrap();
        assert_eq!(batch_hdrf, stream_all(&mut s_hdrf, &g));

        let batch_random = RandomVertexCutPartitioner::new().partition(&g, 4).unwrap();
        let mut s_random = RandomVertexCutPartitioner::new()
            .streaming(StreamConfig::new(4))
            .unwrap();
        assert_eq!(batch_random, stream_all(&mut s_random, &g));
    }

    #[test]
    fn delta_metrics_match_batch_metrics_at_end_of_stream() {
        let g = RmatGenerator::new(8, 8).with_seed(3).generate().unwrap();
        let mut streaming = EbvPartitioner::new()
            .streaming(exact_config(&g, 6))
            .unwrap();
        for &edge in g.edges() {
            streaming.ingest(edge);
        }
        let delta = streaming.delta_metrics();
        let result = streaming.finish().unwrap();
        let batch = PartitionMetrics::compute(&g, &result).unwrap();
        assert_eq!(delta.edge_imbalance, batch.edge_imbalance);
        assert_eq!(delta.vertex_imbalance, batch.vertex_imbalance);
        assert_eq!(delta.replication_factor, batch.replication_factor);
        assert_eq!(delta.edges_ingested, g.num_edges());
    }

    #[test]
    fn streaming_dbh_is_a_reasonable_online_variant() {
        let g = RmatGenerator::new(9, 8).with_seed(2).generate().unwrap();
        let mut streaming = DbhPartitioner::new()
            .streaming(StreamConfig::new(8))
            .unwrap();
        let result = stream_all(&mut streaming, &g);
        result.validate(&g).unwrap();
        let m = PartitionMetrics::compute(&g, &result).unwrap();
        assert!(
            m.edge_imbalance < 1.5,
            "edge imbalance {}",
            m.edge_imbalance
        );
        assert!(m.replication_factor >= 1.0);
    }

    #[test]
    fn online_mode_without_hints_still_balances() {
        let g = RmatGenerator::new(9, 8).with_seed(17).generate().unwrap();
        let mut streaming = EbvPartitioner::new()
            .streaming(StreamConfig::new(8))
            .unwrap();
        let result = stream_all(&mut streaming, &g);
        result.validate(&g).unwrap();
        let m = PartitionMetrics::compute(&g, &result).unwrap();
        assert!(
            m.edge_imbalance < 1.3,
            "edge imbalance {}",
            m.edge_imbalance
        );
        assert!(
            m.vertex_imbalance < 1.3,
            "vertex imbalance {}",
            m.vertex_imbalance
        );
    }

    #[test]
    fn prehasher_agrees_with_ingest() {
        let g = named::figure1_graph();
        let streaming = RandomVertexCutPartitioner::new()
            .streaming(StreamConfig::new(3))
            .unwrap();
        let prehasher = streaming.prehasher().unwrap();
        let mut driven = RandomVertexCutPartitioner::new()
            .streaming(StreamConfig::new(3))
            .unwrap();
        for (i, &edge) in g.edges().iter().enumerate() {
            assert_eq!(driven.ingest(edge), prehasher(edge, i));
        }
        // State-dependent partitioners advertise no prehasher.
        let ebv = EbvPartitioner::new()
            .streaming(StreamConfig::new(3))
            .unwrap();
        assert!(ebv.prehasher().is_none());
    }

    #[test]
    fn empty_stream_finishes_with_an_empty_partition() {
        let mut streaming = EbvPartitioner::new()
            .streaming(StreamConfig::new(4))
            .unwrap();
        assert_eq!(streaming.edges_ingested(), 0);
        let metrics = streaming.delta_metrics();
        assert_eq!(metrics.edges_ingested, 0);
        assert_eq!(metrics.edge_imbalance, 1.0);
        assert_eq!(metrics.replication_factor, 1.0);
        let result = streaming.finish().unwrap();
        assert_eq!(result.num_partitions(), 4);
        assert_eq!(result.as_vertex_cut().unwrap().num_edges(), 0);
    }

    #[test]
    fn zero_partitions_rejected() {
        assert!(EbvPartitioner::new()
            .streaming(StreamConfig::new(0))
            .is_err());
        assert!(HdrfPartitioner::new()
            .streaming(StreamConfig::new(0))
            .is_err());
        assert!(DbhPartitioner::new()
            .streaming(StreamConfig::new(0))
            .is_err());
        assert!(RandomVertexCutPartitioner::new()
            .streaming(StreamConfig::new(0))
            .is_err());
    }

    #[test]
    fn zero_cardinality_hints_are_ignored() {
        // A wrong zero hint must not poison EBV's normalizers (0/0 = NaN
        // would silently route every edge to partition 0).
        let config = StreamConfig::new(8)
            .with_expected_edges(0)
            .with_expected_vertices(0);
        assert_eq!(config.expected_edges(), None);
        assert_eq!(config.expected_vertices(), None);
        let g = RmatGenerator::new(8, 8).with_seed(11).generate().unwrap();
        let mut streaming = EbvPartitioner::new().streaming(config).unwrap();
        let result = stream_all(&mut streaming, &g);
        let m = PartitionMetrics::compute(&g, &result).unwrap();
        assert!(
            m.edge_imbalance < 2.0,
            "edge imbalance {}",
            m.edge_imbalance
        );
        let counts = result.as_vertex_cut().unwrap().edge_counts();
        assert!(
            counts.iter().all(|&c| c > 0),
            "empty partition in {counts:?}"
        );
    }

    #[test]
    fn state_bytes_grow_with_the_stream() {
        let g = RmatGenerator::new(8, 8).with_seed(1).generate().unwrap();
        let mut streaming = EbvPartitioner::new()
            .streaming(StreamConfig::new(4))
            .unwrap();
        let before = streaming.state_bytes();
        for &edge in g.edges() {
            streaming.ingest(edge);
        }
        assert!(streaming.state_bytes() > before);
    }

    #[test]
    fn finish_resets_the_partitioner() {
        let g = named::two_triangles();
        let mut streaming = EbvPartitioner::new()
            .streaming(StreamConfig::new(2))
            .unwrap();
        for &edge in g.edges() {
            streaming.ingest(edge);
        }
        let first = streaming.finish().unwrap();
        assert_eq!(first.as_vertex_cut().unwrap().num_edges(), g.num_edges());
        assert_eq!(streaming.edges_ingested(), 0);
        // Re-ingesting reproduces the same result from the fresh state.
        for &edge in g.edges() {
            streaming.ingest(edge);
        }
        assert_eq!(streaming.finish().unwrap(), first);
    }
}
