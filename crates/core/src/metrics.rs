//! Partition quality metrics (Section III-C of the paper).
//!
//! Three metrics characterize a partition result:
//!
//! * **edge imbalance factor** — `max_i |E_i| / (|E| / p)`,
//! * **vertex imbalance factor** — `max_i |V_i| / (Σ_i |V_i| / p)`,
//! * **replication factor** — `Σ_i |V_i| / |V|` for vertex-cut results and
//!   `Σ_i |E_i| / |E|` for edge-cut results.
//!
//! Table III of the paper reports exactly these three numbers per graph and
//! partitioner; Tables IV/V correlate them with measured communication.

use std::fmt;

use serde::{Deserialize, Serialize};

use ebv_graph::Graph;

use crate::assignment::PartitionResult;
use crate::error::Result;

/// The partition-quality metrics of Table III.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PartitionMetrics {
    /// `max_i |E_i| / (|E| / p)`.
    pub edge_imbalance: f64,
    /// `max_i |V_i| / (Σ_i |V_i| / p)`.
    pub vertex_imbalance: f64,
    /// `Σ_i |V_i| / |V|` (vertex-cut) or `Σ_i |E_i| / |E|` (edge-cut).
    pub replication_factor: f64,
    /// Number of partitions the metrics were computed for.
    pub num_partitions: usize,
}

impl PartitionMetrics {
    /// Computes the metrics of `result` over `graph`.
    ///
    /// # Errors
    ///
    /// Returns [`crate::PartitionError::InconsistentAssignment`] when the
    /// result does not describe `graph`.
    pub fn compute(graph: &Graph, result: &PartitionResult) -> Result<Self> {
        result.validate(graph)?;
        let p = result.num_partitions();
        let edge_counts = result.edge_counts(graph);
        let vertex_counts = result.vertex_counts(graph);

        let max_edges = edge_counts.iter().copied().max().unwrap_or(0) as f64;
        let max_vertices = vertex_counts.iter().copied().max().unwrap_or(0) as f64;
        let total_covered_vertices: usize = vertex_counts.iter().sum();
        let total_held_edges: usize = edge_counts.iter().sum();

        let edge_imbalance = if graph.num_edges() == 0 {
            1.0
        } else {
            max_edges / (graph.num_edges() as f64 / p as f64)
        };
        let vertex_imbalance = if total_covered_vertices == 0 {
            1.0
        } else {
            max_vertices / (total_covered_vertices as f64 / p as f64)
        };
        let replication_factor = match result {
            PartitionResult::VertexCut(_) => {
                total_covered_vertices as f64 / graph.num_vertices() as f64
            }
            PartitionResult::EdgeCut(_) => total_held_edges as f64 / graph.num_edges() as f64,
        };

        Ok(PartitionMetrics {
            edge_imbalance,
            vertex_imbalance,
            replication_factor,
            num_partitions: p,
        })
    }

    /// Renders the metrics in the `edge/vertex imbalance, replication`
    /// layout used by Table III.
    pub fn table_cell(&self) -> String {
        format!(
            "{:.2}/{:.2}  rf={:.2}",
            self.edge_imbalance, self.vertex_imbalance, self.replication_factor
        )
    }
}

impl fmt::Display for PartitionMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "edge imbalance {:.3}, vertex imbalance {:.3}, replication factor {:.3} over {} partitions",
            self.edge_imbalance, self.vertex_imbalance, self.replication_factor, self.num_partitions
        )
    }
}

/// The max/mean ratio used by Table V to quantify per-worker message
/// imbalance: the maximum over workers divided by the mean over workers.
///
/// Returns 1.0 for empty input or an all-zero series so that perfectly idle
/// workers read as "balanced".
pub fn max_mean_ratio(values: &[usize]) -> f64 {
    if values.is_empty() {
        return 1.0;
    }
    let max = *values.iter().max().expect("non-empty") as f64;
    let sum: usize = values.iter().sum();
    if sum == 0 {
        return 1.0;
    }
    let mean = sum as f64 / values.len() as f64;
    max / mean
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assignment::{EdgePartition, VertexPartition};
    use crate::types::PartitionId;
    use ebv_graph::Graph;

    fn pid(i: u32) -> PartitionId {
        PartitionId::new(i)
    }

    fn square() -> Graph {
        Graph::from_edges(vec![(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap()
    }

    #[test]
    fn balanced_vertex_cut_metrics() {
        let g = square();
        let part = EdgePartition::new(2, vec![pid(0), pid(0), pid(1), pid(1)]).unwrap();
        let m = PartitionMetrics::compute(&g, &part.into()).unwrap();
        assert!((m.edge_imbalance - 1.0).abs() < 1e-12);
        assert!((m.vertex_imbalance - 1.0).abs() < 1e-12);
        // 6 covered vertices over 4 actual vertices.
        assert!((m.replication_factor - 1.5).abs() < 1e-12);
    }

    #[test]
    fn skewed_vertex_cut_metrics() {
        let g = square();
        let part = EdgePartition::new(2, vec![pid(0), pid(0), pid(0), pid(1)]).unwrap();
        let m = PartitionMetrics::compute(&g, &part.into()).unwrap();
        // Partition 0 has 3 of 4 edges: 3 / (4/2) = 1.5.
        assert!((m.edge_imbalance - 1.5).abs() < 1e-12);
        assert!(m.vertex_imbalance > 1.0);
    }

    #[test]
    fn edge_cut_metrics_use_edge_replication() {
        let g = square();
        let part = VertexPartition::new(2, vec![pid(0), pid(0), pid(1), pid(1)]).unwrap();
        let m = PartitionMetrics::compute(&g, &part.into()).unwrap();
        // Each partition holds 3 of the 4 edges (2 internal views of its own
        // plus a replicated crossing edge): Σ|E_i| = 6, |E| = 4.
        assert!((m.replication_factor - 1.5).abs() < 1e-12);
        assert!((m.vertex_imbalance - 1.0).abs() < 1e-12);
        assert!((m.edge_imbalance - 1.5).abs() < 1e-12);
    }

    #[test]
    fn mismatched_result_is_rejected() {
        let g = square();
        let part = EdgePartition::new(2, vec![pid(0)]).unwrap();
        assert!(PartitionMetrics::compute(&g, &part.into()).is_err());
    }

    #[test]
    fn single_partition_has_unit_metrics() {
        let g = square();
        let part = EdgePartition::new(1, vec![pid(0); 4]).unwrap();
        let m = PartitionMetrics::compute(&g, &part.into()).unwrap();
        assert!((m.edge_imbalance - 1.0).abs() < 1e-12);
        assert!((m.vertex_imbalance - 1.0).abs() < 1e-12);
        assert!((m.replication_factor - 1.0).abs() < 1e-12);
    }

    #[test]
    fn max_mean_ratio_basics() {
        assert!((max_mean_ratio(&[]) - 1.0).abs() < 1e-12);
        assert!((max_mean_ratio(&[0, 0]) - 1.0).abs() < 1e-12);
        assert!((max_mean_ratio(&[5, 5, 5]) - 1.0).abs() < 1e-12);
        assert!((max_mean_ratio(&[9, 1, 2]) - 9.0 / 4.0).abs() < 1e-12);
    }

    #[test]
    fn display_and_table_cell() {
        let g = square();
        let part = EdgePartition::new(2, vec![pid(0), pid(0), pid(1), pid(1)]).unwrap();
        let m = PartitionMetrics::compute(&g, &part.into()).unwrap();
        assert!(m.to_string().contains("replication factor"));
        assert!(m.table_cell().contains("rf="));
    }
}
