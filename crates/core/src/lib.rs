//! # ebv-partition — the EBV partitioner and its baselines
//!
//! This crate is the primary contribution of the reproduced paper,
//! *"An Efficient and Balanced Graph Partition Algorithm for the
//! Subgraph-Centric Programming Model on Large-scale Power-law Graphs"*
//! (ICDCS 2021):
//!
//! * [`EbvPartitioner`] — Algorithm 1: a sequential vertex-cut partitioner
//!   driven by an evaluation function that jointly penalizes vertex
//!   replication and edge/vertex imbalance, with the degree-sum edge-sorting
//!   preprocessing of Section IV-C.
//! * Every baseline the paper compares against: [`DbhPartitioner`],
//!   [`GingerPartitioner`], [`CvcPartitioner`], [`NePartitioner`] and the
//!   multilevel edge-cut [`MetisLikePartitioner`], plus
//!   [`HdrfPartitioner`] and pure random hashing for ablations.
//! * The quality metrics of Section III-C ([`PartitionMetrics`]) and the
//!   Theorem 1/2 imbalance bounds ([`bounds`]).
//!
//! ## Quick example
//!
//! ```
//! use ebv_graph::generators::{GraphGenerator, RmatGenerator};
//! use ebv_partition::{EbvPartitioner, Partitioner, PartitionMetrics};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let graph = RmatGenerator::new(10, 8).with_seed(7).generate()?;
//! let result = EbvPartitioner::new().partition(&graph, 8)?;
//! let metrics = PartitionMetrics::compute(&graph, &result)?;
//! println!("replication factor = {:.2}", metrics.replication_factor);
//! assert!(metrics.edge_imbalance < 1.2);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

mod assignment;
pub mod baselines;
pub mod bounds;
pub mod dynamic;
mod ebv;
mod error;
mod membership;
mod metrics;
mod ordering;
mod partitioner;
pub mod streaming;
mod types;

pub use assignment::{EdgePartition, PartitionResult, VertexPartition};
pub use baselines::{
    CvcPartitioner, DbhPartitioner, GingerPartitioner, HdrfPartitioner, MetisLikePartitioner,
    NePartitioner, RandomEdgeCutPartitioner, RandomVertexCutPartitioner,
};
pub use dynamic::{DynamicPartitioner, EdgeMove, MigrationPlan, RebalanceConfig};
pub use ebv::{EbvPartitioner, EbvTrace, TracePoint};
pub use error::{PartitionError, Result};
pub use membership::MembershipMatrix;
pub use metrics::{max_mean_ratio, PartitionMetrics};
pub use ordering::{degree_sum, EdgeOrder};
pub use partitioner::{check_partition_count, Partitioner};
pub use streaming::{
    StreamConfig, StreamingDbh, StreamingEbv, StreamingHdrf, StreamingMetrics,
    StreamingPartitioner, StreamingRandom,
};
pub use types::PartitionId;

/// Commonly used items, for glob import in examples and downstream crates.
pub mod prelude {
    pub use crate::{
        CvcPartitioner, DbhPartitioner, DynamicPartitioner, EbvPartitioner, EdgeOrder,
        EdgePartition, GingerPartitioner, HdrfPartitioner, MetisLikePartitioner, MigrationPlan,
        NePartitioner, PartitionId, PartitionMetrics, PartitionResult, Partitioner,
        RandomEdgeCutPartitioner, RandomVertexCutPartitioner, RebalanceConfig, StreamConfig,
        StreamingPartitioner, VertexPartition,
    };
}

/// Returns the full roster of partitioners the paper's evaluation section
/// compares (EBV, Ginger, DBH, CVC, NE, METIS-like), boxed behind the common
/// [`Partitioner`] interface — the list every experiment harness iterates
/// over.
pub fn paper_partitioners() -> Vec<Box<dyn Partitioner>> {
    vec![
        Box::new(EbvPartitioner::new()),
        Box::new(GingerPartitioner::new()),
        Box::new(DbhPartitioner::new()),
        Box::new(CvcPartitioner::new()),
        Box::new(NePartitioner::new()),
        Box::new(MetisLikePartitioner::new()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_partitioners_roster_matches_the_evaluation_section() {
        let names: Vec<String> = paper_partitioners().iter().map(|p| p.name()).collect();
        assert_eq!(
            names,
            vec!["EBV", "Ginger", "DBH", "CVC", "NE", "METIS-like"]
        );
    }
}

#[cfg(test)]
mod proptests {
    use proptest::prelude::*;

    use ebv_graph::GraphBuilder;

    use crate::bounds::{edge_imbalance_bound, vertex_imbalance_bound};
    use crate::prelude::*;
    use crate::{paper_partitioners, EbvTrace};

    /// Strategy: a random directed graph with 2..=60 vertices and 1..=300
    /// edges (self loops filtered by the builder).
    fn arbitrary_graph() -> impl Strategy<Value = ebv_graph::Graph> {
        proptest::collection::vec((0u64..60, 0u64..60), 1..300).prop_filter_map(
            "graphs need at least one non-loop edge",
            |edges| {
                let mut builder = GraphBuilder::directed();
                builder.extend_edges(edges);
                builder.build().ok()
            },
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Every partitioner in the paper's roster produces a complete and
        /// valid assignment with sane metrics on arbitrary graphs.
        #[test]
        fn all_partitioners_produce_valid_results(graph in arbitrary_graph(), p in 1usize..6) {
            prop_assume!(p <= graph.num_edges());
            // Isolated vertices are never covered by a vertex-cut result, so
            // the replication-factor floor is the covered fraction, not 1.
            let non_isolated = graph.num_vertices() - graph.num_isolated_vertices();
            let vertex_cut_floor = non_isolated as f64 / graph.num_vertices() as f64;
            for partitioner in paper_partitioners() {
                let result = partitioner.partition(&graph, p).unwrap();
                result.validate(&graph).unwrap();
                let metrics = PartitionMetrics::compute(&graph, &result).unwrap();
                let floor = if result.is_vertex_cut() { vertex_cut_floor } else { 1.0 };
                prop_assert!(metrics.replication_factor >= floor - 1e-9, "{}", partitioner.name());
                prop_assert!(metrics.replication_factor <= p as f64 + 1e-9, "{}", partitioner.name());
                prop_assert!(metrics.edge_imbalance >= 1.0 - 1e-9, "{}", partitioner.name());
                prop_assert!(metrics.vertex_imbalance >= 1.0 - 1e-9, "{}", partitioner.name());
                prop_assert!(metrics.edge_imbalance <= p as f64 + 1e-9, "{}", partitioner.name());
            }
        }

        /// EBV always respects the Theorem 1 and Theorem 2 imbalance bounds.
        #[test]
        fn ebv_respects_theorem_bounds(
            graph in arbitrary_graph(),
            p in 1usize..6,
            alpha in 0.25f64..4.0,
            beta in 0.25f64..4.0,
        ) {
            prop_assume!(p <= graph.num_edges());
            let partitioner = EbvPartitioner::new().with_alpha(alpha).with_beta(beta);
            let result = partitioner.partition(&graph, p).unwrap();
            let metrics = PartitionMetrics::compute(&graph, &result).unwrap();
            let covered: usize = result.vertex_counts(&graph).iter().sum();
            let e_bound = edge_imbalance_bound(graph.num_edges(), p, alpha, beta).unwrap();
            let v_bound = vertex_imbalance_bound(graph.num_vertices(), covered, p, alpha, beta).unwrap();
            prop_assert!(metrics.edge_imbalance <= e_bound + 1e-9,
                "edge imbalance {} exceeds bound {e_bound}", metrics.edge_imbalance);
            prop_assert!(metrics.vertex_imbalance <= v_bound + 1e-9,
                "vertex imbalance {} exceeds bound {v_bound}", metrics.vertex_imbalance);
        }

        /// The EBV replication-factor trace is non-decreasing and consistent
        /// with the final metrics, regardless of the edge order used.
        #[test]
        fn ebv_trace_is_monotone(graph in arbitrary_graph(), p in 1usize..5, sorted in any::<bool>()) {
            prop_assume!(p <= graph.num_edges());
            let partitioner = if sorted {
                EbvPartitioner::new()
            } else {
                EbvPartitioner::new().unsorted()
            };
            let (partition, trace): (EdgePartition, EbvTrace) =
                partitioner.partition_with_trace(&graph, p).unwrap();
            for w in trace.points().windows(2) {
                prop_assert!(w[0].replication_factor <= w[1].replication_factor + 1e-12);
            }
            let metrics = PartitionMetrics::compute(&graph, &partition.into()).unwrap();
            prop_assert!((trace.final_replication_factor() - metrics.replication_factor).abs() < 1e-9);
        }

        /// Vertex-cut partitioners assign each edge to exactly one partition
        /// (disjoint cover), and the per-partition counts add up.
        #[test]
        fn vertex_cut_assignments_are_a_disjoint_cover(graph in arbitrary_graph(), p in 1usize..5) {
            prop_assume!(p <= graph.num_edges());
            for partitioner in [
                Box::new(EbvPartitioner::new()) as Box<dyn Partitioner>,
                Box::new(DbhPartitioner::new()),
                Box::new(CvcPartitioner::new()),
                Box::new(HdrfPartitioner::new()),
                Box::new(NePartitioner::new()),
            ] {
                let result = partitioner.partition(&graph, p).unwrap();
                if let PartitionResult::VertexCut(vc) = result {
                    prop_assert_eq!(vc.num_edges(), graph.num_edges());
                    prop_assert_eq!(vc.edge_counts().iter().sum::<usize>(), graph.num_edges());
                }
            }
        }
    }
}
