//! The process-wide metrics registry: atomic counters, gauges and
//! fixed-bucket latency histograms, snapshot-able to JSON and renderable
//! in the Prometheus text exposition format.
//!
//! Everything is `std`-only and lock-free on the hot path: metric handles
//! are plain atomics behind `Arc`s; the registry maps names to handles
//! under an `RwLock` that is only write-locked the first time a name is
//! seen.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

/// Upper bucket bounds (seconds) of every latency histogram: a 1-2-5
/// ladder from 1µs to 100s. Latencies above the last bound land in the
/// implicit overflow (`+Inf`) bucket.
pub const BUCKET_BOUNDS: [f64; 25] = [
    1e-6, 2e-6, 5e-6, 1e-5, 2e-5, 5e-5, 1e-4, 2e-4, 5e-4, 1e-3, 2e-3, 5e-3, 1e-2, 2e-2, 5e-2, 1e-1,
    2e-1, 5e-1, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0,
];

/// A monotonically increasing atomic counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `delta` to the counter.
    #[inline]
    pub fn add(&self, delta: u64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins gauge holding an `f64` (stored as its bit pattern in
/// an atomic word).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// A fixed-bucket latency histogram over [`BUCKET_BOUNDS`] plus an
/// overflow bucket, with total count and sum, supporting quantile
/// extraction (p50/p99) by linear interpolation within the hit bucket.
#[derive(Debug)]
pub struct Histogram {
    /// One count per bound, plus the trailing overflow bucket.
    counts: [AtomicU64; BUCKET_BOUNDS.len() + 1],
    /// Sum of all observations, in nanoseconds (a u64 holds > 500 years).
    sum_nanos: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_nanos: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Records one observation.
    #[inline]
    pub fn observe(&self, seconds: f64) {
        let seconds = seconds.max(0.0);
        let bucket = BUCKET_BOUNDS
            .iter()
            .position(|&bound| seconds <= bound)
            .unwrap_or(BUCKET_BOUNDS.len());
        self.counts[bucket].fetch_add(1, Ordering::Relaxed);
        self.sum_nanos
            .fetch_add((seconds * 1e9) as u64, Ordering::Relaxed);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Sum of all observations in seconds.
    pub fn sum_seconds(&self) -> f64 {
        self.sum_nanos.load(Ordering::Relaxed) as f64 / 1e9
    }

    /// The `q`-quantile (`0.0..=1.0`) estimated from the buckets: the
    /// target rank is located in its bucket and linearly interpolated
    /// between the bucket's bounds. Observations in the overflow bucket
    /// report the last finite bound. Returns 0.0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        let counts: Vec<u64> = self
            .counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let target = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for (i, &count) in counts.iter().enumerate() {
            if count == 0 {
                continue;
            }
            let previous = cumulative;
            cumulative += count;
            if cumulative >= target {
                if i >= BUCKET_BOUNDS.len() {
                    return BUCKET_BOUNDS[BUCKET_BOUNDS.len() - 1];
                }
                let lower = if i == 0 { 0.0 } else { BUCKET_BOUNDS[i - 1] };
                let upper = BUCKET_BOUNDS[i];
                let within = (target - previous) as f64 / count as f64;
                return lower + (upper - lower) * within;
            }
        }
        BUCKET_BOUNDS[BUCKET_BOUNDS.len() - 1]
    }
}

/// The name-keyed metric maps. `BTreeMap` keeps snapshots in a
/// deterministic (sorted) order.
#[derive(Debug, Default)]
struct Inner {
    counters: RwLock<BTreeMap<&'static str, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<&'static str, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<&'static str, Arc<Histogram>>>,
}

/// A registry of named metrics. Cheap to clone (the clone shares the same
/// metrics); [`MetricsRegistry::global`] is the process-wide instance every
/// default [`Telemetry`](crate::Telemetry) reports into.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<Inner>,
}

fn get_or_register<T: Default>(
    map: &RwLock<BTreeMap<&'static str, Arc<T>>>,
    name: &'static str,
) -> Arc<T> {
    if let Some(found) = map.read().expect("metrics lock poisoned").get(name) {
        return Arc::clone(found);
    }
    Arc::clone(
        map.write()
            .expect("metrics lock poisoned")
            .entry(name)
            .or_default(),
    )
}

impl MetricsRegistry {
    /// Creates an empty, private registry (tests and overhead benchmarks
    /// use this to avoid cross-talk with the global instance).
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// The process-wide registry.
    pub fn global() -> &'static MetricsRegistry {
        static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
        GLOBAL.get_or_init(MetricsRegistry::new)
    }

    /// The named counter, registered on first use.
    pub fn counter(&self, name: &'static str) -> Arc<Counter> {
        get_or_register(&self.inner.counters, name)
    }

    /// The named gauge, registered on first use.
    pub fn gauge(&self, name: &'static str) -> Arc<Gauge> {
        get_or_register(&self.inner.gauges, name)
    }

    /// The named histogram, registered on first use.
    pub fn histogram(&self, name: &'static str) -> Arc<Histogram> {
        get_or_register(&self.inner.histograms, name)
    }

    /// A point-in-time copy of every registered metric, in sorted name
    /// order.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self
            .inner
            .counters
            .read()
            .expect("metrics lock poisoned")
            .iter()
            .map(|(&name, counter)| (name.to_string(), counter.get()))
            .collect();
        let gauges = self
            .inner
            .gauges
            .read()
            .expect("metrics lock poisoned")
            .iter()
            .map(|(&name, gauge)| (name.to_string(), gauge.get()))
            .collect();
        let histograms = self
            .inner
            .histograms
            .read()
            .expect("metrics lock poisoned")
            .iter()
            .map(|(&name, histogram)| {
                let buckets: Vec<(f64, u64)> = BUCKET_BOUNDS
                    .iter()
                    .enumerate()
                    .map(|(i, &bound)| (bound, histogram.counts[i].load(Ordering::Relaxed)))
                    .collect();
                let overflow = histogram.counts[BUCKET_BOUNDS.len()].load(Ordering::Relaxed);
                HistogramSnapshot {
                    name: name.to_string(),
                    count: histogram.count(),
                    sum_seconds: histogram.sum_seconds(),
                    p50: histogram.quantile(0.50),
                    p99: histogram.quantile(0.99),
                    buckets,
                    overflow,
                }
            })
            .collect();
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

/// A point-in-time copy of one histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: String,
    /// Total observations.
    pub count: u64,
    /// Sum of observations in seconds.
    pub sum_seconds: f64,
    /// Estimated median latency in seconds.
    pub p50: f64,
    /// Estimated 99th-percentile latency in seconds.
    pub p99: f64,
    /// Per-bucket `(upper_bound_seconds, count)` pairs (non-cumulative).
    pub buckets: Vec<(f64, u64)>,
    /// Observations above the last finite bound.
    pub overflow: u64,
}

/// A point-in-time copy of a whole registry, in sorted name order —
/// serializable to JSON ([`to_json`](MetricsSnapshot::to_json)) or the
/// Prometheus text exposition format
/// ([`to_prometheus`](MetricsSnapshot::to_prometheus)).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// `(name, value)` of every counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` of every gauge.
    pub gauges: Vec<(String, f64)>,
    /// Every histogram.
    pub histograms: Vec<HistogramSnapshot>,
}

fn assert_bare_name(name: &str) -> &str {
    debug_assert!(
        name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'),
        "metric names are bare identifiers: {name:?}"
    );
    name
}

impl MetricsSnapshot {
    /// Renders the snapshot as a JSON document into `out` (hand-rolled:
    /// the vendored serde stand-in has no JSON backend). Writing into a
    /// caller-supplied sink lets HTTP handlers and large exports stream
    /// without building intermediate strings.
    pub fn to_json_into<W: fmt::Write>(&self, out: &mut W) -> fmt::Result {
        out.write_str("{\n  \"counters\": {")?;
        for (i, (name, value)) in self.counters.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            write!(out, "{sep}\n    \"{}\": {value}", assert_bare_name(name))?;
        }
        out.write_str("\n  },\n  \"gauges\": {")?;
        for (i, (name, value)) in self.gauges.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            write!(out, "{sep}\n    \"{}\": {value:.9}", assert_bare_name(name))?;
        }
        out.write_str("\n  },\n  \"histograms\": [")?;
        for (i, histogram) in self.histograms.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            write!(
                out,
                "{sep}\n    {{\"name\": \"{}\", \"count\": {}, \"sum_seconds\": {:.9}, \
                 \"p50_seconds\": {:.9}, \"p99_seconds\": {:.9}}}",
                assert_bare_name(&histogram.name),
                histogram.count,
                histogram.sum_seconds,
                histogram.p50,
                histogram.p99,
            )?;
        }
        out.write_str("\n  ]\n}\n")
    }

    /// [`to_json_into`](Self::to_json_into) into a fresh `String`.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.to_json_into(&mut out)
            .expect("writing to a String cannot fail");
        out
    }

    /// Renders the snapshot in the Prometheus text exposition format into
    /// `out` (counters, gauges and cumulative histogram buckets with
    /// `+Inf`).
    pub fn to_prometheus_into<W: fmt::Write>(&self, out: &mut W) -> fmt::Result {
        for (name, value) in &self.counters {
            let name = assert_bare_name(name);
            writeln!(out, "# TYPE {name} counter")?;
            writeln!(out, "{name} {value}")?;
        }
        for (name, value) in &self.gauges {
            let name = assert_bare_name(name);
            writeln!(out, "# TYPE {name} gauge")?;
            writeln!(out, "{name} {value}")?;
        }
        for histogram in &self.histograms {
            let name = assert_bare_name(&histogram.name);
            writeln!(out, "# TYPE {name} histogram")?;
            let mut cumulative = 0u64;
            for &(bound, count) in &histogram.buckets {
                cumulative += count;
                writeln!(out, "{name}_bucket{{le=\"{bound}\"}} {cumulative}")?;
            }
            cumulative += histogram.overflow;
            writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cumulative}")?;
            writeln!(out, "{name}_sum {}", histogram.sum_seconds)?;
            writeln!(out, "{name}_count {}", histogram.count)?;
        }
        Ok(())
    }

    /// [`to_prometheus_into`](Self::to_prometheus_into) into a fresh
    /// `String`.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        self.to_prometheus_into(&mut out)
            .expect("writing to a String cannot fail");
        out
    }
}

impl fmt::Display for MetricsSnapshot {
    /// A compact human-readable summary: one line per metric, histograms
    /// reduced to count/p50/p99.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, value) in &self.counters {
            writeln!(f, "{name} {value}")?;
        }
        for (name, value) in &self.gauges {
            writeln!(f, "{name} {value:.4}")?;
        }
        for histogram in &self.histograms {
            writeln!(
                f,
                "{} count {} sum {:.6}s p50 {:.6}s p99 {:.6}s",
                histogram.name,
                histogram.count,
                histogram.sum_seconds,
                histogram.p50,
                histogram.p99
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_round_trip() {
        let registry = MetricsRegistry::new();
        registry.counter("events_total").add(3);
        registry.counter("events_total").add(4);
        registry.gauge("live_edges").set(42.5);
        assert_eq!(registry.counter("events_total").get(), 7);
        assert_eq!(registry.gauge("live_edges").get(), 42.5);
        let snapshot = registry.snapshot();
        assert_eq!(snapshot.counters, vec![("events_total".to_string(), 7)]);
        assert_eq!(snapshot.gauges, vec![("live_edges".to_string(), 42.5)]);
    }

    #[test]
    fn histogram_quantiles_interpolate_within_buckets() {
        let h = Histogram::default();
        // 100 observations spread evenly inside the (1ms, 2ms] bucket.
        for _ in 0..100 {
            h.observe(1.5e-3);
        }
        assert_eq!(h.count(), 100);
        let p50 = h.quantile(0.50);
        assert!(p50 > 1e-3 && p50 <= 2e-3, "p50 {p50} outside its bucket");
        let p99 = h.quantile(0.99);
        assert!(p99 > p50 && p99 <= 2e-3);
        // An empty histogram reports zero, overflow reports the last bound.
        assert_eq!(Histogram::default().quantile(0.5), 0.0);
        let huge = Histogram::default();
        huge.observe(1e6);
        assert_eq!(huge.quantile(0.5), BUCKET_BOUNDS[BUCKET_BOUNDS.len() - 1]);
        assert_eq!(huge.count(), 1);
    }

    #[test]
    fn histogram_sum_accumulates_seconds() {
        let h = Histogram::default();
        h.observe(0.25);
        h.observe(0.5);
        assert!((h.sum_seconds() - 0.75).abs() < 1e-6);
    }

    #[test]
    fn concurrent_adds_do_not_lose_updates() {
        let registry = MetricsRegistry::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let registry = registry.clone();
                scope.spawn(move || {
                    for _ in 0..1000 {
                        registry.counter("shared_total").add(1);
                        registry.histogram("lat_seconds").observe(1e-4);
                    }
                });
            }
        });
        assert_eq!(registry.counter("shared_total").get(), 4000);
        assert_eq!(registry.histogram("lat_seconds").count(), 4000);
    }

    #[test]
    fn snapshot_renders_json_and_prometheus() {
        let registry = MetricsRegistry::new();
        registry.counter("msgs_total").add(5);
        registry.gauge("imbalance").set(1.25);
        registry.histogram("run_seconds").observe(3e-3);
        let snapshot = registry.snapshot();

        let json = snapshot.to_json();
        assert!(json.contains("\"msgs_total\": 5"));
        assert!(json.contains("\"imbalance\": 1.25"));
        assert!(json.contains("\"run_seconds\""));
        assert!(json.contains("\"p99_seconds\""));

        let prom = snapshot.to_prometheus();
        assert!(prom.contains("# TYPE msgs_total counter"));
        assert!(prom.contains("msgs_total 5"));
        assert!(prom.contains("# TYPE imbalance gauge"));
        assert!(prom.contains("# TYPE run_seconds histogram"));
        assert!(prom.contains("run_seconds_bucket{le=\"+Inf\"} 1"));
        assert!(prom.contains("run_seconds_count 1"));

        let display = snapshot.to_string();
        assert!(display.contains("msgs_total 5"));
        assert!(display.contains("p99"));
    }

    #[test]
    fn global_registry_is_shared() {
        MetricsRegistry::global()
            .counter("global_probe_total")
            .add(1);
        let again = MetricsRegistry::global().counter("global_probe_total");
        assert!(again.get() >= 1);
    }
}
