//! The epoch journal: a bounded ring of per-epoch [`EpochSnapshot`]s fed
//! from the epoch driver through [`Recorder::epoch_applied`], turning the
//! live registry into a *time series* — per-epoch deltas of the phase
//! wall-clock and message counters next to the apply-cost and partition-
//! quality facts of each mutation epoch, exportable as hand-rolled JSON
//! (served live as `GET /epochs.json` by the
//! [`ObsServer`](crate::ObsServer)).
//!
//! [`Recorder::epoch_applied`]: crate::Recorder::epoch_applied

use std::collections::VecDeque;
use std::fmt;
use std::sync::Mutex;

use crate::recorder::Phase;

/// Default capacity (epochs) of the journal a
/// [`Telemetry`](crate::Telemetry) carries.
pub const DEFAULT_JOURNAL_CAPACITY: usize = 1024;

/// The facts one applied mutation epoch reports through
/// [`Recorder::epoch_applied`](crate::Recorder::epoch_applied): the
/// apply-cost counters of the batch plus the maintained partition-quality
/// metrics after it. Everything here is known to the epoch driver; the
/// telemetry-derived fields (per-phase deltas, straggler ratio, span
/// drops) are added by the journal when the mark is recorded.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EpochMark {
    /// Mutation epoch of the distribution *after* the batch applied.
    pub epoch: u64,
    /// 0-based index of the batch within the pipeline run.
    pub batch_index: u32,
    /// Wall-clock seconds the epoch took to apply.
    pub apply_seconds: f64,
    /// Workers whose subgraph was re-built this epoch.
    pub workers_touched: u32,
    /// Total local edges of the re-built workers.
    pub edges_rebuilt: u64,
    /// Edge copies the batch added.
    pub edges_added: u64,
    /// Edge copies the batch removed.
    pub edges_removed: u64,
    /// Live edges of the distribution after the batch.
    pub live_edges: u64,
    /// Maintained replication factor after the batch.
    pub replication_factor: f64,
    /// Maintained edge imbalance after the batch.
    pub edge_imbalance: f64,
}

/// One journal entry: the driver's [`EpochMark`] plus the
/// telemetry-derived deltas attributed to the epoch.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochSnapshot {
    /// The driver-reported epoch facts.
    pub mark: EpochMark,
    /// Offset of the record from the tracer's origin, in seconds.
    pub at_seconds: f64,
    /// Recorded wall-clock seconds per phase since the previous snapshot
    /// (the whole history for the first one), in [`Phase::ALL`] order —
    /// the compute/communication/apply time attributable to this epoch's
    /// window.
    pub phase_seconds: [f64; Phase::COUNT],
    /// Routed BSP messages since the previous snapshot.
    pub messages_delta: u64,
    /// The most recent per-superstep straggler ratio (max/mean worker
    /// compute wall-clock; 0.0 until a superstep has been finalized).
    pub straggler_ratio: f64,
    /// Cumulative spans dropped to ring-slot contention at record time.
    pub spans_dropped: u64,
}

impl EpochSnapshot {
    /// Seconds the epoch's window spent in [`Phase::Compute`].
    pub fn compute_seconds(&self) -> f64 {
        self.phase_seconds[Phase::Compute.index()]
    }
}

/// The mutable state: the ring plus the cumulative watermarks the
/// per-epoch deltas are computed against.
#[derive(Debug, Default)]
struct JournalInner {
    snapshots: VecDeque<EpochSnapshot>,
    recorded_total: u64,
    last_phase_nanos: [u64; Phase::COUNT],
    last_messages: u64,
}

/// A bounded ring of [`EpochSnapshot`]s: when full, recording a new epoch
/// evicts the oldest. All methods take `&self` (a `Mutex` guards the
/// ring), so the journal can be fed from the epoch loop while HTTP
/// handler threads export it.
#[derive(Debug)]
pub struct EpochJournal {
    capacity: usize,
    inner: Mutex<JournalInner>,
}

impl EpochJournal {
    /// A journal holding up to `capacity` epochs (rounded up to 1).
    pub fn new(capacity: usize) -> Self {
        EpochJournal {
            capacity: capacity.max(1),
            inner: Mutex::new(JournalInner::default()),
        }
    }

    /// Maximum retained epochs.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Epochs currently retained.
    pub fn len(&self) -> usize {
        self.lock().snapshots.len()
    }

    /// Whether no epoch has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.lock().snapshots.is_empty()
    }

    /// Total epochs ever recorded (including evicted ones).
    pub fn recorded_total(&self) -> u64 {
        self.lock().recorded_total
    }

    /// Records one applied epoch. `phase_nanos` and `messages` are
    /// *cumulative* telemetry totals at record time; the journal stores
    /// their deltas against the previous record, so each snapshot carries
    /// the wall-clock and traffic attributable to its own window.
    pub fn record(
        &self,
        mark: EpochMark,
        at_seconds: f64,
        phase_nanos: [u64; Phase::COUNT],
        messages: u64,
        straggler_ratio: f64,
        spans_dropped: u64,
    ) {
        let mut inner = self.lock();
        let mut phase_seconds = [0.0f64; Phase::COUNT];
        for (i, seconds) in phase_seconds.iter_mut().enumerate() {
            *seconds = phase_nanos[i].saturating_sub(inner.last_phase_nanos[i]) as f64 / 1e9;
        }
        let messages_delta = messages.saturating_sub(inner.last_messages);
        inner.last_phase_nanos = phase_nanos;
        inner.last_messages = messages;
        if inner.snapshots.len() == self.capacity {
            inner.snapshots.pop_front();
        }
        inner.snapshots.push_back(EpochSnapshot {
            mark,
            at_seconds,
            phase_seconds,
            messages_delta,
            straggler_ratio,
            spans_dropped,
        });
        inner.recorded_total += 1;
    }

    /// The retained snapshots, oldest first.
    pub fn snapshots(&self) -> Vec<EpochSnapshot> {
        self.lock().snapshots.iter().cloned().collect()
    }

    /// The most recent snapshot.
    pub fn last(&self) -> Option<EpochSnapshot> {
        self.lock().snapshots.back().cloned()
    }

    /// Origin offset of the most recent snapshot (the staleness anchor of
    /// the `/healthz` route).
    pub fn last_at_seconds(&self) -> Option<f64> {
        self.lock().snapshots.back().map(|s| s.at_seconds)
    }

    /// Writes the journal as a JSON document into `out` (hand-rolled: the
    /// vendored serde stand-in has no JSON backend). Schema:
    ///
    /// ```json
    /// {"recorded_total": 9, "capacity": 1024, "epochs": [
    ///   {"epoch": 1, "batch_index": 0, "at_seconds": 0.51, ...,
    ///    "phase_seconds": {"gather": 0.001, ...}}]}
    /// ```
    pub fn to_json_into<W: fmt::Write>(&self, out: &mut W) -> fmt::Result {
        let snapshots = self.snapshots();
        write!(
            out,
            "{{\n  \"recorded_total\": {},\n  \"capacity\": {},\n  \"epochs\": [",
            self.recorded_total(),
            self.capacity,
        )?;
        for (i, snapshot) in snapshots.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let m = &snapshot.mark;
            write!(
                out,
                "{sep}\n    {{\"epoch\": {}, \"batch_index\": {}, \"at_seconds\": {:.9}, \
                 \"apply_seconds\": {:.9}, \"workers_touched\": {}, \"edges_rebuilt\": {}, \
                 \"edges_added\": {}, \"edges_removed\": {}, \"live_edges\": {}, \
                 \"replication_factor\": {:.9}, \"edge_imbalance\": {:.9}, \
                 \"messages_delta\": {}, \"straggler_ratio\": {:.9}, \"spans_dropped\": {}, \
                 \"phase_seconds\": {{",
                m.epoch,
                m.batch_index,
                snapshot.at_seconds,
                m.apply_seconds,
                m.workers_touched,
                m.edges_rebuilt,
                m.edges_added,
                m.edges_removed,
                m.live_edges,
                m.replication_factor,
                m.edge_imbalance,
                snapshot.messages_delta,
                snapshot.straggler_ratio,
                snapshot.spans_dropped,
            )?;
            for (j, phase) in Phase::ALL.iter().enumerate() {
                let sep = if j == 0 { "" } else { ", " };
                write!(
                    out,
                    "{sep}\"{}\": {:.9}",
                    phase.name(),
                    snapshot.phase_seconds[j]
                )?;
            }
            write!(out, "}}}}")?;
        }
        writeln!(out, "\n  ]\n}}")
    }

    /// [`to_json_into`](Self::to_json_into) into a fresh `String`.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.to_json_into(&mut out)
            .expect("writing to a String cannot fail");
        out
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, JournalInner> {
        self.inner.lock().expect("epoch journal lock poisoned")
    }
}

impl Default for EpochJournal {
    fn default() -> Self {
        EpochJournal::new(DEFAULT_JOURNAL_CAPACITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mark(epoch: u64) -> EpochMark {
        EpochMark {
            epoch,
            batch_index: (epoch - 1) as u32,
            apply_seconds: 0.01,
            workers_touched: 3,
            edges_rebuilt: 100,
            edges_added: 40,
            edges_removed: 10,
            live_edges: 1000 + epoch,
            replication_factor: 1.5,
            edge_imbalance: 1.05,
        }
    }

    fn nanos(compute: u64) -> [u64; Phase::COUNT] {
        let mut out = [0u64; Phase::COUNT];
        out[Phase::Compute.index()] = compute;
        out
    }

    #[test]
    fn deltas_are_computed_against_the_previous_record() {
        let journal = EpochJournal::new(8);
        journal.record(mark(1), 0.5, nanos(2_000_000_000), 100, 1.2, 0);
        journal.record(mark(2), 1.0, nanos(5_000_000_000), 130, 1.3, 0);
        let snapshots = journal.snapshots();
        assert_eq!(snapshots.len(), 2);
        assert!((snapshots[0].compute_seconds() - 2.0).abs() < 1e-9);
        assert_eq!(snapshots[0].messages_delta, 100);
        assert!((snapshots[1].compute_seconds() - 3.0).abs() < 1e-9);
        assert_eq!(snapshots[1].messages_delta, 30);
        assert_eq!(journal.last().unwrap().mark.epoch, 2);
        assert_eq!(journal.last_at_seconds(), Some(1.0));
        assert_eq!(journal.recorded_total(), 2);
    }

    #[test]
    fn the_ring_is_bounded_and_counts_evictions() {
        let journal = EpochJournal::new(2);
        for epoch in 1..=5u64 {
            journal.record(mark(epoch), epoch as f64, nanos(epoch), epoch, 0.0, 0);
        }
        assert_eq!(journal.len(), 2);
        assert_eq!(journal.recorded_total(), 5);
        let kept: Vec<u64> = journal.snapshots().iter().map(|s| s.mark.epoch).collect();
        assert_eq!(kept, vec![4, 5]);
    }

    #[test]
    fn json_export_carries_one_entry_per_epoch_with_phase_seconds() {
        let journal = EpochJournal::new(8);
        journal.record(mark(1), 0.25, nanos(1_500_000_000), 10, 1.1, 2);
        let json = journal.to_json();
        assert!(json.contains("\"recorded_total\": 1"));
        assert!(json.contains("\"epoch\": 1"));
        assert!(json.contains("\"phase_seconds\": {"));
        assert!(json.contains("\"compute\": 1.5"));
        assert!(json.contains("\"gather\": 0.0"));
        assert!(json.contains("\"spans_dropped\": 2"));
        // Every phase key appears exactly once per entry.
        for phase in Phase::ALL {
            assert_eq!(json.matches(&format!("\"{}\":", phase.name())).count(), 1);
        }
        // An empty journal still renders a well-formed document.
        let empty = EpochJournal::new(1).to_json();
        assert!(empty.contains("\"epochs\": [\n  ]"));
    }
}
