//! The live ops plane: [`ObsServer`], a std-only HTTP/1.1 exporter over a
//! `TcpListener` and a small accept-thread pool (no async runtime, no
//! external dependencies — requests are parsed and responses written by
//! hand) serving the four read-only routes of a running [`Telemetry`]:
//!
//! | route          | payload                                            |
//! |----------------|----------------------------------------------------|
//! | `/metrics`     | Prometheus text, incl. per-worker labeled families |
//! | `/healthz`     | liveness + last-epoch staleness JSON               |
//! | `/trace.json`  | Chrome trace of recent spans (non-destructive)     |
//! | `/epochs.json` | the bounded [`EpochJournal`] time series           |
//!
//! Since PR 9 the server is route-agnostic: it owns the transport
//! (sockets, timeouts, request-head limits, the 405/400/431 mapping) and
//! dispatches every well-formed GET through a [`Router`]. The four
//! telemetry routes above are themselves registrations (see
//! [`telemetry_router`]), and [`ObsServer::bind_with_router`] mounts any
//! additional routes — e.g. the `ebv-serve` query plane — on the same
//! listener.
//!
//! [`EpochJournal`]: crate::EpochJournal

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::router::{Request, Response, Router};
use crate::trace::Telemetry;

/// Tuning knobs of an [`ObsServer`].
#[derive(Debug, Clone)]
pub struct ObsServerConfig {
    /// Accept/handler threads (each thread accepts and serves one
    /// connection at a time; rounded up to 1).
    pub threads: usize,
    /// `/healthz` reports `503 stale` when the last journal record is
    /// older than this.
    pub staleness_threshold: Duration,
    /// Per-connection socket read/write timeout.
    pub read_timeout: Duration,
    /// Connections whose request head exceeds this many bytes get
    /// `431 Request Header Fields Too Large`.
    pub max_request_bytes: usize,
}

impl Default for ObsServerConfig {
    fn default() -> Self {
        ObsServerConfig {
            threads: 2,
            staleness_threshold: Duration::from_secs(60),
            read_timeout: Duration::from_secs(2),
            max_request_bytes: 8192,
        }
    }
}

/// A running observability server: a handle owning the accept threads.
///
/// Dropping the handle (or calling [`shutdown`](ObsServer::shutdown))
/// stops the listeners gracefully: the shutdown flag is raised, each
/// accept thread is woken with a loopback connection, and all threads are
/// joined — no detached threads outlive the handle.
#[derive(Debug)]
pub struct ObsServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    requests: Arc<AtomicU64>,
    handles: Vec<JoinHandle<()>>,
}

impl ObsServer {
    /// Binds `addr` (e.g. `"127.0.0.1:9808"`, port 0 for an ephemeral
    /// port) and starts serving `telemetry`'s four routes on a pool of
    /// [`config.threads`](ObsServerConfig::threads) accept threads.
    ///
    /// Equivalent to [`bind_with_router`](ObsServer::bind_with_router) over
    /// [`telemetry_router`]; use that pair to mount additional routes on
    /// the same listener.
    pub fn bind(
        addr: impl ToSocketAddrs,
        telemetry: Arc<Telemetry>,
        config: ObsServerConfig,
    ) -> io::Result<ObsServer> {
        let router = telemetry_router(telemetry, &config);
        ObsServer::bind_with_router(addr, router, config)
    }

    /// Binds `addr` and serves whatever routes `router` registers.
    pub fn bind_with_router(
        addr: impl ToSocketAddrs,
        router: Router,
        config: ObsServerConfig,
    ) -> io::Result<ObsServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let requests = Arc::new(AtomicU64::new(0));
        let router = Arc::new(router);
        let threads = config.threads.max(1);
        let mut handles = Vec::with_capacity(threads);
        for worker in 0..threads {
            let listener = listener.try_clone()?;
            let router = Arc::clone(&router);
            let shutdown = Arc::clone(&shutdown);
            let requests = Arc::clone(&requests);
            let config = config.clone();
            handles.push(
                std::thread::Builder::new()
                    .name(format!("ebv-obs-{worker}"))
                    .spawn(move || {
                        accept_loop(&listener, &router, &shutdown, &requests, &config);
                    })?,
            );
        }
        Ok(ObsServer {
            addr,
            shutdown,
            requests,
            handles,
        })
    }

    /// The bound address (resolves port 0 to the actual ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests accepted so far (including malformed ones).
    pub fn requests_served(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Stops accepting, wakes the accept threads and joins them.
    pub fn shutdown(mut self) {
        self.finish();
    }

    fn finish(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Each accept thread is parked in `accept`; one loopback connection
        // per thread unblocks them all to observe the flag.
        for _ in 0..self.handles.len() {
            let _ = TcpStream::connect(self.addr);
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for ObsServer {
    fn drop(&mut self) {
        self.finish();
    }
}

/// Registers the four telemetry routes on a fresh [`Router`]: `/metrics`,
/// `/healthz` (staleness threshold taken from `config`), `/trace.json` and
/// `/epochs.json`. The returned router is open — mount more routes on it,
/// then pass it to [`ObsServer::bind_with_router`].
pub fn telemetry_router(telemetry: Arc<Telemetry>, config: &ObsServerConfig) -> Router {
    let mut router = Router::new();
    let t = Arc::clone(&telemetry);
    router.route("/metrics", move |_req: &Request<'_>| {
        Response::ok("text/plain; version=0.0.4; charset=utf-8", t.prometheus())
    });
    let t = Arc::clone(&telemetry);
    let staleness_threshold = config.staleness_threshold;
    router.route("/healthz", move |_req: &Request<'_>| {
        let (status, body) = healthz(&t, staleness_threshold);
        Response {
            status,
            content_type: "application/json; charset=utf-8",
            body,
            extra_headers: Vec::new(),
        }
    });
    let t = Arc::clone(&telemetry);
    router.route("/trace.json", move |_req: &Request<'_>| {
        Response::json(t.chrome_trace())
    });
    router.route("/epochs.json", move |_req: &Request<'_>| {
        Response::json(telemetry.journal().to_json())
    });
    router
}

fn accept_loop(
    listener: &TcpListener,
    router: &Router,
    shutdown: &AtomicBool,
    requests: &AtomicU64,
    config: &ObsServerConfig,
) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shutdown.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        requests.fetch_add(1, Ordering::Relaxed);
        // A handler panic (it cannot: handle_connection is infallible by
        // construction) or I/O error must never take down the listener —
        // errors are per-connection and the loop continues.
        let _ = handle_connection(stream, router, config);
    }
}

/// Reads the request head (up to the blank line), routes it, and writes
/// exactly one response. Every malformed input maps to a clean 4xx.
fn handle_connection(
    mut stream: TcpStream,
    router: &Router,
    config: &ObsServerConfig,
) -> io::Result<()> {
    stream.set_read_timeout(Some(config.read_timeout))?;
    stream.set_write_timeout(Some(config.read_timeout))?;
    let head = match read_request_head(&mut stream, config.max_request_bytes) {
        Ok(head) => head,
        Err(HeadError::TooLarge) => {
            respond(
                &mut stream,
                "431 Request Header Fields Too Large",
                "text/plain; charset=utf-8",
                "request head too large\n",
                &[],
            )?;
            // The client may still be mid-send: closing now, with unread
            // bytes queued, would RST the connection and can destroy the
            // response in flight. Half-close and drain to EOF (bounded by
            // the read timeout) so the 431 is delivered.
            stream.shutdown(std::net::Shutdown::Write)?;
            let mut sink = [0u8; 1024];
            while let Ok(read) = stream.read(&mut sink) {
                if read == 0 {
                    break;
                }
            }
            return Ok(());
        }
        Err(HeadError::Closed) => return Ok(()), // shutdown wake / probe
        Err(HeadError::Truncated) => {
            return respond(
                &mut stream,
                "400 Bad Request",
                "text/plain; charset=utf-8",
                "truncated request\n",
                &[],
            );
        }
        Err(HeadError::Io(err)) => return Err(err),
    };

    let mut parts = head.lines().next().unwrap_or_default().split_whitespace();
    let (Some(method), Some(target), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return respond(
            &mut stream,
            "400 Bad Request",
            "text/plain; charset=utf-8",
            "malformed request line\n",
            &[],
        );
    };
    if !version.starts_with("HTTP/") {
        return respond(
            &mut stream,
            "400 Bad Request",
            "text/plain; charset=utf-8",
            "malformed request line\n",
            &[],
        );
    }
    if method != "GET" {
        return respond(
            &mut stream,
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "only GET is supported\n",
            &["Allow: GET"],
        );
    }

    let request = Request::parse(method, target);
    let response = router.dispatch(&request);
    respond(
        &mut stream,
        response.status,
        response.content_type,
        &response.body,
        &response.extra_headers,
    )
}

/// Liveness JSON: `ok` while epochs keep landing (or none has yet),
/// `stale` (HTTP 503) once the newest journal record is older than the
/// configured threshold. When the process runs with a durable state plane
/// (`ebv-state` registers its metrics in the global
/// [`MetricsRegistry`](crate::MetricsRegistry)), a `durability` object
/// reports the checkpoint/WAL position; otherwise `durability` is `null`.
fn healthz(telemetry: &Telemetry, staleness_threshold: Duration) -> (&'static str, String) {
    let last_age = telemetry
        .journal()
        .last_at_seconds()
        .map(|at| (telemetry.elapsed_seconds() - at).max(0.0));
    let stale = last_age.is_some_and(|age| age > staleness_threshold.as_secs_f64());
    let status = if stale {
        "503 Service Unavailable"
    } else {
        "200 OK"
    };
    let body = format!(
        "{{\"status\": \"{}\", \"epochs_recorded\": {}, \"last_epoch_age_seconds\": {}, \
         \"staleness_threshold_seconds\": {:.3}, \"spans_dropped\": {}, \"durability\": {}}}\n",
        if stale { "stale" } else { "ok" },
        telemetry.journal().recorded_total(),
        match last_age {
            Some(age) => format!("{age:.3}"),
            None => "null".to_string(),
        },
        staleness_threshold.as_secs_f64(),
        telemetry.dropped(),
        durability_json(),
    );
    (status, body)
}

/// The `durability` section of `/healthz`, read from the global metrics
/// registry where the durable state plane publishes its position. `null`
/// until `ebv_checkpoint_epoch` has been registered (durability off).
fn durability_json() -> String {
    let snapshot = crate::MetricsRegistry::global().snapshot();
    let gauge = |name: &str| {
        snapshot
            .gauges
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    };
    let Some(checkpoint_epoch) = gauge("ebv_checkpoint_epoch") else {
        return "null".to_string();
    };
    let wal_bytes = snapshot
        .counters
        .iter()
        .find(|(n, _)| n == "ebv_wal_bytes_total")
        .map(|&(_, v)| v)
        .unwrap_or(0);
    let replayed = gauge("ebv_recovery_replayed_epochs").unwrap_or(0.0);
    format!(
        "{{\"checkpoint_epoch\": {}, \"wal_bytes_total\": {}, \
         \"recovery_replayed_epochs\": {}}}",
        checkpoint_epoch as u64, wal_bytes, replayed as u64
    )
}

enum HeadError {
    /// Peer closed before sending any byte (e.g. the shutdown wake-up).
    Closed,
    /// Peer closed (or timed out) mid-head.
    Truncated,
    /// Head exceeded the configured byte cap.
    TooLarge,
    Io(io::Error),
}

/// Reads until the `\r\n\r\n` (or `\n\n`) head terminator, EOF, or the
/// byte cap.
fn read_request_head(stream: &mut TcpStream, max_bytes: usize) -> Result<String, HeadError> {
    let mut head = Vec::with_capacity(256);
    let mut chunk = [0u8; 512];
    loop {
        let read = match stream.read(&mut chunk) {
            Ok(0) => {
                return Err(if head.is_empty() {
                    HeadError::Closed
                } else {
                    HeadError::Truncated
                });
            }
            Ok(read) => read,
            Err(err)
                if err.kind() == io::ErrorKind::WouldBlock
                    || err.kind() == io::ErrorKind::TimedOut =>
            {
                return Err(HeadError::Truncated);
            }
            Err(err) => return Err(HeadError::Io(err)),
        };
        head.extend_from_slice(&chunk[..read]);
        if head.len() > max_bytes {
            return Err(HeadError::TooLarge);
        }
        if head.windows(4).any(|w| w == b"\r\n\r\n") || head.windows(2).any(|w| w == b"\n\n") {
            return Ok(String::from_utf8_lossy(&head).into_owned());
        }
    }
}

fn respond(
    stream: &mut TcpStream,
    status: &str,
    content_type: &str,
    body: &str,
    extra_headers: &[&str],
) -> io::Result<()> {
    let mut response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\n\
         Connection: close\r\n",
        body.len(),
    );
    for header in extra_headers {
        response.push_str(header);
        response.push_str("\r\n");
    }
    response.push_str("\r\n");
    response.push_str(body);
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::EpochMark;
    use crate::recorder::{Phase, Recorder, SpanCtx};
    use std::time::Instant;

    fn serve_test_telemetry() -> (ObsServer, Arc<Telemetry>) {
        let telemetry = Arc::new(Telemetry::isolated());
        // One compute span and one applied epoch so every route has data.
        let started = Instant::now().checked_sub(Duration::from_millis(5));
        telemetry.span(
            started,
            SpanCtx {
                epoch: 1,
                superstep: 0,
                worker: 2,
            },
            Phase::Compute,
        );
        telemetry.counter_add("ebv_bsp_messages_total", 7);
        telemetry.epoch_applied(&EpochMark {
            epoch: 1,
            live_edges: 10,
            ..EpochMark::default()
        });
        let server = ObsServer::bind(
            "127.0.0.1:0",
            Arc::clone(&telemetry),
            ObsServerConfig::default(),
        )
        .expect("bind an ephemeral port");
        (server, telemetry)
    }

    /// Sends raw bytes and returns the full response as a string.
    fn roundtrip(addr: SocketAddr, request: &[u8]) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(request).expect("send request");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read response");
        response
    }

    fn get(addr: SocketAddr, path: &str) -> String {
        roundtrip(
            addr,
            format!("GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").as_bytes(),
        )
    }

    #[test]
    fn all_four_routes_serve_wellformed_payloads() {
        let (server, _telemetry) = serve_test_telemetry();
        let addr = server.local_addr();

        let metrics = get(addr, "/metrics");
        assert!(metrics.starts_with("HTTP/1.1 200 OK"));
        assert!(metrics.contains("# TYPE ebv_bsp_messages_total counter"));
        assert!(metrics.contains("ebv_worker_phase_seconds{worker=\"2\",phase=\"compute\"}"));

        let healthz = get(addr, "/healthz");
        assert!(healthz.starts_with("HTTP/1.1 200 OK"));
        assert!(healthz.contains("\"status\": \"ok\""));
        assert!(healthz.contains("\"epochs_recorded\": 1"));

        let epochs = get(addr, "/epochs.json");
        assert!(epochs.starts_with("HTTP/1.1 200 OK"));
        assert!(epochs.contains("\"epoch\": 1"));
        assert!(epochs.contains("\"phase_seconds\": {"));

        // The trace route is non-destructive: two scrapes agree.
        let first = get(addr, "/trace.json");
        let second = get(addr, "/trace.json");
        assert!(first.starts_with("HTTP/1.1 200 OK"));
        assert!(first.contains("\"traceEvents\":["));
        assert_eq!(
            first.lines().skip(1).collect::<Vec<_>>(),
            second.lines().skip(1).collect::<Vec<_>>(),
        );

        // Query strings are ignored for routing.
        assert!(get(addr, "/metrics?x=1").starts_with("HTTP/1.1 200 OK"));

        assert!(server.requests_served() >= 6);
        server.shutdown();
    }

    #[test]
    fn malformed_requests_get_clean_errors_and_never_wedge_the_listener() {
        let (server, _telemetry) = serve_test_telemetry();
        let addr = server.local_addr();

        // Unknown path.
        assert!(get(addr, "/nope").starts_with("HTTP/1.1 404"));
        // Bad method.
        let post = roundtrip(addr, b"POST /metrics HTTP/1.1\r\nHost: t\r\n\r\n");
        assert!(post.starts_with("HTTP/1.1 405"));
        assert!(post.contains("Allow: GET"));
        // Garbage request line.
        assert!(roundtrip(addr, b"garbage\r\n\r\n").starts_with("HTTP/1.1 400"));
        // Not HTTP at all.
        assert!(roundtrip(addr, b"GET /metrics SMTP\r\n\r\n").starts_with("HTTP/1.1 400"));
        // Truncated head: bytes sent, then the client half-closes.
        let mut truncated = TcpStream::connect(addr).expect("connect");
        truncated.write_all(b"GET /metrics HT").expect("send");
        truncated
            .shutdown(std::net::Shutdown::Write)
            .expect("half-close");
        let mut response = String::new();
        truncated.read_to_string(&mut response).expect("read");
        assert!(response.starts_with("HTTP/1.1 400"));
        // Oversized head.
        let huge = format!(
            "GET /metrics HTTP/1.1\r\nX-Pad: {}\r\n\r\n",
            "y".repeat(16 * 1024)
        );
        assert!(roundtrip(addr, huge.as_bytes()).starts_with("HTTP/1.1 431"));

        // After all of the above the listener still serves.
        assert!(get(addr, "/healthz").starts_with("HTTP/1.1 200 OK"));
        server.shutdown();
    }

    #[test]
    fn default_404_body_is_unchanged_and_extra_routes_mount_on_one_listener() {
        let telemetry = Arc::new(Telemetry::isolated());
        let config = ObsServerConfig::default();
        // The telemetry router alone reproduces the PR 7 404 byte for byte.
        let server =
            ObsServer::bind("127.0.0.1:0", Arc::clone(&telemetry), config.clone()).expect("bind");
        let response = get(server.local_addr(), "/nope");
        assert!(response.starts_with("HTTP/1.1 404"));
        assert!(
            response.ends_with("unknown route; try /metrics /healthz /trace.json /epochs.json\n")
        );
        server.shutdown();

        // A custom route registered on top shares the listener with the
        // telemetry routes; the 404 listing grows to include it.
        let mut router = crate::serve::telemetry_router(telemetry, &config);
        router.route("/custom", |req: &crate::router::Request<'_>| {
            crate::router::Response::ok(
                "text/plain; charset=utf-8",
                format!("param={}\n", req.query_param("x").unwrap_or("none")),
            )
        });
        let server = ObsServer::bind_with_router("127.0.0.1:0", router, config).expect("bind");
        let addr = server.local_addr();
        assert!(get(addr, "/metrics").starts_with("HTTP/1.1 200 OK"));
        let custom = get(addr, "/custom?x=7");
        assert!(custom.starts_with("HTTP/1.1 200 OK"));
        assert!(custom.ends_with("param=7\n"));
        assert!(get(addr, "/nope")
            .ends_with("unknown route; try /metrics /healthz /trace.json /epochs.json /custom\n"));
        server.shutdown();
    }

    #[test]
    fn healthz_reports_stale_epochs_with_503() {
        let telemetry = Arc::new(Telemetry::isolated());
        telemetry.epoch_applied(&EpochMark::default());
        let server = ObsServer::bind(
            "127.0.0.1:0",
            Arc::clone(&telemetry),
            ObsServerConfig {
                staleness_threshold: Duration::from_millis(1),
                ..ObsServerConfig::default()
            },
        )
        .expect("bind");
        std::thread::sleep(Duration::from_millis(10));
        let healthz = get(server.local_addr(), "/healthz");
        assert!(healthz.starts_with("HTTP/1.1 503"));
        assert!(healthz.contains("\"status\": \"stale\""));
        server.shutdown();

        // With no epochs recorded there is nothing to be stale against.
        let idle = Arc::new(Telemetry::isolated());
        let server = ObsServer::bind(
            "127.0.0.1:0",
            idle,
            ObsServerConfig {
                staleness_threshold: Duration::from_millis(1),
                ..ObsServerConfig::default()
            },
        )
        .expect("bind");
        let healthz = get(server.local_addr(), "/healthz");
        assert!(healthz.starts_with("HTTP/1.1 200 OK"));
        assert!(healthz.contains("\"last_epoch_age_seconds\": null"));
        server.shutdown();
    }

    #[test]
    fn healthz_reports_the_durable_state_plane_once_registered() {
        let telemetry = Arc::new(Telemetry::isolated());
        let server =
            ObsServer::bind("127.0.0.1:0", telemetry, ObsServerConfig::default()).expect("bind");
        let addr = server.local_addr();
        // No durable state plane in this process yet: explicit null.
        assert!(get(addr, "/healthz").contains("\"durability\": null"));

        // The moment a store registers its metrics (this test is the only
        // one in the crate touching these names), the section goes live.
        crate::MetricsRegistry::global()
            .gauge("ebv_checkpoint_epoch")
            .set(24.0);
        crate::MetricsRegistry::global()
            .gauge("ebv_recovery_replayed_epochs")
            .set(3.0);
        crate::MetricsRegistry::global()
            .counter("ebv_wal_bytes_total")
            .add(4096);
        let healthz = get(addr, "/healthz");
        assert!(healthz.contains(
            "\"durability\": {\"checkpoint_epoch\": 24, \"wal_bytes_total\": 4096, \
             \"recovery_replayed_epochs\": 3}"
        ));
        server.shutdown();
    }

    #[test]
    fn shutdown_joins_all_threads_and_frees_the_port() {
        let telemetry = Arc::new(Telemetry::isolated());
        let server = ObsServer::bind(
            "127.0.0.1:0",
            telemetry,
            ObsServerConfig {
                threads: 3,
                ..ObsServerConfig::default()
            },
        )
        .expect("bind");
        let addr = server.local_addr();
        assert!(get(addr, "/healthz").starts_with("HTTP/1.1 200"));
        server.shutdown();
        // The port is released: rebinding the exact address succeeds.
        let rebound = TcpListener::bind(addr).expect("rebind after shutdown");
        drop(rebound);
    }
}
