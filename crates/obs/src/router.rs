//! The typed route-registration seam of the ops server.
//!
//! PR 7's [`ObsServer`](crate::ObsServer) hard-coded its four routes in a
//! `match` inside `serve.rs`, so mounting anything new (the query plane)
//! meant editing the server. [`Router`] inverts that: routes are
//! `path → handler` registrations ([`RouteHandler`] trait objects — any
//! `Fn(&Request) -> Response` works), the server owns only the transport
//! (sockets, timeouts, request-head limits, 405/400/431 mapping), and any
//! crate can register routes before binding. The server's own telemetry
//! routes re-register through the same seam with byte-identical responses.
//!
//! Matching is exact-first, then longest registered prefix (for routes like
//! `/query/<series>/<vertex>` that embed parameters in the path). The 404
//! body enumerates the registered routes, so it stays truthful as routes
//! are mounted.

use std::collections::HashMap;

/// One parsed (GET) request, as seen by a [`RouteHandler`].
#[derive(Debug, Clone, Copy)]
pub struct Request<'a> {
    /// Request method (the server only routes `GET`).
    pub method: &'a str,
    /// Path component of the target, without the query string.
    pub path: &'a str,
    /// Raw query string (no leading `?`; empty when absent).
    pub query: &'a str,
}

impl<'a> Request<'a> {
    /// Splits a request target into a [`Request`] at `method`.
    pub fn parse(method: &'a str, target: &'a str) -> Request<'a> {
        let (path, query) = match target.split_once('?') {
            Some((path, query)) => (path, query),
            None => (target, ""),
        };
        Request {
            method,
            path,
            query,
        }
    }

    /// The value of query parameter `name` (`k=v` pairs joined by `&`; no
    /// percent-decoding — the served names are plain identifiers).
    pub fn query_param(&self, name: &str) -> Option<&'a str> {
        self.query.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=')?;
            (k == name).then_some(v)
        })
    }

    /// The path remainder after `prefix` — the parameter part of a
    /// prefix-matched route.
    pub fn path_after(&self, prefix: &str) -> &'a str {
        self.path.strip_prefix(prefix).unwrap_or("")
    }
}

/// One HTTP response, built by a handler and written by the server.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status line (e.g. `200 OK`).
    pub status: &'static str,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: String,
    /// Extra response headers, each a full `Name: value` line.
    pub extra_headers: Vec<&'static str>,
}

impl Response {
    /// A `200 OK` response with an explicit content type.
    pub fn ok(content_type: &'static str, body: impl Into<String>) -> Response {
        Response {
            status: "200 OK",
            content_type,
            body: body.into(),
            extra_headers: Vec::new(),
        }
    }

    /// A `200 OK` JSON response.
    pub fn json(body: impl Into<String>) -> Response {
        Response::ok("application/json; charset=utf-8", body)
    }

    /// A plain-text response with an arbitrary status line.
    pub fn text(status: &'static str, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into(),
            extra_headers: Vec::new(),
        }
    }

    /// A `404 Not Found` plain-text response.
    pub fn not_found(body: impl Into<String>) -> Response {
        Response::text("404 Not Found", body)
    }

    /// A `400 Bad Request` plain-text response.
    pub fn bad_request(body: impl Into<String>) -> Response {
        Response::text("400 Bad Request", body)
    }

    /// A `503 Service Unavailable` plain-text response.
    pub fn unavailable(body: impl Into<String>) -> Response {
        Response::text("503 Service Unavailable", body)
    }
}

/// A route's handler. Handlers run on the server's accept threads, so they
/// must be `Send + Sync`; any matching closure qualifies through the
/// blanket impl.
pub trait RouteHandler: Send + Sync {
    /// Produces the response for one matched request.
    fn handle(&self, request: &Request<'_>) -> Response;
}

impl<F> RouteHandler for F
where
    F: Fn(&Request<'_>) -> Response + Send + Sync,
{
    fn handle(&self, request: &Request<'_>) -> Response {
        self(request)
    }
}

/// Path → handler registry: exact matches first, then longest registered
/// prefix. The route list drives both dispatch and the self-describing 404
/// body.
#[derive(Default)]
pub struct Router {
    exact: HashMap<String, Box<dyn RouteHandler>>,
    prefix: Vec<(String, Box<dyn RouteHandler>)>,
    /// Registration order of every route, for the 404 listing.
    listing: Vec<String>,
}

impl std::fmt::Debug for Router {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Router")
            .field("routes", &self.listing)
            .finish()
    }
}

impl Router {
    /// An empty router (dispatch answers 404 for everything).
    pub fn new() -> Router {
        Router::default()
    }

    /// Registers `handler` for exactly `path`. A later registration for the
    /// same path replaces the earlier one.
    pub fn route(&mut self, path: &str, handler: impl RouteHandler + 'static) -> &mut Self {
        if self
            .exact
            .insert(path.to_string(), Box::new(handler))
            .is_none()
        {
            self.listing.push(path.to_string());
        }
        self
    }

    /// Registers `handler` for every path starting with `prefix` (unless an
    /// exact route matches first). Longer prefixes win over shorter ones.
    pub fn route_prefix(
        &mut self,
        prefix: &str,
        handler: impl RouteHandler + 'static,
    ) -> &mut Self {
        self.prefix.push((prefix.to_string(), Box::new(handler)));
        // Longest-prefix-first, stable for equal lengths.
        self.prefix.sort_by_key(|(p, _)| std::cmp::Reverse(p.len()));
        self.listing.push(format!("{prefix}*"));
        self
    }

    /// The registered routes, in registration order (prefix routes carry a
    /// trailing `*`).
    pub fn routes(&self) -> &[String] {
        &self.listing
    }

    /// Routes one request: exact match, then longest matching prefix, then
    /// a 404 listing the registered routes.
    pub fn dispatch(&self, request: &Request<'_>) -> Response {
        if let Some(handler) = self.exact.get(request.path) {
            return handler.handle(request);
        }
        for (prefix, handler) in &self.prefix {
            if request.path.starts_with(prefix.as_str()) {
                return handler.handle(request);
            }
        }
        Response::not_found(format!("unknown route; try {}\n", self.listing.join(" ")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_parse_splits_path_and_query() {
        let request = Request::parse("GET", "/topk?series=cc&k=5");
        assert_eq!(request.path, "/topk");
        assert_eq!(request.query, "series=cc&k=5");
        assert_eq!(request.query_param("series"), Some("cc"));
        assert_eq!(request.query_param("k"), Some("5"));
        assert_eq!(request.query_param("order"), None);

        let bare = Request::parse("GET", "/metrics");
        assert_eq!(bare.path, "/metrics");
        assert_eq!(bare.query, "");
        assert_eq!(bare.query_param("anything"), None);
    }

    #[test]
    fn exact_routes_win_over_prefix_routes() {
        let mut router = Router::new();
        router.route("/query", |_req: &Request<'_>| {
            Response::json("{\"index\": true}")
        });
        router.route_prefix("/query/", |req: &Request<'_>| {
            Response::ok("text/plain; charset=utf-8", req.path_after("/query/"))
        });
        let index = router.dispatch(&Request::parse("GET", "/query"));
        assert_eq!(index.status, "200 OK");
        assert!(index.body.contains("index"));
        let param = router.dispatch(&Request::parse("GET", "/query/cc/42"));
        assert_eq!(param.body, "cc/42");
    }

    #[test]
    fn longest_prefix_wins() {
        let mut router = Router::new();
        router.route_prefix("/a/", |_req: &Request<'_>| {
            Response::text("200 OK", "short")
        });
        router.route_prefix("/a/b/", |_req: &Request<'_>| {
            Response::text("200 OK", "long")
        });
        assert_eq!(
            router.dispatch(&Request::parse("GET", "/a/b/c")).body,
            "long"
        );
        assert_eq!(
            router.dispatch(&Request::parse("GET", "/a/x")).body,
            "short"
        );
    }

    #[test]
    fn unknown_paths_get_a_404_listing_the_registered_routes() {
        let mut router = Router::new();
        router.route("/metrics", |_req: &Request<'_>| {
            Response::ok("text/plain; charset=utf-8", "")
        });
        router.route("/healthz", |_req: &Request<'_>| Response::json("{}"));
        let response = router.dispatch(&Request::parse("GET", "/nope"));
        assert_eq!(response.status, "404 Not Found");
        assert_eq!(response.body, "unknown route; try /metrics /healthz\n");
    }

    #[test]
    fn re_registering_a_path_replaces_without_duplicating_the_listing() {
        let mut router = Router::new();
        router.route("/x", |_req: &Request<'_>| Response::text("200 OK", "one"));
        router.route("/x", |_req: &Request<'_>| Response::text("200 OK", "two"));
        assert_eq!(router.routes(), &["/x".to_string()]);
        assert_eq!(router.dispatch(&Request::parse("GET", "/x")).body, "two");
    }
}
