//! The span tracer: a bounded lock-free ring of timed phase spans and the
//! [`Telemetry`] recorder that feeds it, exportable as Chrome trace-event
//! JSON (loadable in `chrome://tracing` or Perfetto).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use crate::recorder::{Phase, Recorder, SpanCtx};
use crate::registry::MetricsRegistry;

/// One completed span: a phase with its hierarchy coordinates and its
/// start/duration relative to the tracer's origin instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// The instrumented phase.
    pub phase: Phase,
    /// Where in the epoch → superstep → worker hierarchy the span sits.
    pub ctx: SpanCtx,
    /// Start offset from the tracer's origin, in nanoseconds.
    pub start_nanos: u64,
    /// Span duration in nanoseconds.
    pub duration_nanos: u64,
}

/// Sentinel sequence value marking a slot a writer currently owns.
const WRITING: u64 = u64::MAX;

/// A slot's payload, written only by the thread that claimed the slot.
#[derive(Debug, Clone, Copy, Default)]
struct SlotPayload {
    phase: Phase,
    ctx: SpanCtx,
    start_nanos: u64,
    duration_nanos: u64,
}

#[derive(Debug)]
struct Slot {
    /// `0` = never written, `ticket + 1` = committed by that ticket,
    /// [`WRITING`] = a writer owns the slot right now.
    seq: AtomicU64,
    payload: std::cell::UnsafeCell<SlotPayload>,
}

// SAFETY: `payload` is only written by the thread that atomically swapped
// `seq` to WRITING (exclusive claim) and only read through `&mut self`
// export methods, which statically guarantee no concurrent writer.
unsafe impl Sync for Slot {}

/// A bounded lock-free multi-producer ring of [`SpanRecord`]s.
///
/// Writers take a ticket with one `fetch_add`, claim their slot with a
/// `swap`, and drop the span (counting it) if another writer still owns
/// the slot — no spinning, no locks on the hot path. When the ring wraps,
/// the oldest spans are overwritten; [`SpanRing::dropped`] reports spans
/// lost to slot contention. Export requires `&mut self`, which statically
/// guarantees quiescence.
#[derive(Debug)]
pub struct SpanRing {
    slots: Box<[Slot]>,
    /// Next ticket; slot index is `ticket % slots.len()`.
    head: AtomicU64,
    /// Spans dropped because their slot was still owned by another writer.
    dropped: AtomicU64,
}

impl SpanRing {
    /// Creates a ring holding up to `capacity` spans (rounded up to 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        SpanRing {
            slots: (0..capacity)
                .map(|_| Slot {
                    seq: AtomicU64::new(0),
                    payload: std::cell::UnsafeCell::new(SlotPayload::default()),
                })
                .collect(),
            head: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total spans pushed (including overwritten and dropped ones).
    pub fn pushed(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Spans dropped because of slot contention (distinct from the silent
    /// overwrite of old spans when the ring wraps).
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Pushes one span. Lock-free: on slot contention the span is dropped
    /// and counted rather than waited for.
    pub fn push(&self, record: SpanRecord) {
        let ticket = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(ticket % self.slots.len() as u64) as usize];
        if slot.seq.swap(WRITING, Ordering::Acquire) == WRITING {
            // Another writer owns this slot (the ring lapped it mid-write);
            // losing one span beats blocking a worker thread.
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        // SAFETY: the swap above granted this thread exclusive ownership of
        // the slot until the Release store below.
        unsafe {
            *slot.payload.get() = SlotPayload {
                phase: record.phase,
                ctx: record.ctx,
                start_nanos: record.start_nanos,
                duration_nanos: record.duration_nanos,
            };
        }
        slot.seq.store(ticket + 1, Ordering::Release);
    }

    /// Drains the committed spans in ticket order (oldest surviving span
    /// first). Taking `&mut self` guarantees no writer is concurrent with
    /// the read.
    pub fn export(&mut self) -> Vec<SpanRecord> {
        let head = *self.head.get_mut();
        let capacity = self.slots.len() as u64;
        let oldest = head.saturating_sub(capacity);
        let mut out = Vec::with_capacity((head - oldest) as usize);
        for ticket in oldest..head {
            let slot = &mut self.slots[(ticket % capacity) as usize];
            if *slot.seq.get_mut() != ticket + 1 {
                continue; // dropped on contention, lapped, or never committed
            }
            let payload = *slot.payload.get_mut();
            out.push(SpanRecord {
                phase: payload.phase,
                ctx: payload.ctx,
                start_nanos: payload.start_nanos,
                duration_nanos: payload.duration_nanos,
            });
        }
        out
    }
}

/// Default span-ring capacity (spans) of a [`Telemetry`] built with
/// [`Telemetry::new`] / [`Telemetry::isolated`].
pub const DEFAULT_RING_CAPACITY: usize = 1 << 16;

/// The real [`Recorder`]: spans land in a bounded lock-free [`SpanRing`]
/// with `Instant` timings *and* feed per-phase latency histograms;
/// counters/gauges/histograms go to a [`MetricsRegistry`].
///
/// [`Telemetry::new`] reports into the process-wide
/// [`MetricsRegistry::global`]; [`Telemetry::isolated`] uses a private
/// registry (tests, overhead benchmarks).
#[derive(Debug)]
pub struct Telemetry {
    ring: SpanRing,
    registry: MetricsRegistry,
    /// All span timestamps are offsets from this instant.
    origin: Instant,
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::new()
    }
}

impl Telemetry {
    /// A tracer over the process-wide global registry with the default
    /// ring capacity.
    pub fn new() -> Self {
        Telemetry::with_capacity(MetricsRegistry::global().clone(), DEFAULT_RING_CAPACITY)
    }

    /// A tracer over a fresh private registry (no cross-talk with the
    /// global one) with the default ring capacity.
    pub fn isolated() -> Self {
        Telemetry::with_capacity(MetricsRegistry::new(), DEFAULT_RING_CAPACITY)
    }

    /// A tracer over `registry` with a ring of `capacity` spans.
    pub fn with_capacity(registry: MetricsRegistry, capacity: usize) -> Self {
        Telemetry {
            ring: SpanRing::new(capacity),
            registry,
            origin: Instant::now(),
        }
    }

    /// The registry this tracer reports metrics into.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Spans dropped on ring-slot contention.
    pub fn dropped(&self) -> u64 {
        self.ring.dropped()
    }

    /// The committed spans in ticket order (oldest first).
    pub fn spans(&mut self) -> Vec<SpanRecord> {
        self.ring.export()
    }

    /// Total recorded wall-clock seconds per phase, summed over the spans
    /// currently in the ring — the measured counterpart of the
    /// `CostModel` breakdown. Returned in [`Phase::ALL`] order.
    pub fn phase_totals(&mut self) -> Vec<(Phase, f64)> {
        let spans = self.ring.export();
        Phase::ALL
            .iter()
            .map(|&phase| {
                let nanos: u64 = spans
                    .iter()
                    .filter(|s| s.phase == phase)
                    .map(|s| s.duration_nanos)
                    .sum();
                (phase, nanos as f64 / 1e9)
            })
            .collect()
    }

    /// Renders the ring as a Chrome trace-event JSON document (complete
    /// `ph: "X"` duration events; microsecond timestamps), loadable in
    /// `chrome://tracing` or <https://ui.perfetto.dev>. Workers map to
    /// `tid`s so each worker gets its own track; engine-side spans
    /// (`worker == p`) land on their own track above the workers.
    pub fn chrome_trace(&mut self) -> String {
        use std::fmt::Write as _;
        let spans = self.ring.export();
        let mut out = String::from("{\"traceEvents\":[");
        for (i, span) in spans.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                 \"pid\":1,\"tid\":{},\"args\":{{\"epoch\":{},\"superstep\":{},\"worker\":{}}}}}",
                span.phase.name(),
                span.phase.category(),
                span.start_nanos / 1_000,
                (span.duration_nanos / 1_000).max(1),
                span.ctx.worker,
                span.ctx.epoch,
                span.ctx.superstep,
                span.ctx.worker,
            );
        }
        out.push_str("\n]}\n");
        out
    }
}

impl Recorder for Telemetry {
    #[inline]
    fn start(&self) -> Option<Instant> {
        Some(Instant::now())
    }

    fn span(&self, started: Option<Instant>, ctx: SpanCtx, phase: Phase) {
        let Some(started) = started else { return };
        let duration = started.elapsed();
        let start_nanos = started.saturating_duration_since(self.origin).as_nanos() as u64;
        self.ring.push(SpanRecord {
            phase,
            ctx,
            start_nanos,
            duration_nanos: duration.as_nanos() as u64,
        });
        self.registry
            .histogram(phase.histogram_name())
            .observe(duration.as_secs_f64());
    }

    fn counter_add(&self, name: &'static str, delta: u64) {
        self.registry.counter(name).add(delta);
    }

    fn gauge_set(&self, name: &'static str, value: f64) {
        self.registry.gauge(name).set(value);
    }

    fn observe_seconds(&self, name: &'static str, seconds: f64) {
        self.registry.histogram(name).observe(seconds);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(ticket_hint: u64) -> SpanRecord {
        SpanRecord {
            phase: Phase::Compute,
            ctx: SpanCtx {
                epoch: 0,
                superstep: ticket_hint as u32,
                worker: 0,
            },
            start_nanos: ticket_hint * 10,
            duration_nanos: 5,
        }
    }

    #[test]
    fn ring_preserves_order_and_wraps() {
        let mut ring = SpanRing::new(4);
        for i in 0..6 {
            ring.push(record(i));
        }
        let spans = ring.export();
        // Capacity 4, pushed 6: the oldest two were overwritten.
        assert_eq!(spans.len(), 4);
        let supersteps: Vec<u32> = spans.iter().map(|s| s.ctx.superstep).collect();
        assert_eq!(supersteps, vec![2, 3, 4, 5]);
        assert_eq!(ring.pushed(), 6);
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn ring_accepts_concurrent_writers() {
        let ring = SpanRing::new(1 << 12);
        std::thread::scope(|scope| {
            for worker in 0..4u32 {
                let ring = &ring;
                scope.spawn(move || {
                    for i in 0..500 {
                        ring.push(SpanRecord {
                            phase: Phase::Scatter,
                            ctx: SpanCtx {
                                epoch: 0,
                                superstep: i,
                                worker,
                            },
                            start_nanos: 0,
                            duration_nanos: 1,
                        });
                    }
                });
            }
        });
        let mut ring = ring;
        assert_eq!(ring.pushed(), 2000);
        // Nothing wrapped, so every span not dropped to contention survives.
        assert_eq!(ring.export().len() as u64 + ring.dropped(), 2000);
    }

    #[test]
    fn telemetry_records_spans_and_histograms() {
        let mut telemetry = Telemetry::isolated();
        let started = telemetry.start();
        assert!(started.is_some());
        let ctx = SpanCtx {
            epoch: 2,
            superstep: 7,
            worker: 3,
        };
        telemetry.span(started, ctx, Phase::Gather);
        telemetry.counter_add("probe_total", 2);
        telemetry.gauge_set("probe_gauge", 1.5);

        let snapshot = telemetry.registry().snapshot();
        assert_eq!(snapshot.counters, vec![("probe_total".to_string(), 2)]);
        assert_eq!(
            snapshot
                .histograms
                .iter()
                .map(|h| h.name.as_str())
                .collect::<Vec<_>>(),
            vec![Phase::Gather.histogram_name()]
        );
        assert_eq!(snapshot.histograms[0].count, 1);

        let spans = telemetry.spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].phase, Phase::Gather);
        assert_eq!(spans[0].ctx, ctx);
    }

    #[test]
    fn chrome_trace_is_wellformed() {
        let mut telemetry = Telemetry::isolated();
        for worker in 0..2 {
            let started = telemetry.start();
            telemetry.span(
                started,
                SpanCtx {
                    epoch: 1,
                    superstep: 4,
                    worker,
                },
                Phase::Compute,
            );
        }
        let json = telemetry.chrome_trace();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.trim_end().ends_with("]}"));
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 2);
        assert!(json.contains("\"name\":\"compute\""));
        assert!(json.contains("\"cat\":\"bsp\""));
        assert!(json.contains("\"superstep\":4"));
        // Durations are clamped to ≥ 1µs so Perfetto renders them.
        assert!(!json.contains("\"dur\":0"));
    }

    #[test]
    fn phase_totals_sum_durations() {
        let mut telemetry = Telemetry::isolated();
        let ctx = SpanCtx::default();
        for _ in 0..3 {
            let started = telemetry.start();
            std::thread::sleep(std::time::Duration::from_millis(1));
            telemetry.span(started, ctx, Phase::Barrier);
        }
        let totals = telemetry.phase_totals();
        let barrier = totals
            .iter()
            .find(|(phase, _)| *phase == Phase::Barrier)
            .expect("barrier total present")
            .1;
        assert!(
            barrier >= 3e-3,
            "3 × 1ms sleeps should sum past 3ms, got {barrier}"
        );
        let gather = totals.iter().find(|(p, _)| *p == Phase::Gather).unwrap().1;
        assert_eq!(gather, 0.0);
    }
}
