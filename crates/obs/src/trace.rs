//! The span tracer: a bounded lock-free ring of timed phase spans and the
//! [`Telemetry`] recorder that feeds it, exportable as Chrome trace-event
//! JSON (loadable in `chrome://tracing` or Perfetto), with per-worker
//! phase attribution, a per-superstep straggler gauge and a bounded
//! [`EpochJournal`] of applied mutation epochs.

use std::fmt;
use std::sync::atomic::{fence, AtomicU64, Ordering};
use std::sync::{Mutex, RwLock};
use std::time::Instant;

use crate::journal::{EpochJournal, EpochMark};
use crate::recorder::{Phase, Recorder, SpanCtx};
use crate::registry::MetricsRegistry;

/// One completed span: a phase with its hierarchy coordinates and its
/// start/duration relative to the tracer's origin instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// The instrumented phase.
    pub phase: Phase,
    /// Where in the epoch → superstep → worker hierarchy the span sits.
    pub ctx: SpanCtx,
    /// Start offset from the tracer's origin, in nanoseconds.
    pub start_nanos: u64,
    /// Span duration in nanoseconds.
    pub duration_nanos: u64,
}

/// Sentinel sequence value marking a slot a writer currently owns.
const WRITING: u64 = u64::MAX;

/// One ring slot. The payload is four plain atomic words (context packed
/// as `epoch << 32 | superstep`, metadata as `worker << 32 | phase index`)
/// so readers can take a *seqlock-style* snapshot concurrently with
/// writers: no `UnsafeCell`, no `unsafe`, torn reads detected and
/// discarded by re-checking `seq`.
#[derive(Debug)]
struct Slot {
    /// `0` = never written, `ticket + 1` = committed by that ticket,
    /// [`WRITING`] = a writer owns the slot right now.
    seq: AtomicU64,
    /// `epoch << 32 | superstep`.
    ctx_bits: AtomicU64,
    /// `worker << 32 | phase index` (into [`Phase::ALL`]).
    meta_bits: AtomicU64,
    start_nanos: AtomicU64,
    duration_nanos: AtomicU64,
}

impl Slot {
    fn empty() -> Self {
        Slot {
            seq: AtomicU64::new(0),
            ctx_bits: AtomicU64::new(0),
            meta_bits: AtomicU64::new(0),
            start_nanos: AtomicU64::new(0),
            duration_nanos: AtomicU64::new(0),
        }
    }
}

/// A bounded lock-free multi-producer ring of [`SpanRecord`]s.
///
/// Writers take a ticket with one `fetch_add`, claim their slot with a
/// `swap`, and drop the span (counting it) if another writer still owns
/// the slot — no spinning, no locks on the hot path. When the ring wraps,
/// the oldest spans are overwritten; [`SpanRing::dropped`] reports spans
/// lost to slot contention. [`SpanRing::snapshot`] reads the committed
/// spans *without* stopping writers — slots that change mid-read are
/// detected via their sequence word and skipped, so a live HTTP scrape
/// never blocks or corrupts the hot path.
#[derive(Debug)]
pub struct SpanRing {
    slots: Box<[Slot]>,
    /// Next ticket; slot index is `ticket % slots.len()`.
    head: AtomicU64,
    /// Spans dropped because their slot was still owned by another writer.
    dropped: AtomicU64,
}

impl SpanRing {
    /// Creates a ring holding up to `capacity` spans (rounded up to 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        SpanRing {
            slots: (0..capacity).map(|_| Slot::empty()).collect(),
            head: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total spans pushed (including overwritten and dropped ones).
    pub fn pushed(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Spans dropped because of slot contention (distinct from the silent
    /// overwrite of old spans when the ring wraps).
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Pushes one span. Lock-free: on slot contention the span is dropped
    /// and counted rather than waited for.
    pub fn push(&self, record: SpanRecord) {
        let ticket = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(ticket % self.slots.len() as u64) as usize];
        if slot.seq.swap(WRITING, Ordering::Acquire) == WRITING {
            // Another writer owns this slot (the ring lapped it mid-write);
            // losing one span beats blocking a worker thread.
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let ctx_bits = (record.ctx.epoch as u64) << 32 | record.ctx.superstep as u64;
        let meta_bits = (record.ctx.worker as u64) << 32 | record.phase.index() as u64;
        slot.ctx_bits.store(ctx_bits, Ordering::Relaxed);
        slot.meta_bits.store(meta_bits, Ordering::Relaxed);
        slot.start_nanos
            .store(record.start_nanos, Ordering::Relaxed);
        slot.duration_nanos
            .store(record.duration_nanos, Ordering::Relaxed);
        slot.seq.store(ticket + 1, Ordering::Release);
    }

    /// Reads the committed spans in ticket order (oldest surviving span
    /// first) **without** draining the ring or stopping writers. Each slot
    /// is validated seqlock-style: read the sequence word, read the
    /// payload, re-check the sequence word — a slot a writer touched in
    /// between fails the re-check and is skipped, exactly like a span
    /// dropped to contention.
    pub fn snapshot(&self) -> Vec<SpanRecord> {
        let head = self.head.load(Ordering::Acquire);
        let capacity = self.slots.len() as u64;
        let oldest = head.saturating_sub(capacity);
        let mut out = Vec::with_capacity((head - oldest) as usize);
        for ticket in oldest..head {
            let slot = &self.slots[(ticket % capacity) as usize];
            if slot.seq.load(Ordering::Acquire) != ticket + 1 {
                continue; // dropped, lapped, mid-write, or never committed
            }
            let ctx_bits = slot.ctx_bits.load(Ordering::Relaxed);
            let meta_bits = slot.meta_bits.load(Ordering::Relaxed);
            let start_nanos = slot.start_nanos.load(Ordering::Relaxed);
            let duration_nanos = slot.duration_nanos.load(Ordering::Relaxed);
            // The fence orders the payload loads before the sequence
            // re-check: if `seq` is unchanged, no writer overlapped the
            // reads above and the payload is a consistent commit.
            fence(Ordering::Acquire);
            if slot.seq.load(Ordering::Relaxed) != ticket + 1 {
                continue;
            }
            let Some(phase) = Phase::from_index((meta_bits & u32::MAX as u64) as usize) else {
                continue;
            };
            out.push(SpanRecord {
                phase,
                ctx: SpanCtx {
                    epoch: (ctx_bits >> 32) as u32,
                    superstep: ctx_bits as u32,
                    worker: (meta_bits >> 32) as u32,
                },
                start_nanos,
                duration_nanos,
            });
        }
        out
    }
}

/// Default span-ring capacity (spans) of a [`Telemetry`] built with
/// [`Telemetry::new`] / [`Telemetry::isolated`].
pub const DEFAULT_RING_CAPACITY: usize = 1 << 16;

/// Cap on per-worker attribution tracks; spans from worker indices past
/// the cap are folded into the last track.
const MAX_WORKER_TRACKS: usize = 1024;

/// The rolling per-superstep compute window behind the straggler gauge:
/// compute-span durations accumulate per `(epoch, superstep)` key and the
/// window finalizes (publishing max/mean) when the key advances — sound
/// because the engine's barrier joins order every superstep-`S` compute
/// span before the first span of `S + 1`.
#[derive(Debug, Default)]
struct StragglerWindow {
    key: Option<(u32, u32)>,
    compute_nanos: Vec<u64>,
    last_ratio: f64,
}

/// The real [`Recorder`]: spans land in a bounded lock-free [`SpanRing`]
/// with `Instant` timings *and* feed per-phase latency histograms, per-
/// (worker, phase) wall-clock totals and the per-superstep straggler
/// gauge; counters/gauges/histograms go to a [`MetricsRegistry`]; applied
/// mutation epochs land in a bounded [`EpochJournal`]. Every read-side
/// accessor takes `&self`, so an [`ObsServer`](crate::ObsServer) can
/// export live from other threads while the run is hot.
///
/// [`Telemetry::new`] reports into the process-wide
/// [`MetricsRegistry::global`]; [`Telemetry::isolated`] uses a private
/// registry (tests, overhead benchmarks).
#[derive(Debug)]
pub struct Telemetry {
    ring: SpanRing,
    registry: MetricsRegistry,
    /// All span timestamps are offsets from this instant.
    origin: Instant,
    /// Cumulative recorded nanoseconds per (worker, phase). Read-locked on
    /// the span path; write-locked only to grow to a new worker index.
    worker_totals: RwLock<Vec<[AtomicU64; Phase::COUNT]>>,
    straggler: Mutex<StragglerWindow>,
    journal: EpochJournal,
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::new()
    }
}

impl Telemetry {
    /// A tracer over the process-wide global registry with the default
    /// ring capacity.
    pub fn new() -> Self {
        Telemetry::with_capacity(MetricsRegistry::global().clone(), DEFAULT_RING_CAPACITY)
    }

    /// A tracer over a fresh private registry (no cross-talk with the
    /// global one) with the default ring capacity.
    pub fn isolated() -> Self {
        Telemetry::with_capacity(MetricsRegistry::new(), DEFAULT_RING_CAPACITY)
    }

    /// A tracer over `registry` with a ring of `capacity` spans.
    pub fn with_capacity(registry: MetricsRegistry, capacity: usize) -> Self {
        Telemetry {
            ring: SpanRing::new(capacity),
            registry,
            origin: Instant::now(),
            worker_totals: RwLock::new(Vec::new()),
            straggler: Mutex::new(StragglerWindow::default()),
            journal: EpochJournal::default(),
        }
    }

    /// The registry this tracer reports metrics into.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// The journal of applied mutation epochs this tracer maintains.
    pub fn journal(&self) -> &EpochJournal {
        &self.journal
    }

    /// Seconds elapsed since the tracer's origin instant (the time base of
    /// every span timestamp and journal record).
    pub fn elapsed_seconds(&self) -> f64 {
        self.origin.elapsed().as_secs_f64()
    }

    /// Spans dropped on ring-slot contention.
    pub fn dropped(&self) -> u64 {
        self.ring.dropped()
    }

    /// The committed spans in ticket order (oldest first), read without
    /// draining the ring or stopping writers.
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.ring.snapshot()
    }

    /// Cumulative recorded nanoseconds per phase (summed over workers), in
    /// [`Phase::ALL`] order.
    pub fn phase_nanos(&self) -> [u64; Phase::COUNT] {
        let tracks = self.lock_tracks_read();
        let mut out = [0u64; Phase::COUNT];
        for track in tracks.iter() {
            for (total, cell) in out.iter_mut().zip(track.iter()) {
                *total += cell.load(Ordering::Relaxed);
            }
        }
        out
    }

    /// Total recorded wall-clock seconds per phase since the tracer was
    /// created — the measured counterpart of the `CostModel` breakdown.
    /// Returned in [`Phase::ALL`] order. Unlike the span ring this is
    /// cumulative: it never forgets spans to wrapping or contention.
    pub fn phase_totals(&self) -> Vec<(Phase, f64)> {
        let nanos = self.phase_nanos();
        Phase::ALL
            .iter()
            .map(|&phase| (phase, nanos[phase.index()] as f64 / 1e9))
            .collect()
    }

    /// Cumulative recorded wall-clock seconds per (worker, phase), indexed
    /// `[worker][phase.index()]` — the data behind the labeled
    /// `ebv_worker_phase_seconds` Prometheus families.
    pub fn worker_phase_seconds(&self) -> Vec<[f64; Phase::COUNT]> {
        self.lock_tracks_read()
            .iter()
            .map(|track| {
                let mut seconds = [0.0f64; Phase::COUNT];
                for (out, cell) in seconds.iter_mut().zip(track.iter()) {
                    *out = cell.load(Ordering::Relaxed) as f64 / 1e9;
                }
                seconds
            })
            .collect()
    }

    /// The most recently finalized per-superstep straggler ratio: max/mean
    /// worker compute wall-clock of one superstep (1.0 = perfectly even;
    /// 0.0 until a superstep has been finalized).
    pub fn straggler_ratio(&self) -> f64 {
        self.lock_straggler().last_ratio
    }

    /// Renders the ring as a Chrome trace-event JSON document into `out`
    /// (complete `ph: "X"` duration events; microsecond timestamps),
    /// loadable in `chrome://tracing` or <https://ui.perfetto.dev>.
    /// Workers map to `tid`s so each worker gets its own track;
    /// engine-side spans (`worker == p`) land on their own track above the
    /// workers. Non-destructive: concurrent with writers and repeatable.
    pub fn chrome_trace_into<W: fmt::Write>(&self, out: &mut W) -> fmt::Result {
        let spans = self.ring.snapshot();
        out.write_str("{\"traceEvents\":[")?;
        for (i, span) in spans.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            write!(
                out,
                "{sep}\n{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                 \"pid\":1,\"tid\":{},\"args\":{{\"epoch\":{},\"superstep\":{},\"worker\":{}}}}}",
                span.phase.name(),
                span.phase.category(),
                span.start_nanos / 1_000,
                (span.duration_nanos / 1_000).max(1),
                span.ctx.worker,
                span.ctx.epoch,
                span.ctx.superstep,
                span.ctx.worker,
            )?;
        }
        out.write_str("\n]}\n")
    }

    /// [`chrome_trace_into`](Self::chrome_trace_into) into a fresh
    /// `String`.
    pub fn chrome_trace(&self) -> String {
        let mut out = String::new();
        self.chrome_trace_into(&mut out)
            .expect("writing to a String cannot fail");
        out
    }

    /// Renders the live registry in the Prometheus text exposition format
    /// into `out`, followed by the labeled per-worker attribution families
    /// (`ebv_worker_phase_seconds{worker="3",phase="compute"}`) the
    /// bare-name registry cannot hold.
    pub fn prometheus_into<W: fmt::Write>(&self, out: &mut W) -> fmt::Result {
        self.registry.snapshot().to_prometheus_into(out)?;
        let workers = self.worker_phase_seconds();
        if workers
            .iter()
            .any(|track| track.iter().any(|&seconds| seconds > 0.0))
        {
            writeln!(out, "# TYPE ebv_worker_phase_seconds counter")?;
            for (worker, track) in workers.iter().enumerate() {
                for (i, &seconds) in track.iter().enumerate() {
                    if seconds > 0.0 {
                        writeln!(
                            out,
                            "ebv_worker_phase_seconds{{worker=\"{worker}\",phase=\"{}\"}} \
                             {seconds:.9}",
                            Phase::ALL[i].name(),
                        )?;
                    }
                }
            }
        }
        Ok(())
    }

    /// [`prometheus_into`](Self::prometheus_into) into a fresh `String`.
    pub fn prometheus(&self) -> String {
        let mut out = String::new();
        self.prometheus_into(&mut out)
            .expect("writing to a String cannot fail");
        out
    }

    fn attribute(&self, worker: u32, phase: Phase, duration_nanos: u64) {
        let index = (worker as usize).min(MAX_WORKER_TRACKS - 1);
        {
            let tracks = self.lock_tracks_read();
            if let Some(track) = tracks.get(index) {
                track[phase.index()].fetch_add(duration_nanos, Ordering::Relaxed);
                return;
            }
        }
        let mut tracks = self
            .worker_totals
            .write()
            .expect("worker totals lock poisoned");
        while tracks.len() <= index {
            tracks.push(std::array::from_fn(|_| AtomicU64::new(0)));
        }
        tracks[index][phase.index()].fetch_add(duration_nanos, Ordering::Relaxed);
    }

    fn observe_compute(&self, ctx: SpanCtx, duration_nanos: u64) {
        let mut window = self.lock_straggler();
        let key = (ctx.epoch, ctx.superstep);
        if window.key != Some(key) {
            Telemetry::finalize_window(&self.registry, &mut window);
            window.key = Some(key);
        }
        window.compute_nanos.push(duration_nanos);
    }

    /// Publishes the window's max/mean compute ratio (if it holds any
    /// spans) to the `ebv_bsp_straggler_ratio` gauge and resets it.
    fn finalize_window(registry: &MetricsRegistry, window: &mut StragglerWindow) {
        window.key = None;
        if window.compute_nanos.is_empty() {
            return;
        }
        let max = *window.compute_nanos.iter().max().expect("non-empty") as f64;
        let mean =
            window.compute_nanos.iter().sum::<u64>() as f64 / window.compute_nanos.len() as f64;
        window.last_ratio = if mean > 0.0 { max / mean } else { 1.0 };
        window.compute_nanos.clear();
        registry
            .gauge("ebv_bsp_straggler_ratio")
            .set(window.last_ratio);
    }

    fn lock_tracks_read(&self) -> std::sync::RwLockReadGuard<'_, Vec<[AtomicU64; Phase::COUNT]>> {
        self.worker_totals
            .read()
            .expect("worker totals lock poisoned")
    }

    fn lock_straggler(&self) -> std::sync::MutexGuard<'_, StragglerWindow> {
        self.straggler.lock().expect("straggler lock poisoned")
    }
}

impl Recorder for Telemetry {
    #[inline]
    fn start(&self) -> Option<Instant> {
        Some(Instant::now())
    }

    fn span(&self, started: Option<Instant>, ctx: SpanCtx, phase: Phase) {
        let Some(started) = started else { return };
        let duration = started.elapsed();
        let start_nanos = started.saturating_duration_since(self.origin).as_nanos() as u64;
        let duration_nanos = duration.as_nanos() as u64;
        self.ring.push(SpanRecord {
            phase,
            ctx,
            start_nanos,
            duration_nanos,
        });
        self.registry
            .histogram(phase.histogram_name())
            .observe(duration.as_secs_f64());
        self.attribute(ctx.worker, phase, duration_nanos);
        if phase == Phase::Compute {
            self.observe_compute(ctx, duration_nanos);
        }
    }

    fn counter_add(&self, name: &'static str, delta: u64) {
        self.registry.counter(name).add(delta);
    }

    fn gauge_set(&self, name: &'static str, value: f64) {
        self.registry.gauge(name).set(value);
    }

    fn observe_seconds(&self, name: &'static str, seconds: f64) {
        self.registry.histogram(name).observe(seconds);
    }

    fn epoch_applied(&self, mark: &EpochMark) {
        {
            let mut window = self.lock_straggler();
            Telemetry::finalize_window(&self.registry, &mut window);
        }
        let messages = self.registry.counter("ebv_bsp_messages_total").get();
        self.journal.record(
            *mark,
            self.elapsed_seconds(),
            self.phase_nanos(),
            messages,
            self.straggler_ratio(),
            self.dropped(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn record(ticket_hint: u64) -> SpanRecord {
        SpanRecord {
            phase: Phase::Compute,
            ctx: SpanCtx {
                epoch: 0,
                superstep: ticket_hint as u32,
                worker: 0,
            },
            start_nanos: ticket_hint * 10,
            duration_nanos: 5,
        }
    }

    /// A span whose duration the test controls: `started` is synthesized
    /// `millis` in the past, so `started.elapsed()` measures ≈ `millis`.
    fn timed_span(telemetry: &Telemetry, ctx: SpanCtx, phase: Phase, millis: u64) {
        let started = Instant::now()
            .checked_sub(Duration::from_millis(millis))
            .expect("the clock reaches back a few milliseconds");
        telemetry.span(Some(started), ctx, phase);
    }

    #[test]
    fn ring_preserves_order_and_wraps() {
        let ring = SpanRing::new(4);
        for i in 0..6 {
            ring.push(record(i));
        }
        let spans = ring.snapshot();
        // Capacity 4, pushed 6: the oldest two were overwritten.
        assert_eq!(spans.len(), 4);
        let supersteps: Vec<u32> = spans.iter().map(|s| s.ctx.superstep).collect();
        assert_eq!(supersteps, vec![2, 3, 4, 5]);
        assert_eq!(ring.pushed(), 6);
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn ring_accepts_concurrent_writers() {
        let ring = SpanRing::new(1 << 12);
        std::thread::scope(|scope| {
            for worker in 0..4u32 {
                let ring = &ring;
                scope.spawn(move || {
                    for i in 0..500 {
                        ring.push(SpanRecord {
                            phase: Phase::Scatter,
                            ctx: SpanCtx {
                                epoch: 0,
                                superstep: i,
                                worker,
                            },
                            start_nanos: 0,
                            duration_nanos: 1,
                        });
                    }
                });
            }
        });
        assert_eq!(ring.pushed(), 2000);
        // Nothing wrapped, so every span not dropped to contention survives.
        assert_eq!(ring.snapshot().len() as u64 + ring.dropped(), 2000);
    }

    #[test]
    fn snapshot_is_non_destructive_and_concurrent_with_writers() {
        let ring = SpanRing::new(1 << 8);
        std::thread::scope(|scope| {
            let writer = {
                let ring = &ring;
                scope.spawn(move || {
                    for i in 0..20_000u64 {
                        ring.push(record(i));
                    }
                })
            };
            // Scrape repeatedly while the writer laps the ring many times;
            // every span a snapshot surfaces must be internally consistent.
            while !writer.is_finished() {
                for span in ring.snapshot() {
                    assert_eq!(span.phase, Phase::Compute);
                    assert_eq!(span.start_nanos, span.ctx.superstep as u64 * 10);
                    assert_eq!(span.duration_nanos, 5);
                }
            }
        });
        // Non-destructive: repeated snapshots agree once writers are done.
        assert_eq!(ring.snapshot(), ring.snapshot());
        assert_eq!(ring.snapshot().len(), 1 << 8);
    }

    #[test]
    fn telemetry_records_spans_and_histograms() {
        let telemetry = Telemetry::isolated();
        let started = telemetry.start();
        assert!(started.is_some());
        let ctx = SpanCtx {
            epoch: 2,
            superstep: 7,
            worker: 3,
        };
        telemetry.span(started, ctx, Phase::Gather);
        telemetry.counter_add("probe_total", 2);
        telemetry.gauge_set("probe_gauge", 1.5);

        let snapshot = telemetry.registry().snapshot();
        assert_eq!(snapshot.counters, vec![("probe_total".to_string(), 2)]);
        assert_eq!(
            snapshot
                .histograms
                .iter()
                .map(|h| h.name.as_str())
                .collect::<Vec<_>>(),
            vec![Phase::Gather.histogram_name()]
        );
        assert_eq!(snapshot.histograms[0].count, 1);

        let spans = telemetry.spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].phase, Phase::Gather);
        assert_eq!(spans[0].ctx, ctx);
    }

    #[test]
    fn chrome_trace_is_wellformed() {
        let telemetry = Telemetry::isolated();
        for worker in 0..2 {
            let started = telemetry.start();
            telemetry.span(
                started,
                SpanCtx {
                    epoch: 1,
                    superstep: 4,
                    worker,
                },
                Phase::Compute,
            );
        }
        let json = telemetry.chrome_trace();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.trim_end().ends_with("]}"));
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 2);
        assert!(json.contains("\"name\":\"compute\""));
        assert!(json.contains("\"cat\":\"bsp\""));
        assert!(json.contains("\"superstep\":4"));
        // Durations are clamped to ≥ 1µs so Perfetto renders them.
        assert!(!json.contains("\"dur\":0"));
        // Non-destructive: a second render sees the same spans.
        assert_eq!(json, telemetry.chrome_trace());
    }

    #[test]
    fn phase_totals_sum_durations() {
        let telemetry = Telemetry::isolated();
        let ctx = SpanCtx::default();
        for _ in 0..3 {
            timed_span(&telemetry, ctx, Phase::Barrier, 2);
        }
        let totals = telemetry.phase_totals();
        let barrier = totals
            .iter()
            .find(|(phase, _)| *phase == Phase::Barrier)
            .expect("barrier total present")
            .1;
        assert!(
            barrier >= 3e-3,
            "3 × 2ms spans should sum past 3ms, got {barrier}"
        );
        let gather = totals.iter().find(|(p, _)| *p == Phase::Gather).unwrap().1;
        assert_eq!(gather, 0.0);
    }

    #[test]
    fn worker_attribution_feeds_labeled_families_and_straggler_gauge() {
        let telemetry = Telemetry::isolated();
        // Superstep 0: worker 1 computes 4× longer than workers 0 and 2.
        for (worker, millis) in [(0u32, 5u64), (1, 20), (2, 5)] {
            let ctx = SpanCtx {
                epoch: 0,
                superstep: 0,
                worker,
            };
            timed_span(&telemetry, ctx, Phase::Compute, millis);
        }
        // The first span of superstep 1 finalizes superstep 0's window.
        timed_span(
            &telemetry,
            SpanCtx {
                epoch: 0,
                superstep: 1,
                worker: 0,
            },
            Phase::Compute,
            5,
        );

        let workers = telemetry.worker_phase_seconds();
        assert_eq!(workers.len(), 3);
        // Worker 0 computed 5ms twice (supersteps 0 and 1), worker 1 20ms.
        let compute = Phase::Compute.index();
        assert!(workers[1][compute] > workers[0][compute] * 1.5);

        // max/mean of (5, 20, 5) = 20/10 = 2, measured with real clocks.
        let ratio = telemetry.straggler_ratio();
        assert!((1.5..3.0).contains(&ratio), "straggler ratio {ratio}");
        assert_eq!(
            telemetry.registry().gauge("ebv_bsp_straggler_ratio").get(),
            ratio
        );

        let prometheus = telemetry.prometheus();
        assert!(prometheus.contains("# TYPE ebv_worker_phase_seconds counter"));
        assert!(prometheus.contains("ebv_worker_phase_seconds{worker=\"1\",phase=\"compute\"}"));
        assert!(prometheus.contains("# TYPE ebv_bsp_straggler_ratio gauge"));
    }

    #[test]
    fn epoch_applied_records_into_the_journal() {
        let telemetry = Telemetry::isolated();
        timed_span(&telemetry, SpanCtx::default(), Phase::Compute, 3);
        telemetry.counter_add("ebv_bsp_messages_total", 42);
        let mark = EpochMark {
            epoch: 1,
            batch_index: 0,
            apply_seconds: 0.004,
            workers_touched: 2,
            edges_rebuilt: 120,
            edges_added: 50,
            edges_removed: 10,
            live_edges: 4000,
            replication_factor: 1.4,
            edge_imbalance: 1.1,
        };
        telemetry.epoch_applied(&mark);
        assert_eq!(telemetry.journal().len(), 1);
        let snapshot = telemetry.journal().last().expect("one epoch recorded");
        assert_eq!(snapshot.mark, mark);
        assert_eq!(snapshot.messages_delta, 42);
        assert!(snapshot.compute_seconds() >= 2e-3);
        // The pending compute window was force-finalized by the epoch.
        assert!(snapshot.straggler_ratio > 0.0);
        assert!(snapshot.at_seconds >= 0.0);
    }

    /// Zero-work guard: a superstep whose compute spans all measure zero
    /// wall-clock (trivial subgraphs, quiesced worklists) must finalize to
    /// the neutral ratio 1.0 — never `0/0 = NaN` — in both the gauge and
    /// the accessor.
    #[test]
    fn straggler_ratio_is_finite_for_zero_duration_supersteps() {
        let telemetry = Telemetry::isolated();
        for worker in 0..3u32 {
            telemetry.observe_compute(
                SpanCtx {
                    epoch: 0,
                    superstep: 0,
                    worker,
                },
                0,
            );
        }
        // Advancing the window key finalizes superstep 0's all-zero window.
        telemetry.observe_compute(
            SpanCtx {
                epoch: 0,
                superstep: 1,
                worker: 0,
            },
            0,
        );
        let ratio = telemetry.straggler_ratio();
        assert!(ratio.is_finite(), "ratio {ratio} must be finite");
        assert_eq!(ratio, 1.0, "all-zero compute is perfectly even");
        let gauge = telemetry.registry().gauge("ebv_bsp_straggler_ratio").get();
        assert!(gauge.is_finite());
        assert_eq!(gauge, 1.0);
    }

    /// Zero-worker guard: an epoch that ran no compute spans at all (an
    /// empty mutation batch, or a graph whose workers were all idle) must
    /// not disturb the last finite ratio, and everything it journals stays
    /// finite.
    #[test]
    fn empty_compute_windows_journal_finite_straggler_ratios() {
        let telemetry = Telemetry::isolated();
        let mark = EpochMark {
            epoch: 1,
            ..EpochMark::default()
        };
        // No compute span was ever recorded: the window is empty.
        telemetry.epoch_applied(&mark);
        let snapshot = telemetry.journal().last().expect("epoch recorded");
        assert!(snapshot.straggler_ratio.is_finite());
        assert_eq!(snapshot.straggler_ratio, 0.0, "no superstep finalized yet");

        // A real superstep, then another empty epoch: the finalized ratio
        // must survive unchanged (and finite) through the empty window.
        for (worker, nanos) in [(0u32, 1_000_000u64), (1, 3_000_000)] {
            telemetry.observe_compute(
                SpanCtx {
                    epoch: 2,
                    superstep: 0,
                    worker,
                },
                nanos,
            );
        }
        telemetry.epoch_applied(&EpochMark {
            epoch: 2,
            ..EpochMark::default()
        });
        let finalized = telemetry.straggler_ratio();
        assert!((finalized - 1.5).abs() < 1e-12, "max/mean of (1, 3) ms");
        telemetry.epoch_applied(&EpochMark {
            epoch: 3,
            ..EpochMark::default()
        });
        assert_eq!(telemetry.straggler_ratio(), finalized);
        let snapshot = telemetry.journal().last().expect("epoch recorded");
        assert!(snapshot.straggler_ratio.is_finite());
        assert_eq!(snapshot.straggler_ratio, finalized);
    }
}
