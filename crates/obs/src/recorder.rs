//! The [`Recorder`] trait — the single instrumentation surface every
//! runtime crate reports through — and its zero-cost no-op default.

use std::time::Instant;

use crate::journal::EpochMark;

/// The instrumented phases of the runtime, the `name` a span carries into
/// the Chrome trace and the per-phase latency histograms.
///
/// The span hierarchy follows the paper's evaluation structure — epoch →
/// superstep → worker → phase — so a trace can attribute wall-clock time to
/// exactly the quantities the modeled `CostModel` breakdown of `ebv-bsp`
/// predicts: `Gather`/`Compute`/`Scatter` are the three stages of one
/// worker's superstep, `Barrier` is the engine-side synchronization slice,
/// and the remaining phases cover the mutation, warm-start and streaming
/// paths.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Merging the inbound shards into a worker's flat inbox.
    #[default]
    Gather,
    /// Running the subgraph program over one worker's subgraph.
    Compute,
    /// Fanning the outbox out along the precomputed routes.
    Scatter,
    /// The engine-side synchronization slice of one superstep: thread
    /// joins, the shard-matrix transpose and the counter fold.
    Barrier,
    /// One `DistributedGraph::apply_mutations` epoch.
    MutationApply,
    /// The incremental routing-table maintenance inside a mutation epoch.
    RoutingPatch,
    /// Warm-start invalidation: building the dirty set / deletion cone an
    /// incremental program re-activates.
    WarmInvalidation,
    /// One `EventPipeline::run_applied` epoch (partition + apply).
    EpochApply,
    /// One `ChunkedPipeline` chunk: partitioner ingest (and pre-hash).
    ChunkIngest,
}

impl Phase {
    /// Every phase, in declaration order.
    pub const ALL: [Phase; 9] = [
        Phase::Gather,
        Phase::Compute,
        Phase::Scatter,
        Phase::Barrier,
        Phase::MutationApply,
        Phase::RoutingPatch,
        Phase::WarmInvalidation,
        Phase::EpochApply,
        Phase::ChunkIngest,
    ];

    /// Number of phases (the length of [`Phase::ALL`]).
    pub const COUNT: usize = Phase::ALL.len();

    /// The phase's position in [`Phase::ALL`] (its declaration index).
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// The inverse of [`index`](Phase::index): `None` past the last phase.
    pub fn from_index(index: usize) -> Option<Phase> {
        Phase::ALL.get(index).copied()
    }

    /// The stable snake_case name used as the Chrome-trace event name.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Gather => "gather",
            Phase::Compute => "compute",
            Phase::Scatter => "scatter",
            Phase::Barrier => "barrier",
            Phase::MutationApply => "mutation_apply",
            Phase::RoutingPatch => "routing_patch",
            Phase::WarmInvalidation => "warm_invalidation",
            Phase::EpochApply => "epoch_apply",
            Phase::ChunkIngest => "chunk_ingest",
        }
    }

    /// The Chrome-trace category (`cat`) the phase belongs to.
    pub fn category(self) -> &'static str {
        match self {
            Phase::Gather | Phase::Compute | Phase::Scatter | Phase::Barrier => "bsp",
            Phase::MutationApply | Phase::RoutingPatch => "mutation",
            Phase::WarmInvalidation | Phase::EpochApply => "dynamic",
            Phase::ChunkIngest => "stream",
        }
    }

    /// The name of the per-phase latency histogram the tracer feeds.
    pub fn histogram_name(self) -> &'static str {
        match self {
            Phase::Gather => "ebv_phase_gather_seconds",
            Phase::Compute => "ebv_phase_compute_seconds",
            Phase::Scatter => "ebv_phase_scatter_seconds",
            Phase::Barrier => "ebv_phase_barrier_seconds",
            Phase::MutationApply => "ebv_phase_mutation_apply_seconds",
            Phase::RoutingPatch => "ebv_phase_routing_patch_seconds",
            Phase::WarmInvalidation => "ebv_phase_warm_invalidation_seconds",
            Phase::EpochApply => "ebv_phase_epoch_apply_seconds",
            Phase::ChunkIngest => "ebv_phase_chunk_ingest_seconds",
        }
    }
}

/// Where in the execution hierarchy a span sits: mutation epoch of the
/// distribution it ran on, superstep within the run (or chunk/batch index
/// for streaming spans) and worker (partition) index.
///
/// By convention engine-side spans that belong to no single worker (the
/// superstep [`Phase::Barrier`], mutation epochs) use `worker == p`, one
/// past the last worker row.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct SpanCtx {
    /// Mutation epoch of the distributed graph (0 for fresh builds).
    pub epoch: u32,
    /// Superstep within the run; chunk or batch index for streaming spans.
    pub superstep: u32,
    /// Worker (partition) index; `p` for engine-side spans.
    pub worker: u32,
}

/// The instrumentation surface of the runtime crates.
///
/// Every hook has an empty `#[inline]` default, so the bundled
/// [`NoopRecorder`] is a unit struct whose calls monomorphize to nothing —
/// in particular [`start`](Recorder::start) returns `None` without ever
/// reading the clock, so an uninstrumented run performs **zero** timing
/// syscalls. [`Telemetry`](crate::Telemetry) overrides every hook with the
/// real registry + tracer.
///
/// Recorders must be [`Sync`]: the threaded BSP engine calls
/// [`span`](Recorder::span) from its worker threads.
pub trait Recorder: Sync {
    /// Samples the clock for a span about to begin. The no-op default
    /// returns `None`, which makes the matching [`span`](Recorder::span)
    /// call free.
    #[inline]
    fn start(&self) -> Option<Instant> {
        None
    }

    /// Records a span that began at `started` (from [`start`]) and ends
    /// now. A `None` start is ignored.
    ///
    /// [`start`]: Recorder::start
    #[inline]
    fn span(&self, _started: Option<Instant>, _ctx: SpanCtx, _phase: Phase) {}

    /// Adds `delta` to the named monotonic counter.
    #[inline]
    fn counter_add(&self, _name: &'static str, _delta: u64) {}

    /// Sets the named gauge to `value`.
    #[inline]
    fn gauge_set(&self, _name: &'static str, _value: f64) {}

    /// Records one observation into the named latency histogram.
    #[inline]
    fn observe_seconds(&self, _name: &'static str, _seconds: f64) {}

    /// Reports one applied mutation epoch. The epoch driver
    /// (`EventPipeline::run_applied_with`) calls this once per non-empty
    /// batch, after the mutations landed; [`Telemetry`](crate::Telemetry)
    /// turns the mark into an [`EpochSnapshot`](crate::EpochSnapshot) in
    /// its bounded [`EpochJournal`](crate::EpochJournal).
    #[inline]
    fn epoch_applied(&self, _mark: &EpochMark) {}
}

/// The zero-cost default recorder: every hook is an empty inline body, so
/// instrumented code paths compile down to exactly the uninstrumented
/// code. The equivalence property suite additionally asserts that enabling
/// a real recorder changes no program value and no `ExecutionStats`
/// counter.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_recorder_never_samples_the_clock() {
        let recorder = NoopRecorder;
        assert!(recorder.start().is_none());
        // The remaining hooks are no-ops; exercising them documents that
        // they are safe to call unconditionally.
        recorder.span(None, SpanCtx::default(), Phase::Compute);
        recorder.counter_add("x", 1);
        recorder.gauge_set("y", 2.0);
        recorder.observe_seconds("z", 0.5);
    }

    #[test]
    fn phase_names_are_unique_and_stable() {
        let mut names: Vec<&str> = Phase::ALL.iter().map(|p| p.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Phase::ALL.len());
        assert_eq!(Phase::Compute.name(), "compute");
        assert_eq!(Phase::Compute.category(), "bsp");
        assert_eq!(Phase::ChunkIngest.category(), "stream");
        assert!(Phase::Barrier.histogram_name().ends_with("_seconds"));
    }
}
