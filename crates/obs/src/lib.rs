//! # ebv-obs — the std-only telemetry plane of the EBV reproduction
//!
//! The measurement substrate every runtime crate reports through, built
//! with nothing but `std` (the vendor constraint rules out external
//! telemetry crates):
//!
//! * [`Recorder`] — the instrumentation surface: timed phase spans plus
//!   counters, gauges and latency histograms. [`NoopRecorder`] is the
//!   zero-cost default: every hook is an empty `#[inline]` body and
//!   [`Recorder::start`] returns `None` without reading the clock, so
//!   uninstrumented runs monomorphize to the exact uninstrumented code.
//! * [`MetricsRegistry`] — process-wide named atomic
//!   counters/gauges/histograms (fixed 1-2-5 bucket ladder with p50/p99
//!   extraction), snapshot-able to JSON and the Prometheus text
//!   exposition format.
//! * [`Telemetry`] — the real recorder: spans (epoch → superstep →
//!   worker → phase) land in a bounded lock-free [`SpanRing`] with real
//!   `Instant` timings and export as Chrome trace-event JSON loadable in
//!   `chrome://tracing` or Perfetto.
//!
//! Instrumentation must not perturb determinism: program values and
//! `ExecutionStats` with tracing enabled are property-tested to be
//! bit-identical to no-op-recorder runs.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

mod recorder;
mod registry;
mod trace;

pub use recorder::{NoopRecorder, Phase, Recorder, SpanCtx};
pub use registry::{
    Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry, MetricsSnapshot, BUCKET_BOUNDS,
};
pub use trace::{SpanRecord, SpanRing, Telemetry, DEFAULT_RING_CAPACITY};
