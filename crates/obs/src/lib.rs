//! # ebv-obs — the std-only telemetry plane of the EBV reproduction
//!
//! The measurement substrate every runtime crate reports through, built
//! with nothing but `std` (the vendor constraint rules out external
//! telemetry crates):
//!
//! * [`Recorder`] — the instrumentation surface: timed phase spans plus
//!   counters, gauges and latency histograms. [`NoopRecorder`] is the
//!   zero-cost default: every hook is an empty `#[inline]` body and
//!   [`Recorder::start`] returns `None` without reading the clock, so
//!   uninstrumented runs monomorphize to the exact uninstrumented code.
//! * [`MetricsRegistry`] — process-wide named atomic
//!   counters/gauges/histograms (fixed 1-2-5 bucket ladder with p50/p99
//!   extraction), snapshot-able to JSON and the Prometheus text
//!   exposition format.
//! * [`Telemetry`] — the real recorder: spans (epoch → superstep →
//!   worker → phase) land in a bounded lock-free [`SpanRing`] with real
//!   `Instant` timings and export as Chrome trace-event JSON loadable in
//!   `chrome://tracing` or Perfetto, with per-(worker, phase) wall-clock
//!   attribution and a per-superstep straggler gauge on top.
//! * [`EpochJournal`] — a bounded ring of per-epoch [`EpochSnapshot`]s
//!   (apply cost, partition quality, per-phase deltas) fed through
//!   [`Recorder::epoch_applied`] from the epoch driver — the process's
//!   time series, exportable as JSON.
//! * [`ObsServer`] — the live ops plane: a std-only HTTP/1.1 exporter
//!   (hand-rolled `TcpListener` + thread pool, no async runtime) serving
//!   `GET /metrics`, `/healthz`, `/trace.json` and `/epochs.json` from a
//!   running [`Telemetry`] without stopping it.
//! * [`Router`] — the typed route-registration seam behind the server:
//!   `path → handler` trait objects, exact-then-longest-prefix matching,
//!   so other crates (the `ebv-serve` query plane) mount routes on the
//!   same listener via [`ObsServer::bind_with_router`] instead of editing
//!   the server.
//!
//! Instrumentation must not perturb determinism: program values and
//! `ExecutionStats` with tracing enabled — and with the server scraping
//! concurrently — are property-tested to be bit-identical to
//! no-op-recorder runs.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

mod journal;
mod recorder;
mod registry;
mod router;
mod serve;
mod trace;

pub use journal::{EpochJournal, EpochMark, EpochSnapshot, DEFAULT_JOURNAL_CAPACITY};
pub use recorder::{NoopRecorder, Phase, Recorder, SpanCtx};
pub use registry::{
    Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry, MetricsSnapshot, BUCKET_BOUNDS,
};
pub use router::{Request, Response, RouteHandler, Router};
pub use serve::{telemetry_router, ObsServer, ObsServerConfig};
pub use trace::{SpanRecord, SpanRing, Telemetry, DEFAULT_RING_CAPACITY};
