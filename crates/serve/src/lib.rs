//! # ebv-serve — the epoch-versioned query plane
//!
//! The serving leg of the reproduction's north star: the paper's EBV
//! partitioning plus the warm incremental epochs of PRs 3–8 produce fresh
//! answers on an evolving graph, and this crate is where those answers
//! become *readable* while the next epoch computes. Three layers:
//!
//! * [`EpochCell`] — a guarded two-slot publication cell: readers take
//!   the current snapshot lock-free (they never block on the writer), the
//!   per-epoch writer flips the slots atomically;
//! * [`SnapshotStore`] / [`QueryHandle`] — the store the epoch driver
//!   owns: engine runs *stage* named per-vertex series through
//!   [`ValueSink`](ebv_bsp::ValueSink) sinks
//!   ([`SnapshotStore::series_sink`]), and one commit per applied epoch
//!   flips them all into readers' view together — snapshot isolation at
//!   epoch granularity, never a torn or mixed-epoch read. Handles are
//!   cheap `Clone` and serve point lookups, top-k and neighborhood reads
//!   from any thread, counting `ebv_query_reads_total` and timing
//!   `ebv_query_read_seconds` (p50/p99) into the PR 6 registry;
//! * [`register_query_routes`] — the HTTP face: `GET /query`,
//!   `/query/<series>/<vertex>`, `/topk` and `/neighbors/<vertex>`,
//!   mounted on the existing [`ObsServer`](ebv_obs::ObsServer) listener
//!   through the [`Router`](ebv_obs::Router) seam.
//!
//! The write path plugs into the rest of the stack at two seams defined
//! in `ebv-bsp`: the engine publishes values via
//! [`RunOptions::publish_to`](ebv_bsp::RunOptions::publish_to), and
//! `EventPipeline::run_applied_publishing` commits via
//! [`EpochCommitter`](ebv_bsp::EpochCommitter) after each applied epoch.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

mod cell;
mod http;
mod store;

pub use cell::EpochCell;
pub use http::register_query_routes;
pub use store::{
    Adjacency, GraphSnapshot, QueryError, QueryHandle, QueryValue, Series, SeriesData, SeriesSink,
    SeriesValue, SnapshotStore,
};
