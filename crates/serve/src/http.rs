//! The HTTP face of the query plane: four routes registered on the
//! existing [`ObsServer`](ebv_obs::ObsServer) listener through the PR 9
//! [`Router`] seam — no second listener, no server edits.
//!
//! | route                       | payload                                |
//! |-----------------------------|----------------------------------------|
//! | `/query`                    | snapshot index: epoch, series, size    |
//! | `/query/<series>/<vertex>`  | one vertex's value in one series       |
//! | `/topk?series=&k=&order=`   | the k best vertices of a series        |
//! | `/neighbors/<vertex>`       | a vertex's sorted out-neighbors        |
//!
//! Every response carries the epoch it was served from, and each response
//! is built against a single pinned snapshot — the epoch tag and the
//! values can never disagree. Malformed parameters are `400`; unknown
//! series/vertices are `404`; before the first commit every route answers
//! `503 no epoch published yet`.

use ebv_obs::{Request, Response, Router};

use crate::store::{QueryError, QueryHandle};

/// Registers the query plane's routes on `router`, answering from
/// `handle`'s store.
pub fn register_query_routes(router: &mut Router, handle: QueryHandle) {
    let h = handle.clone();
    router.route("/query", move |_req: &Request<'_>| index(&h));
    let h = handle.clone();
    router.route_prefix("/query/", move |req: &Request<'_>| point_lookup(&h, req));
    let h = handle.clone();
    router.route("/topk", move |req: &Request<'_>| topk(&h, req));
    router.route_prefix("/neighbors/", move |req: &Request<'_>| {
        neighbors(&handle, req)
    });
}

/// Maps a read failure to its HTTP response.
fn error_response(err: QueryError) -> Response {
    match err {
        QueryError::NotReady => Response::unavailable("no epoch published yet\n"),
        QueryError::UnknownSeries => Response::not_found("unknown series\n"),
        QueryError::UnknownVertex => Response::not_found("unknown vertex\n"),
        QueryError::NoAdjacency => Response::not_found("snapshot has no adjacency\n"),
    }
}

fn json_or_error(result: Result<String, QueryError>) -> Response {
    match result {
        Ok(body) => Response::json(body),
        Err(err) => error_response(err),
    }
}

/// `GET /query` — the snapshot index.
fn index(handle: &QueryHandle) -> Response {
    json_or_error(handle.timed(|snapshot| {
        let series = snapshot
            .series_names()
            .iter()
            .map(|name| format!("\"{name}\""))
            .collect::<Vec<_>>()
            .join(", ");
        Ok(format!(
            "{{\"epoch\": {}, \"num_vertices\": {}, \"series\": [{series}]}}\n",
            snapshot.epoch, snapshot.num_vertices,
        ))
    }))
}

/// `GET /query/<series>/<vertex>` — a point lookup.
fn point_lookup(handle: &QueryHandle, req: &Request<'_>) -> Response {
    let rest = req.path_after("/query/");
    let Some((series, vertex)) = rest.split_once('/') else {
        return Response::bad_request("malformed query; use /query/<series>/<vertex>\n");
    };
    let Ok(vertex) = vertex.parse::<u64>() else {
        return Response::bad_request("vertex must be a non-negative integer\n");
    };
    json_or_error(handle.timed(|snapshot| {
        let value = snapshot.lookup(series, vertex)?;
        Ok(format!(
            "{{\"epoch\": {}, \"series\": \"{series}\", \"vertex\": {vertex}, \"value\": {}}}\n",
            snapshot.epoch,
            value.to_json(),
        ))
    }))
}

/// `GET /topk?series=<name>&k=<n>&order=desc|asc` — the k best vertices
/// (`k` defaults to 10, `order` to `desc`).
fn topk(handle: &QueryHandle, req: &Request<'_>) -> Response {
    let Some(series) = req.query_param("series") else {
        return Response::bad_request("missing series parameter; use /topk?series=<name>&k=<n>\n");
    };
    let k = match req.query_param("k") {
        None => 10,
        Some(raw) => match raw.parse::<usize>() {
            Ok(k) => k,
            Err(_) => return Response::bad_request("k must be a non-negative integer\n"),
        },
    };
    let descending = match req.query_param("order") {
        None | Some("desc") => true,
        Some("asc") => false,
        Some(_) => return Response::bad_request("order must be `asc` or `desc`\n"),
    };
    json_or_error(handle.timed(|snapshot| {
        let results = snapshot
            .topk(series, k, descending)?
            .into_iter()
            .map(|(vertex, value)| {
                format!("{{\"vertex\": {vertex}, \"value\": {}}}", value.to_json())
            })
            .collect::<Vec<_>>()
            .join(", ");
        Ok(format!(
            "{{\"epoch\": {}, \"series\": \"{series}\", \"k\": {k}, \"order\": \"{}\", \
             \"results\": [{results}]}}\n",
            snapshot.epoch,
            if descending { "desc" } else { "asc" },
        ))
    }))
}

/// `GET /neighbors/<vertex>` — the vertex's sorted out-neighbors.
fn neighbors(handle: &QueryHandle, req: &Request<'_>) -> Response {
    let rest = req.path_after("/neighbors/");
    let Ok(vertex) = rest.parse::<u64>() else {
        return Response::bad_request("vertex must be a non-negative integer\n");
    };
    json_or_error(handle.timed(|snapshot| {
        let neighbors = snapshot
            .neighbors(vertex)?
            .iter()
            .map(|n| n.to_string())
            .collect::<Vec<_>>()
            .join(", ");
        Ok(format!(
            "{{\"epoch\": {}, \"vertex\": {vertex}, \"neighbors\": [{neighbors}]}}\n",
            snapshot.epoch,
        ))
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{Series, SeriesData, SnapshotStore};
    use ebv_obs::MetricsRegistry;

    fn router_with_committed_store() -> (SnapshotStore, Router) {
        let registry = MetricsRegistry::new();
        let store = SnapshotStore::with_registry(&registry);
        store.stage(Series {
            name: "cc".to_string(),
            data: SeriesData::U64 {
                values: vec![0, 0, 0, 3, 3, 3],
                absent: None,
            },
        });
        store.commit(1, 6, None);
        let mut router = Router::new();
        register_query_routes(&mut router, store.handle());
        (store, router)
    }

    fn dispatch(router: &Router, target: &str) -> Response {
        router.dispatch(&Request::parse("GET", target))
    }

    #[test]
    fn index_lists_epoch_and_series() {
        let (_store, router) = router_with_committed_store();
        let response = dispatch(&router, "/query");
        assert_eq!(response.status, "200 OK");
        assert_eq!(
            response.body,
            "{\"epoch\": 1, \"num_vertices\": 6, \"series\": [\"cc\"]}\n"
        );
    }

    #[test]
    fn point_lookup_serves_the_exact_value() {
        let (_store, router) = router_with_committed_store();
        let response = dispatch(&router, "/query/cc/4");
        assert_eq!(response.status, "200 OK");
        assert_eq!(
            response.body,
            "{\"epoch\": 1, \"series\": \"cc\", \"vertex\": 4, \"value\": 3}\n"
        );
    }

    #[test]
    fn unknown_series_and_vertices_are_404() {
        let (_store, router) = router_with_committed_store();
        assert_eq!(dispatch(&router, "/query/nope/0").status, "404 Not Found");
        assert_eq!(dispatch(&router, "/query/cc/999").status, "404 Not Found");
        assert_eq!(
            dispatch(&router, "/topk?series=nope").status,
            "404 Not Found"
        );
        // No adjacency was committed.
        assert_eq!(dispatch(&router, "/neighbors/0").status, "404 Not Found");
    }

    #[test]
    fn malformed_queries_are_400() {
        let (_store, router) = router_with_committed_store();
        for target in [
            "/query/cc",            // missing vertex
            "/query/cc/notanumber", // non-numeric vertex
            "/query/cc/-1",         // negative vertex
            "/topk",                // missing series
            "/topk?series=cc&k=x",  // malformed k
            "/topk?series=cc&order=sideways",
            "/neighbors/notanumber",
        ] {
            assert_eq!(
                dispatch(&router, target).status,
                "400 Bad Request",
                "{target}"
            );
        }
    }

    #[test]
    fn topk_serves_ordered_results() {
        let (_store, router) = router_with_committed_store();
        let response = dispatch(&router, "/topk?series=cc&k=2");
        assert_eq!(response.status, "200 OK");
        assert_eq!(
            response.body,
            "{\"epoch\": 1, \"series\": \"cc\", \"k\": 2, \"order\": \"desc\", \
             \"results\": [{\"vertex\": 3, \"value\": 3}, {\"vertex\": 4, \"value\": 3}]}\n"
        );
        let asc = dispatch(&router, "/topk?series=cc&k=1&order=asc");
        assert!(asc
            .body
            .contains("\"results\": [{\"vertex\": 0, \"value\": 0}]"));
    }

    #[test]
    fn every_route_is_503_before_the_first_commit() {
        let registry = MetricsRegistry::new();
        let store = SnapshotStore::with_registry(&registry);
        let mut router = Router::new();
        register_query_routes(&mut router, store.handle());
        for target in ["/query", "/query/cc/0", "/topk?series=cc", "/neighbors/0"] {
            let response = dispatch(&router, target);
            assert_eq!(response.status, "503 Service Unavailable", "{target}");
            assert_eq!(response.body, "no epoch published yet\n");
        }
    }
}
