//! [`EpochCell`]: the guarded two-slot publication cell the snapshot store
//! flips on.
//!
//! The serving requirement is asymmetric: reads are hot (scraper threads,
//! HTTP handlers, benchmark hammers) and must never block behind the
//! writer; writes are rare (one per applied epoch) and may wait. A
//! `RwLock` fails the first requirement — a writer in the critical section
//! stalls every reader for the duration of the swap. The cell instead
//! double-buffers: two slots, an atomic index naming the *current* one,
//! and per-slot reader-guard counters, so
//!
//! * a reader pins the current slot (guard increment), re-checks that it
//!   is still current, clones the `Arc` out and unpins — a handful of
//!   atomic operations, no lock, no waiting on the writer ever;
//! * the writer (serialized by a mutex) prepares the *non-current* slot,
//!   waiting only for stale readers still pinning it (bounded: those
//!   readers are mid-clone), then flips the index.
//!
//! The re-check is the torn-read defense: a reader that pinned slot `s`
//! after the writer started rewriting it will observe `current != s` and
//! retry, never dereferencing the slot mid-write. Everything is `SeqCst` —
//! flips happen once per epoch, so ordering cost is irrelevant next to the
//! correctness argument being easy to state.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// One slot: the published value plus the count of readers pinning it.
struct Slot<T> {
    guards: AtomicUsize,
    value: UnsafeCell<Arc<T>>,
}

/// A two-slot atomically-flipped publication cell. Readers [`load`]
/// lock-free and wait-free with respect to the writer; [`store`] is
/// serialized and waits only for readers still pinning the retired slot.
///
/// [`load`]: EpochCell::load
/// [`store`]: EpochCell::store
pub struct EpochCell<T> {
    slots: [Slot<T>; 2],
    /// Index of the slot readers should take (0 or 1).
    current: AtomicUsize,
    /// Serializes writers; readers never touch it.
    writer: Mutex<()>,
}

// SAFETY: the cell hands out only `Arc<T>` clones; the `UnsafeCell` is
// written exclusively by the single writer (mutex-serialized) after the
// slot's guard count has drained to zero, and read only under a held guard
// with a current-index re-check (see `load`). `T: Send + Sync` makes the
// shared `Arc<T>` sound across threads.
unsafe impl<T: Send + Sync> Send for EpochCell<T> {}
// SAFETY: see above.
unsafe impl<T: Send + Sync> Sync for EpochCell<T> {}

impl<T> EpochCell<T> {
    /// A cell whose readers see `initial` until the first [`store`].
    ///
    /// [`store`]: EpochCell::store
    pub fn new(initial: Arc<T>) -> EpochCell<T> {
        EpochCell {
            slots: [
                Slot {
                    guards: AtomicUsize::new(0),
                    value: UnsafeCell::new(Arc::clone(&initial)),
                },
                Slot {
                    guards: AtomicUsize::new(0),
                    value: UnsafeCell::new(initial),
                },
            ],
            current: AtomicUsize::new(0),
            writer: Mutex::new(()),
        }
    }

    /// Returns the currently published value. Never blocks on the writer:
    /// the retry loop only iterates when a flip landed between the pin and
    /// the re-check, and a flip happens at most once per applied epoch.
    pub fn load(&self) -> Arc<T> {
        loop {
            let cur = self.current.load(Ordering::SeqCst);
            let slot = &self.slots[cur];
            slot.guards.fetch_add(1, Ordering::SeqCst);
            if self.current.load(Ordering::SeqCst) == cur {
                // Pinned while still current: the writer cannot rewrite
                // this slot until our guard drops (it drains the
                // *non-current* slot's guards before writing, and the slot
                // cannot become non-current and be rewritten while the
                // guard is held — `store` waits for exactly this count).
                // SAFETY: no concurrent `&mut` exists (writer is excluded
                // by the guard protocol above), so a shared read is sound.
                let value = unsafe { Arc::clone(&*slot.value.get()) };
                slot.guards.fetch_sub(1, Ordering::SeqCst);
                return value;
            }
            // A flip raced us: unpin the stale slot without touching its
            // value and take the new current slot instead.
            slot.guards.fetch_sub(1, Ordering::SeqCst);
        }
    }

    /// Publishes `value`: rewrites the non-current slot once its stale
    /// readers have unpinned, then flips the current index so subsequent
    /// [`load`]s take it.
    ///
    /// [`load`]: EpochCell::load
    pub fn store(&self, value: Arc<T>) {
        let _writer = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        let next = 1 - self.current.load(Ordering::SeqCst);
        let slot = &self.slots[next];
        // Drain readers still pinning the retired slot. Each is at most a
        // few instructions from unpinning (pin → re-check → clone → unpin),
        // so this spin is bounded and short; new readers pin the *current*
        // slot and cannot re-enter this one until the flip below.
        while slot.guards.load(Ordering::SeqCst) != 0 {
            std::hint::spin_loop();
        }
        // SAFETY: `next` is not current (readers aren't directed here), its
        // guard count is zero (no stale reader mid-clone), and `_writer`
        // excludes every other writer — this is the only access.
        unsafe {
            *slot.value.get() = value;
        }
        self.current.store(next, Ordering::SeqCst);
    }
}

impl<T> std::fmt::Debug for EpochCell<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EpochCell")
            .field("current", &self.current.load(Ordering::SeqCst))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::thread;

    #[test]
    fn load_returns_the_initial_value_then_each_store() {
        let cell = EpochCell::new(Arc::new(0u64));
        assert_eq!(*cell.load(), 0);
        for i in 1..=5u64 {
            cell.store(Arc::new(i));
            assert_eq!(*cell.load(), i);
        }
    }

    /// The core torn-read property at the cell level: each published value
    /// is internally consistent (all elements equal), so any mixed vector
    /// observed by a reader would prove a torn flip.
    #[test]
    fn concurrent_readers_never_observe_a_torn_value() {
        let cell = Arc::new(EpochCell::new(Arc::new(vec![0u64; 64])));
        let stop = Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let cell = Arc::clone(&cell);
                let stop = Arc::clone(&stop);
                thread::spawn(move || {
                    let mut last = 0u64;
                    let mut loads = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let snapshot = cell.load();
                        let first = snapshot[0];
                        assert!(
                            snapshot.iter().all(|&x| x == first),
                            "torn snapshot: {first} mixed with another epoch"
                        );
                        assert!(first >= last, "flips must be monotonic");
                        last = first;
                        loads += 1;
                    }
                    loads
                })
            })
            .collect();
        for epoch in 1..=500u64 {
            cell.store(Arc::new(vec![epoch; 64]));
        }
        stop.store(true, Ordering::Relaxed);
        let total: u64 = readers.into_iter().map(|r| r.join().unwrap()).sum();
        assert!(total > 0, "readers made progress");
        assert_eq!(*cell.load(), vec![500u64; 64]);
    }

    #[test]
    fn writers_are_serialized_and_last_store_wins() {
        let cell = Arc::new(EpochCell::new(Arc::new(0u64)));
        let writers: Vec<_> = (0..4)
            .map(|w| {
                let cell = Arc::clone(&cell);
                thread::spawn(move || {
                    for i in 0..100u64 {
                        cell.store(Arc::new(w * 1000 + i));
                    }
                })
            })
            .collect();
        for writer in writers {
            writer.join().unwrap();
        }
        // One of the writers' final values survived (no corruption).
        let last = *cell.load();
        assert!((0..4).any(|w| last == w * 1000 + 99), "last = {last}");
    }
}
