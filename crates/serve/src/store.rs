//! The epoch-versioned snapshot store: staged series, atomic epoch flips,
//! lock-free reads.
//!
//! The write side is the epoch driver: after each applied mutation epoch
//! it runs its programs with
//! [`RunOptions::publish_to`](ebv_bsp::RunOptions::publish_to) pointed at
//! the store's [`series sinks`](SnapshotStore::series_sink) (staging one
//! named value array per program), then commits — one
//! [`EpochCell`](crate::EpochCell) flip that makes every staged series
//! visible together, tagged with the epoch. The read side is any number of
//! [`QueryHandle`] clones: point lookups, top-k and neighborhood reads all
//! start from [`QueryHandle::snapshot`], an `Arc` to an immutable
//! [`GraphSnapshot`], so a reader holding epoch N's answers is undisturbed
//! by the flip to N+1 — snapshot isolation at epoch granularity, never a
//! torn read.

use std::sync::{Arc, Mutex};
use std::time::Instant;

use ebv_algorithms::PageRankValue;
use ebv_bsp::publish::{EpochCommitter, ValueSink};
use ebv_bsp::{DistributedGraph, ExecutionStats};
use ebv_obs::{Counter, Gauge, Histogram, MetricsRegistry};

/// One queried value, as served: `Null` renders a vertex whose value is
/// the series' absent sentinel (e.g. an unreachable SSSP distance).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QueryValue {
    /// An integral value (component label, distance, BFS depth).
    U64(u64),
    /// A floating-point value (PageRank).
    F64(f64),
    /// The series marks this vertex absent (e.g. unreachable).
    Null,
}

impl QueryValue {
    /// The value as a JSON fragment (`Null` becomes `null`).
    pub fn to_json(&self) -> String {
        match self {
            QueryValue::U64(v) => v.to_string(),
            QueryValue::F64(v) => format!("{v}"),
            QueryValue::Null => "null".to_string(),
        }
    }
}

/// A published series' backing array.
#[derive(Debug, Clone)]
pub enum SeriesData {
    /// `u64` per vertex, with an optional absent sentinel that serves as
    /// `null` (and is skipped by top-k).
    U64 {
        /// Per-vertex values, indexed by vertex id.
        values: Vec<u64>,
        /// The sentinel meaning "no value" (e.g. `UNREACHABLE`).
        absent: Option<u64>,
    },
    /// `f64` per vertex.
    F64(Vec<f64>),
}

impl SeriesData {
    fn len(&self) -> usize {
        match self {
            SeriesData::U64 { values, .. } => values.len(),
            SeriesData::F64(values) => values.len(),
        }
    }

    fn get(&self, vertex: usize) -> QueryValue {
        match self {
            SeriesData::U64 { values, absent } => {
                let v = values[vertex];
                if Some(v) == *absent {
                    QueryValue::Null
                } else {
                    QueryValue::U64(v)
                }
            }
            SeriesData::F64(values) => QueryValue::F64(values[vertex]),
        }
    }
}

/// One named per-vertex value array (e.g. `cc`, `sssp`, `pagerank`).
#[derive(Debug, Clone)]
pub struct Series {
    /// Series name, as addressed by `/query/<name>/<vertex>`.
    pub name: String,
    /// The values.
    pub data: SeriesData,
}

/// Global out-neighborhoods in CSR form, rebuilt from the distribution's
/// per-subgraph CSRs at commit time (under a vertex-cut every edge lives
/// in exactly one subgraph; lists are sorted and deduplicated so edge-cut
/// distributions serve correctly too).
#[derive(Debug, Clone, Default)]
pub struct Adjacency {
    offsets: Vec<usize>,
    targets: Vec<u64>,
}

impl Adjacency {
    /// Builds the global out-adjacency of `distributed`.
    pub fn from_distributed(distributed: &DistributedGraph) -> Adjacency {
        let n = distributed.num_vertices();
        let mut lists: Vec<Vec<u64>> = vec![Vec::new(); n];
        for sg in distributed.subgraphs() {
            for local in 0..sg.num_vertices() {
                let src = sg.vertex_at(local).index();
                for &neighbor in sg.out_neighbors(local) {
                    lists[src].push(sg.vertex_at(neighbor as usize).raw());
                }
            }
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::new();
        offsets.push(0);
        for list in &mut lists {
            list.sort_unstable();
            list.dedup();
            targets.extend_from_slice(list);
            offsets.push(targets.len());
        }
        Adjacency { offsets, targets }
    }

    /// Number of vertices covered.
    pub fn num_vertices(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// The sorted out-neighbors of `vertex`.
    pub fn neighbors(&self, vertex: usize) -> &[u64] {
        &self.targets[self.offsets[vertex]..self.offsets[vertex + 1]]
    }
}

/// Why a read could not be answered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryError {
    /// No epoch has been committed yet.
    NotReady,
    /// The snapshot has no series of that name.
    UnknownSeries,
    /// The vertex id is outside the snapshot's vertex space.
    UnknownVertex,
    /// The snapshot was committed without adjacency.
    NoAdjacency,
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::NotReady => write!(f, "no epoch published yet"),
            QueryError::UnknownSeries => write!(f, "unknown series"),
            QueryError::UnknownVertex => write!(f, "unknown vertex"),
            QueryError::NoAdjacency => write!(f, "snapshot has no adjacency"),
        }
    }
}

impl std::error::Error for QueryError {}

/// One committed epoch's complete, immutable served state.
#[derive(Debug, Clone, Default)]
pub struct GraphSnapshot {
    /// The mutation epoch these values belong to.
    pub epoch: u64,
    /// The vertex-space size at this epoch.
    pub num_vertices: usize,
    series: Vec<Series>,
    adjacency: Option<Adjacency>,
}

impl GraphSnapshot {
    /// The published series names, in staging order.
    pub fn series_names(&self) -> Vec<&str> {
        self.series.iter().map(|s| s.name.as_str()).collect()
    }

    /// The named series, if published.
    pub fn series(&self, name: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.name == name)
    }

    /// Vertex `vertex`'s value in series `name`.
    ///
    /// # Errors
    ///
    /// [`QueryError::UnknownSeries`] / [`QueryError::UnknownVertex`].
    pub fn lookup(&self, name: &str, vertex: u64) -> Result<QueryValue, QueryError> {
        let series = self.series(name).ok_or(QueryError::UnknownSeries)?;
        let index = vertex as usize;
        if index >= series.data.len() {
            return Err(QueryError::UnknownVertex);
        }
        Ok(series.data.get(index))
    }

    /// The `k` best vertices of series `name` as `(vertex, value)` pairs:
    /// largest first when `descending`, smallest first otherwise; ties go
    /// to the lower vertex id; absent (`Null`) vertices are skipped.
    ///
    /// # Errors
    ///
    /// [`QueryError::UnknownSeries`].
    pub fn topk(
        &self,
        name: &str,
        k: usize,
        descending: bool,
    ) -> Result<Vec<(u64, QueryValue)>, QueryError> {
        let series = self.series(name).ok_or(QueryError::UnknownSeries)?;
        // Rank on an f64 key (exact for every id/distance/depth in range;
        // the returned values stay exact).
        let mut ranked: Vec<(f64, u64)> = match &series.data {
            SeriesData::U64 { values, absent } => values
                .iter()
                .enumerate()
                .filter(|(_, v)| Some(**v) != *absent)
                .map(|(i, &v)| (v as f64, i as u64))
                .collect(),
            SeriesData::F64(values) => values
                .iter()
                .enumerate()
                .map(|(i, &v)| (v, i as u64))
                .collect(),
        };
        let better = |a: &(f64, u64), b: &(f64, u64)| {
            let by_value = if descending {
                b.0.total_cmp(&a.0)
            } else {
                a.0.total_cmp(&b.0)
            };
            by_value.then_with(|| a.1.cmp(&b.1))
        };
        if ranked.len() > k && k > 0 {
            ranked.select_nth_unstable_by(k - 1, better);
            ranked.truncate(k);
        } else {
            ranked.truncate(k);
        }
        ranked.sort_unstable_by(better);
        Ok(ranked
            .into_iter()
            .map(|(_, vertex)| {
                let value = series.data.get(vertex as usize);
                (vertex, value)
            })
            .collect())
    }

    /// The sorted out-neighbors of `vertex`.
    ///
    /// # Errors
    ///
    /// [`QueryError::NoAdjacency`] / [`QueryError::UnknownVertex`].
    pub fn neighbors(&self, vertex: u64) -> Result<&[u64], QueryError> {
        let adjacency = self.adjacency.as_ref().ok_or(QueryError::NoAdjacency)?;
        let index = vertex as usize;
        if index >= adjacency.num_vertices() {
            return Err(QueryError::UnknownVertex);
        }
        Ok(adjacency.neighbors(index))
    }
}

/// The store's shared core: the publication cell plus the read-side
/// metrics, shared between the committing [`SnapshotStore`] and every
/// [`QueryHandle`].
struct StoreShared {
    cell: crate::EpochCell<GraphSnapshot>,
    reads: Arc<Counter>,
    read_seconds: Arc<Histogram>,
    epoch_gauge: Arc<Gauge>,
    commits: Arc<Counter>,
}

/// A value type the engine can stage into a named series.
pub trait SeriesValue: Clone {
    /// Packs a published value array into the series representation.
    fn pack(values: &[Self]) -> SeriesData;
}

impl SeriesValue for u64 {
    fn pack(values: &[Self]) -> SeriesData {
        SeriesData::U64 {
            values: values.to_vec(),
            absent: None,
        }
    }
}

impl SeriesValue for f64 {
    fn pack(values: &[Self]) -> SeriesData {
        SeriesData::F64(values.to_vec())
    }
}

impl SeriesValue for PageRankValue {
    /// PageRank publishes the normalized ranks, not the internal
    /// `(rank, partial)` pairs.
    fn pack(values: &[Self]) -> SeriesData {
        SeriesData::F64(ebv_algorithms::ranks(values))
    }
}

/// A [`ValueSink`] staging one named series into its [`SnapshotStore`].
/// Obtained from [`SnapshotStore::series_sink`]; pass it to
/// [`RunOptions::publish_to`](ebv_bsp::RunOptions::publish_to).
pub struct SeriesSink<'a, V> {
    store: &'a SnapshotStore,
    name: &'a str,
    absent: Option<u64>,
    _marker: std::marker::PhantomData<fn(&V)>,
}

impl<V> SeriesSink<'_, V> {
    /// Treats `sentinel` as "no value": lookups serve `null` and top-k
    /// skips it. Only meaningful for `u64` series (e.g.
    /// [`UNREACHABLE`](ebv_algorithms::UNREACHABLE) distances).
    pub fn with_absent(mut self, sentinel: u64) -> Self {
        self.absent = Some(sentinel);
        self
    }
}

impl<V: SeriesValue> ValueSink<V> for SeriesSink<'_, V> {
    fn publish(&self, values: &[V], _stats: &ExecutionStats) {
        let mut data = V::pack(values);
        if let (SeriesData::U64 { absent, .. }, Some(sentinel)) = (&mut data, self.absent) {
            *absent = Some(sentinel);
        }
        self.store.stage(Series {
            name: self.name.to_string(),
            data,
        });
    }
}

/// The writable half of the query plane: stage series, then
/// [`commit`](SnapshotStore::commit) them as one epoch.
///
/// Reads go through [`QueryHandle`]s (see
/// [`handle`](SnapshotStore::handle)); the store itself is the single
/// writer the epoch driver owns.
pub struct SnapshotStore {
    shared: Arc<StoreShared>,
    staging: Mutex<Vec<Series>>,
    /// Whether [`EpochCommitter::commit_epoch`] rebuilds adjacency; set by
    /// [`serve_adjacency`](SnapshotStore::serve_adjacency).
    adjacency_from_pipeline: std::sync::atomic::AtomicBool,
}

impl Default for SnapshotStore {
    fn default() -> Self {
        SnapshotStore::new()
    }
}

impl SnapshotStore {
    /// A store reporting read metrics to the global [`MetricsRegistry`].
    pub fn new() -> SnapshotStore {
        SnapshotStore::with_registry(MetricsRegistry::global())
    }

    /// A store reporting `ebv_query_reads_total`, `ebv_query_read_seconds`,
    /// `ebv_query_epoch` and `ebv_query_commits_total` to `registry`.
    pub fn with_registry(registry: &MetricsRegistry) -> SnapshotStore {
        SnapshotStore {
            shared: Arc::new(StoreShared {
                cell: crate::EpochCell::new(Arc::new(GraphSnapshot::default())),
                reads: registry.counter("ebv_query_reads_total"),
                read_seconds: registry.histogram("ebv_query_read_seconds"),
                epoch_gauge: registry.gauge("ebv_query_epoch"),
                commits: registry.counter("ebv_query_commits_total"),
            }),
            staging: Mutex::new(Vec::new()),
            adjacency_from_pipeline: std::sync::atomic::AtomicBool::new(false),
        }
    }

    /// A cheap clonable read handle sharing this store's snapshots.
    pub fn handle(&self) -> QueryHandle {
        QueryHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Stages `series` for the next commit, replacing any staged series of
    /// the same name. Staged series are invisible to readers until
    /// [`commit`](SnapshotStore::commit).
    pub fn stage(&self, series: Series) {
        let mut staging = self.staging.lock().unwrap_or_else(|e| e.into_inner());
        match staging.iter_mut().find(|s| s.name == series.name) {
            Some(slot) => *slot = series,
            None => staging.push(series),
        }
    }

    /// A sink staging the engine's published values as series `name`.
    /// The `'static` name keeps sinks trivially reusable across epochs.
    pub fn series_sink<V: SeriesValue>(&self, name: &'static str) -> SeriesSink<'_, V> {
        SeriesSink {
            store: self,
            name,
            absent: None,
            _marker: std::marker::PhantomData,
        }
    }

    /// Makes [`EpochCommitter::commit_epoch`] rebuild and serve the
    /// global adjacency each epoch (an `O(E)` pass — leave it off when
    /// only value lookups are served, e.g. in benchmarks).
    pub fn serve_adjacency(&self, enabled: bool) {
        self.adjacency_from_pipeline
            .store(enabled, std::sync::atomic::Ordering::Relaxed);
    }

    /// Atomically publishes everything staged since the last commit as
    /// `epoch`'s snapshot. Readers holding the previous snapshot are
    /// undisturbed; new reads see the complete new epoch.
    pub fn commit(&self, epoch: u64, num_vertices: usize, adjacency: Option<Adjacency>) {
        let staged = {
            let mut staging = self.staging.lock().unwrap_or_else(|e| e.into_inner());
            std::mem::take(&mut *staging)
        };
        // Carry forward series not re-staged this epoch (a program that
        // didn't run still serves its last committed values), and the
        // adjacency when this commit brings none.
        let previous = self.shared.cell.load();
        let mut series = staged;
        for old in &previous.series {
            if !series.iter().any(|s| s.name == old.name) {
                series.push(old.clone());
            }
        }
        let adjacency = adjacency.or_else(|| previous.adjacency.clone());
        self.shared.cell.store(Arc::new(GraphSnapshot {
            epoch,
            num_vertices,
            series,
            adjacency,
        }));
        self.shared.epoch_gauge.set(epoch as f64);
        self.shared.commits.add(1);
    }
}

impl std::fmt::Debug for SnapshotStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapshotStore")
            .field("epoch", &self.shared.cell.load().epoch)
            .finish()
    }
}

impl EpochCommitter for SnapshotStore {
    /// The pipeline-side commit: called by
    /// `EventPipeline::run_applied_publishing` after each applied epoch's
    /// programs have staged their series. Rebuilds adjacency from the
    /// post-apply distribution when [`serve_adjacency`] is on.
    ///
    /// [`serve_adjacency`]: SnapshotStore::serve_adjacency
    fn commit_epoch(&self, distributed: &DistributedGraph) {
        let adjacency = self
            .adjacency_from_pipeline
            .load(std::sync::atomic::Ordering::Relaxed)
            .then(|| Adjacency::from_distributed(distributed));
        self.commit(
            distributed.epoch() as u64,
            distributed.num_vertices(),
            adjacency,
        );
    }
}

/// The read half of the query plane: cheap to clone, usable from any
/// thread (scrapers, HTTP handlers, benchmark hammers). Every read is
/// counted and timed into the store's registry
/// (`ebv_query_reads_total`, `ebv_query_read_seconds`).
#[derive(Clone)]
pub struct QueryHandle {
    shared: Arc<StoreShared>,
}

impl QueryHandle {
    /// The current epoch's complete snapshot — the zero-copy entry point
    /// for batched reads; the `Arc` keeps the epoch alive against later
    /// flips.
    ///
    /// # Errors
    ///
    /// [`QueryError::NotReady`] before the first commit.
    pub fn snapshot(&self) -> Result<Arc<GraphSnapshot>, QueryError> {
        let snapshot = self.shared.cell.load();
        if snapshot.epoch == 0 && snapshot.series.is_empty() {
            return Err(QueryError::NotReady);
        }
        Ok(snapshot)
    }

    /// Point lookup: vertex `vertex`'s value in series `name`.
    ///
    /// # Errors
    ///
    /// [`QueryError`] as for [`GraphSnapshot::lookup`].
    pub fn lookup(&self, name: &str, vertex: u64) -> Result<QueryValue, QueryError> {
        self.timed(|snapshot| snapshot.lookup(name, vertex))
    }

    /// Top-k query — see [`GraphSnapshot::topk`].
    ///
    /// # Errors
    ///
    /// [`QueryError`] as for [`GraphSnapshot::topk`].
    pub fn topk(
        &self,
        name: &str,
        k: usize,
        descending: bool,
    ) -> Result<Vec<(u64, QueryValue)>, QueryError> {
        self.timed(|snapshot| snapshot.topk(name, k, descending))
    }

    /// Neighborhood query: `vertex`'s sorted out-neighbors.
    ///
    /// # Errors
    ///
    /// [`QueryError`] as for [`GraphSnapshot::neighbors`].
    pub fn neighbors(&self, vertex: u64) -> Result<Vec<u64>, QueryError> {
        self.timed(|snapshot| snapshot.neighbors(vertex).map(|n| n.to_vec()))
    }

    /// Runs `read` against one pinned snapshot, counting and timing it as
    /// a single read — the HTTP handlers use this so a whole response
    /// (epoch tag + values) comes from one epoch.
    pub(crate) fn timed<T>(
        &self,
        read: impl FnOnce(&GraphSnapshot) -> Result<T, QueryError>,
    ) -> Result<T, QueryError> {
        let started = Instant::now();
        let snapshot = self.snapshot()?;
        let result = read(&snapshot);
        self.shared.reads.add(1);
        self.shared
            .read_seconds
            .observe(started.elapsed().as_secs_f64());
        result
    }
}

impl std::fmt::Debug for QueryHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryHandle")
            .field("epoch", &self.shared.cell.load().epoch)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store_with_cc() -> (SnapshotStore, QueryHandle) {
        let registry = MetricsRegistry::new();
        let store = SnapshotStore::with_registry(&registry);
        let handle = store.handle();
        store.stage(Series {
            name: "cc".to_string(),
            data: SeriesData::U64 {
                values: vec![0, 0, 0, 3, 3, 3],
                absent: None,
            },
        });
        store.commit(1, 6, None);
        (store, handle)
    }

    #[test]
    fn reads_before_the_first_commit_are_not_ready() {
        let registry = MetricsRegistry::new();
        let store = SnapshotStore::with_registry(&registry);
        let handle = store.handle();
        assert_eq!(handle.lookup("cc", 0), Err(QueryError::NotReady));
        assert_eq!(handle.snapshot().unwrap_err(), QueryError::NotReady);
    }

    #[test]
    fn lookup_topk_and_errors() {
        let (_store, handle) = store_with_cc();
        assert_eq!(handle.lookup("cc", 4), Ok(QueryValue::U64(3)));
        assert_eq!(handle.lookup("cc", 99), Err(QueryError::UnknownVertex));
        assert_eq!(handle.lookup("nope", 0), Err(QueryError::UnknownSeries));
        assert_eq!(handle.neighbors(0), Err(QueryError::NoAdjacency));

        // Descending top-2: the two lowest vertices labeled 3, ties by id.
        let top = handle.topk("cc", 2, true).unwrap();
        assert_eq!(top, vec![(3, QueryValue::U64(3)), (4, QueryValue::U64(3))]);
        // Ascending top-2: label-0 vertices first.
        let bottom = handle.topk("cc", 2, false).unwrap();
        assert_eq!(
            bottom,
            vec![(0, QueryValue::U64(0)), (1, QueryValue::U64(0))]
        );
        // k larger than the series serves everything.
        assert_eq!(handle.topk("cc", 100, true).unwrap().len(), 6);
        assert_eq!(handle.topk("cc", 0, true).unwrap(), vec![]);
    }

    #[test]
    fn absent_sentinels_serve_null_and_are_skipped_by_topk() {
        let registry = MetricsRegistry::new();
        let store = SnapshotStore::with_registry(&registry);
        let handle = store.handle();
        store.stage(Series {
            name: "sssp".to_string(),
            data: SeriesData::U64 {
                values: vec![0, 1, u64::MAX, 2],
                absent: Some(u64::MAX),
            },
        });
        store.commit(1, 4, None);
        assert_eq!(handle.lookup("sssp", 2), Ok(QueryValue::Null));
        assert_eq!(QueryValue::Null.to_json(), "null");
        let top = handle.topk("sssp", 10, true).unwrap();
        assert_eq!(top.len(), 3, "the unreachable vertex is skipped");
        assert_eq!(top[0], (3, QueryValue::U64(2)));
    }

    #[test]
    fn commits_carry_forward_unstaged_series_and_bump_metrics() {
        let registry = MetricsRegistry::new();
        let store = SnapshotStore::with_registry(&registry);
        let handle = store.handle();
        store.stage(Series {
            name: "cc".to_string(),
            data: u64::pack(&[7, 7]),
        });
        store.commit(1, 2, None);
        // Epoch 2 stages only a rank series; cc must still serve.
        store.stage(Series {
            name: "rank".to_string(),
            data: f64::pack(&[0.5, 0.5]),
        });
        store.commit(2, 2, None);
        let snapshot = handle.snapshot().unwrap();
        assert_eq!(snapshot.epoch, 2);
        assert_eq!(snapshot.series_names(), vec!["rank", "cc"]);
        assert_eq!(handle.lookup("cc", 0), Ok(QueryValue::U64(7)));
        assert_eq!(handle.lookup("rank", 1), Ok(QueryValue::F64(0.5)));

        let reads = registry.counter("ebv_query_reads_total").get();
        assert!(reads >= 2);
        assert!(registry.histogram("ebv_query_read_seconds").count() >= 2);
        assert_eq!(registry.gauge("ebv_query_epoch").get(), 2.0);
        assert_eq!(registry.counter("ebv_query_commits_total").get(), 2);
    }

    #[test]
    fn pagerank_values_publish_as_normalized_ranks() {
        let values = vec![
            PageRankValue {
                rank: 0.25,
                partial: 0.0,
            },
            PageRankValue {
                rank: 0.75,
                partial: 0.0,
            },
        ];
        match PageRankValue::pack(&values) {
            SeriesData::F64(ranks) => assert_eq!(ranks, ebv_algorithms::ranks(&values)),
            other => panic!("expected F64 ranks, got {other:?}"),
        }
    }
}
