//! The PR 9 acceptance property: **snapshot isolation at epoch
//! granularity**. Readers hammering a [`QueryHandle`] while
//! `EventPipeline::run_applied_publishing` churns the graph through ≥10
//! applied epochs must only ever observe *complete* epoch-N value sets —
//! for any observed epoch tag, every served value is bit-identical to the
//! values the engine computed for exactly that epoch, and the observed
//! epoch sequence is monotone per reader (a flip never goes backwards).
//!
//! The harness records each epoch's expected CC labels in `on_epoch`,
//! *before* the pipeline commits the epoch (commit happens after
//! `on_epoch` returns `Ok`), so by the time any reader can see epoch N
//! its expected values are already on file — a snapshot that mixes two
//! epochs' values, or leaks a half-staged series, fails the comparison.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;

use proptest::prelude::*;

use ebv_algorithms::ConnectedComponents;
use ebv_bsp::{BspEngine, DistributedGraph, RunOptions};
use ebv_dynamic::{ChurnStream, EventPipeline};
use ebv_partition::EbvPartitioner;
use ebv_serve::{QueryError, SeriesData, SnapshotStore};
use ebv_stream::{EdgeSource, RmatEdgeStream};

/// One churned pipeline run publishing CC labels per epoch, with `readers`
/// threads validating every snapshot they can observe against the recorded
/// per-epoch expectation.
fn run_churned_epochs(scale: u32, num_edges: usize, seed: u64, churn: f64, batch: usize) {
    let stream = RmatEdgeStream::new(scale, num_edges).with_seed(seed);
    let mut partitioner = EbvPartitioner::new()
        .dynamic(stream.stream_config(4))
        .unwrap();
    let mut distributed = DistributedGraph::build_streaming(4, None, Vec::new()).unwrap();
    let churned = ChurnStream::new(stream, churn)
        .unwrap()
        .with_seed(seed ^ 0x9e37);

    let registry = ebv_obs::MetricsRegistry::new();
    let store = SnapshotStore::with_registry(&registry);
    let handle = store.handle();
    let engine = BspEngine::sequential();

    // epoch → the exact CC labels the engine published for that epoch.
    let expected: Arc<Mutex<HashMap<u64, Vec<u64>>>> = Arc::new(Mutex::new(HashMap::new()));
    let stop = Arc::new(AtomicBool::new(false));

    let readers: Vec<_> = (0..2)
        .map(|_| {
            let handle = handle.clone();
            let expected = Arc::clone(&expected);
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                let mut last_epoch = 0u64;
                let mut observed = 0u64;
                loop {
                    let done = stop.load(Ordering::Relaxed);
                    match handle.snapshot() {
                        Err(QueryError::NotReady) => {}
                        Err(other) => panic!("unexpected read error: {other}"),
                        Ok(snapshot) => {
                            assert!(
                                snapshot.epoch >= last_epoch,
                                "epoch went backwards: {} after {last_epoch}",
                                snapshot.epoch
                            );
                            last_epoch = snapshot.epoch;
                            let series = snapshot
                                .series("cc")
                                .unwrap_or_else(|| panic!("epoch {} lost cc", snapshot.epoch));
                            let SeriesData::U64 { values, .. } = &series.data else {
                                panic!("cc must be a u64 series");
                            };
                            let guard = expected.lock().unwrap();
                            let want = guard.get(&snapshot.epoch).unwrap_or_else(|| {
                                panic!("epoch {} visible before it was recorded", snapshot.epoch)
                            });
                            assert_eq!(
                                values, want,
                                "epoch {}: served values are not the epoch's values",
                                snapshot.epoch
                            );
                            observed += 1;
                        }
                    }
                    if done {
                        return (last_epoch, observed);
                    }
                    thread::yield_now();
                }
            })
        })
        .collect();

    let pipeline_result = EventPipeline::new(batch).run_applied_publishing(
        churned,
        &mut partitioner,
        &mut distributed,
        &store,
        |dg, batch, _, _| {
            if batch.is_empty() {
                return Ok(());
            }
            let outcome = engine
                .run_opts(
                    dg,
                    &ConnectedComponents::new(),
                    RunOptions::new().publish_to(&store.series_sink::<u64>("cc")),
                )
                .unwrap();
            expected
                .lock()
                .unwrap()
                .insert(dg.epoch() as u64, outcome.values);
            Ok(())
        },
        &ebv_obs::NoopRecorder,
    );
    stop.store(true, Ordering::Relaxed);
    let reader_results: Vec<_> = readers.into_iter().map(|r| r.join().unwrap()).collect();
    pipeline_result.unwrap();

    let epochs = distributed.epoch() as u64;
    assert!(epochs >= 10, "need ≥10 churned epochs, got {epochs}");

    // Post-flip determinism: the final published snapshot is bit-identical
    // to the final epoch's recorded values.
    let final_snapshot = handle.snapshot().unwrap();
    assert_eq!(final_snapshot.epoch, epochs);
    let SeriesData::U64 { values, .. } = &final_snapshot.series("cc").unwrap().data else {
        panic!("cc must be a u64 series");
    };
    assert_eq!(values, &expected.lock().unwrap()[&epochs]);
    for (last_epoch, _) in reader_results {
        assert!(last_epoch <= epochs);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Concurrent readers during churned epoch flips only ever observe
    /// complete, bit-identical epoch-N value sets.
    #[test]
    fn readers_only_observe_complete_epoch_value_sets(
        scale in 7u32..9,
        num_edges in 2_400usize..4_000,
        seed in 0u64..1_000,
        churn in 0.05f64..0.3,
    ) {
        // batch 200 over ≥2400 events → ≥12 batches; churn keeps most
        // batches non-empty, comfortably clearing the 10-epoch floor.
        run_churned_epochs(scale, num_edges, seed, churn, 200);
    }
}

/// A deterministic always-on instance of the property, so the acceptance
/// run does not depend on proptest's seeding.
#[test]
fn ten_churned_epochs_serve_isolated_snapshots() {
    run_churned_epochs(8, 3_000, 42, 0.2, 200);
}
