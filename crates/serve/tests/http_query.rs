//! Over-the-wire integration: the query routes mounted on the *existing*
//! [`ObsServer`] listener — one ephemeral port serves the telemetry plane
//! (`/metrics`, `/healthz`, …) and the query plane (`/query/*`, `/topk`,
//! `/neighbors/*`) side by side, exactly as the `evolving_graph` example
//! wires them. Asserts the ISSUE's HTTP acceptance surface: correct `200`
//! bodies from a real committed distribution, `404` for unknown
//! series/vertices, `400` for malformed queries, `503` before the first
//! commit, and a `404` listing that now advertises the query routes.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;

use ebv_algorithms::ConnectedComponents;
use ebv_bsp::{BspEngine, DistributedGraph, RunOptions};
use ebv_dynamic::{EventPipeline, InsertEvents};
use ebv_obs::{ObsServer, ObsServerConfig, Telemetry};
use ebv_partition::EbvPartitioner;
use ebv_serve::{register_query_routes, SnapshotStore};
use ebv_stream::{EdgeSource, RmatEdgeStream};

/// Sends one GET and returns the full raw response.
fn get(addr: SocketAddr, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(format!("GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").as_bytes())
        .expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    response
}

fn body_of(response: &str) -> &str {
    response
        .split_once("\r\n\r\n")
        .map(|(_, body)| body)
        .unwrap_or("")
}

/// Partitions a small deterministic graph, runs CC, stages + commits it
/// (with adjacency), and mounts both planes on one listener.
fn serve_committed_store() -> (ObsServer, SnapshotStore, DistributedGraph) {
    let stream = RmatEdgeStream::new(7, 600).with_seed(9);
    let mut partitioner = EbvPartitioner::new()
        .dynamic(stream.stream_config(4))
        .expect("dynamic partitioner");
    let mut distributed = DistributedGraph::build_streaming(4, None, Vec::new()).expect("seed");
    EventPipeline::new(200)
        .run_applied(
            InsertEvents::new(stream),
            &mut partitioner,
            &mut distributed,
            |_, _, _, _| Ok(()),
        )
        .expect("stream the edges in");

    let registry = ebv_obs::MetricsRegistry::new();
    let store = SnapshotStore::with_registry(&registry);
    BspEngine::sequential()
        .run_opts(
            &distributed,
            &ConnectedComponents::new(),
            RunOptions::new().publish_to(&store.series_sink::<u64>("cc")),
        )
        .expect("cc run");
    store.commit(
        1,
        distributed.num_vertices(),
        Some(ebv_serve::Adjacency::from_distributed(&distributed)),
    );

    let config = ObsServerConfig::default();
    let mut router = ebv_obs::telemetry_router(Arc::new(Telemetry::new()), &config);
    register_query_routes(&mut router, store.handle());
    let server =
        ObsServer::bind_with_router("127.0.0.1:0", router, config).expect("bind ephemeral port");
    (server, store, distributed)
}

#[test]
fn query_routes_serve_the_committed_epoch_over_http() {
    let (server, store, distributed) = serve_committed_store();
    let addr = server.local_addr();

    // The index names the epoch and the staged series.
    let index = get(addr, "/query");
    assert!(index.starts_with("HTTP/1.1 200 OK"), "{index}");
    assert_eq!(
        body_of(&index),
        format!(
            "{{\"epoch\": 1, \"num_vertices\": {}, \"series\": [\"cc\"]}}\n",
            distributed.num_vertices()
        )
    );

    // A point lookup agrees byte-for-byte with the in-process handle.
    let handle = store.handle();
    let ebv_serve::QueryValue::U64(expected) = handle.lookup("cc", 3).expect("lookup") else {
        panic!("cc is a u64 series");
    };
    let lookup = get(addr, "/query/cc/3");
    assert!(lookup.starts_with("HTTP/1.1 200 OK"), "{lookup}");
    assert_eq!(
        body_of(&lookup),
        format!("{{\"epoch\": 1, \"series\": \"cc\", \"vertex\": 3, \"value\": {expected}}}\n")
    );

    // Top-k over the wire equals top-k in process.
    let top = handle.topk("cc", 3, true).expect("topk");
    let topk = get(addr, "/topk?series=cc&k=3");
    assert!(topk.starts_with("HTTP/1.1 200 OK"), "{topk}");
    for (vertex, _) in &top {
        assert!(
            body_of(&topk).contains(&format!("\"vertex\": {vertex}")),
            "{topk}"
        );
    }

    // Neighborhoods come from the committed adjacency.
    let neighbors = handle.neighbors(0).expect("neighbors");
    let response = get(addr, "/neighbors/0");
    assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
    let want = neighbors
        .iter()
        .map(|n| n.to_string())
        .collect::<Vec<_>>()
        .join(", ");
    assert_eq!(
        body_of(&response),
        format!("{{\"epoch\": 1, \"vertex\": 0, \"neighbors\": [{want}]}}\n")
    );

    // The telemetry plane still answers on the same listener.
    assert!(get(addr, "/metrics").starts_with("HTTP/1.1 200 OK"));
    assert!(get(addr, "/healthz").starts_with("HTTP/1.1 200 OK"));

    server.shutdown();
}

#[test]
fn unknown_vertices_and_series_are_404_over_http() {
    let (server, _store, distributed) = serve_committed_store();
    let addr = server.local_addr();

    let beyond = distributed.num_vertices() as u64 + 10;
    let unknown_vertex = get(addr, &format!("/query/cc/{beyond}"));
    assert!(
        unknown_vertex.starts_with("HTTP/1.1 404 Not Found"),
        "{unknown_vertex}"
    );
    assert_eq!(body_of(&unknown_vertex), "unknown vertex\n");

    let unknown_series = get(addr, "/query/nope/0");
    assert!(
        unknown_series.starts_with("HTTP/1.1 404 Not Found"),
        "{unknown_series}"
    );
    assert_eq!(body_of(&unknown_series), "unknown series\n");

    // An unknown route's 404 now advertises the mounted query plane.
    let unknown_route = get(addr, "/nope");
    assert!(unknown_route.starts_with("HTTP/1.1 404 Not Found"));
    let listing = body_of(&unknown_route);
    for route in ["/metrics", "/healthz", "/query", "/topk", "/neighbors/*"] {
        assert!(listing.contains(route), "{listing}");
    }

    server.shutdown();
}

#[test]
fn malformed_queries_are_400_over_http() {
    let (server, _store, _distributed) = serve_committed_store();
    let addr = server.local_addr();

    for (path, body) in [
        (
            "/query/cc",
            "malformed query; use /query/<series>/<vertex>\n",
        ),
        ("/query/cc/abc", "vertex must be a non-negative integer\n"),
        (
            "/topk",
            "missing series parameter; use /topk?series=<name>&k=<n>\n",
        ),
        (
            "/topk?series=cc&k=abc",
            "k must be a non-negative integer\n",
        ),
        (
            "/topk?series=cc&order=sideways",
            "order must be `asc` or `desc`\n",
        ),
        ("/neighbors/abc", "vertex must be a non-negative integer\n"),
    ] {
        let response = get(addr, path);
        assert!(
            response.starts_with("HTTP/1.1 400 Bad Request"),
            "{path}: {response}"
        );
        assert_eq!(body_of(&response), body, "{path}");
    }

    server.shutdown();
}

#[test]
fn reads_before_the_first_commit_are_503_over_http() {
    let registry = ebv_obs::MetricsRegistry::new();
    let store = SnapshotStore::with_registry(&registry);
    let config = ObsServerConfig::default();
    let mut router = ebv_obs::telemetry_router(Arc::new(Telemetry::new()), &config);
    register_query_routes(&mut router, store.handle());
    let server =
        ObsServer::bind_with_router("127.0.0.1:0", router, config).expect("bind ephemeral port");
    let addr = server.local_addr();

    for path in ["/query", "/query/cc/0", "/topk?series=cc", "/neighbors/0"] {
        let response = get(addr, path);
        assert!(
            response.starts_with("HTTP/1.1 503 Service Unavailable"),
            "{path}: {response}"
        );
        assert_eq!(body_of(&response), "no epoch published yet\n");
    }

    server.shutdown();
}
