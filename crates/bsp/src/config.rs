//! Process configuration from the `EBV_*` environment variables.
//!
//! Before this module, every binary parsed its own slice of the
//! environment: the `evolving_graph` example read `EBV_MODE`,
//! `EBV_OBS_ADDR`, `EBV_TRACE` and `EBV_METRICS` inline, and the shared
//! worker pool read `EBV_POOL_SIZE` with a *silent* fallback on malformed
//! values. [`EnvConfig`] is the one place all five knobs are parsed, with
//! one policy: a malformed value is a typed [`ConfigError`], never a silent
//! default — a misspelt mode or pool size must not fake a measurement.
//!
//! The parsers are pure functions over strings (see
//! [`EnvConfig::from_lookup`]), so the malformed-value behaviour is unit
//! tested without touching the process environment.

use std::fmt;
use std::path::PathBuf;

use crate::engine::{BspEngine, ExecutionMode};

/// The environment variable selecting the [`ExecutionMode`].
pub const ENV_MODE: &str = "EBV_MODE";
/// The environment variable sizing the shared worker pool.
pub const ENV_POOL_SIZE: &str = "EBV_POOL_SIZE";
/// The environment variable binding the live observability server.
pub const ENV_OBS_ADDR: &str = "EBV_OBS_ADDR";
/// The environment variable naming the Chrome-trace output file.
pub const ENV_TRACE: &str = "EBV_TRACE";
/// The environment variable naming the Prometheus-text output file.
pub const ENV_METRICS: &str = "EBV_METRICS";
/// The environment variable naming the durable-state directory (WAL +
/// checkpoints). Unset means durability is off.
pub const ENV_STATE_DIR: &str = "EBV_STATE_DIR";
/// The environment variable setting the checkpoint cadence in applied
/// epochs (default 8 when durability is on).
pub const ENV_CHECKPOINT_EVERY: &str = "EBV_CHECKPOINT_EVERY";

/// Default checkpoint cadence when `EBV_CHECKPOINT_EVERY` is unset.
pub const DEFAULT_CHECKPOINT_EVERY: usize = 8;

/// A malformed `EBV_*` environment value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// `EBV_MODE` is not one of the recognised mode spellings.
    InvalidMode {
        /// The rejected value.
        value: String,
    },
    /// `EBV_POOL_SIZE` (or a `pooled:<n>` mode suffix) is not a positive
    /// integer.
    InvalidPoolSize {
        /// The rejected value.
        value: String,
    },
    /// `EBV_CHECKPOINT_EVERY` is not a positive integer.
    InvalidCheckpointEvery {
        /// The rejected value.
        value: String,
    },
    /// The variable is set but is not valid UTF-8.
    NotUnicode {
        /// The variable's name.
        name: &'static str,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::InvalidMode { value } => write!(
                f,
                "{ENV_MODE} must be `sequential`, `threaded`, `spawn-per-step` or `pooled:<n>`, \
                 got {value:?}"
            ),
            ConfigError::InvalidPoolSize { value } => {
                write!(
                    f,
                    "{ENV_POOL_SIZE} must be a positive integer, got {value:?}"
                )
            }
            ConfigError::InvalidCheckpointEvery { value } => {
                write!(
                    f,
                    "{ENV_CHECKPOINT_EVERY} must be a positive integer, got {value:?}"
                )
            }
            ConfigError::NotUnicode { name } => write!(f, "{name} is not valid UTF-8"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// The consolidated `EBV_*` environment configuration.
///
/// # Examples
///
/// ```
/// use ebv_bsp::config::EnvConfig;
/// use ebv_bsp::ExecutionMode;
///
/// let config = EnvConfig::from_lookup(|name| match name {
///     "EBV_MODE" => Some("threaded".to_string()),
///     "EBV_OBS_ADDR" => Some("127.0.0.1:9808".to_string()),
///     _ => None,
/// })
/// .unwrap();
/// assert_eq!(config.mode, ExecutionMode::Threaded);
/// assert_eq!(config.obs_addr.as_deref(), Some("127.0.0.1:9808"));
/// assert_eq!(config.engine().mode(), ExecutionMode::Threaded);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnvConfig {
    /// Execution mode from `EBV_MODE` (default [`ExecutionMode::Threaded`]
    /// — the mode every end-to-end driver has defaulted to since PR 5).
    pub mode: ExecutionMode,
    /// Shared-pool size override from `EBV_POOL_SIZE`.
    pub pool_size: Option<usize>,
    /// Live observability bind address from `EBV_OBS_ADDR`.
    pub obs_addr: Option<String>,
    /// Chrome-trace output path from `EBV_TRACE`.
    pub trace_out: Option<PathBuf>,
    /// Prometheus-text output path from `EBV_METRICS`.
    pub metrics_out: Option<PathBuf>,
    /// Durable-state directory from `EBV_STATE_DIR`; `None` disables the
    /// WAL/checkpoint plane entirely.
    pub state_dir: Option<PathBuf>,
    /// Checkpoint cadence in applied epochs from `EBV_CHECKPOINT_EVERY`
    /// (used only when `state_dir` is set; default 8).
    pub checkpoint_every: usize,
}

impl Default for EnvConfig {
    fn default() -> Self {
        EnvConfig {
            mode: ExecutionMode::Threaded,
            pool_size: None,
            obs_addr: None,
            trace_out: None,
            metrics_out: None,
            state_dir: None,
            checkpoint_every: DEFAULT_CHECKPOINT_EVERY,
        }
    }
}

impl EnvConfig {
    /// Reads the `EBV_*` variables from the process environment.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] among the set variables; unset
    /// variables take their defaults.
    pub fn from_env() -> Result<EnvConfig, ConfigError> {
        EnvConfig::from_lookup(|name| match std::env::var(name) {
            Ok(value) => Some(value),
            Err(std::env::VarError::NotPresent) => None,
            // Surfaced as a typed error by re-probing below.
            Err(std::env::VarError::NotUnicode(_)) => Some("\u{fffd}".to_string()),
        })
        .map_err(|err| match err {
            ConfigError::InvalidMode { ref value }
            | ConfigError::InvalidPoolSize { ref value }
            | ConfigError::InvalidCheckpointEvery { ref value }
                if value == "\u{fffd}" =>
            {
                let name = match err {
                    ConfigError::InvalidMode { .. } => ENV_MODE,
                    ConfigError::InvalidCheckpointEvery { .. } => ENV_CHECKPOINT_EVERY,
                    _ => ENV_POOL_SIZE,
                };
                ConfigError::NotUnicode { name }
            }
            other => other,
        })
    }

    /// Parses the configuration from any `name -> value` lookup — the
    /// testable core of [`from_env`](Self::from_env).
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] for the first malformed value.
    pub fn from_lookup(lookup: impl Fn(&str) -> Option<String>) -> Result<EnvConfig, ConfigError> {
        let mut config = EnvConfig::default();
        if let Some(value) = lookup(ENV_MODE) {
            config.mode = parse_mode(&value)?;
        }
        if let Some(value) = lookup(ENV_POOL_SIZE) {
            config.pool_size = Some(parse_pool_size(&value)?);
        }
        config.obs_addr = lookup(ENV_OBS_ADDR);
        config.trace_out = lookup(ENV_TRACE).map(PathBuf::from);
        config.metrics_out = lookup(ENV_METRICS).map(PathBuf::from);
        config.state_dir = lookup(ENV_STATE_DIR).map(PathBuf::from);
        if let Some(value) = lookup(ENV_CHECKPOINT_EVERY) {
            config.checkpoint_every = parse_checkpoint_every(&value)?;
        }
        Ok(config)
    }

    /// A [`BspEngine`] in the configured execution mode.
    pub fn engine(&self) -> BspEngine {
        match self.mode {
            ExecutionMode::Sequential => BspEngine::sequential(),
            ExecutionMode::Threaded => BspEngine::threaded(),
            ExecutionMode::Pooled(n) => BspEngine::pooled(n),
            ExecutionMode::SpawnPerStep => BspEngine::spawn_per_step(),
        }
    }
}

/// Parses an `EBV_MODE` value: `sequential`, `threaded`, `spawn-per-step`
/// or `pooled:<n>` (a run-local pool of exactly `n` threads).
///
/// # Errors
///
/// Returns [`ConfigError::InvalidMode`] for any other spelling, and
/// [`ConfigError::InvalidPoolSize`] for a malformed `pooled:` suffix.
pub fn parse_mode(value: &str) -> Result<ExecutionMode, ConfigError> {
    match value.trim() {
        "sequential" => Ok(ExecutionMode::Sequential),
        "threaded" => Ok(ExecutionMode::Threaded),
        "spawn-per-step" => Ok(ExecutionMode::SpawnPerStep),
        trimmed => match trimmed.strip_prefix("pooled:") {
            Some(threads) => Ok(ExecutionMode::Pooled(parse_pool_size(threads)?)),
            None => Err(ConfigError::InvalidMode {
                value: value.to_string(),
            }),
        },
    }
}

/// Parses an `EBV_POOL_SIZE` value: a positive integer.
///
/// # Errors
///
/// Returns [`ConfigError::InvalidPoolSize`] for zero, negative, non-numeric
/// or empty input.
pub fn parse_pool_size(value: &str) -> Result<usize, ConfigError> {
    value
        .trim()
        .parse::<usize>()
        .ok()
        .filter(|&n| n > 0)
        .ok_or_else(|| ConfigError::InvalidPoolSize {
            value: value.to_string(),
        })
}

/// Parses an `EBV_CHECKPOINT_EVERY` value: a positive integer number of
/// applied epochs between checkpoints.
///
/// # Errors
///
/// Returns [`ConfigError::InvalidCheckpointEvery`] for zero, negative,
/// non-numeric or empty input.
pub fn parse_checkpoint_every(value: &str) -> Result<usize, ConfigError> {
    value
        .trim()
        .parse::<usize>()
        .ok()
        .filter(|&n| n > 0)
        .ok_or_else(|| ConfigError::InvalidCheckpointEvery {
            value: value.to_string(),
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lookup_of<'a>(pairs: &'a [(&'a str, &'a str)]) -> impl Fn(&str) -> Option<String> + 'a {
        move |name| {
            pairs
                .iter()
                .find(|(n, _)| *n == name)
                .map(|(_, v)| v.to_string())
        }
    }

    #[test]
    fn unset_environment_defaults_to_threaded_and_no_outputs() {
        let config = EnvConfig::from_lookup(|_| None).unwrap();
        assert_eq!(config, EnvConfig::default());
        assert_eq!(config.mode, ExecutionMode::Threaded);
        assert_eq!(config.pool_size, None);
        assert_eq!(config.engine().mode(), ExecutionMode::Threaded);
    }

    #[test]
    fn every_mode_spelling_parses() {
        assert_eq!(parse_mode("sequential").unwrap(), ExecutionMode::Sequential);
        assert_eq!(parse_mode("threaded").unwrap(), ExecutionMode::Threaded);
        assert_eq!(
            parse_mode("spawn-per-step").unwrap(),
            ExecutionMode::SpawnPerStep
        );
        assert_eq!(parse_mode("pooled:3").unwrap(), ExecutionMode::Pooled(3));
        assert_eq!(
            parse_mode(" threaded ").unwrap(),
            ExecutionMode::Threaded,
            "surrounding whitespace is tolerated"
        );
    }

    #[test]
    fn malformed_modes_are_typed_errors_not_silent_fallbacks() {
        for bad in ["Threaded", "thread", "parallel", "", "pooled", "pooled:"] {
            let err = parse_mode(bad).unwrap_err();
            assert!(
                matches!(
                    err,
                    ConfigError::InvalidMode { .. } | ConfigError::InvalidPoolSize { .. }
                ),
                "{bad:?} -> {err:?}"
            );
        }
        assert_eq!(
            parse_mode("pooled:0").unwrap_err(),
            ConfigError::InvalidPoolSize {
                value: "0".to_string()
            }
        );
    }

    #[test]
    fn pool_sizes_must_be_positive_integers() {
        assert_eq!(parse_pool_size("4").unwrap(), 4);
        assert_eq!(parse_pool_size(" 16 ").unwrap(), 16);
        for bad in ["0", "-1", "4.5", "four", "", "0x4"] {
            assert_eq!(
                parse_pool_size(bad).unwrap_err(),
                ConfigError::InvalidPoolSize {
                    value: bad.to_string()
                },
                "{bad:?}"
            );
        }
    }

    #[test]
    fn full_lookup_round_trips_all_five_variables() {
        let config = EnvConfig::from_lookup(lookup_of(&[
            (ENV_MODE, "pooled:2"),
            (ENV_POOL_SIZE, "6"),
            (ENV_OBS_ADDR, "127.0.0.1:0"),
            (ENV_TRACE, "trace.json"),
            (ENV_METRICS, "metrics.prom"),
        ]))
        .unwrap();
        assert_eq!(config.mode, ExecutionMode::Pooled(2));
        assert_eq!(config.pool_size, Some(6));
        assert_eq!(config.obs_addr.as_deref(), Some("127.0.0.1:0"));
        assert_eq!(config.trace_out, Some(PathBuf::from("trace.json")));
        assert_eq!(config.metrics_out, Some(PathBuf::from("metrics.prom")));
        assert_eq!(config.engine().mode(), ExecutionMode::Pooled(2));
    }

    #[test]
    fn durability_knobs_parse_and_default_off() {
        let config = EnvConfig::from_lookup(|_| None).unwrap();
        assert_eq!(config.state_dir, None, "durability is opt-in");
        assert_eq!(config.checkpoint_every, DEFAULT_CHECKPOINT_EVERY);

        let config = EnvConfig::from_lookup(lookup_of(&[
            (ENV_STATE_DIR, "/tmp/ebv-state"),
            (ENV_CHECKPOINT_EVERY, "4"),
        ]))
        .unwrap();
        assert_eq!(config.state_dir, Some(PathBuf::from("/tmp/ebv-state")));
        assert_eq!(config.checkpoint_every, 4);
    }

    #[test]
    fn malformed_checkpoint_cadence_is_a_typed_error() {
        for bad in ["0", "-3", "often", "", "2.5"] {
            let err =
                EnvConfig::from_lookup(lookup_of(&[(ENV_CHECKPOINT_EVERY, bad)])).unwrap_err();
            assert_eq!(
                err,
                ConfigError::InvalidCheckpointEvery {
                    value: bad.to_string()
                },
                "{bad:?}"
            );
            assert!(err.to_string().contains("EBV_CHECKPOINT_EVERY"));
        }
    }

    #[test]
    fn a_malformed_variable_fails_the_whole_parse() {
        let err = EnvConfig::from_lookup(lookup_of(&[
            (ENV_MODE, "threaded"),
            (ENV_POOL_SIZE, "many"),
        ]))
        .unwrap_err();
        assert_eq!(
            err,
            ConfigError::InvalidPoolSize {
                value: "many".to_string()
            }
        );
        assert!(err.to_string().contains("EBV_POOL_SIZE"));
        assert!(EnvConfig::from_lookup(lookup_of(&[(ENV_MODE, "turbo")]))
            .unwrap_err()
            .to_string()
            .contains("EBV_MODE"));
    }
}
