//! The subgraph-centric programming interface ("think like a graph").

use ebv_graph::VertexId;

use crate::exchange::{InboxView, OutboxEntry};
use crate::subgraph::Subgraph;

/// Where a replica message should be delivered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MessageTarget {
    /// Every other replica of the vertex (mirror-to-mirror broadcast).
    AllReplicas,
    /// Only the master replica of the vertex (the gather direction of a
    /// master/mirror protocol, e.g. PageRank partial sums).
    Master,
    /// Every mirror of the vertex (the scatter direction of a master/mirror
    /// protocol, e.g. broadcasting the new rank).
    Mirrors,
}

/// Per-superstep execution context handed to a [`SubgraphProgram`] for one
/// worker.
///
/// The context exposes the worker's local [`Subgraph`], the mutable local
/// vertex values, the messages received from other replicas at the end of
/// the previous superstep, and an outbox for messages to be delivered to the
/// other replicas of local vertices. It also accumulates the *work units*
/// (edge traversals) the program performs, which feed the deterministic cost
/// model used to reproduce the paper's execution-time figures.
#[derive(Debug)]
pub struct SubgraphContext<'a, V, M> {
    subgraph: &'a Subgraph,
    values: &'a mut [V],
    incoming: InboxView<'a, M>,
    /// Engine-owned outbox buffer, reused across supersteps so queueing a
    /// message performs no allocation in the steady state.
    outbox: &'a mut Vec<OutboxEntry<M>>,
    work: u64,
    changes: usize,
}

impl<'a, V, M> SubgraphContext<'a, V, M> {
    pub(crate) fn new(
        subgraph: &'a Subgraph,
        values: &'a mut [V],
        incoming: InboxView<'a, M>,
        outbox: &'a mut Vec<OutboxEntry<M>>,
    ) -> Self {
        debug_assert!(outbox.is_empty());
        SubgraphContext {
            subgraph,
            values,
            incoming,
            outbox,
            work: 0,
            changes: 0,
        }
    }

    /// The worker's local subgraph.
    ///
    /// The returned reference borrows the subgraph itself (lifetime `'a`),
    /// not the context, so kernels can hold it across mutating context
    /// calls — e.g. iterate a CSR neighbour slice while calling
    /// [`set_value`](Self::set_value).
    pub fn subgraph(&self) -> &'a Subgraph {
        self.subgraph
    }

    /// The value of the local vertex at `local_index`.
    pub fn value(&self, local_index: usize) -> &V {
        &self.values[local_index]
    }

    /// All local values, indexed by local vertex index.
    pub fn values(&self) -> &[V] {
        self.values
    }

    /// Overwrites the value of the local vertex at `local_index` and counts
    /// it as a change for convergence detection.
    pub fn set_value(&mut self, local_index: usize, value: V) {
        self.values[local_index] = value;
        self.changes += 1;
    }

    /// The messages delivered to the local vertex at `local_index` during
    /// the previous communication stage.
    pub fn messages(&self, local_index: usize) -> &[M] {
        self.incoming.messages(local_index)
    }

    /// Queues a message for delivery to every *other* replica of the local
    /// vertex at `local_index` during the communication stage.
    pub fn send_to_replicas(&mut self, local_index: usize, message: M) {
        self.outbox
            .push((local_index as u32, message, MessageTarget::AllReplicas));
    }

    /// Queues a message for the *master* replica of the local vertex at
    /// `local_index` (a no-op at routing time if this worker already is the
    /// master).
    pub fn send_to_master(&mut self, local_index: usize, message: M) {
        self.outbox
            .push((local_index as u32, message, MessageTarget::Master));
    }

    /// Queues a message for every *mirror* replica of the local vertex at
    /// `local_index`.
    pub fn send_to_mirrors(&mut self, local_index: usize, message: M) {
        self.outbox
            .push((local_index as u32, message, MessageTarget::Mirrors));
    }

    /// Records `units` of computational work (typically edge traversals);
    /// used by the cost model for the comp/comm breakdown of Table II.
    pub fn add_work(&mut self, units: u64) {
        self.work += units;
    }

    /// Number of changes recorded so far via [`SubgraphContext::set_value`].
    pub fn changes(&self) -> usize {
        self.changes
    }

    /// Releases the context, leaving the queued messages in the
    /// engine-owned outbox; returns the work and change counters.
    pub(crate) fn finish(self) -> (u64, usize) {
        (self.work, self.changes)
    }
}

/// A subgraph-centric BSP program.
///
/// In every superstep each worker runs [`SubgraphProgram::run_superstep`]
/// over its entire subgraph (the computation stage), then the engine routes
/// the queued replica messages (the communication stage) and waits for all
/// workers (the synchronization stage). The program is generic over the
/// vertex value type and the replica-message type.
pub trait SubgraphProgram: Sync {
    /// Per-vertex state.
    type Value: Clone + Send + Sync + std::fmt::Debug;
    /// Message exchanged between replicas of the same vertex.
    type Message: Clone + Send + Sync + std::fmt::Debug;

    /// A short name used in reports (e.g. `"CC"`, `"PageRank"`).
    fn name(&self) -> String;

    /// The initial value of `vertex` (called once per local replica).
    fn initial_value(&self, vertex: VertexId, subgraph: &Subgraph) -> Self::Value;

    /// The value a replica of `vertex` starts from when the engine is
    /// warm-started from a previous epoch's outcome (see
    /// `BspEngine::run_warm`): `prior` is the vertex's value in that
    /// outcome. The default carries the prior value over unchanged;
    /// incremental programs override this to reset state invalidated by
    /// the mutations (e.g. component labels of split components). Called
    /// once per local replica, with the same `prior` for every replica, so
    /// all replicas of a vertex start in agreement.
    fn warm_value(
        &self,
        vertex: VertexId,
        prior: &Self::Value,
        subgraph: &Subgraph,
    ) -> Self::Value {
        let _ = (vertex, subgraph);
        prior.clone()
    }

    /// Runs the sequential algorithm over one subgraph for one superstep and
    /// returns the number of local vertex updates it performed.
    fn run_superstep(
        &self,
        ctx: &mut SubgraphContext<'_, Self::Value, Self::Message>,
        superstep: usize,
    ) -> usize;

    /// Upper bound on the number of supersteps (default 10 000).
    fn max_supersteps(&self) -> usize {
        10_000
    }

    /// Whether the engine should stop as soon as a superstep produces no
    /// messages and no value changes (default `true`; fixed-iteration
    /// programs such as PageRank return `false`).
    fn halt_on_quiescence(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exchange::InboxView;
    use crate::subgraph::DistributedGraph;
    use ebv_graph::Graph;
    use ebv_partition::{EbvPartitioner, Partitioner};

    #[test]
    fn context_tracks_values_messages_work_and_outbox() {
        let g = Graph::from_edges(vec![(0, 1), (1, 2)]).unwrap();
        let partition = EbvPartitioner::new().partition(&g, 1).unwrap();
        let dg = DistributedGraph::build(&g, &partition).unwrap();
        let sg = dg.subgraph(ebv_partition::PartitionId::new(0));

        let mut values = vec![10u64; sg.num_vertices()];
        // Flat mailbox: vertex 0 received one message, the others none.
        let msgs = [7u64];
        let offsets = [0u32, 1, 1, 1];
        let incoming = InboxView {
            msgs: &msgs,
            offsets: &offsets,
        };
        let mut outbox = Vec::new();
        let mut ctx: SubgraphContext<'_, u64, u64> =
            SubgraphContext::new(sg, &mut values, incoming, &mut outbox);

        assert_eq!(*ctx.value(0), 10);
        assert_eq!(ctx.messages(0), &[7]);
        assert_eq!(ctx.messages(1), &[] as &[u64]);
        ctx.set_value(1, 42);
        assert_eq!(ctx.values()[1], 42);
        assert_eq!(ctx.changes(), 1);
        ctx.add_work(5);
        ctx.send_to_replicas(0, 99);
        ctx.send_to_master(1, 7);
        ctx.send_to_mirrors(2, 3);

        let (work, changes) = ctx.finish();
        assert_eq!(
            outbox,
            vec![
                (0, 99, MessageTarget::AllReplicas),
                (1, 7, MessageTarget::Master),
                (2, 3, MessageTarget::Mirrors),
            ]
        );
        assert_eq!(work, 5);
        assert_eq!(changes, 1);
    }
}
