//! The zero-allocation message plane: double-buffered flat mailboxes and
//! the two-phase partitioned exchange of the communication stage.
//!
//! A [`MessagePlane`] owns every buffer a BSP run needs to move replica
//! messages — per-worker outboxes, the `p × p` shard matrix of the
//! partitioned exchange, and per-worker flat inboxes — and reuses all of
//! them across supersteps, so steady-state supersteps perform no
//! per-message heap allocation.
//!
//! One communication stage is two phases with a transpose in between:
//!
//! 1. **scatter** — each source worker drains its outbox through the
//!    precomputed [`WorkerRoutes`] into its own row of destination shards
//!    (`out_shards[src][dst]`), with no shared state between workers;
//! 2. **gather** — after the shard matrix is transposed (a `Vec` swap, no
//!    message moves), each destination worker merges its inbound shards in
//!    ascending source-worker order and counting-sorts them into a flat
//!    per-vertex mailbox (`msgs` + `offsets`).
//!
//! Both phases are data-parallel over workers and, because the merge order
//! is fixed (source worker ascending, outbox order within a source), the
//! per-vertex message sequences — and therefore every program value and
//! every counter in `ExecutionStats` — are bit-identical whether the
//! phases run sequentially or threaded.

use crate::program::MessageTarget;
use crate::routing::WorkerRoutes;
use crate::subgraph::Subgraph;

/// A queued outgoing message: local vertex index, payload, fan-out.
pub(crate) type OutboxEntry<M> = (u32, M, MessageTarget);

/// One source→destination shard of the partitioned exchange.
type Shard<M> = Vec<(u32, M)>;

/// One worker's inbox: messages grouped by local vertex index in a flat
/// buffer, plus the counting-sort scratch that keeps refills
/// allocation-free.
#[derive(Debug)]
pub(crate) struct Inbox<M> {
    /// Messages grouped by local vertex (stable within a vertex: source
    /// worker ascending, outbox order within a source).
    msgs: Vec<M>,
    /// Per-vertex ranges into `msgs` (length `num_vertices + 1`). Doubles
    /// as the counting-sort histogram while refilling.
    offsets: Vec<u32>,
    /// Arrival-order scratch: local indices and payloads.
    staging_local: Vec<u32>,
    staging_msgs: Vec<M>,
    /// Arrival index of each sorted slot.
    slots: Vec<u32>,
    /// Per-vertex placement cursors.
    cursor: Vec<u32>,
}

/// Read-only view of one worker's inbox for the duration of a superstep.
#[derive(Debug)]
pub(crate) struct InboxView<'a, M> {
    pub(crate) msgs: &'a [M],
    pub(crate) offsets: &'a [u32],
}

// Manual impls: `#[derive(Clone, Copy)]` would bound `M`.
impl<M> Clone for InboxView<'_, M> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<M> Copy for InboxView<'_, M> {}

impl<M> InboxView<'_, M> {
    /// The messages delivered to the vertex at `local`.
    #[inline]
    pub(crate) fn messages(&self, local: usize) -> &[M] {
        &self.msgs[self.offsets[local] as usize..self.offsets[local + 1] as usize]
    }
}

impl<M> Inbox<M> {
    fn new(num_vertices: usize) -> Self {
        Inbox {
            msgs: Vec::new(),
            offsets: vec![0; num_vertices + 1],
            staging_local: Vec::new(),
            staging_msgs: Vec::new(),
            slots: Vec::new(),
            cursor: Vec::new(),
        }
    }

    /// The read view handed to the computation stage.
    pub(crate) fn view(&self) -> InboxView<'_, M> {
        InboxView {
            msgs: &self.msgs,
            offsets: &self.offsets,
        }
    }

    /// Replaces the inbox contents with the inbound shards, merged in
    /// ascending source-worker order and grouped by local vertex with a
    /// stable counting sort. Returns the number of messages received.
    pub(crate) fn fill(&mut self, inbound: &mut [Shard<M>]) -> usize
    where
        M: Clone,
    {
        let Inbox {
            msgs,
            offsets,
            staging_local,
            staging_msgs,
            slots,
            cursor,
        } = self;
        let n = offsets.len() - 1;

        // Merge the shards in source order into arrival-order staging.
        staging_local.clear();
        staging_msgs.clear();
        for shard in inbound.iter_mut() {
            for (local, msg) in shard.drain(..) {
                staging_local.push(local);
                staging_msgs.push(msg);
            }
        }
        let total = staging_msgs.len();

        // Histogram → prefix sums (offsets) → stable placement permutation.
        offsets.fill(0);
        for &local in staging_local.iter() {
            offsets[local as usize + 1] += 1;
        }
        for i in 1..=n {
            offsets[i] += offsets[i - 1];
        }
        cursor.clear();
        cursor.extend_from_slice(&offsets[..n]);
        slots.clear();
        slots.resize(total, 0);
        for (arrival, &local) in staging_local.iter().enumerate() {
            let slot = &mut cursor[local as usize];
            slots[*slot as usize] = u32::try_from(arrival).expect("arrival index fits u32");
            *slot += 1;
        }
        msgs.clear();
        msgs.extend(
            slots
                .iter()
                .map(|&arrival| staging_msgs[arrival as usize].clone()),
        );
        total
    }
}

/// Fans one worker's outbox out into its destination shards along the
/// precomputed routes. Returns the number of messages sent (deliveries).
pub(crate) fn scatter<M: Clone>(
    routes: &WorkerRoutes,
    subgraph: &Subgraph,
    outbox: &mut Vec<OutboxEntry<M>>,
    shards: &mut [Shard<M>],
) -> usize {
    let mut sent = 0usize;
    for (local, msg, target) in outbox.drain(..) {
        let local = local as usize;
        let all = routes.all(local);
        // Layout invariant (see `WorkerRoutes`): for a non-master replica
        // the first route points at the master, the rest at the mirrors;
        // for the master the whole slice is mirrors.
        let fan_out = match target {
            MessageTarget::AllReplicas => all,
            MessageTarget::Master if subgraph.is_master(local) => &[],
            MessageTarget::Master => &all[..1],
            MessageTarget::Mirrors if subgraph.is_master(local) => all,
            MessageTarget::Mirrors => &all[1..],
        };
        for route in fan_out {
            shards[route.worker as usize].push((route.local, msg.clone()));
        }
        sent += fan_out.len();
    }
    sent
}

/// All the communication-stage buffers of one run, reused across
/// supersteps.
#[derive(Debug)]
pub(crate) struct MessagePlane<M> {
    /// Per-worker flat inboxes.
    pub(crate) inboxes: Vec<Inbox<M>>,
    /// Per-worker outbox buffers (filled by the computation stage, drained
    /// by the scatter phase).
    pub(crate) outboxes: Vec<Vec<OutboxEntry<M>>>,
    /// Scatter-side shards, indexed `[source][destination]`.
    pub(crate) out_shards: Vec<Vec<Shard<M>>>,
    /// Gather-side shards, indexed `[destination][source]`.
    pub(crate) in_shards: Vec<Vec<Shard<M>>>,
}

impl<M> MessagePlane<M> {
    /// Creates the plane for `p` workers with the given per-worker vertex
    /// counts.
    pub(crate) fn new(vertices_per_worker: impl ExactSizeIterator<Item = usize>) -> Self {
        let p = vertices_per_worker.len();
        MessagePlane {
            inboxes: vertices_per_worker.map(Inbox::new).collect(),
            outboxes: (0..p).map(|_| Vec::new()).collect(),
            out_shards: (0..p)
                .map(|_| (0..p).map(|_| Vec::new()).collect())
                .collect(),
            in_shards: (0..p)
                .map(|_| (0..p).map(|_| Vec::new()).collect())
                .collect(),
        }
    }

    /// Hands the filled scatter shards to the gather side (and the drained
    /// gather shards back for reuse) by swapping the two matrices — `Vec`
    /// moves only, no message is copied — and writes the per-destination
    /// delivery counts into `received` (resized to `p`), folding the
    /// counting pass into the same matrix walk so steady-state supersteps
    /// allocate nothing for it.
    pub(crate) fn transpose_into(&mut self, received: &mut Vec<usize>) {
        let p = self.out_shards.len();
        received.clear();
        received.resize(p, 0);
        for src in 0..p {
            for (dst, count) in received.iter_mut().enumerate() {
                std::mem::swap(
                    &mut self.out_shards[src][dst],
                    &mut self.in_shards[dst][src],
                );
                *count += self.in_shards[dst][src].len();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_counting_sort_is_stable_and_grouped() {
        let mut inbox: Inbox<u64> = Inbox::new(3);
        // Two source shards; vertex 1 receives from both sources and must
        // see source 0's messages (in order) before source 1's.
        let mut shards = vec![
            vec![(1u32, 10u64), (0, 20), (1, 11)],
            vec![(2, 30), (1, 12)],
        ];
        let received = inbox.fill(&mut shards);
        assert_eq!(received, 5);
        let view = inbox.view();
        assert_eq!(view.messages(0), &[20]);
        assert_eq!(view.messages(1), &[10, 11, 12]);
        assert_eq!(view.messages(2), &[30]);
        assert!(shards.iter().all(|s| s.is_empty()), "shards are drained");

        // An empty refill leaves every mailbox empty.
        let received = inbox.fill(&mut shards);
        assert_eq!(received, 0);
        for local in 0..3 {
            assert_eq!(inbox.view().messages(local), &[] as &[u64]);
        }
    }

    /// The zero-allocation guarantee: refilling the same shapes reuses
    /// every buffer — no capacity changes, no reallocation — once the
    /// first superstep has sized them.
    #[test]
    fn steady_state_refills_do_not_reallocate() {
        let mut inbox: Inbox<u64> = Inbox::new(4);
        let refill = |inbox: &mut Inbox<u64>| {
            let mut shards = vec![
                vec![(0u32, 1u64), (3, 2), (0, 3)],
                vec![(2, 4), (2, 5), (1, 6)],
            ];
            inbox.fill(&mut shards)
        };
        refill(&mut inbox);
        let msgs_ptr = inbox.msgs.as_ptr();
        let capacities = (
            inbox.msgs.capacity(),
            inbox.staging_msgs.capacity(),
            inbox.staging_local.capacity(),
            inbox.slots.capacity(),
            inbox.cursor.capacity(),
        );
        for _ in 0..5 {
            assert_eq!(refill(&mut inbox), 6);
            assert_eq!(inbox.msgs.as_ptr(), msgs_ptr, "message buffer moved");
            assert_eq!(
                (
                    inbox.msgs.capacity(),
                    inbox.staging_msgs.capacity(),
                    inbox.staging_local.capacity(),
                    inbox.slots.capacity(),
                    inbox.cursor.capacity(),
                ),
                capacities,
                "scratch buffers reallocated"
            );
        }
    }

    #[test]
    fn transpose_swaps_rows_for_columns_and_counts_deliveries() {
        let mut plane: MessagePlane<u64> = MessagePlane::new([1usize, 1].into_iter());
        plane.out_shards[0][1].push((0, 7));
        plane.out_shards[1][0].push((0, 8));
        plane.out_shards[1][0].push((0, 9));
        let mut received = Vec::new();
        plane.transpose_into(&mut received);
        assert_eq!(plane.in_shards[1][0], vec![(0, 7)]);
        assert_eq!(plane.in_shards[0][1], vec![(0, 8), (0, 9)]);
        assert!(plane.out_shards[0][1].is_empty());
        // The delivery counts fall out of the same pass: worker 0 received
        // two messages (from worker 1), worker 1 received one.
        assert_eq!(received, vec![2, 1]);
        // Swapping back restores the (drained) buffers for reuse and
        // recounts from scratch into the reused buffer.
        plane.transpose_into(&mut received);
        assert_eq!(plane.out_shards[0][1], vec![(0, 7)]);
        assert_eq!(received, vec![0, 0]);
    }
}
