//! # ebv-bsp — the subgraph-centric BSP engine
//!
//! The paper evaluates its partitioner inside DRONE, a distributed
//! subgraph-centric framework following the bulk-synchronous-parallel model
//! of Section IV-B: the graph is split into subgraphs, each bound to one
//! worker, and every superstep consists of a computation stage (a sequential
//! algorithm over the whole subgraph), a communication stage (messages
//! between replicas of the same vertex) and a synchronization barrier.
//!
//! This crate is an in-process reimplementation of that execution model:
//!
//! * [`DistributedGraph`] turns any
//!   [`PartitionResult`](ebv_partition::PartitionResult) (vertex-cut or
//!   edge-cut) into per-worker [`Subgraph`]s with master/mirror replicas;
//! * [`SubgraphProgram`] is the "think like a graph" programming interface;
//! * [`BspEngine`] executes programs sequentially or on a persistent
//!   [`WorkerPool`] with work-aware (LPT) superstep scheduling, behind the
//!   [`SuperstepExecutor`] seam a future multi-process transport plugs
//!   into, recording the per-worker work and message counters;
//! * [`CostModel`] converts the counters into the comp/comm/ΔC/execution
//!   breakdown of Table II and the timelines of Figure 4.
//!
//! The communication counters are exactly the platform-independent metric
//! the paper uses to compare partition algorithms (Tables IV and V).

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod config;
mod engine;
mod error;
mod exchange;
mod program;
pub mod publish;
mod routing;
mod stats;
mod subgraph;
pub mod warm;

pub use config::EnvConfig;
pub use engine::{
    pool_threads_spawned, shared_worker_pool, BspEngine, BspOutcome, ExecutionMode, PooledExecutor,
    RunOptions, SequentialExecutor, SpawnPerStepExecutor, StepOutcome, SuperstepExecutor,
    WorkerPool, WorkerTask,
};
pub use error::{BspError, Result};
pub use program::{MessageTarget, SubgraphContext, SubgraphProgram};
pub use publish::{DurabilityHook, EpochCommitter, ValueSink};
pub use stats::{
    Breakdown, CostModel, ExecutionStats, SuperstepStats, TimelineSpan, WorkerSuperstepStats,
};
pub use subgraph::{
    DistributedGraph, DistributedGraphBuilder, MutationBatch, MutationStats, ReplicaTable, Subgraph,
};
pub use warm::{InvalidationPolicy, WarmFrontier};

/// Commonly used items, for glob import in examples and downstream crates.
pub mod prelude {
    pub use crate::{
        Breakdown, BspEngine, BspOutcome, CostModel, DistributedGraph, DistributedGraphBuilder,
        ExecutionStats, MutationBatch, MutationStats, RunOptions, Subgraph, SubgraphContext,
        SubgraphProgram,
    };
}

#[cfg(test)]
mod proptests {
    use proptest::prelude::*;

    use ebv_graph::GraphBuilder;
    use ebv_partition::{paper_partitioners, PartitionMetrics};

    use crate::subgraph::DistributedGraph;

    fn arbitrary_graph() -> impl Strategy<Value = ebv_graph::Graph> {
        proptest::collection::vec((0u64..40, 0u64..40), 1..200).prop_filter_map(
            "graphs need at least one non-loop edge",
            |edges| {
                let mut builder = GraphBuilder::directed();
                builder.extend_edges(edges);
                builder.build().ok()
            },
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Distributing a graph never loses edges, and for vertex-cut results
        /// the replication factor of the distributed graph matches the
        /// metrics computed by `ebv-partition`.
        #[test]
        fn distribution_preserves_edges_and_replication(graph in arbitrary_graph(), p in 1usize..5) {
            prop_assume!(p <= graph.num_edges());
            for partitioner in paper_partitioners() {
                let result = partitioner.partition(&graph, p).unwrap();
                let dg = DistributedGraph::build(&graph, &result).unwrap();
                let local_edges: usize = dg.subgraphs().iter().map(|s| s.num_edges()).sum();
                if result.is_vertex_cut() {
                    prop_assert_eq!(local_edges, graph.num_edges(), "{}", partitioner.name());
                    // The replica table covers the metric's Σ|V_i| plus one
                    // home replica for each isolated vertex.
                    let covered: usize = result.vertex_counts(&graph).iter().sum();
                    let metrics = PartitionMetrics::compute(&graph, &result).unwrap();
                    prop_assert!(metrics.replication_factor >= 0.0);
                    prop_assert_eq!(
                        dg.replicas().total_replicas(),
                        covered + graph.num_isolated_vertices(),
                        "{}", partitioner.name()
                    );
                } else {
                    prop_assert!(local_edges >= graph.num_edges(), "{}", partitioner.name());
                }
                // Every vertex with at least one incident edge has exactly one master.
                for v in graph.vertices() {
                    if graph.degree(v) > 0 {
                        let masters = dg.subgraphs().iter().filter(|s| {
                            s.local_index_of(v).map(|i| s.is_master(i)).unwrap_or(false)
                        }).count();
                        prop_assert_eq!(masters, 1, "{} vertex {}", partitioner.name(), v);
                    }
                }
            }
        }
    }
}
