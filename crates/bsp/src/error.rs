//! Error type for the subgraph-centric BSP engine.

use std::error::Error as StdError;
use std::fmt;

use ebv_graph::GraphError;
use ebv_partition::PartitionError;

/// Errors produced while building distributed graphs or executing programs.
#[derive(Debug)]
pub enum BspError {
    /// The partition result does not match the graph being distributed.
    PartitionMismatch {
        /// Human-readable description of the mismatch.
        message: String,
    },
    /// An engine or program was configured with an invalid parameter.
    InvalidParameter {
        /// Name of the offending parameter.
        parameter: &'static str,
        /// Human-readable description of the constraint that was violated.
        message: String,
    },
    /// A mutation batch could not be applied to a distributed graph (a
    /// removal referenced a copy the worker does not hold, or the
    /// distribution family does not support edge-level mutations).
    InvalidMutation {
        /// Human-readable description of the rejected mutation.
        message: String,
    },
    /// A program exceeded its superstep limit without converging.
    DidNotConverge {
        /// The superstep limit that was hit.
        max_supersteps: usize,
    },
    /// A worker thread panicked during the computation stage of a threaded
    /// execution. The panic payload is captured instead of aborting the
    /// embedding process.
    WorkerPanicked {
        /// The worker (partition index) whose thread panicked.
        worker: usize,
        /// The panic payload, stringified (`"worker thread panicked"` when
        /// the payload is not a string).
        message: String,
    },
    /// An error bubbled up from the graph substrate.
    Graph(GraphError),
    /// An error bubbled up from the partitioning layer.
    Partition(PartitionError),
}

impl fmt::Display for BspError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BspError::PartitionMismatch { message } => {
                write!(f, "partition does not match graph: {message}")
            }
            BspError::InvalidParameter { parameter, message } => {
                write!(f, "invalid parameter `{parameter}`: {message}")
            }
            BspError::InvalidMutation { message } => {
                write!(f, "invalid mutation: {message}")
            }
            BspError::DidNotConverge { max_supersteps } => {
                write!(
                    f,
                    "program did not converge within {max_supersteps} supersteps"
                )
            }
            BspError::WorkerPanicked { worker, message } => {
                write!(f, "worker {worker} panicked: {message}")
            }
            BspError::Graph(err) => write!(f, "graph error: {err}"),
            BspError::Partition(err) => write!(f, "partition error: {err}"),
        }
    }
}

impl StdError for BspError {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            BspError::Graph(err) => Some(err),
            BspError::Partition(err) => Some(err),
            _ => None,
        }
    }
}

impl From<GraphError> for BspError {
    fn from(err: GraphError) -> Self {
        BspError::Graph(err)
    }
}

impl From<PartitionError> for BspError {
    fn from(err: PartitionError) -> Self {
        BspError::Partition(err)
    }
}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, BspError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_meaningful() {
        assert!(BspError::PartitionMismatch {
            message: "edge count".into()
        }
        .to_string()
        .contains("does not match"));
        assert!(BspError::DidNotConverge { max_supersteps: 7 }
            .to_string()
            .contains('7'));
        assert!(BspError::InvalidParameter {
            parameter: "workers",
            message: "zero".into()
        }
        .to_string()
        .contains("workers"));
        assert_eq!(
            BspError::WorkerPanicked {
                worker: 3,
                message: "boom".into()
            }
            .to_string(),
            "worker 3 panicked: boom"
        );
    }

    #[test]
    fn wrapped_errors_expose_sources() {
        let e = BspError::from(GraphError::EmptyGraph);
        assert!(e.source().is_some());
        let e = BspError::from(PartitionError::InvalidPartitionCount {
            requested: 0,
            message: "zero".into(),
        });
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<BspError>();
    }
}
