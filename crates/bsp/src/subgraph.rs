//! Distributed-graph construction: turning a partition result into the
//! per-worker subgraphs (with master/mirror vertex replicas) that the BSP
//! engine executes on.

use std::collections::HashMap;
use std::hash::BuildHasherDefault;
use std::time::Instant;

use serde::{Deserialize, Serialize};

use ebv_graph::{Edge, Graph, VertexId};
use ebv_obs::{NoopRecorder, Phase, Recorder, SpanCtx};
use ebv_partition::{PartitionId, PartitionResult};

use crate::error::{BspError, Result};
use crate::routing::RoutingTable;

/// Cheap multiply-xor hasher for the vertex/edge-keyed maps on the
/// assembly hot paths (`Subgraph::build`'s local index, the removal
/// matching of `apply_mutations`). The keys are 64-bit vertex ids, so a
/// strong-mixing multiply beats SipHash by a wide margin while staying
/// deterministic; it is never exposed in iteration-order-sensitive code.
#[derive(Default)]
struct IdHasher(u64);

impl std::hash::Hasher for IdHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.0 = (self.0 ^ u64::from(byte)).wrapping_mul(0x100_0000_01b3);
        }
    }

    fn write_u64(&mut self, value: u64) {
        self.0 = (self.0 ^ value).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        self.0 ^= self.0 >> 29;
    }
}

type IdHashMap<K, V> = HashMap<K, V, BuildHasherDefault<IdHasher>>;

/// The local graph held by one worker.
///
/// A subgraph contains the edges assigned to its partition plus every vertex
/// those edges touch. Vertices present in several subgraphs are *replicated*;
/// exactly one replica is the **master** (owner) and the others are
/// **mirrors**. Communication in the subgraph-centric BSP model happens only
/// between replicas of the same vertex (Section IV-B of the paper).
#[derive(Debug, Clone)]
pub struct Subgraph {
    part: PartitionId,
    edges: Vec<Edge>,
    /// Whether this worker *owns* the corresponding local edge. Vertex-cut
    /// distributions own every local edge; edge-cut distributions replicate
    /// crossing edges in both endpoint partitions but only the source
    /// owner's copy is owned, so that sum-style programs (PageRank) count
    /// each edge exactly once.
    owns_edge: Vec<bool>,
    vertices: Vec<VertexId>,
    local_index: IdHashMap<VertexId, usize>,
    is_master: Vec<bool>,
    /// CSR out-adjacency: the out-neighbours of local vertex `l` are
    /// `out_targets[out_offsets[l]..out_offsets[l + 1]]`, in local-edge
    /// order. One offset array + one flat index array instead of a `Vec`
    /// per vertex keeps the kernels' inner loops on contiguous memory.
    out_offsets: Vec<u32>,
    out_targets: Vec<u32>,
    /// CSR in-adjacency (same layout).
    in_offsets: Vec<u32>,
    in_targets: Vec<u32>,
}

impl Subgraph {
    fn build(
        part: PartitionId,
        edges: Vec<Edge>,
        owns_edge: Vec<bool>,
        isolated: &[VertexId],
        masters: &[PartitionId],
    ) -> Self {
        let mut vertices: Vec<VertexId> = Vec::new();
        let mut local_index: IdHashMap<VertexId, usize> = IdHashMap::default();
        for e in &edges {
            for v in [e.src, e.dst] {
                local_index.entry(v).or_insert_with(|| {
                    vertices.push(v);
                    vertices.len() - 1
                });
            }
        }
        for &v in isolated {
            local_index.entry(v).or_insert_with(|| {
                vertices.push(v);
                vertices.len() - 1
            });
        }
        let is_master = vertices
            .iter()
            .map(|v| masters[v.index()] == part)
            .collect();
        let n = vertices.len();
        debug_assert!(u32::try_from(n).is_ok(), "local vertex count fits u32");
        // CSR assembly: degree histogram, prefix sums, cursor fill in
        // local-edge order (preserving the per-vertex neighbour order of
        // the former Vec-of-Vecs layout).
        let mut out_offsets = vec![0u32; n + 1];
        let mut in_offsets = vec![0u32; n + 1];
        for e in &edges {
            out_offsets[local_index[&e.src] + 1] += 1;
            in_offsets[local_index[&e.dst] + 1] += 1;
        }
        for i in 1..=n {
            out_offsets[i] += out_offsets[i - 1];
            in_offsets[i] += in_offsets[i - 1];
        }
        let mut out_targets = vec![0u32; edges.len()];
        let mut in_targets = vec![0u32; edges.len()];
        let mut out_cursor = out_offsets[..n].to_vec();
        let mut in_cursor = in_offsets[..n].to_vec();
        for e in &edges {
            let s = local_index[&e.src];
            let d = local_index[&e.dst];
            out_targets[out_cursor[s] as usize] = d as u32;
            out_cursor[s] += 1;
            in_targets[in_cursor[d] as usize] = s as u32;
            in_cursor[d] += 1;
        }
        Subgraph {
            part,
            edges,
            owns_edge,
            vertices,
            local_index,
            is_master,
            out_offsets,
            out_targets,
            in_offsets,
            in_targets,
        }
    }

    /// The partition (worker) this subgraph belongs to.
    pub fn part(&self) -> PartitionId {
        self.part
    }

    /// The edges local to this subgraph.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Whether this worker owns the local edge at `edge_index` (see the
    /// field documentation: always `true` for vertex-cut distributions,
    /// `true` only in the source owner's partition for replicated edge-cut
    /// edges). Programs that aggregate per-edge quantities (e.g. PageRank
    /// contributions) must restrict themselves to owned edges.
    pub fn owns_edge(&self, edge_index: usize) -> bool {
        self.owns_edge[edge_index]
    }

    /// Number of local edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// All local vertices (masters and mirrors), in local-index order.
    pub fn vertices(&self) -> &[VertexId] {
        &self.vertices
    }

    /// Number of local vertices.
    pub fn num_vertices(&self) -> usize {
        self.vertices.len()
    }

    /// The local index of a vertex, if it is present in this subgraph.
    pub fn local_index_of(&self, v: VertexId) -> Option<usize> {
        self.local_index.get(&v).copied()
    }

    /// The global identifier of the vertex at `local_index`.
    pub fn vertex_at(&self, local_index: usize) -> VertexId {
        self.vertices[local_index]
    }

    /// Whether the vertex at `local_index` is mastered by this subgraph.
    pub fn is_master(&self, local_index: usize) -> bool {
        self.is_master[local_index]
    }

    /// Local indices of the out-neighbours of the vertex at `local_index`,
    /// as a contiguous CSR slice in local-edge order.
    #[inline]
    pub fn out_neighbors(&self, local_index: usize) -> &[u32] {
        &self.out_targets
            [self.out_offsets[local_index] as usize..self.out_offsets[local_index + 1] as usize]
    }

    /// Local indices of the in-neighbours of the vertex at `local_index`,
    /// as a contiguous CSR slice in local-edge order.
    #[inline]
    pub fn in_neighbors(&self, local_index: usize) -> &[u32] {
        &self.in_targets
            [self.in_offsets[local_index] as usize..self.in_offsets[local_index + 1] as usize]
    }

    /// Iterator over the local indices of master vertices.
    pub fn master_indices(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.num_vertices()).filter(|&i| self.is_master[i])
    }
}

/// Replica bookkeeping shared by all workers: which partitions hold each
/// vertex and which one is the master.
#[derive(Debug, Clone)]
pub struct ReplicaTable {
    master: Vec<PartitionId>,
    replicas: Vec<Vec<PartitionId>>,
}

impl ReplicaTable {
    /// The master partition of vertex `v`.
    pub fn master_of(&self, v: VertexId) -> PartitionId {
        self.master[v.index()]
    }

    /// Every partition holding a replica of `v` (including the master), in
    /// increasing partition order.
    pub fn replicas_of(&self, v: VertexId) -> &[PartitionId] {
        &self.replicas[v.index()]
    }

    /// Number of replicas of `v`.
    pub fn replica_count(&self, v: VertexId) -> usize {
        self.replicas[v.index()].len()
    }

    /// Total number of replicas across all vertices (`Σ_i |V_i|`).
    pub fn total_replicas(&self) -> usize {
        self.replicas.iter().map(|r| r.len()).sum()
    }
}

/// A batch of edge-level mutations to replay against a [`DistributedGraph`]
/// via [`DistributedGraph::apply_mutations`]: additions and removals of
/// already-assigned edge copies, with migrations expressed as a removal plus
/// an addition.
///
/// The batch performs *cancellation*: deleting an `(edge, partition)` pair
/// that was added earlier in the same batch removes the pending addition
/// instead of recording a removal, so a batch built by replaying an
/// insert/delete event stream always references only pre-batch edges in its
/// removal list.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MutationBatch {
    added: Vec<(Edge, PartitionId)>,
    removed: Vec<(Edge, PartitionId)>,
}

impl MutationBatch {
    /// Creates an empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the insertion of one edge copy assigned to `part`.
    pub fn record_insert(&mut self, edge: Edge, part: PartitionId) {
        self.added.push((edge, part));
    }

    /// Records the deletion of one edge copy that lived in `part`. Cancels
    /// against the most recent matching pending addition, if any.
    pub fn record_delete(&mut self, edge: Edge, part: PartitionId) {
        match self.added.iter().rposition(|&pair| pair == (edge, part)) {
            Some(index) => {
                self.added.remove(index);
            }
            None => self.removed.push((edge, part)),
        }
    }

    /// Records the migration of one edge copy from `from` to `to`.
    pub fn record_move(&mut self, edge: Edge, from: PartitionId, to: PartitionId) {
        self.record_delete(edge, from);
        self.record_insert(edge, to);
    }

    /// Reconstructs a batch from already-cancelled parts, exactly as read
    /// back by [`added`](Self::added) / [`removed`](Self::removed).
    ///
    /// This is the deserialization entry point: a serialized batch has
    /// *already* had cancellation applied when it was recorded, so its
    /// parts must be restored verbatim. Replaying them through
    /// [`record_insert`](Self::record_insert) /
    /// [`record_delete`](Self::record_delete) would be wrong — a batch
    /// that legitimately deletes a pre-batch copy and re-inserts the same
    /// `(edge, partition)` pair holds that pair in *both* lists, and
    /// re-recording would cancel the pair out of existence.
    pub fn from_parts(added: Vec<(Edge, PartitionId)>, removed: Vec<(Edge, PartitionId)>) -> Self {
        MutationBatch { added, removed }
    }

    /// The pending additions, in record order.
    ///
    /// Invariant (cancellation): a pair deleted after being added *in the
    /// same batch* appears in neither slice — `record_delete` removes the
    /// pending addition instead of recording a removal. Serializing these
    /// two slices therefore captures the batch exactly; rebuild it with
    /// [`from_parts`](Self::from_parts), never by replaying `record_*`.
    pub fn added(&self) -> &[(Edge, PartitionId)] {
        &self.added
    }

    /// The pending removals, in record order. Every entry references an
    /// edge copy that existed before the batch (see
    /// [`added`](Self::added) for the cancellation invariant).
    pub fn removed(&self) -> &[(Edge, PartitionId)] {
        &self.removed
    }

    /// Whether the batch mutates nothing.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty()
    }

    /// Total number of recorded mutations (additions plus removals).
    pub fn len(&self) -> usize {
        self.added.len() + self.removed.len()
    }
}

/// Assembly-cost counters of one [`DistributedGraph::apply_mutations`]
/// epoch: how much of the distribution actually had to be rebuilt.
///
/// An incremental epoch re-assembles only the workers the batch touches
/// (plus any worker whose isolated-vertex list changed); everything else is
/// kept as-is. `workers_touched == 0` therefore identifies a no-op epoch
/// and `workers_touched < p` quantifies the locality win over the
/// full-reassembly path that rebuilds every worker.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct MutationStats {
    /// Workers whose subgraph was re-built this epoch.
    pub workers_touched: usize,
    /// Total local edges of the re-built workers (the re-indexing cost).
    pub edges_rebuilt: usize,
    /// Edge copies the batch added.
    pub edges_added: usize,
    /// Edge copies the batch removed.
    pub edges_removed: usize,
    /// Wall-clock seconds the epoch took to apply (0.0 for no-op epochs).
    /// The only non-deterministic field: everything a program execution can
    /// observe stays bit-identical run to run.
    pub apply_seconds: f64,
}

impl std::fmt::Display for MutationStats {
    /// One-line epoch summary, the mutation-side counterpart of
    /// [`ExecutionStats`](crate::ExecutionStats)' Display.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.workers_touched == 0 {
            return write!(f, "no-op epoch (0 workers touched)");
        }
        write!(
            f,
            "{} workers touched, {} edges rebuilt (+{}/-{} edge copies) in {:.2}ms",
            self.workers_touched,
            self.edges_rebuilt,
            self.edges_added,
            self.edges_removed,
            self.apply_seconds * 1e3,
        )
    }
}

/// A graph distributed over `p` workers: the per-worker subgraphs plus the
/// replica table used for routing messages.
#[derive(Debug, Clone)]
pub struct DistributedGraph {
    subgraphs: Vec<Subgraph>,
    replicas: ReplicaTable,
    num_vertices: usize,
    num_edges: usize,
    /// Number of mutation epochs absorbed since the initial build.
    epoch: usize,
    /// Cached vertex-cut invariant: `true` iff every local edge is owned.
    /// Computed once at assembly so [`apply_mutations`](Self::apply_mutations)
    /// never has to re-scan the per-worker `owns_edge` vectors.
    vertex_cut: bool,
    /// Per-vertex live-incidence counts per holding partition, kept sorted
    /// by partition — the master-election state of [`assemble`], kept
    /// resident and delta-updated so a mutation epoch re-elects only the
    /// vertices it actually touches. A sorted inline list beats a hash map
    /// here: almost every vertex has one or two holders, lookups are a
    /// short binary search, and the resident/clone cost is a fraction of a
    /// `HashMap` per vertex.
    incident_count: Vec<Vec<(PartitionId, u32)>>,
    /// Per-partition isolated vertices, in increasing id order (the order
    /// [`assemble`] feeds them to [`Subgraph::build`]).
    isolated_per_part: Vec<Vec<VertexId>>,
    /// Counters of the most recent mutation epoch (zeroed on fresh builds).
    last_mutation: MutationStats,
    /// Precomputed message routes and master locations, maintained in
    /// lockstep with the subgraphs (epoch-versioned; see
    /// [`crate::routing`]).
    routing: RoutingTable,
}

impl DistributedGraph {
    /// Distributes `graph` according to `partition`.
    ///
    /// For vertex-cut results each partition receives exactly the edges
    /// assigned to it; the master replica of a vertex is the partition
    /// holding the most of its incident edges (ties toward the lower
    /// partition id). For edge-cut results each partition owns its assigned
    /// vertices (which become masters) and holds every edge incident to
    /// them, so crossing edges appear in both endpoint partitions.
    ///
    /// # Errors
    ///
    /// Returns [`BspError::PartitionMismatch`] when `partition` does not
    /// describe `graph`.
    pub fn build(graph: &Graph, partition: &PartitionResult) -> Result<Self> {
        partition
            .validate(graph)
            .map_err(|e| BspError::PartitionMismatch {
                message: e.to_string(),
            })?;
        let p = partition.num_partitions();
        let n = graph.num_vertices();

        // Edge lists per partition, with the ownership flag used by
        // sum-style programs.
        let mut edges_per_part: Vec<Vec<Edge>> = vec![Vec::new(); p];
        let mut owned_per_part: Vec<Vec<bool>> = vec![Vec::new(); p];
        match partition {
            PartitionResult::VertexCut(vc) => {
                for (edge, part) in graph.edges().iter().zip(vc.assignment()) {
                    edges_per_part[part.index()].push(*edge);
                    owned_per_part[part.index()].push(true);
                }
            }
            PartitionResult::EdgeCut(ec) => {
                for edge in graph.edges() {
                    let ps = ec.part_of(edge.src);
                    let pd = ec.part_of(edge.dst);
                    edges_per_part[ps.index()].push(*edge);
                    owned_per_part[ps.index()].push(true);
                    if pd != ps {
                        edges_per_part[pd.index()].push(*edge);
                        owned_per_part[pd.index()].push(false);
                    }
                }
            }
        }

        let master_rule = match partition {
            // Edge-cut: the owner of the vertex is its master.
            PartitionResult::EdgeCut(ec) => MasterRule::Owner(ec),
            // Vertex-cut: the replica with the most incident edges.
            PartitionResult::VertexCut(_) => MasterRule::IncidentMajority,
        };
        Ok(assemble(
            p,
            n,
            graph.num_edges(),
            edges_per_part,
            owned_per_part,
            master_rule,
        ))
    }

    /// Assembles a distributed graph directly from a stream of already
    /// assigned edges — the vertex-cut path of [`DistributedGraph::build`]
    /// without ever materializing a global [`Graph`] or edge vector.
    ///
    /// `num_vertices` optionally declares the vertex universe so that
    /// isolated vertices (never mentioned by the stream) still get a home
    /// worker; when `None` the universe is implied by the largest endpoint
    /// streamed. Feed it from `ebv-stream`'s chunked pipeline, whose sink
    /// yields exactly `(Edge, PartitionId)` pairs.
    ///
    /// # Errors
    ///
    /// Returns [`BspError::InvalidParameter`] for a zero partition count and
    /// [`BspError::PartitionMismatch`] when the stream references a
    /// partition `>= num_partitions`.
    pub fn build_streaming<I>(
        num_partitions: usize,
        num_vertices: Option<usize>,
        assigned_edges: I,
    ) -> Result<Self>
    where
        I: IntoIterator<Item = (Edge, PartitionId)>,
    {
        let mut builder = DistributedGraphBuilder::new(num_partitions)?;
        if let Some(n) = num_vertices {
            builder = builder.with_num_vertices(n);
        }
        for (edge, part) in assigned_edges {
            builder.add_edge(edge, part)?;
        }
        builder.finish()
    }

    /// Incrementally assembles a distributed graph; see
    /// [`DistributedGraphBuilder`].
    pub fn builder(num_partitions: usize) -> Result<DistributedGraphBuilder> {
        DistributedGraphBuilder::new(num_partitions)
    }

    /// Number of workers (subgraphs).
    pub fn num_workers(&self) -> usize {
        self.subgraphs.len()
    }

    /// Number of vertices in the global graph.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of edges in the global graph.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// The per-worker subgraphs, indexed by partition.
    pub fn subgraphs(&self) -> &[Subgraph] {
        &self.subgraphs
    }

    /// The subgraph of worker `part`.
    pub fn subgraph(&self, part: PartitionId) -> &Subgraph {
        &self.subgraphs[part.index()]
    }

    /// The replica table.
    pub fn replicas(&self) -> &ReplicaTable {
        &self.replicas
    }

    /// The replication factor `Σ_i |V_i| / |V|` of this distribution.
    pub fn replication_factor(&self) -> f64 {
        self.replicas.total_replicas() as f64 / self.num_vertices as f64
    }

    /// Number of mutation epochs this distribution has absorbed: 0 for a
    /// fresh build, incremented by every non-empty
    /// [`apply_mutations`](Self::apply_mutations) batch.
    pub fn epoch(&self) -> usize {
        self.epoch
    }

    /// Whether every local edge is owned (the vertex-cut invariant). Only
    /// such distributions support [`apply_mutations`](Self::apply_mutations).
    pub fn is_vertex_cut(&self) -> bool {
        self.vertex_cut
    }

    /// Counters of the most recent mutation epoch: how many workers were
    /// re-assembled and how many local edges that re-indexing covered.
    /// Zeroed for fresh builds and after an empty (no-op) batch.
    pub fn last_mutation(&self) -> MutationStats {
        self.last_mutation
    }

    /// The precomputed routing table the engine's communication stage and
    /// final value extraction run on.
    pub(crate) fn routing(&self) -> &RoutingTable {
        &self.routing
    }

    /// Whether two distributions are structurally identical: same
    /// per-worker edge lists (content, ownership and order), same local
    /// vertex tables and master flags, same replica table, and same
    /// routing tables.
    ///
    /// This is the recovery-equivalence predicate: a distribution rebuilt
    /// from a checkpoint plus a WAL replay must satisfy it against the
    /// never-crashed original. The *epoch counter* is compared separately
    /// by callers ([`epoch`](Self::epoch) is lineage, not structure), and
    /// [`last_mutation`](Self::last_mutation) is excluded because its
    /// `apply_seconds` field is wall-clock.
    pub fn same_structure(&self, other: &Self) -> bool {
        let subgraph_eq = |a: &Subgraph, b: &Subgraph| {
            a.part == b.part
                && a.edges == b.edges
                && a.owns_edge == b.owns_edge
                && a.vertices == b.vertices
                && a.is_master == b.is_master
        };
        self.num_vertices == other.num_vertices
            && self.num_edges == other.num_edges
            && self.vertex_cut == other.vertex_cut
            && self.subgraphs.len() == other.subgraphs.len()
            && self
                .subgraphs
                .iter()
                .zip(&other.subgraphs)
                .all(|(a, b)| subgraph_eq(a, b))
            && self.replicas.master == other.replicas.master
            && self.replicas.replicas == other.replicas.replicas
            && self.incident_count == other.incident_count
            && self.isolated_per_part == other.isolated_per_part
            && self.routing == other.routing
    }

    /// Absorbs one batch of edge mutations in place, incrementally:
    /// only the workers the batch references (plus any worker whose
    /// isolated-vertex placement changed) are re-assembled, and master
    /// election re-runs only for the vertices incident to mutated edges.
    /// Untouched workers are kept as-is. Returns the [`MutationStats`] of
    /// the epoch.
    ///
    /// Removals delete the *most recent* matching copy from the named
    /// worker's edge list (matching the LIFO multiset semantics of
    /// `ebv_partition::DynamicPartitioner::delete`) while preserving the
    /// relative order of the surviving edges; additions append in record
    /// order. The incremental result is structurally identical to
    /// rebuilding from scratch over the surviving `(edge, partition)`
    /// stream.
    ///
    /// An **empty batch** (including one whose inserts and deletes fully
    /// cancelled in-batch) is a cheap no-op: nothing is cloned or rebuilt
    /// and [`epoch`](Self::epoch) does **not** advance — epochs count
    /// absorbed mutations, not calls.
    ///
    /// Only vertex-cut style distributions (every local edge owned) can be
    /// mutated this way; edge-cut distributions replicate crossing edges
    /// and are rejected.
    ///
    /// # Errors
    ///
    /// Returns [`BspError::InvalidMutation`] when a removal references an
    /// edge copy the named worker does not hold (reporting the smallest
    /// such edge of the lowest-numbered failing partition, so the message
    /// is deterministic) or the distribution is not vertex-cut, and
    /// [`BspError::PartitionMismatch`] when a mutation names a partition
    /// out of range. On error the distribution is left unchanged.
    pub fn apply_mutations(&mut self, batch: &MutationBatch) -> Result<MutationStats> {
        self.apply_mutations_with(batch, &NoopRecorder)
    }

    /// [`apply_mutations`](Self::apply_mutations) with telemetry: the whole
    /// epoch is recorded as a `mutation_apply` span and the incremental
    /// routing-table maintenance inside it as a `routing_patch` span (both
    /// on the engine-side track, `worker == p`), plus mutation counters.
    ///
    /// Instrumentation does not perturb the result: every deterministic
    /// field of the returned [`MutationStats`] and the distribution itself
    /// are bit-identical to an uninstrumented call.
    ///
    /// # Errors
    ///
    /// Exactly as [`apply_mutations`](Self::apply_mutations).
    pub fn apply_mutations_with<R: Recorder>(
        &mut self,
        batch: &MutationBatch,
        recorder: &R,
    ) -> Result<MutationStats> {
        if batch.is_empty() {
            self.last_mutation = MutationStats::default();
            return Ok(self.last_mutation);
        }
        if !self.vertex_cut {
            return Err(BspError::InvalidMutation {
                message: "only vertex-cut distributions (every local edge owned) support \
                          edge-level mutations"
                    .to_string(),
            });
        }
        // `apply_seconds` is always measured (one clock pair per epoch);
        // the span is only timed when a real recorder is attached.
        let wall_started = Instant::now();
        let span_started = recorder.start();
        let p = self.num_workers();
        for &(_, part) in batch.removed().iter().chain(batch.added()) {
            if part.index() >= p {
                return Err(BspError::PartitionMismatch {
                    message: format!(
                        "mutation references partition {part} but only {p} partitions exist"
                    ),
                });
            }
        }

        // Group removals per partition, then resolve the last occurrences in
        // one reverse sweep per partition so survivor order is preserved.
        // All removals are validated here, before any state is mutated, so a
        // rejected batch leaves the distribution intact.
        let mut to_remove: Vec<IdHashMap<Edge, usize>> = vec![IdHashMap::default(); p];
        for &(edge, part) in batch.removed() {
            *to_remove[part.index()].entry(edge).or_insert(0) += 1;
        }
        let mut keep_masks: Vec<Option<Vec<bool>>> = vec![None; p];
        for (i, pending) in to_remove.iter_mut().enumerate() {
            if pending.is_empty() {
                continue;
            }
            let edges = &self.subgraphs[i].edges;
            let mut keep = vec![true; edges.len()];
            for index in (0..edges.len()).rev() {
                if let Some(count) = pending.get_mut(&edges[index]) {
                    if *count > 0 {
                        *count -= 1;
                        keep[index] = false;
                    }
                }
            }
            // Deterministic error: the smallest unmatched edge (partitions
            // are scanned in ascending order).
            if let Some(&edge) = pending
                .iter()
                .filter(|&(_, &count)| count > 0)
                .map(|(edge, _)| edge)
                .min()
            {
                return Err(BspError::InvalidMutation {
                    message: format!("partition {i} holds no copy of edge {edge} to remove"),
                });
            }
            keep_masks[i] = Some(keep);
        }

        // The workers whose edge lists change.
        let mut touched = vec![false; p];
        for &(_, part) in batch.removed().iter().chain(batch.added()) {
            touched[part.index()] = true;
        }

        // Grow the vertex universe for additions past the current maximum.
        let old_n = self.num_vertices;
        let mut n = old_n;
        for &(edge, _) in batch.added() {
            n = n.max(edge.src.index().max(edge.dst.index()) + 1);
        }
        if n > old_n {
            self.incident_count.resize_with(n, Vec::new);
            self.replicas.master.resize(n, PartitionId::default());
            self.replicas.replicas.resize_with(n, Vec::new);
        }

        // Delta-update the per-vertex incidence counts; only the endpoints
        // of mutated edges (plus any newly created vertices) can change
        // masters, replica sets or isolated status.
        let mut affected: Vec<usize> = Vec::with_capacity(2 * batch.len() + (n - old_n));
        for &(edge, part) in batch.removed() {
            for v in [edge.src, edge.dst] {
                let counts = &mut self.incident_count[v.index()];
                let slot = counts
                    .binary_search_by_key(&part, |&(holder, _)| holder)
                    .expect("validated removal implies live incidence");
                counts[slot].1 -= 1;
                if counts[slot].1 == 0 {
                    counts.remove(slot);
                }
                affected.push(v.index());
            }
        }
        for &(edge, part) in batch.added() {
            for v in [edge.src, edge.dst] {
                bump_incidence(&mut self.incident_count[v.index()], part);
                affected.push(v.index());
            }
        }
        affected.extend(old_n..n);
        affected.sort_unstable();
        affected.dedup();

        // New edge lists for the batch-touched workers: survivors in
        // original order, then additions in record order — the same stream a
        // fresh streamed build of the survivors would consume.
        let mut new_edges: Vec<Option<Vec<Edge>>> = vec![None; p];
        for i in 0..p {
            if !touched[i] {
                continue;
            }
            let mut edges = std::mem::take(&mut self.subgraphs[i].edges);
            if let Some(keep) = keep_masks[i].take() {
                let mut it = keep.iter();
                edges.retain(|_| *it.next().expect("keep mask covers every edge"));
            }
            new_edges[i] = Some(edges);
        }
        for &(edge, part) in batch.added() {
            new_edges[part.index()]
                .as_mut()
                .expect("addition partitions are touched")
                .push(edge);
        }

        // Re-elect masters and replica lists for the affected vertices,
        // maintaining the round-robin isolated placement of `assemble`. A
        // worker whose isolated list changes must be re-assembled even when
        // its edges did not. The holder lists are already sorted by
        // partition, exactly the replica order `assemble` produces.
        for &vi in &affected {
            let v = VertexId::from(vi);
            let home = vi % p;
            let was_isolated = vi < old_n && self.isolated_per_part[home].binary_search(&v).is_ok();
            let holders = &self.incident_count[vi];
            if holders.is_empty() {
                let home_part = PartitionId::from_index(home);
                self.replicas.master[vi] = home_part;
                self.replicas.replicas[vi].clear();
                self.replicas.replicas[vi].push(home_part);
                if !was_isolated {
                    let list = &mut self.isolated_per_part[home];
                    if let Err(pos) = list.binary_search(&v) {
                        list.insert(pos, v);
                    }
                    touched[home] = true;
                }
            } else {
                self.replicas.master[vi] = holders
                    .iter()
                    .max_by_key(|&&(part, count)| (count, std::cmp::Reverse(part)))
                    .map(|&(part, _)| part)
                    .expect("non-empty holders");
                self.replicas.replicas[vi].clear();
                self.replicas.replicas[vi].extend(holders.iter().map(|&(part, _)| part));
                if was_isolated {
                    let list = &mut self.isolated_per_part[home];
                    if let Ok(pos) = list.binary_search(&v) {
                        list.remove(pos);
                    }
                    touched[home] = true;
                }
            }
        }

        // Patch the master flag of affected vertices inside workers that are
        // *not* being re-assembled (a worker can keep its edges yet lose or
        // gain the master replica of a boundary vertex). Workers that stop
        // or start holding a vertex always had their edge list touched, so
        // only flag patches are ever needed here.
        for &vi in &affected {
            let v = VertexId::from(vi);
            let master = self.replicas.master[vi];
            for &holder in &self.replicas.replicas[vi] {
                if touched[holder.index()] {
                    continue;
                }
                let sg = &mut self.subgraphs[holder.index()];
                let local = sg.local_index[&v];
                sg.is_master[local] = holder == master;
            }
        }

        // Re-assemble exactly the touched workers.
        let mut workers_touched = 0usize;
        let mut edges_rebuilt = 0usize;
        for i in 0..p {
            if !touched[i] {
                continue;
            }
            workers_touched += 1;
            let edges = match new_edges[i].take() {
                Some(edges) => edges,
                // Touched only through an isolated-placement change.
                None => std::mem::take(&mut self.subgraphs[i].edges),
            };
            edges_rebuilt += edges.len();
            let owned = vec![true; edges.len()];
            self.subgraphs[i] = Subgraph::build(
                PartitionId::from_index(i),
                edges,
                owned,
                &self.isolated_per_part[i],
                &self.replicas.master,
            );
        }

        self.num_vertices = n;
        self.num_edges = self.subgraphs.iter().map(|sg| sg.edges.len()).sum();
        self.epoch += 1;
        // Bring the routing table in line: rebuilt workers get fresh route
        // tables, affected vertices are re-routed inside untouched holders.
        let span_ctx = SpanCtx {
            epoch: self.epoch as u32,
            superstep: 0,
            worker: p as u32,
        };
        let patch_started = recorder.start();
        self.routing.apply_update(
            &self.subgraphs,
            &self.replicas,
            &touched,
            &affected,
            n,
            self.epoch,
        );
        recorder.span(patch_started, span_ctx, Phase::RoutingPatch);
        self.last_mutation = MutationStats {
            workers_touched,
            edges_rebuilt,
            edges_added: batch.added().len(),
            edges_removed: batch.removed().len(),
            apply_seconds: wall_started.elapsed().as_secs_f64(),
        };
        recorder.span(span_started, span_ctx, Phase::MutationApply);
        recorder.counter_add("ebv_mutation_epochs_total", 1);
        recorder.counter_add("ebv_mutation_edges_added_total", batch.added().len() as u64);
        recorder.counter_add(
            "ebv_mutation_edges_removed_total",
            batch.removed().len() as u64,
        );
        recorder.counter_add("ebv_mutation_edges_rebuilt_total", edges_rebuilt as u64);
        Ok(self.last_mutation)
    }
}

/// How the master replica of a vertex is elected during assembly.
enum MasterRule<'a> {
    /// Vertex-cut: the replica holding the most incident edges (ties toward
    /// the lower partition id).
    IncidentMajority,
    /// Edge-cut: the partition owning the vertex.
    Owner(&'a ebv_partition::VertexPartition),
}

/// Shared final assembly step: replica sets, master election, isolated
/// vertex placement and per-worker subgraph construction. Both
/// [`DistributedGraph::build`] and [`DistributedGraphBuilder::finish`] end
/// here, which is what keeps the streaming and batch paths structurally
/// identical.
fn assemble(
    p: usize,
    n: usize,
    num_edges: usize,
    edges_per_part: Vec<Vec<Edge>>,
    owned_per_part: Vec<Vec<bool>>,
    master_rule: MasterRule<'_>,
) -> DistributedGraph {
    let mut incident_count: Vec<Vec<(PartitionId, u32)>> = vec![Vec::new(); n];
    for (i, edges) in edges_per_part.iter().enumerate() {
        let part = PartitionId::from_index(i);
        for e in edges {
            bump_incidence(&mut incident_count[e.src.index()], part);
            bump_incidence(&mut incident_count[e.dst.index()], part);
        }
    }
    let mut master = vec![PartitionId::default(); n];
    let mut replicas: Vec<Vec<PartitionId>> = vec![Vec::new(); n];
    let mut isolated_per_part: Vec<Vec<VertexId>> = vec![Vec::new(); p];
    for v in 0..n {
        // Holder lists are kept sorted by partition — the replica order.
        let holders = &incident_count[v];
        replicas[v] = holders.iter().map(|&(p, _)| p).collect();
        master[v] = match master_rule {
            MasterRule::Owner(ec) => ec.part_of(VertexId::from(v)),
            MasterRule::IncidentMajority => holders
                .iter()
                .max_by_key(|&&(p, c)| (c, std::cmp::Reverse(p)))
                .map(|&(p, _)| p)
                .unwrap_or_default(),
        };
        // Isolated vertices appear in no edge list; place them (single
        // replica, master) in a partition chosen round-robin so that
        // every vertex is processed by exactly one worker.
        if replicas[v].is_empty() {
            let home = PartitionId::from_index(v % p);
            master[v] = home;
            replicas[v] = vec![home];
            isolated_per_part[home.index()].push(VertexId::from(v));
        }
    }

    let vertex_cut = owned_per_part
        .iter()
        .all(|owned| owned.iter().all(|&flag| flag));
    let subgraphs: Vec<Subgraph> = edges_per_part
        .into_iter()
        .zip(owned_per_part)
        .enumerate()
        .map(|(i, (edges, owned))| {
            Subgraph::build(
                PartitionId::from_index(i),
                edges,
                owned,
                &isolated_per_part[i],
                &master,
            )
        })
        .collect();

    let replicas = ReplicaTable { master, replicas };
    let routing = RoutingTable::build(&subgraphs, &replicas, n, 0);
    DistributedGraph {
        subgraphs,
        replicas,
        num_vertices: n,
        num_edges,
        epoch: 0,
        vertex_cut,
        incident_count,
        isolated_per_part,
        last_mutation: MutationStats::default(),
        routing,
    }
}

/// Increments the live-incidence count of `part` in a per-vertex holder
/// list kept sorted by partition id.
fn bump_incidence(counts: &mut Vec<(PartitionId, u32)>, part: PartitionId) {
    match counts.binary_search_by_key(&part, |&(holder, _)| holder) {
        Ok(slot) => counts[slot].1 += 1,
        Err(slot) => counts.insert(slot, (part, 1)),
    }
}

/// Incremental, streaming-friendly construction of a [`DistributedGraph`].
///
/// Edges arrive one at a time, already assigned to their partition (for
/// example by an
/// [`ebv_partition::StreamingPartitioner`]); the builder routes each edge
/// to its worker's edge list immediately, so peak memory is the final
/// per-worker state — no global edge vector is ever held. Master election
/// and replica bookkeeping happen once, in [`finish`](Self::finish), through
/// the same assembly step as the batch [`DistributedGraph::build`], so a
/// streamed distribution is structurally identical to the batch
/// distribution of the same assignment.
///
/// # Examples
///
/// ```
/// use ebv_bsp::DistributedGraph;
/// use ebv_graph::Edge;
/// use ebv_partition::PartitionId;
///
/// # fn main() -> Result<(), ebv_bsp::BspError> {
/// let mut builder = DistributedGraph::builder(2)?;
/// builder.add_edge(Edge::from((0u64, 1u64)), PartitionId::new(0))?;
/// builder.add_edge(Edge::from((1u64, 2u64)), PartitionId::new(1))?;
/// let distributed = builder.finish()?;
/// assert_eq!(distributed.num_workers(), 2);
/// assert_eq!(distributed.num_edges(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct DistributedGraphBuilder {
    num_partitions: usize,
    num_vertices_hint: Option<usize>,
    edges_per_part: Vec<Vec<Edge>>,
    max_vertex_exclusive: usize,
    num_edges: usize,
    epoch: usize,
}

impl DistributedGraphBuilder {
    /// Creates a builder for `num_partitions` workers.
    ///
    /// # Errors
    ///
    /// Returns [`BspError::InvalidParameter`] when `num_partitions` is zero.
    pub fn new(num_partitions: usize) -> Result<Self> {
        if num_partitions == 0 {
            return Err(BspError::InvalidParameter {
                parameter: "num_partitions",
                message: "at least one partition is required".to_string(),
            });
        }
        Ok(DistributedGraphBuilder {
            num_partitions,
            num_vertices_hint: None,
            edges_per_part: vec![Vec::new(); num_partitions],
            max_vertex_exclusive: 0,
            num_edges: 0,
            epoch: 0,
        })
    }

    /// Declares the vertex universe `0..n` up front, so vertices never
    /// mentioned by the stream are still placed as isolated masters.
    pub fn with_num_vertices(mut self, n: usize) -> Self {
        self.num_vertices_hint = Some(n);
        self
    }

    /// Stamps the finished distribution with `epoch` instead of 0.
    ///
    /// The mutation epoch is the one field of a [`DistributedGraph`] that
    /// is *not* derivable from the edge assignment — it counts applied
    /// batches. Checkpoint recovery rebuilds the graph through this
    /// builder and must resume the lineage at the checkpointed epoch, not
    /// restart it at zero.
    pub fn with_epoch(mut self, epoch: usize) -> Self {
        self.epoch = epoch;
        self
    }

    /// Routes one assigned edge to its worker.
    ///
    /// # Errors
    ///
    /// Returns [`BspError::PartitionMismatch`] when `part` is out of range.
    pub fn add_edge(&mut self, edge: Edge, part: PartitionId) -> Result<()> {
        if part.index() >= self.num_partitions {
            return Err(BspError::PartitionMismatch {
                message: format!(
                    "edge assigned to partition {part} but only {} partitions exist",
                    self.num_partitions
                ),
            });
        }
        let needed = edge.src.index().max(edge.dst.index()) + 1;
        if needed > self.max_vertex_exclusive {
            self.max_vertex_exclusive = needed;
        }
        self.edges_per_part[part.index()].push(edge);
        self.num_edges += 1;
        Ok(())
    }

    /// Number of edges routed so far.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Elects masters, fills the replica table and produces the
    /// [`DistributedGraph`].
    ///
    /// # Errors
    ///
    /// Returns [`BspError::PartitionMismatch`] when a declared vertex count
    /// is smaller than the largest streamed endpoint.
    pub fn finish(self) -> Result<DistributedGraph> {
        let n = match self.num_vertices_hint {
            Some(hint) => {
                if hint < self.max_vertex_exclusive {
                    return Err(BspError::PartitionMismatch {
                        message: format!(
                            "declared {hint} vertices but the stream references vertex {}",
                            self.max_vertex_exclusive - 1
                        ),
                    });
                }
                hint
            }
            None => self.max_vertex_exclusive,
        };
        let owned_per_part = self
            .edges_per_part
            .iter()
            .map(|edges| vec![true; edges.len()])
            .collect();
        let mut distributed = assemble(
            self.num_partitions,
            n,
            self.num_edges,
            self.edges_per_part,
            owned_per_part,
            MasterRule::IncidentMajority,
        );
        distributed.epoch = self.epoch;
        distributed.routing.set_epoch(self.epoch);
        Ok(distributed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebv_partition::{EbvPartitioner, MetisLikePartitioner, Partitioner};

    fn square() -> Graph {
        Graph::from_edges(vec![(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap()
    }

    #[test]
    fn vertex_cut_distribution_covers_all_edges_once() {
        let g = square();
        let partition = EbvPartitioner::new().partition(&g, 2).unwrap();
        let dg = DistributedGraph::build(&g, &partition).unwrap();
        assert_eq!(dg.num_workers(), 2);
        let total_edges: usize = dg.subgraphs().iter().map(|s| s.num_edges()).sum();
        assert_eq!(total_edges, g.num_edges());
    }

    #[test]
    fn every_vertex_has_exactly_one_master() {
        let g = ebv_graph::generators::named::small_social_graph();
        let partition = EbvPartitioner::new().partition(&g, 4).unwrap();
        let dg = DistributedGraph::build(&g, &partition).unwrap();
        for v in g.vertices() {
            let master = dg.replicas().master_of(v);
            let master_count = dg
                .subgraphs()
                .iter()
                .filter(|s| s.local_index_of(v).map(|i| s.is_master(i)).unwrap_or(false))
                .count();
            if dg.replicas().replica_count(v) > 0 {
                assert_eq!(master_count, 1, "vertex {v}");
                assert!(dg.replicas().replicas_of(v).contains(&master));
            }
        }
    }

    #[test]
    fn replica_table_matches_subgraph_contents() {
        let g = ebv_graph::generators::named::small_social_graph();
        let partition = EbvPartitioner::new().partition(&g, 4).unwrap();
        let dg = DistributedGraph::build(&g, &partition).unwrap();
        for v in g.vertices() {
            let holders: Vec<PartitionId> = dg
                .subgraphs()
                .iter()
                .filter(|s| s.local_index_of(v).is_some())
                .map(|s| s.part())
                .collect();
            assert_eq!(holders, dg.replicas().replicas_of(v), "vertex {v}");
        }
        let rf = dg.replication_factor();
        assert!(rf >= 1.0 - 1e-9);
    }

    #[test]
    fn edge_cut_distribution_replicates_crossing_edges() {
        let g = square();
        let partition = MetisLikePartitioner::new().partition(&g, 2).unwrap();
        let dg = DistributedGraph::build(&g, &partition).unwrap();
        let total_edges: usize = dg.subgraphs().iter().map(|s| s.num_edges()).sum();
        assert!(total_edges >= g.num_edges());
        // Masters come from the edge-cut ownership.
        let ec = partition.as_edge_cut().unwrap();
        for v in g.vertices() {
            assert_eq!(dg.replicas().master_of(v), ec.part_of(v));
        }
        // Each original edge is owned by exactly one subgraph copy.
        let owned_edges: usize = dg
            .subgraphs()
            .iter()
            .map(|s| (0..s.num_edges()).filter(|&i| s.owns_edge(i)).count())
            .sum();
        assert_eq!(owned_edges, g.num_edges());
    }

    #[test]
    fn vertex_cut_subgraphs_own_every_local_edge() {
        let g = square();
        let partition = EbvPartitioner::new().partition(&g, 2).unwrap();
        let dg = DistributedGraph::build(&g, &partition).unwrap();
        for s in dg.subgraphs() {
            assert!((0..s.num_edges()).all(|i| s.owns_edge(i)));
        }
    }

    #[test]
    fn local_adjacency_is_consistent() {
        let g = ebv_graph::generators::named::two_triangles();
        let partition = EbvPartitioner::new().partition(&g, 2).unwrap();
        let dg = DistributedGraph::build(&g, &partition).unwrap();
        for s in dg.subgraphs() {
            for (li, v) in s.vertices().iter().enumerate() {
                assert_eq!(s.local_index_of(*v), Some(li));
                assert_eq!(s.vertex_at(li), *v);
                let out_edges = s.edges().iter().filter(|e| e.src == *v).count();
                assert_eq!(s.out_neighbors(li).len(), out_edges);
                let in_edges = s.edges().iter().filter(|e| e.dst == *v).count();
                assert_eq!(s.in_neighbors(li).len(), in_edges);
            }
            assert!(s.master_indices().count() <= s.num_vertices());
        }
    }

    #[test]
    fn streaming_builder_matches_batch_build() {
        let g = ebv_graph::generators::named::small_social_graph();
        let partition = EbvPartitioner::new().partition(&g, 3).unwrap();
        let batch = DistributedGraph::build(&g, &partition).unwrap();
        let vc = partition.as_vertex_cut().unwrap();
        let streamed = DistributedGraph::build_streaming(
            3,
            Some(g.num_vertices()),
            g.edges()
                .iter()
                .copied()
                .zip(vc.assignment().iter().copied()),
        )
        .unwrap();
        assert_eq!(streamed.num_workers(), batch.num_workers());
        assert_eq!(streamed.num_vertices(), batch.num_vertices());
        assert_eq!(streamed.num_edges(), batch.num_edges());
        for v in g.vertices() {
            assert_eq!(
                streamed.replicas().master_of(v),
                batch.replicas().master_of(v),
                "vertex {v}"
            );
            assert_eq!(
                streamed.replicas().replicas_of(v),
                batch.replicas().replicas_of(v),
                "vertex {v}"
            );
        }
        for (s, b) in streamed.subgraphs().iter().zip(batch.subgraphs()) {
            assert_eq!(s.edges(), b.edges());
            assert_eq!(s.vertices(), b.vertices());
        }
    }

    #[test]
    fn streaming_builder_places_isolated_vertices() {
        let streamed = DistributedGraph::build_streaming(
            2,
            Some(5),
            vec![(Edge::from((0u64, 1u64)), PartitionId::new(0))],
        )
        .unwrap();
        assert_eq!(streamed.num_vertices(), 5);
        // Vertices 2..5 are isolated; each still has exactly one master.
        for v in 2..5u64 {
            assert_eq!(streamed.replicas().replica_count(VertexId::new(v)), 1);
        }
    }

    #[test]
    fn streaming_builder_rejects_bad_input() {
        assert!(DistributedGraphBuilder::new(0).is_err());
        let mut builder = DistributedGraphBuilder::new(2).unwrap();
        assert!(builder
            .add_edge(Edge::from((0u64, 1u64)), PartitionId::new(5))
            .is_err());
        builder
            .add_edge(Edge::from((0u64, 9u64)), PartitionId::new(1))
            .unwrap();
        assert_eq!(builder.num_edges(), 1);
        // Hint smaller than the largest streamed endpoint.
        let too_small = builder.clone().with_num_vertices(3);
        assert!(too_small.finish().is_err());
    }

    #[test]
    fn empty_stream_with_hint_yields_isolated_only_workers() {
        let streamed = DistributedGraph::build_streaming(3, Some(4), Vec::new()).unwrap();
        assert_eq!(streamed.num_workers(), 3);
        assert_eq!(streamed.num_edges(), 0);
        assert_eq!(streamed.num_vertices(), 4);
        let total_vertices: usize = streamed.subgraphs().iter().map(|s| s.num_vertices()).sum();
        assert_eq!(total_vertices, 4);
    }

    #[test]
    fn mismatched_partition_is_rejected() {
        let g = square();
        let other = Graph::from_edges(vec![(0, 1)]).unwrap();
        let partition = EbvPartitioner::new().partition(&other, 1).unwrap();
        assert!(DistributedGraph::build(&g, &partition).is_err());
    }

    fn assert_same_distribution(a: &DistributedGraph, b: &DistributedGraph) {
        assert_eq!(a.num_workers(), b.num_workers());
        assert_eq!(a.num_vertices(), b.num_vertices());
        assert_eq!(a.num_edges(), b.num_edges());
        for v in 0..a.num_vertices() {
            let v = VertexId::from(v);
            assert_eq!(a.replicas().master_of(v), b.replicas().master_of(v));
            assert_eq!(a.replicas().replicas_of(v), b.replicas().replicas_of(v));
        }
        for (sa, sb) in a.subgraphs().iter().zip(b.subgraphs()) {
            assert_eq!(sa.edges(), sb.edges());
            assert_eq!(sa.vertices(), sb.vertices());
        }
        // The incrementally maintained routing table must be structurally
        // identical to the from-scratch rebuild (routing staleness after
        // `apply_mutations` would surface here).
        assert_eq!(a.routing(), b.routing(), "routing tables diverged");
    }

    #[test]
    fn mutation_batch_cancels_same_batch_deletions() {
        let mut batch = MutationBatch::new();
        let e = Edge::from((0u64, 1u64));
        batch.record_insert(e, PartitionId::new(0));
        batch.record_insert(e, PartitionId::new(1));
        batch.record_delete(e, PartitionId::new(1));
        assert_eq!(batch.added(), &[(e, PartitionId::new(0))]);
        assert!(batch.removed().is_empty());
        batch.record_delete(e, PartitionId::new(1));
        assert_eq!(batch.removed(), &[(e, PartitionId::new(1))]);
        assert_eq!(batch.len(), 2);
        assert!(!batch.is_empty());
        batch.record_move(
            Edge::from((2u64, 3u64)),
            PartitionId::new(0),
            PartitionId::new(1),
        );
        assert_eq!(batch.len(), 4);
    }

    #[test]
    fn apply_mutations_equals_fresh_build_of_survivors() {
        let g = ebv_graph::generators::named::small_social_graph();
        let partition = EbvPartitioner::new().partition(&g, 3).unwrap();
        let vc = partition.as_vertex_cut().unwrap();
        let initial = DistributedGraph::build(&g, &partition).unwrap();
        assert_eq!(initial.epoch(), 0);

        // Remove every third edge and add two new ones.
        let assigned: Vec<(Edge, PartitionId)> = g
            .edges()
            .iter()
            .copied()
            .zip(vc.assignment().iter().copied())
            .collect();
        let mut batch = MutationBatch::new();
        for (edge, part) in assigned.iter().step_by(3) {
            batch.record_delete(*edge, *part);
        }
        let additions = [
            (Edge::from((0u64, 9u64)), PartitionId::new(2)),
            (Edge::from((4u64, 12u64)), PartitionId::new(1)),
        ];
        for (edge, part) in additions {
            batch.record_insert(edge, part);
        }
        let mut mutated = initial.clone();
        let stats = mutated.apply_mutations(&batch).unwrap();
        assert_eq!(mutated.epoch(), 1);
        assert_eq!(stats, mutated.last_mutation());
        assert_eq!(stats.edges_added, 2);
        assert!(stats.workers_touched >= 1 && stats.workers_touched <= 3);

        // The surviving stream in order: the undeleted originals, then the
        // batch additions.
        let survivors = assigned
            .iter()
            .enumerate()
            .filter(|(i, _)| i % 3 != 0)
            .map(|(_, &pair)| pair)
            .chain(additions);
        let fresh =
            DistributedGraph::build_streaming(3, Some(mutated.num_vertices()), survivors).unwrap();
        assert_same_distribution(&mutated, &fresh);
    }

    #[test]
    fn apply_mutations_removes_the_latest_duplicate_copy() {
        let e = Edge::from((0u64, 1u64));
        let stream = vec![
            (e, PartitionId::new(0)),
            (Edge::from((1u64, 2u64)), PartitionId::new(1)),
            (e, PartitionId::new(0)),
        ];
        let mut mutated = DistributedGraph::build_streaming(2, None, stream).unwrap();
        let mut batch = MutationBatch::new();
        batch.record_delete(e, PartitionId::new(0));
        mutated.apply_mutations(&batch).unwrap();
        assert_eq!(mutated.num_edges(), 2);
        assert_eq!(mutated.subgraph(PartitionId::new(0)).edges(), &[e]);
    }

    #[test]
    fn apply_mutations_rejects_bad_batches() {
        let g = square();
        let partition = EbvPartitioner::new().partition(&g, 2).unwrap();
        let mut dg = DistributedGraph::build(&g, &partition).unwrap();
        let pristine = dg.clone();

        let mut missing = MutationBatch::new();
        missing.record_delete(Edge::from((7u64, 8u64)), PartitionId::new(0));
        assert!(matches!(
            dg.apply_mutations(&missing),
            Err(BspError::InvalidMutation { .. })
        ));

        let mut out_of_range = MutationBatch::new();
        out_of_range.record_insert(Edge::from((0u64, 1u64)), PartitionId::new(9));
        assert!(matches!(
            dg.apply_mutations(&out_of_range),
            Err(BspError::PartitionMismatch { .. })
        ));

        // Rejected batches leave the distribution untouched.
        assert_eq!(dg.epoch(), 0);
        assert_same_distribution(&dg, &pristine);

        // Edge-cut distributions replicate crossing edges and cannot absorb
        // edge-level mutations.
        let ec = MetisLikePartitioner::new().partition(&g, 2).unwrap();
        let mut ec_dg = DistributedGraph::build(&g, &ec).unwrap();
        assert!(!ec_dg.is_vertex_cut());
        let mut non_empty = MutationBatch::new();
        non_empty.record_insert(Edge::from((0u64, 2u64)), PartitionId::new(0));
        assert!(matches!(
            ec_dg.apply_mutations(&non_empty),
            Err(BspError::InvalidMutation { .. })
        ));
    }

    #[test]
    fn missing_edge_error_is_deterministic() {
        let g = square();
        let partition = EbvPartitioner::new().partition(&g, 2).unwrap();
        let mut dg = DistributedGraph::build(&g, &partition).unwrap();
        // Several missing edges in the same partition: the message must name
        // the smallest one, independent of HashMap iteration order.
        let mut batch = MutationBatch::new();
        for (s, d) in [(9u64, 9u64), (7u64, 8u64), (8u64, 7u64)] {
            batch.record_delete(Edge::from((s, d)), PartitionId::new(1));
        }
        let err = dg.apply_mutations(&batch).unwrap_err();
        assert_eq!(
            err.to_string(),
            "invalid mutation: partition 1 holds no copy of edge (7 -> 8) to remove"
        );
        // The lowest-numbered failing partition wins when several fail.
        let mut multi = MutationBatch::new();
        multi.record_delete(Edge::from((9u64, 9u64)), PartitionId::new(1));
        multi.record_delete(Edge::from((5u64, 5u64)), PartitionId::new(0));
        let err = dg.apply_mutations(&multi).unwrap_err();
        assert_eq!(
            err.to_string(),
            "invalid mutation: partition 0 holds no copy of edge (5 -> 5) to remove"
        );
    }

    #[test]
    fn mutation_stats_display_is_one_line() {
        assert_eq!(
            MutationStats::default().to_string(),
            "no-op epoch (0 workers touched)"
        );
        let stats = MutationStats {
            workers_touched: 3,
            edges_rebuilt: 1200,
            edges_added: 45,
            edges_removed: 12,
            apply_seconds: 0.00525,
        };
        let line = stats.to_string();
        assert_eq!(
            line,
            "3 workers touched, 1200 edges rebuilt (+45/-12 edge copies) in 5.25ms"
        );
        assert!(!line.contains('\n'));
    }

    #[test]
    fn empty_batch_is_a_no_op_and_does_not_advance_the_epoch() {
        let g = square();
        let partition = EbvPartitioner::new().partition(&g, 2).unwrap();
        let mut dg = DistributedGraph::build(&g, &partition).unwrap();
        let pristine = dg.clone();
        let edges_buffer = dg.subgraph(PartitionId::new(0)).edges().as_ptr();

        // Literally empty.
        let stats = dg.apply_mutations(&MutationBatch::new()).unwrap();
        assert_eq!(stats, MutationStats::default());

        // Fully cancelled in-batch: insert then delete of the same copy.
        let mut cancelled = MutationBatch::new();
        let e = Edge::from((0u64, 3u64));
        cancelled.record_insert(e, PartitionId::new(1));
        cancelled.record_delete(e, PartitionId::new(1));
        assert!(cancelled.is_empty());
        let stats = dg.apply_mutations(&cancelled).unwrap();
        assert_eq!(stats.workers_touched, 0);
        assert_eq!(stats.edges_rebuilt, 0);

        assert_eq!(dg.epoch(), 0, "no-op batches do not advance the epoch");
        assert_same_distribution(&dg, &pristine);
        // The subgraphs were not even re-allocated.
        assert_eq!(
            dg.subgraph(PartitionId::new(0)).edges().as_ptr(),
            edges_buffer
        );
    }

    #[test]
    fn apply_mutations_rebuilds_only_touched_workers() {
        // Four chain components, one per partition, so a batch naming two
        // partitions cannot affect the other two.
        let stream: Vec<(Edge, PartitionId)> = (0..4u64)
            .flat_map(|part| {
                let base = 10 * part;
                [
                    (Edge::from((base, base + 1)), PartitionId::new(part as u32)),
                    (
                        Edge::from((base + 1, base + 2)),
                        PartitionId::new(part as u32),
                    ),
                ]
            })
            .collect();
        let mut dg = DistributedGraph::build_streaming(4, None, stream.clone()).unwrap();
        let untouched_buffers: Vec<*const Edge> = [2usize, 3]
            .iter()
            .map(|&i| dg.subgraphs()[i].edges().as_ptr())
            .collect();

        let mut batch = MutationBatch::new();
        batch.record_delete(Edge::from((0u64, 1u64)), PartitionId::new(0));
        batch.record_insert(Edge::from((11u64, 13u64)), PartitionId::new(1));
        let stats = dg.apply_mutations(&batch).unwrap();
        assert_eq!(stats.workers_touched, 2, "only partitions 0 and 1 rebuild");
        assert_eq!(dg.epoch(), 1);

        // The untouched workers kept their exact allocations.
        for (&i, &buffer) in [2usize, 3].iter().zip(&untouched_buffers) {
            assert_eq!(dg.subgraphs()[i].edges().as_ptr(), buffer, "worker {i}");
        }

        // And the whole distribution still equals a fresh build of the
        // survivors.
        let survivors: Vec<(Edge, PartitionId)> = stream
            .into_iter()
            .filter(|&(e, part)| !(e == Edge::from((0u64, 1u64)) && part == PartitionId::new(0)))
            .chain([(Edge::from((11u64, 13u64)), PartitionId::new(1))])
            .collect();
        let fresh =
            DistributedGraph::build_streaming(4, Some(dg.num_vertices()), survivors).unwrap();
        assert_same_distribution(&dg, &fresh);
    }

    #[test]
    fn isolation_changes_touch_the_home_worker() {
        // Vertex 5's home partition is 5 % 2 = 1. Removing its only edge
        // (held by partition 0) must re-home it as an isolated vertex in
        // partition 1, so both workers are touched.
        let stream = vec![
            (Edge::from((0u64, 1u64)), PartitionId::new(0)),
            (Edge::from((0u64, 5u64)), PartitionId::new(0)),
            (Edge::from((2u64, 3u64)), PartitionId::new(1)),
        ];
        let mut dg = DistributedGraph::build_streaming(2, None, stream.clone()).unwrap();
        let mut batch = MutationBatch::new();
        batch.record_delete(Edge::from((0u64, 5u64)), PartitionId::new(0));
        let stats = dg.apply_mutations(&batch).unwrap();
        assert_eq!(stats.workers_touched, 2);
        let fresh = DistributedGraph::build_streaming(
            2,
            Some(dg.num_vertices()),
            vec![
                (Edge::from((0u64, 1u64)), PartitionId::new(0)),
                (Edge::from((2u64, 3u64)), PartitionId::new(1)),
            ],
        )
        .unwrap();
        assert_same_distribution(&dg, &fresh);
        // And re-adding an edge to vertex 5 un-isolates it again.
        let mut back = MutationBatch::new();
        back.record_insert(Edge::from((4u64, 5u64)), PartitionId::new(1));
        dg.apply_mutations(&back).unwrap();
        let fresh = DistributedGraph::build_streaming(
            2,
            Some(dg.num_vertices()),
            vec![
                (Edge::from((0u64, 1u64)), PartitionId::new(0)),
                (Edge::from((2u64, 3u64)), PartitionId::new(1)),
                (Edge::from((4u64, 5u64)), PartitionId::new(1)),
            ],
        )
        .unwrap();
        assert_same_distribution(&dg, &fresh);
    }

    #[test]
    fn master_flags_are_patched_in_untouched_workers() {
        // Vertex 1 is replicated in partitions 0 (two incident edges) and 1
        // (one incident edge): partition 0 masters it. Adding two more
        // incident edges to partition 1 flips the master to partition 1
        // while partition 0's edge list never changes.
        let stream = vec![
            (Edge::from((0u64, 1u64)), PartitionId::new(0)),
            (Edge::from((1u64, 2u64)), PartitionId::new(0)),
            (Edge::from((1u64, 3u64)), PartitionId::new(1)),
        ];
        let mut dg = DistributedGraph::build_streaming(2, None, stream.clone()).unwrap();
        let v1 = VertexId::new(1);
        assert_eq!(dg.replicas().master_of(v1), PartitionId::new(0));

        let additions = [
            (Edge::from((1u64, 4u64)), PartitionId::new(1)),
            (Edge::from((1u64, 5u64)), PartitionId::new(1)),
        ];
        let mut batch = MutationBatch::new();
        for (e, part) in additions {
            batch.record_insert(e, part);
        }
        let stats = dg.apply_mutations(&batch).unwrap();
        assert_eq!(stats.workers_touched, 1, "only partition 1 rebuilds");
        assert_eq!(dg.replicas().master_of(v1), PartitionId::new(1));
        // The untouched worker's replica flag was patched in place.
        let sg0 = dg.subgraph(PartitionId::new(0));
        let local = sg0.local_index_of(v1).unwrap();
        assert!(!sg0.is_master(local));
        let fresh = DistributedGraph::build_streaming(
            2,
            Some(dg.num_vertices()),
            stream.into_iter().chain(additions),
        )
        .unwrap();
        assert_same_distribution(&dg, &fresh);
    }

    #[test]
    fn incremental_masters_match_fresh_build_under_random_churn() {
        // A randomized cross-check on a denser graph: several mutation
        // epochs, then full structural equality including masters.
        let g = ebv_graph::generators::named::small_social_graph();
        let partition = EbvPartitioner::new().partition(&g, 4).unwrap();
        let vc = partition.as_vertex_cut().unwrap();
        let mut assigned: Vec<(Edge, PartitionId)> = g
            .edges()
            .iter()
            .copied()
            .zip(vc.assignment().iter().copied())
            .collect();
        let mut dg = DistributedGraph::build(&g, &partition).unwrap();
        let mut next_vertex = g.num_vertices() as u64;
        for round in 0..5 {
            let mut batch = MutationBatch::new();
            // Delete a deterministic third of the survivors.
            let victims: Vec<(Edge, PartitionId)> = assigned
                .iter()
                .copied()
                .enumerate()
                .filter(|(i, _)| i % 3 == round % 3)
                .map(|(_, pair)| pair)
                .collect();
            for &(e, part) in &victims {
                batch.record_delete(e, part);
            }
            assigned.retain(|pair| !victims.contains(pair));
            // Add edges, including ones growing the universe.
            let additions = [
                (
                    Edge::from((round as u64, next_vertex)),
                    PartitionId::new((round % 4) as u32),
                ),
                (
                    Edge::from((next_vertex, next_vertex + 1)),
                    PartitionId::new(((round + 1) % 4) as u32),
                ),
            ];
            next_vertex += 2;
            for (e, part) in additions {
                batch.record_insert(e, part);
                assigned.push((e, part));
            }
            dg.apply_mutations(&batch).unwrap();
            let fresh = DistributedGraph::build_streaming(
                4,
                Some(dg.num_vertices()),
                assigned.iter().copied(),
            )
            .unwrap();
            assert_same_distribution(&dg, &fresh);
            for v in 0..dg.num_vertices() {
                let v = VertexId::from(v);
                for sg in dg.subgraphs() {
                    if let Some(local) = sg.local_index_of(v) {
                        assert_eq!(
                            sg.is_master(local),
                            dg.replicas().master_of(v) == sg.part(),
                            "round {round} vertex {v} worker {}",
                            sg.part()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn epochs_accumulate_across_batches() {
        let g = square();
        let partition = EbvPartitioner::new().partition(&g, 2).unwrap();
        let mut dg = DistributedGraph::build(&g, &partition).unwrap();
        for expected in 1..=3 {
            let mut batch = MutationBatch::new();
            batch.record_insert(Edge::from((0u64, 2u64)), PartitionId::new(0));
            dg.apply_mutations(&batch).unwrap();
            assert_eq!(dg.epoch(), expected);
        }
        assert_eq!(dg.num_edges(), g.num_edges() + 3);
    }
}
